// Reproduces Table V: averaged FLOPs and single-sample inference time of
// the heavy / predefined light / NAS-searched ("Ours") models on both
// datasets and both encoder families.
//
// The "Ours" column runs the budget-limited NAS on a few representative
// scenarios and averages the resulting model FLOPs; inference time is the
// median of repeated single-sample predictions.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/meta/meta_learner.h"
#include "src/nas/nas_search.h"
#include "src/train/trainer.h"
#include "src/util/table_printer.h"

namespace alt {
namespace bench {
namespace {

double MedianInferenceMs(models::BaseModel* model,
                         const data::ScenarioData& dataset, int reps) {
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    data::Batch one = MakeBatch(
        dataset, {static_cast<size_t>(r % dataset.num_samples())});
    const double start = MonotonicSeconds();
    model->PredictProbs(one);
    times.push_back((MonotonicSeconds() - start) * 1e3);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct Row {
  double heavy_flops = 0.0;
  double light_flops = 0.0;
  double ours_flops = 0.0;
  double heavy_ms = 0.0;
  double light_ms = 0.0;
  double ours_ms = 0.0;
};

/// With --quant=int8, every model is post-training quantized (eval-mode
/// Linear layers take the int8 GEMM) before its inference time is measured;
/// FLOPs columns still report the fp32-equivalent count.
void MaybeQuantize(models::BaseModel* model, bool quantize) {
  if (!quantize) return;
  model->SetTraining(false);
  model->QuantizeForServing();
}

Row Measure(BenchOptions options, models::EncoderKind kind, int64_t reps,
            bool quantize) {
  Row row;
  auto scenarios = PrepareWorkload(options);
  Rng rng(options.seed);
  auto heavy = models::BuildBaseModel(options.HeavyConfig(kind), &rng);
  auto light = models::BuildBaseModel(options.LightConfig(kind), &rng);
  ALT_CHECK(heavy.ok() && light.ok());
  row.heavy_flops = static_cast<double>(heavy.value()->FlopsPerSample());
  row.light_flops = static_cast<double>(light.value()->FlopsPerSample());
  MaybeQuantize(heavy.value().get(), quantize);
  MaybeQuantize(light.value().get(), quantize);
  row.heavy_ms =
      MedianInferenceMs(heavy.value().get(), scenarios[0].test, reps);
  row.light_ms =
      MedianInferenceMs(light.value().get(), scenarios[0].test, reps);

  // "Ours": searched architectures on two representative scenarios (one
  // large, one small).
  const int64_t budget =
      light.value()->behavior_encoder()->Flops(options.seq_len);
  std::vector<size_t> picks = {0, scenarios.size() - 3};
  double flops_total = 0.0;
  double ms_total = 0.0;
  for (size_t pick : picks) {
    nas::NasSearchOptions nas_options;
    nas_options.supernet.num_layers = options.nas_layers;
    nas_options.search_epochs = 1;
    nas_options.flops_budget = budget;
    nas_options.final_train.epochs = 1;
    nas_options.final_train.learning_rate = options.learning_rate;
    nas_options.weight_lr = options.learning_rate;
    nas_options.seed = options.seed + pick;
    auto ours = nas::SearchLightModel(options.LightConfig(kind), nullptr,
                                      scenarios[pick].train, nas_options,
                                      nullptr);
    ALT_CHECK(ours.ok()) << ours.status().ToString();
    flops_total += static_cast<double>(ours.value()->FlopsPerSample());
    MaybeQuantize(ours.value().get(), quantize);
    ms_total += MedianInferenceMs(ours.value().get(), scenarios[pick].test,
                                  static_cast<int>(reps));
  }
  row.ours_flops = flops_total / static_cast<double>(picks.size());
  row.ours_ms = ms_total / static_cast<double>(picks.size());
  return row;
}

std::string FlopsStr(double flops) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fM", flops / 1e6);
  return buf;
}

}  // namespace
}  // namespace bench
}  // namespace alt

int main(int argc, char** argv) {
  using namespace alt;
  bench::Flags flags(argc, argv);
  bench::BenchOptions base;
  base.ApplyFlags(flags);
  const int64_t reps = flags.GetInt("reps", 201);
  const std::string quant = flags.GetString("quant", "");
  ALT_CHECK(quant.empty() || quant == "int8")
      << "unknown --quant value '" << quant << "' (expected int8)";
  const bool quantize = quant == "int8";

  std::printf("=== Table V: averaged FLOPs and inference time ===\n");
  std::printf("seq_len=%lld (paper: 128), single-sample inference, median "
              "of %lld reps%s\n\n",
              static_cast<long long>(base.seq_len),
              static_cast<long long>(reps),
              quantize ? ", int8-quantized serving path" : "");

  TablePrinter table({"metric", "dataset", "encoder", "Heavy", "Light",
                      "Ours"});
  for (auto [workload, wname, scale] :
       {std::tuple{bench::Workload::kDatasetA, "A", 1.0 / 600.0},
        std::tuple{bench::Workload::kDatasetB, "B", 1.0 / 150.0}}) {
    for (auto [kind, kname] :
         {std::pair{models::EncoderKind::kLstm, "LSTM"},
          std::pair{models::EncoderKind::kBert, "BERT"}}) {
      bench::BenchOptions options = base;
      options.workload = workload;
      options.scale = scale;
      bench::Row row = bench::Measure(options, kind, reps, quantize);
      table.AddRow({"FLOPs", wname, kname, bench::FlopsStr(row.heavy_flops),
                    bench::FlopsStr(row.light_flops),
                    bench::FlopsStr(row.ours_flops)});
      table.AddRow({"time(ms)", wname, kname,
                    TablePrinter::Num(row.heavy_ms, 3),
                    TablePrinter::Num(row.light_ms, 3),
                    TablePrinter::Num(row.ours_ms, 3)});
    }
  }
  table.Print();
  std::printf(
      "\nPaper Table V reference (seq len 128): FLOPs A: LSTM 4.78M/2.46M/"
      "2.12M, BERT 4.74M/2.44M/2.07M; B: LSTM 5.19M/2.75M/2.61M, BERT "
      "5.14M/2.68M/2.58M.\nInference A: LSTM 10.25/5.14/3.13ms, BERT "
      "6.71/3.42/2.96ms; B: LSTM 11.12/5.43/2.61ms, BERT 7.29/3.72/3.54ms.\n"
      "Expected shape: Heavy > Light > Ours in both FLOPs and latency.\n");
  return 0;
}
