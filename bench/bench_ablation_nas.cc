// Ablations of the design choices DESIGN.md calls out for the budget-
// limited NAS (not a paper table; supports Sec. III-D's design decisions):
//   1. distillation on/off (Eq. 5's delta);
//   2. FLOPs-regularizer lambda sweep (Eq. 4);
//   3. FLOPs-budget sweep (0.5x / 1x / 2x of the predefined light encoder).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/meta/meta_learner.h"
#include "src/nas/nas_search.h"
#include "src/train/trainer.h"
#include "src/util/table_printer.h"

namespace alt {
namespace bench {
namespace {

struct AblationRun {
  double auc = 0.0;
  int64_t encoder_flops = 0;
};

AblationRun RunNas(const BenchOptions& options,
                   const PreparedScenario& scenario,
                   models::BaseModel* teacher, float delta, float lambda,
                   int64_t budget, uint64_t seed) {
  nas::NasSearchOptions nas_options;
  nas_options.supernet.num_layers = options.nas_layers;
  nas_options.search_epochs = options.nas_search_epochs;
  nas_options.weight_lr = options.learning_rate;
  nas_options.lambda_flops = lambda;
  nas_options.flops_budget = budget;
  nas_options.distill_delta = delta;
  nas_options.final_train.epochs = options.epochs;
  nas_options.final_train.learning_rate = options.learning_rate;
  nas_options.seed = seed;
  nas::NasSearchReport report;
  auto model = nas::SearchLightModel(
      options.LightConfig(models::EncoderKind::kLstm), teacher,
      scenario.train, nas_options, &report);
  ALT_CHECK(model.ok()) << model.status().ToString();
  AblationRun run;
  run.auc = train::EvaluateAuc(model.value().get(), scenario.test);
  run.encoder_flops = report.encoder_flops;
  return run;
}

}  // namespace
}  // namespace bench
}  // namespace alt

int main(int argc, char** argv) {
  using namespace alt;
  bench::Flags flags(argc, argv);
  bench::BenchOptions options;
  options.workload = bench::Workload::kDatasetA;
  options.ApplyFlags(flags);

  std::printf("=== NAS ablations (Dataset A) ===\n\n");
  auto scenarios = bench::PrepareWorkload(options);
  auto initial = bench::PickInitialScenarios(
      options, static_cast<int64_t>(scenarios.size()));

  // Teacher: meta-adapted heavy model for the probe scenarios.
  meta::MetaOptions meta_options;
  meta_options.init_train.epochs = options.epochs;
  meta_options.init_train.learning_rate = options.learning_rate;
  meta_options.finetune.epochs = std::max<int64_t>(1, options.epochs / 2);
  meta_options.finetune.learning_rate = options.learning_rate;
  meta_options.seed = options.seed;
  meta::MetaLearner learner(
      options.HeavyConfig(models::EncoderKind::kLstm), meta_options);
  std::vector<data::ScenarioData> parts;
  for (int64_t idx : initial) {
    parts.push_back(scenarios[static_cast<size_t>(idx)].train);
  }
  ALT_CHECK(learner.Initialize(parts).ok());

  Rng rng(options.seed);
  auto light_ref = models::BuildBaseModel(
      options.LightConfig(models::EncoderKind::kLstm), &rng);
  const int64_t budget =
      light_ref.value()->behavior_encoder()->Flops(options.seq_len);

  // Probe scenarios: one head, one mid, one tail.
  const std::vector<size_t> probes = {0, scenarios.size() / 2,
                                      scenarios.size() - 2};

  // --- Ablation 1: distillation on/off. ----------------------------------
  std::printf("Ablation 1 — distillation (Eq. 5 delta):\n");
  TablePrinter distill_table({"scenario", "delta=0 (no distill)",
                              "delta=1", "delta=4", "teacher AUC"});
  for (size_t p : probes) {
    const bench::PreparedScenario& s = scenarios[p];
    auto teacher = learner.AdaptToScenario(s.train, /*send_feedback=*/false);
    ALT_CHECK(teacher.ok());
    std::vector<std::string> row = {std::to_string(s.scenario_id + 1)};
    for (float delta : {0.0f, 1.0f, 4.0f}) {
      bench::AblationRun run =
          bench::RunNas(options, s, teacher.value().get(), delta, 0.1f,
                        budget, options.seed + p);
      row.push_back(TablePrinter::Num(run.auc));
    }
    row.push_back(TablePrinter::Num(
        train::EvaluateAuc(teacher.value().get(), s.test)));
    distill_table.AddRow(row);
  }
  distill_table.Print();
  std::printf("Expected: distillation (delta>0) helps the light student.\n\n");

  // --- Ablation 2: lambda sweep. ------------------------------------------
  std::printf("Ablation 2 — FLOPs-regularizer lambda (Eq. 4):\n");
  TablePrinter lambda_table(
      {"lambda", "AUC", "encoder FLOPs", "budget"});
  {
    const bench::PreparedScenario& s = scenarios[0];
    auto teacher = learner.AdaptToScenario(s.train, /*send_feedback=*/false);
    ALT_CHECK(teacher.ok());
    for (float lambda : {0.0f, 0.1f, 0.5f, 2.0f}) {
      // No hard budget here: lambda alone steers the extracted size.
      bench::AblationRun run =
          bench::RunNas(options, s, teacher.value().get(), 1.0f, lambda,
                        /*budget=*/0, options.seed + 31);
      lambda_table.AddRow({TablePrinter::Num(lambda, 1),
                           TablePrinter::Num(run.auc),
                           std::to_string(run.encoder_flops),
                           "(none)"});
    }
  }
  lambda_table.Print();
  std::printf("Expected: larger lambda extracts cheaper architectures.\n\n");

  // --- Ablation 3: budget sweep. -------------------------------------------
  std::printf("Ablation 3 — FLOPs budget sweep:\n");
  TablePrinter budget_table({"budget", "AUC", "encoder FLOPs"});
  {
    const bench::PreparedScenario& s = scenarios[1];
    auto teacher = learner.AdaptToScenario(s.train, /*send_feedback=*/false);
    ALT_CHECK(teacher.ok());
    for (double factor : {0.1, 0.5, 1.0}) {
      const int64_t b = static_cast<int64_t>(budget * factor);
      // lambda = 0 so the hard budget is the binding constraint.
      bench::AblationRun run = bench::RunNas(
          options, s, teacher.value().get(), 1.0f, 0.0f, b,
          options.seed + 77);
      budget_table.AddRow({std::to_string(b), TablePrinter::Num(run.auc),
                           std::to_string(run.encoder_flops)});
    }
  }
  budget_table.Print();
  std::printf("Expected: derived FLOPs <= budget at every setting.\n");
  return 0;
}
