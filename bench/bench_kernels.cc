// Micro-benchmark for the dense compute-kernel layer (src/tensor/kernels.cc).
//
// Measures GFLOP/s of the blocked/parallel GEMM, batched matmul, and Conv1D
// kernels against the frozen pre-optimization baselines in kernels_naive.cc,
// at 1 thread and at the configured thread count, and writes the results as
// machine-readable JSON (default: BENCH_kernels.json in the current
// directory). The JSON is consumed by tooling that tracks the kernel-layer
// perf trajectory across PRs.
//
// Every entry records the SIMD level ("isa") it ran at. The serving-shape
// section additionally measures the same GEMM forced to the scalar tier and
// through the int8 quantized path, deriving
// simd_gemm_speedup_vs_scalar_serving and int8_gemm_speedup_vs_fp32_simd
// (worst case over the serving shapes).
//
// Flags:
//   --smoke       fast mode for CI: tiny rep counts, still checks parity.
//   --out=PATH    output JSON path (default BENCH_kernels.json).
//   --threads=N   "N-thread" configuration (default: alt::ComputeThreads()).
//   --min_time=S  seconds of repetitions per measurement (default 0.25).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/memory_tracker.h"
#include "src/obs/metrics.h"
#include "src/tensor/cpu_features.h"
#include "src/tensor/kernels.h"
#include "src/tensor/kernels_naive.h"
#include "src/tensor/quant.h"
#include "src/tensor/tensor.h"
#include "src/util/json.h"
#include "src/util/logging.h"
#include "src/util/parallel_for.h"
#include "src/util/rng.h"

namespace alt {
namespace {

std::vector<float> RandomVec(int64_t n, Rng* rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng->Uniform(-1.0, 1.0));
  return v;
}

double Checksum(const std::vector<float>& v) {
  double s = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    s += static_cast<double>(v[i]) * static_cast<double>((i % 7) + 1);
  }
  return s;
}

double Checksum(const Tensor& t) {
  double s = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    s += static_cast<double>(t[i]) * static_cast<double>((i % 7) + 1);
  }
  return s;
}

/// Runs `fn` repeatedly for at least `min_time` seconds (at least once) and
/// returns the best per-call seconds observed. Best-of is less noisy than
/// mean on shared machines.
double TimeBest(double min_time, const std::function<void()>& fn) {
  double best = 1e30;
  double total = 0.0;
  const double outer_start = bench::MonotonicSeconds();
  do {
    const double start = bench::MonotonicSeconds();
    fn();
    const double t = bench::MonotonicSeconds() - start;
    if (t < best) best = t;
    total = bench::MonotonicSeconds() - outer_start;
  } while (total < min_time);
  return best;
}

struct BenchResult {
  std::string name;
  std::string shape;
  std::string isa;  ///< SIMD level active while measuring.
  int threads = 1;
  double gflops = 0.0;
  double seconds = 0.0;
  double checksum = 0.0;
};

class Reporter {
 public:
  void Add(BenchResult r) {
    if (r.isa.empty()) r.isa = ActiveSimdName();
    std::printf("%-28s %-20s threads=%-2d isa=%-7s %8.2f GFLOP/s\n",
                r.name.c_str(), r.shape.c_str(), r.threads, r.isa.c_str(),
                r.gflops);
    std::fflush(stdout);
    results_.push_back(std::move(r));
  }

  const BenchResult* Find(const std::string& name, int threads) const {
    for (const auto& r : results_) {
      if (r.name == name && r.threads == threads) return &r;
    }
    return nullptr;
  }

  const std::vector<BenchResult>& results() const { return results_; }

 private:
  std::vector<BenchResult> results_;
};

/// GEMM flavor under test; `naive` selects the frozen baseline kernel.
struct GemmVariant {
  std::string name;
  bool naive = false;
  bool trans_a = false;
  bool trans_b = false;
};

BenchResult BenchGemm(const GemmVariant& variant, int64_t m, int64_t k,
                      int64_t n, int threads, double min_time, Rng* rng) {
  const std::vector<float> a = RandomVec(m * k, rng);
  const std::vector<float> b = RandomVec(k * n, rng);
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);

  // The trans variants accumulate, so reset C before each call to keep the
  // result (and the checksum) independent of the repetition count.
  std::vector<int64_t> ashape = variant.trans_a
                                    ? std::vector<int64_t>{k, m}
                                    : std::vector<int64_t>{m, k};
  std::vector<int64_t> bshape = variant.trans_b
                                    ? std::vector<int64_t>{n, k}
                                    : std::vector<int64_t>{k, n};
  Tensor ta = Tensor::FromVector(ashape, a);
  Tensor tb = Tensor::FromVector(bshape, b);
  Tensor tc({m, n});

  auto run = [&]() {
    if (variant.naive) {
      naive::Gemm(a.data(), b.data(), c.data(), m, k, n, /*accumulate=*/false);
    } else if (variant.trans_a) {
      tc.Fill(0.0f);
      MatMulTransAAcc(ta, tb, &tc);
    } else if (variant.trans_b) {
      tc.Fill(0.0f);
      MatMulTransBAcc(ta, tb, &tc);
    } else {
      MatMul(ta, tb, &tc);
    }
  };

  SetComputeThreads(threads);
  BenchResult r;
  r.seconds = TimeBest(min_time, run);
  SetComputeThreads(0);

  r.name = variant.name;
  r.shape = std::to_string(m) + "x" + std::to_string(k) + "x" +
            std::to_string(n);
  r.threads = threads;
  r.gflops = 2.0 * static_cast<double>(m) * k * n / r.seconds * 1e-9;
  r.checksum = variant.naive ? Checksum(c) : Checksum(tc);
  return r;
}

BenchResult BenchBatched(int64_t batch, int64_t m, int64_t k, int64_t n,
                         int threads, double min_time, Rng* rng) {
  Tensor a = Tensor::FromVector({batch, m, k}, RandomVec(batch * m * k, rng));
  Tensor b = Tensor::FromVector({batch, k, n}, RandomVec(batch * k * n, rng));
  Tensor c({batch, m, n});

  SetComputeThreads(threads);
  BenchResult r;
  r.seconds = TimeBest(min_time, [&]() {
    BatchedMatMul(a, false, b, false, &c, /*accumulate=*/false);
  });
  SetComputeThreads(0);

  r.name = "batched_matmul";
  r.shape = std::to_string(batch) + "x" + std::to_string(m) + "x" +
            std::to_string(k) + "x" + std::to_string(n);
  r.threads = threads;
  r.gflops = 2.0 * static_cast<double>(batch) * m * k * n / r.seconds * 1e-9;
  r.checksum = Checksum(c);
  return r;
}

BenchResult BenchConv(bool use_naive, int64_t batch, int64_t seq, int64_t cin,
                      int64_t cout, int64_t ksize, int threads,
                      double min_time, Rng* rng) {
  Tensor x = Tensor::FromVector({batch, seq, cin},
                                RandomVec(batch * seq * cin, rng));
  Tensor w = Tensor::FromVector({cout, ksize, cin},
                                RandomVec(cout * ksize * cin, rng));
  Tensor bias = Tensor::FromVector({cout}, RandomVec(cout, rng));
  Tensor out({batch, seq, cout});

  SetComputeThreads(threads);
  BenchResult r;
  r.seconds = TimeBest(min_time, [&]() {
    if (use_naive) {
      naive::Conv1D(x, w, &bias, /*dilation=*/1, &out);
    } else {
      Conv1D(x, w, &bias, /*dilation=*/1, &out);
    }
  });
  SetComputeThreads(0);

  r.name = use_naive ? "conv1d_naive" : "conv1d";
  r.shape = std::to_string(batch) + "x" + std::to_string(seq) + "x" +
            std::to_string(cin) + "->" + std::to_string(cout) + "(k" +
            std::to_string(ksize) + ")";
  r.threads = threads;
  r.gflops =
      2.0 * static_cast<double>(batch) * seq * cout * ksize * cin /
      r.seconds * 1e-9;
  r.checksum = Checksum(out);
  return r;
}

/// The int8 quantized serving GEMM (weight quantized once up front,
/// activations quantized per call, exactly like the Linear serving path).
/// GFLOP/s counts the fp32-equivalent 2*m*k*n so the number is directly
/// comparable to the fp32 entries at the same shape.
BenchResult BenchInt8Gemm(int64_t m, int64_t k, int64_t n, int threads,
                          double min_time, Rng* rng) {
  const std::vector<float> x = RandomVec(m * k, rng);
  const Tensor w = Tensor::FromVector({k, n}, RandomVec(k * n, rng));
  const quant::QuantizedMatrix qw = quant::QuantizeWeight(w);
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);

  SetComputeThreads(threads);
  BenchResult r;
  r.seconds = TimeBest(min_time, [&]() {
    quant::Int8MatMul(x.data(), m, qw, c.data());
  });
  SetComputeThreads(0);

  r.name = "gemm_serving_int8";
  r.shape = std::to_string(m) + "x" + std::to_string(k) + "x" +
            std::to_string(n);
  r.threads = threads;
  r.gflops = 2.0 * static_cast<double>(m) * k * n / r.seconds * 1e-9;
  r.checksum = Checksum(c);
  return r;
}

BenchResult BenchAxpy(int64_t n, int threads, double min_time, Rng* rng) {
  const std::vector<float> x = RandomVec(n, rng);
  std::vector<float> y = RandomVec(n, rng);

  SetComputeThreads(threads);
  BenchResult r;
  // alpha == 0 keeps y fixed across repetitions (y += 0*x), so the measured
  // work is identical every call.
  r.seconds = TimeBest(min_time, [&]() {
    VecAxpy(0.0f, x.data(), y.data(), n);
  });
  SetComputeThreads(0);

  r.name = "vec_axpy";
  r.shape = std::to_string(n);
  r.threads = threads;
  r.gflops = 2.0 * static_cast<double>(n) / r.seconds * 1e-9;
  r.checksum = Checksum(y);
  return r;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const std::string out_path = flags.GetString("out", "BENCH_kernels.json");
  const int max_threads = static_cast<int>(
      flags.GetInt("threads", ComputeThreads()));
  const double min_time = flags.GetDouble("min_time", smoke ? 0.01 : 0.25);

  Rng rng(2023);
  Reporter rep;

  // --- GEMM: frozen naive baseline, then the blocked kernel at 1/N threads.
  const int64_t headline = smoke ? 64 : 256;
  rep.Add(BenchGemm({"gemm_naive", /*naive=*/true}, headline, headline,
                    headline, 1, min_time, &rng));
  std::vector<int64_t> gemm_sizes = smoke ? std::vector<int64_t>{64}
                                          : std::vector<int64_t>{64, 128, 256};
  for (int64_t s : gemm_sizes) {
    rep.Add(BenchGemm({"gemm_blocked"}, s, s, s, 1, min_time, &rng));
    if (max_threads > 1) {
      rep.Add(BenchGemm({"gemm_blocked"}, s, s, s, max_threads, min_time,
                        &rng));
    }
  }
  rep.Add(BenchGemm({"gemm_trans_a", false, /*trans_a=*/true}, headline,
                    headline, headline, max_threads, min_time, &rng));
  rep.Add(BenchGemm({"gemm_trans_b", false, false, /*trans_b=*/true},
                    headline, headline, headline, max_threads, min_time,
                    &rng));

  // --- Batched matmul (attention-shaped): batch scaling is the parallel axis.
  const int64_t bm = smoke ? 16 : 64;
  rep.Add(BenchBatched(8, bm, 32, bm, 1, min_time, &rng));
  if (max_threads > 1) {
    rep.Add(BenchBatched(8, bm, 32, bm, max_threads, min_time, &rng));
  }

  // --- Conv1D: direct naive loop vs im2col+GEMM.
  const int64_t seq = smoke ? 32 : 128;
  rep.Add(BenchConv(/*use_naive=*/true, 8, seq, 32, 32, 3, 1, min_time,
                    &rng));
  rep.Add(BenchConv(/*use_naive=*/false, 8, seq, 32, 32, 3, max_threads,
                    min_time, &rng));

  // --- Axpy (memory bound; sanity number for the elementwise paths).
  rep.Add(BenchAxpy(smoke ? (1 << 16) : (1 << 22), max_threads, min_time,
                    &rng));

  // --- SIMD dispatch at serving shapes (small-m row panels, the online
  // Predict profile): the same GEMM forced to the scalar tier, at the
  // host's active tier, and through the int8 quantized serving path.
  struct ServingShape {
    int64_t m, k, n;
  };
  const ServingShape serving_shapes[] = {{8, 256, 256}, {64, 256, 256}};
  std::vector<double> simd_speedups, int8_speedups;
  const SimdLevel active_level = ActiveSimdLevel();
  for (const auto& s : serving_shapes) {
    SetSimdLevel(SimdLevel::kScalar);
    BenchResult scalar_r = BenchGemm({"gemm_serving_scalar"}, s.m, s.k, s.n,
                                     1, min_time, &rng);
    scalar_r.isa = "scalar";
    rep.Add(scalar_r);
    SetSimdLevel(active_level);
    BenchResult simd_r = BenchGemm({"gemm_serving_simd"}, s.m, s.k, s.n, 1,
                                   min_time, &rng);
    rep.Add(simd_r);
    BenchResult int8_r = BenchInt8Gemm(s.m, s.k, s.n, 1, min_time, &rng);
    rep.Add(int8_r);
    if (scalar_r.gflops > 0.0) {
      simd_speedups.push_back(simd_r.gflops / scalar_r.gflops);
    }
    if (simd_r.gflops > 0.0) {
      int8_speedups.push_back(int8_r.gflops / simd_r.gflops);
    }
  }

  // --- Parity guard: the numbers above are only meaningful if the optimized
  // kernels still compute a GEMM. Compare against the naive kernel once.
  {
    const int64_t s = 64;
    const std::vector<float> a = RandomVec(s * s, &rng);
    const std::vector<float> b = RandomVec(s * s, &rng);
    std::vector<float> want(static_cast<size_t>(s * s), 0.0f);
    naive::Gemm(a.data(), b.data(), want.data(), s, s, s, false);
    Tensor tc({s, s});
    MatMul(Tensor::FromVector({s, s}, a), Tensor::FromVector({s, s}, b), &tc);
    double max_rel = 0.0;
    for (int64_t i = 0; i < tc.numel(); ++i) {
      const double diff = std::fabs(static_cast<double>(tc[i]) -
                                    want[static_cast<size_t>(i)]);
      const double mag =
          std::max(1.0, std::fabs(static_cast<double>(
                            want[static_cast<size_t>(i)])));
      max_rel = std::max(max_rel, diff / mag);
    }
    ALT_CHECK_LT(max_rel, 1e-4) << "blocked GEMM diverged from reference";
  }

  // --- Derived headline metrics.
  Json derived = Json::Object{};
  const BenchResult* naive_g = rep.Find("gemm_naive", 1);
  const BenchResult* blocked_1t =
      rep.Find("gemm_blocked", 1);
  if (naive_g && blocked_1t && naive_g->gflops > 0.0) {
    derived["gemm_speedup_vs_naive_1t"] =
        blocked_1t->gflops / naive_g->gflops;
  }
  const BenchResult* blocked_nt = rep.Find("gemm_blocked", max_threads);
  if (blocked_1t && blocked_nt && max_threads > 1 &&
      blocked_1t->gflops > 0.0) {
    derived["gemm_thread_scaling"] = blocked_nt->gflops / blocked_1t->gflops;
  }
  const BenchResult* batch_1t = rep.Find("batched_matmul", 1);
  const BenchResult* batch_nt = rep.Find("batched_matmul", max_threads);
  if (batch_1t && batch_nt && max_threads > 1 && batch_1t->gflops > 0.0) {
    derived["batched_thread_scaling"] = batch_nt->gflops / batch_1t->gflops;
  }
  const BenchResult* conv_naive = rep.Find("conv1d_naive", 1);
  const BenchResult* conv_new = rep.Find("conv1d", max_threads);
  if (conv_naive && conv_new && conv_naive->gflops > 0.0) {
    derived["conv1d_speedup_vs_naive"] = conv_new->gflops / conv_naive->gflops;
  }
  // Worst case over the serving shapes: the conservative number for both
  // dispatch-tier claims (SIMD over forced-scalar, int8 over fp32 SIMD).
  if (!simd_speedups.empty()) {
    derived["simd_gemm_speedup_vs_scalar_serving"] =
        *std::min_element(simd_speedups.begin(), simd_speedups.end());
  }
  if (!int8_speedups.empty()) {
    derived["int8_gemm_speedup_vs_fp32_simd"] =
        *std::min_element(int8_speedups.begin(), int8_speedups.end());
  }

  Json::Array results;
  for (const auto& r : rep.results()) {
    Json entry = Json::Object{};
    entry["name"] = r.name;
    entry["shape"] = r.shape;
    entry["isa"] = r.isa;
    entry["threads"] = r.threads;
    entry["gflops"] = r.gflops;
    entry["seconds_per_call"] = r.seconds;
    entry["checksum"] = r.checksum;
    results.push_back(entry);
  }

  Json doc = Json::Object{};
  doc["bench"] = "kernels";
  doc["smoke"] = smoke;
  doc["isa"] = ActiveSimdName();
  doc["compute_threads"] = max_threads;
  doc["min_time_s"] = min_time;
  doc["results"] = results;
  doc["derived"] = derived;
  // Observability snapshot of the run itself (kernel call counts + time
  // histograms recorded by the instrumented kernels; empty when ALT_OBS=off).
  doc["obs"] = obs::MetricsRegistry::Global().ToJson();
  // Tensor-memory accounting of the run (live/peak bytes, alloc counts;
  // zeros when ALT_OBS=off).
  doc["memory"] = obs::MemoryTracker::Global().ToJson();

  std::ofstream out(out_path);
  ALT_CHECK(out.good()) << "cannot open " << out_path;
  out << doc.DumpPretty() << "\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (derived.contains("gemm_speedup_vs_naive_1t")) {
    std::printf("gemm speedup vs naive (1 thread): %.2fx\n",
                derived.at("gemm_speedup_vs_naive_1t").as_number());
  }
  if (derived.contains("simd_gemm_speedup_vs_scalar_serving")) {
    std::printf("simd gemm speedup vs scalar (serving shapes, worst): "
                "%.2fx\n",
                derived.at("simd_gemm_speedup_vs_scalar_serving").as_number());
  }
  if (derived.contains("int8_gemm_speedup_vs_fp32_simd")) {
    std::printf("int8 gemm speedup vs fp32 %s (serving shapes, worst): "
                "%.2fx\n",
                ActiveSimdName(),
                derived.at("int8_gemm_speedup_vs_fp32_simd").as_number());
  }
  return 0;
}

}  // namespace
}  // namespace alt

int main(int argc, char** argv) { return alt::Main(argc, argv); }
