// Reproduces Table IV: AUC of the compared strategies (SinH / MeH / MeL /
// Ours) on Dataset B (advertising, 32 scenarios), LSTM- and BERT-based.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/strategy_table.h"

int main(int argc, char** argv) {
  using namespace alt;
  bench::Flags flags(argc, argv);
  bench::BenchOptions options;
  options.workload = bench::Workload::kDatasetB;
  // Dataset B's head is ~5x smaller than A's; use a matching default scale.
  options.scale = 1.0 / 150.0;
  options.ApplyFlags(flags);

  std::printf("=== Table IV: AUC on Dataset B (32 scenarios) ===\n");
  std::printf("scale=%.5f seq_len=%lld epochs=%lld initial=%lld\n\n",
              options.scale, static_cast<long long>(options.seq_len),
              static_cast<long long>(options.epochs),
              static_cast<long long>(options.initial_count));

  auto scenarios = bench::PrepareWorkload(options);
  auto initial = bench::PickInitialScenarios(
      options, static_cast<int64_t>(scenarios.size()));

  bench::StrategyResults lstm = bench::RunStrategies(
      options, scenarios, initial, models::EncoderKind::kLstm);
  bench::StrategyResults bert = bench::RunStrategies(
      options, scenarios, initial, models::EncoderKind::kBert);

  bench::PrintStrategyTable(lstm, bert);
  std::printf("\n");
  bench::PrintShapeSummary("LSTM-based", lstm);
  bench::PrintShapeSummary("BERT-based", bert);
  std::printf(
      "\nPaper Table IV AVG reference: LSTM SinH=0.784 MeH=0.805 MeL=0.786 "
      "Ours=0.799 | BERT SinH=0.786 MeH=0.808 MeL=0.788 Ours=0.803\n");
  return 0;
}
