// Reproduces Fig. 10 and Table VII: the benefit of behavior sequences. A
// profile-only "Basic" model is compared against LSTM- and BERT-based
// models under the SinH strategy on Dataset A; the figure plots accumulated
// AUC across scenarios, the table reports averages.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/train/trainer.h"
#include "src/util/table_printer.h"

namespace alt {
namespace bench {
namespace {

std::vector<double> RunSinH(const BenchOptions& options,
                            const std::vector<PreparedScenario>& scenarios,
                            const models::ModelConfig& config) {
  std::vector<double> aucs;
  train::TrainOptions train_options;
  train_options.epochs = options.epochs;
  train_options.learning_rate = options.learning_rate;
  for (const PreparedScenario& s : scenarios) {
    Rng rng(options.seed * 307 + static_cast<uint64_t>(s.scenario_id));
    auto model = models::BuildBaseModel(config, &rng);
    ALT_CHECK(model.ok());
    train_options.seed =
        options.seed * 13 + static_cast<uint64_t>(s.scenario_id);
    ALT_CHECK(
        train::TrainModel(model.value().get(), s.train, train_options).ok());
    aucs.push_back(train::EvaluateAuc(model.value().get(), s.test));
  }
  return aucs;
}

}  // namespace
}  // namespace bench
}  // namespace alt

int main(int argc, char** argv) {
  using namespace alt;
  bench::Flags flags(argc, argv);
  bench::BenchOptions options;
  options.workload = bench::Workload::kDatasetA;
  options.ApplyFlags(flags);

  std::printf("=== Fig. 10 + Table VII: value of behavior sequences ===\n\n");
  auto scenarios = bench::PrepareWorkload(options);

  models::ModelConfig basic =
      models::ModelConfig::ProfileOnly(options.MakeDataConfig().profile_dim);
  basic.learning_rate = options.learning_rate;
  auto basic_auc = bench::RunSinH(options, scenarios, basic);
  auto lstm_auc = bench::RunSinH(
      options, scenarios, options.HeavyConfig(models::EncoderKind::kLstm));
  auto bert_auc = bench::RunSinH(
      options, scenarios, options.HeavyConfig(models::EncoderKind::kBert));

  // Fig. 10: accumulated (running average) AUC across scenarios.
  std::printf("Fig. 10 — accumulated AUC after k scenarios:\n");
  TablePrinter curve({"k", "Basic", "LSTM", "BERT"});
  double acc_basic = 0.0;
  double acc_lstm = 0.0;
  double acc_bert = 0.0;
  for (size_t k = 0; k < basic_auc.size(); ++k) {
    acc_basic += basic_auc[k];
    acc_lstm += lstm_auc[k];
    acc_bert += bert_auc[k];
    const double n = static_cast<double>(k + 1);
    curve.AddRow({std::to_string(k + 1), TablePrinter::Num(acc_basic / n),
                  TablePrinter::Num(acc_lstm / n),
                  TablePrinter::Num(acc_bert / n)});
  }
  curve.Print();

  std::printf("\nTable VII — averaged AUC:\n");
  TablePrinter table({"", "Basic", "LSTM", "BERT"});
  table.AddRow({"AVG", TablePrinter::Num(bench::Mean(basic_auc)),
                TablePrinter::Num(bench::Mean(lstm_auc)),
                TablePrinter::Num(bench::Mean(bert_auc))});
  table.Print();
  std::printf(
      "\nPaper Table VII reference: Basic 0.728, LSTM 0.743, BERT 0.745 "
      "(BERT +1.70%% over Basic).\nExpected shape: sequence encoders beat "
      "the profile-only model.\nMeasured: LSTM %+.2f%%, BERT %+.2f%% over "
      "Basic.\n",
      100.0 * (bench::Mean(lstm_auc) / bench::Mean(basic_auc) - 1.0),
      100.0 * (bench::Mean(bert_auc) / bench::Mean(basic_auc) - 1.0));
  return 0;
}
