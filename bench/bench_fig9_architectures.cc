// Reproduces Fig. 9: the architectures searched by the budget-limited NAS
// for a large-sample scenario (Dataset A scenario 4) and a small-sample
// scenario (scenario 15). The paper observes that the large scenario gets a
// more complicated architecture (larger filters, more parameters).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/meta/meta_learner.h"
#include "src/nas/derived_encoder.h"
#include "src/nas/nas_search.h"
#include "src/train/trainer.h"

namespace alt {
namespace bench {
namespace {

int64_t CountParameters(const nas::Architecture& arch) {
  Rng rng(1);
  nas::DerivedNasEncoder encoder(arch, &rng);
  return encoder.NumParameters();
}

double AverageKernel(const nas::Architecture& arch) {
  int64_t total = 0;
  int64_t count = 0;
  for (const nas::LayerSpec& layer : arch.layers) {
    if (layer.op.kernel > 0) {
      total += layer.op.kernel;
      ++count;
    }
  }
  return count == 0 ? 0.0 : static_cast<double>(total) / count;
}

}  // namespace
}  // namespace bench
}  // namespace alt

int main(int argc, char** argv) {
  using namespace alt;
  bench::Flags flags(argc, argv);
  bench::BenchOptions options;
  options.workload = bench::Workload::kDatasetA;
  options.ApplyFlags(flags);

  std::printf("=== Fig. 9: searched architectures (Dataset A) ===\n\n");
  auto scenarios = bench::PrepareWorkload(options);

  // Train a teacher from pooled initial scenarios so the search follows the
  // system pipeline (heavy teacher -> budget-limited NAS + distillation).
  auto initial = bench::PickInitialScenarios(
      options, static_cast<int64_t>(scenarios.size()));
  meta::MetaOptions meta_options;
  meta_options.init_train.epochs = options.epochs;
  meta_options.init_train.learning_rate = options.learning_rate;
  meta_options.seed = options.seed;
  meta::MetaLearner learner(
      options.HeavyConfig(models::EncoderKind::kLstm), meta_options);
  std::vector<data::ScenarioData> initial_train;
  for (int64_t idx : initial) {
    initial_train.push_back(scenarios[static_cast<size_t>(idx)].train);
  }
  ALT_CHECK(learner.Initialize(initial_train).ok());

  Rng rng(options.seed);
  auto light_ref = models::BuildBaseModel(
      options.LightConfig(models::EncoderKind::kLstm), &rng);
  const int64_t budget =
      light_ref.value()->behavior_encoder()->Flops(options.seq_len);

  // Paper Fig. 9: scenario 4 (large, 875k samples) vs 15 (small, 47k).
  nas::Architecture arch_large;
  nas::Architecture arch_small;
  for (const auto& [label, index, out] :
       {std::tuple{"Scenario 4 (large sample size)", size_t{3}, &arch_large},
        std::tuple{"Scenario 15 (small sample size)", size_t{14},
                   &arch_small}}) {
    const bench::PreparedScenario& scenario = scenarios[index];
    auto teacher = learner.AdaptToScenario(scenario.train);
    ALT_CHECK(teacher.ok());
    nas::NasSearchOptions nas_options;
    nas_options.supernet.num_layers = options.nas_layers;
    nas_options.search_epochs = options.nas_search_epochs;
    nas_options.weight_lr = options.learning_rate;
    nas_options.flops_budget = budget;
    nas_options.final_train.epochs = options.epochs;
    nas_options.final_train.learning_rate = options.learning_rate;
    nas_options.seed = options.seed + index;
    nas::NasSearchReport report;
    auto model =
        nas::SearchLightModel(options.LightConfig(models::EncoderKind::kLstm),
                              teacher.value().get(), scenario.train,
                              nas_options, &report);
    ALT_CHECK(model.ok()) << model.status().ToString();
    *out = report.arch;
    std::printf("--- %s (train n=%lld) ---\n%s", label,
                static_cast<long long>(scenario.train.num_samples()),
                report.arch.ToString().c_str());
    std::printf("encoder FLOPs: %lld (budget %lld)  parameters: %lld  "
                "avg kernel: %.2f  test AUC: %.3f\n\n",
                static_cast<long long>(report.arch.Flops(options.seq_len)),
                static_cast<long long>(budget),
                static_cast<long long>(bench::CountParameters(report.arch)),
                bench::AverageKernel(report.arch),
                train::EvaluateAuc(model.value().get(), scenario.test));
    std::printf("JSON: %s\n\n", report.arch.ToJson().Dump().c_str());
  }
  std::printf(
      "Paper's observation: the large-sample architecture is more complex\n"
      "(bigger average filter size, more trainable parameters) than the\n"
      "small-sample one. Measured: params %lld vs %lld, avg kernel %.2f vs "
      "%.2f.\n",
      static_cast<long long>(bench::CountParameters(arch_large)),
      static_cast<long long>(bench::CountParameters(arch_small)),
      bench::AverageKernel(arch_large), bench::AverageKernel(arch_small));
  return 0;
}
