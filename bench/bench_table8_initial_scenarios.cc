// Reproduces Table VIII: averaged AUC of the compared strategies on
// Dataset A (BERT-based) when the number of initial scenarios used to build
// the scenario agnostic heavy model varies over {2, 4, 8, 16}.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/strategy_table.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace alt;
  bench::Flags flags(argc, argv);
  bench::BenchOptions options;
  options.workload = bench::Workload::kDatasetA;
  options.ApplyFlags(flags);

  std::printf(
      "=== Table VIII: AVG AUC vs number of initial scenarios (BERT) ===\n\n");
  auto scenarios = bench::PrepareWorkload(options);

  // SinH does not depend on the initial scenarios; run it once.
  bench::StrategySet sinh_only;
  sinh_only.run_meh = sinh_only.run_mel = sinh_only.run_ours = false;
  bench::StrategyResults sinh_results = bench::RunStrategies(
      options, scenarios, {}, models::EncoderKind::kBert, sinh_only);
  const double sinh_avg = bench::Mean(sinh_results.sinh);

  TablePrinter table({"Initial Numbers", "SinH", "MeH", "MeL", "Ours"});
  for (int64_t count : {2, 4, 8, 16}) {
    bench::BenchOptions run_options = options;
    run_options.initial_count = count;
    auto initial = bench::PickInitialScenarios(
        run_options, static_cast<int64_t>(scenarios.size()));
    bench::StrategySet meta_only;
    meta_only.run_sinh = false;
    bench::StrategyResults results = bench::RunStrategies(
        run_options, scenarios, initial, models::EncoderKind::kBert,
        meta_only);
    table.AddRow({std::to_string(count), TablePrinter::Num(sinh_avg),
                  TablePrinter::Num(bench::Mean(results.meh)),
                  TablePrinter::Num(bench::Mean(results.mel)),
                  TablePrinter::Num(bench::Mean(results.ours))});
    std::printf("initial=%lld done: MeH=%.3f MeL=%.3f Ours=%.3f\n",
                static_cast<long long>(count), bench::Mean(results.meh),
                bench::Mean(results.mel), bench::Mean(results.ours));
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nPaper Table VIII reference: {2: 0.745/0.747/0.741/0.747, 4: 0.745/"
      "0.751/0.744/0.749, 8: 0.745/0.756/0.746/0.754, 16: 0.745/0.769/0.750/"
      "0.763}.\nExpected shape: MeH best everywhere; MeH/Ours improve with "
      "more initial scenarios.\n");
  return 0;
}
