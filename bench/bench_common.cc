#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>

#include "src/meta/meta_learner.h"
#include "src/nas/nas_search.h"
#include "src/train/trainer.h"
#include "src/util/logging.h"

namespace alt {
namespace bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";
    }
  }
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::stod(it->second);
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::stoll(it->second);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "1" || it->second == "true";
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

void BenchOptions::ApplyFlags(const Flags& flags) {
  if (flags.GetBool("full", false)) {
    // Paper-sized sequences; still a reduced sample scale (full 5.4M-sample
    // training is not a laptop workload).
    seq_len = 128;
    scale = 1.0 / 100.0;
    epochs = 5;
    learning_rate = 1e-3f;
  }
  scale = flags.GetDouble("scale", scale);
  seq_len = flags.GetInt("seq_len", seq_len);
  initial_count = flags.GetInt("initial", initial_count);
  epochs = flags.GetInt("epochs", epochs);
  learning_rate =
      static_cast<float>(flags.GetDouble("lr", learning_rate));
  nas_search_epochs = flags.GetInt("nas_epochs", nas_search_epochs);
  nas_layers = flags.GetInt("nas_layers", nas_layers);
  seed = static_cast<uint64_t>(flags.GetInt("seed", static_cast<int64_t>(seed)));
}

data::SyntheticConfig BenchOptions::MakeDataConfig() const {
  return workload == Workload::kDatasetA
             ? data::DatasetAConfig(scale, seq_len, min_scenario_size)
             : data::DatasetBConfig(scale, seq_len, min_scenario_size);
}

models::ModelConfig BenchOptions::HeavyConfig(
    models::EncoderKind kind) const {
  const data::SyntheticConfig dc = MakeDataConfig();
  models::ModelConfig c = models::ModelConfig::Heavy(
      kind, dc.profile_dim, dc.seq_len, dc.vocab_size);
  c.learning_rate = learning_rate;
  return c;
}

models::ModelConfig BenchOptions::LightConfig(
    models::EncoderKind kind) const {
  const data::SyntheticConfig dc = MakeDataConfig();
  models::ModelConfig c = models::ModelConfig::Light(
      kind, dc.profile_dim, dc.seq_len, dc.vocab_size);
  c.learning_rate = learning_rate;
  return c;
}

std::vector<PreparedScenario> PrepareWorkload(const BenchOptions& options) {
  data::SyntheticGenerator generator(options.MakeDataConfig());
  feature::DataPreparationConfig prep;
  prep.test_fraction = 0.2;  // Paper: 20% held out as the test set.
  prep.seed = options.seed;
  std::vector<PreparedScenario> scenarios;
  for (int64_t s = 0; s < options.MakeDataConfig().num_scenarios; ++s) {
    auto prepared =
        feature::PrepareScenarioData(generator.GenerateScenario(s), prep);
    ALT_CHECK(prepared.ok()) << prepared.status().ToString();
    PreparedScenario scenario;
    scenario.scenario_id = s;
    scenario.train = std::move(prepared.value().train);
    scenario.test = std::move(prepared.value().test);
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

std::vector<int64_t> PickInitialScenarios(const BenchOptions& options,
                                          int64_t num_scenarios,
                                          uint64_t repeat) {
  Rng rng(options.seed * 7 + repeat * 1009 + 3);
  auto picks = rng.SampleWithoutReplacement(
      static_cast<size_t>(num_scenarios),
      static_cast<size_t>(
          std::min<int64_t>(options.initial_count, num_scenarios)));
  std::vector<int64_t> out(picks.begin(), picks.end());
  std::sort(out.begin(), out.end());
  return out;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

StrategyResults RunStrategies(const BenchOptions& options,
                              const std::vector<PreparedScenario>& scenarios,
                              const std::vector<int64_t>& initial,
                              models::EncoderKind encoder,
                              const StrategySet& set) {
  StrategyResults results;
  const models::ModelConfig heavy_config = options.HeavyConfig(encoder);
  const models::ModelConfig light_config = options.LightConfig(encoder);

  train::TrainOptions train_options;
  train_options.epochs = options.epochs;
  train_options.batch_size = options.batch_size;
  train_options.learning_rate = options.learning_rate;
  train_options.seed = options.seed;

  // --- SinH: per-scenario heavy model from scratch. -----------------------
  if (set.run_sinh) {
    for (const PreparedScenario& s : scenarios) {
      Rng rng(options.seed * 101 + static_cast<uint64_t>(s.scenario_id));
      auto model = models::BuildBaseModel(heavy_config, &rng);
      ALT_CHECK(model.ok());
      ALT_CHECK(
          train::TrainModel(model.value().get(), s.train, train_options)
              .ok());
      results.sinh.push_back(
          train::EvaluateAuc(model.value().get(), s.test));
    }
  }

  if (!set.run_meh && !set.run_mel && !set.run_ours) return results;

  // --- Shared meta pass: initialize f0 on the initial scenarios, then for
  // each scenario fine-tune the heavy copy (Eq. 1) with feedback (Eq. 2),
  // which is the teacher for both light strategies. ------------------------
  meta::MetaOptions meta_options;
  meta_options.init_train = train_options;
  meta_options.finetune = train_options;
  meta_options.finetune.epochs = std::max<int64_t>(1, options.epochs / 2);
  meta_options.seed = options.seed;
  meta::MetaLearner learner(heavy_config, meta_options);
  std::vector<data::ScenarioData> initial_train;
  for (int64_t idx : initial) {
    initial_train.push_back(scenarios[static_cast<size_t>(idx)].train);
  }
  ALT_CHECK(learner.Initialize(initial_train).ok());

  // NAS budget: the predefined light encoder's FLOPs (Sec. V-A2: "the upper
  // bound of the FLOPs for the searched architectures is set to be the same
  // as the light models").
  int64_t budget = 0;
  {
    Rng rng(options.seed);
    auto light_ref = models::BuildBaseModel(light_config, &rng);
    ALT_CHECK(light_ref.ok());
    budget = light_ref.value()->behavior_encoder()->Flops(options.seq_len);
  }

  double heavy_flops_total = 0.0;
  double light_flops_total = 0.0;
  double ours_flops_total = 0.0;
  int64_t flops_count = 0;

  for (const PreparedScenario& s : scenarios) {
    auto heavy = learner.AdaptToScenario(s.train);
    ALT_CHECK(heavy.ok()) << heavy.status().ToString();
    if (set.run_meh) {
      results.meh.push_back(train::EvaluateAuc(heavy.value().get(), s.test));
    }

    if (set.run_mel) {
      Rng rng(options.seed * 211 + static_cast<uint64_t>(s.scenario_id));
      auto light = models::BuildBaseModel(light_config, &rng);
      ALT_CHECK(light.ok());
      train::TrainOptions distill_options = train_options;
      distill_options.seed =
          options.seed * 31 + static_cast<uint64_t>(s.scenario_id);
      ALT_CHECK(train::TrainWithDistillation(light.value().get(),
                                             heavy.value().get(), s.train,
                                             /*delta=*/1.0f, distill_options)
                    .ok());
      results.mel.push_back(train::EvaluateAuc(light.value().get(), s.test));
      light_flops_total +=
          static_cast<double>(light.value()->FlopsPerSample());
    }

    if (set.run_ours) {
      nas::NasSearchOptions nas_options;
      nas_options.supernet.num_layers = options.nas_layers;
      nas_options.search_epochs = options.nas_search_epochs;
      nas_options.batch_size = options.batch_size;
      nas_options.weight_lr = options.learning_rate;
      nas_options.flops_budget = budget;
      nas_options.final_train = train_options;
      nas_options.seed =
          options.seed * 977 + static_cast<uint64_t>(s.scenario_id);
      nas::NasSearchReport report;
      auto ours = nas::SearchLightModel(light_config, heavy.value().get(),
                                        s.train, nas_options, &report);
      ALT_CHECK(ours.ok()) << ours.status().ToString();
      results.ours.push_back(train::EvaluateAuc(ours.value().get(), s.test));
      results.archs.push_back(report.arch);
      ours_flops_total +=
          static_cast<double>(ours.value()->FlopsPerSample());
    }

    heavy_flops_total += static_cast<double>(heavy.value()->FlopsPerSample());
    ++flops_count;
  }
  if (flops_count > 0) {
    results.heavy_flops = heavy_flops_total / flops_count;
    if (set.run_mel) results.light_flops = light_flops_total / flops_count;
    if (set.run_ours) results.ours_flops = ours_flops_total / flops_count;
  }
  return results;
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace bench
}  // namespace alt
