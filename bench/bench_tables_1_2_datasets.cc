// Reproduces Tables I and II: the per-scenario sample sizes of the two
// long-tail workloads, plus the scaled sizes and label statistics of the
// synthetic analogues this repository trains on.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/table_printer.h"

namespace alt {
namespace bench {
namespace {

void PrintWorkload(const char* title, Workload workload,
                   const std::vector<int64_t>& paper_sizes,
                   const BenchOptions& base) {
  BenchOptions options = base;
  options.workload = workload;
  data::SyntheticConfig config = options.MakeDataConfig();
  data::SyntheticGenerator generator(config);

  std::printf("%s — %lld scenarios, %lld profile attributes, seq len %lld "
              "(paper: 128)\n",
              title, static_cast<long long>(config.num_scenarios),
              static_cast<long long>(config.profile_dim),
              static_cast<long long>(config.seq_len));
  TablePrinter table({"ID", "paper size", "scaled size", "pos rate"});
  for (int64_t s = 0; s < config.num_scenarios; ++s) {
    data::ScenarioData d = generator.GenerateScenario(s);
    table.AddRow({std::to_string(s + 1),
                  std::to_string(paper_sizes[static_cast<size_t>(s)]),
                  std::to_string(d.num_samples()),
                  TablePrinter::Num(d.PositiveRate(), 3)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace alt

int main(int argc, char** argv) {
  using namespace alt;
  bench::Flags flags(argc, argv);
  bench::BenchOptions options;
  options.ApplyFlags(flags);
  std::printf("=== Tables I & II: long-tail scenario sample sizes ===\n\n");
  bench::PrintWorkload("Dataset A (risk control, Table I)",
                       bench::Workload::kDatasetA, data::DatasetASizes(),
                       options);
  bench::PrintWorkload("Dataset B (advertising, Table II)",
                       bench::Workload::kDatasetB, data::DatasetBSizes(),
                       options);
  std::printf(
      "Note: sizes are the paper's counts scaled by %.5f (floor %lld); the\n"
      "synthetic generator replaces the proprietary data (see DESIGN.md).\n",
      options.scale, static_cast<long long>(options.min_scenario_size));
  return 0;
}
