// Scale benchmark of the sharded serving plane (ServingClient over
// ShardCoordinator + WorkerShards).
//
// Drives >= 1M Zipf-distributed predict requests over >= 200 deployed
// scenarios on >= 4 worker shards (replication 2, hot head scenarios at 3),
// through the micro-batching EnqueuePredict path in bursts that preserve
// coalescing. A third of the way in, one shard is killed: the run asserts
// the breaker-driven rebalance fires (serving/rebalance_events >= 1) while
// replicas absorb its traffic. At two thirds, the shard warm re-joins
// (models re-deployed from cached bundles, vnodes staged back onto the
// ring): the run asserts the rejoined shard carries >= 90% of its pre-kill
// steady-state request share over the final phase. ZERO requests may be
// lost anywhere — every future must resolve ok across kill, failover, and
// re-join.
//
// Results go to BENCH_serving.json as a "results" array of
// {name, threads, throughput_rps, p99_ms} entries consumed by
// tools/bench_compare (--metric=throughput_rps); check.sh's serving-scale
// stage runs this in --smoke mode twice and gates head against base, and
// the serving-elastic stage runs the lifecycle test binaries.
//
// Flags:
//   --smoke        CI mode: 20k requests over 24 scenarios (still runs the
//                  kill -> rejoin cycle and enforces every contract).
//   --out=PATH     output JSON path (default BENCH_serving.json).
//   --shards=N     worker shards (default 4).
//   --scenarios=N  deployed scenarios (default 200).
//   --requests=N   total requests (default 1000000).
//   --burst=N      consecutive same-scenario requests (default 16).
//   --trace_sample=R  steady-state request-trace sampling rate (default
//                  0.01). The kill window bursts to 1.0 so the failover
//                  decomposition is guaranteed to be captured, then falls
//                  back to R.
//
// Tracing contract, enforced post-run: the slow-trace ring must retain at
// least one completed (ok) request whose segment decomposition contains a
// `failover` segment and whose segments sum to within 5% of its end-to-end
// latency. A separate A/B probe measures the throughput cost of 1% sampling
// vs tracing disabled (recorded in derived as trace_overhead_frac; asserted
// < 3% in full mode only — the smoke probe is too short to be stable).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/metrics.h"
#include "src/obs/request_trace.h"
#include "src/serving/serving_client.h"
#include "src/util/json.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace alt {
namespace {

std::unique_ptr<models::BaseModel> ScenarioModel(uint64_t seed) {
  Rng rng(seed);
  models::ModelConfig config = models::ModelConfig::Light(
      models::EncoderKind::kLstm, 4, 5, 8);
  config.encoder_layers = 1;
  auto model = models::BuildBaseModel(config, &rng);
  ALT_CHECK(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

/// Zipf(s = 1.07) cumulative distribution over `n` ranks; sampled by binary
/// search so the head scenarios dominate the traffic like production long
/// tails do.
std::vector<double> ZipfCdf(int n) {
  std::vector<double> cdf(static_cast<size_t>(n));
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), 1.07);
    cdf[static_cast<size_t>(i)] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

struct PhaseStats {
  int64_t requests = 0;
  double seconds = 0.0;
  double throughput() const {
    return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

/// One arm of the tracing-overhead probe: a fresh 2-shard client driving
/// `requests` batched predicts at the given sampling rate; returns req/s.
double ProbeArm(int64_t requests, double sample_rate) {
  obs::MetricsRegistry registry;
  serving::ServingClient::Options options;
  options.num_shards = 2;
  options.replication = 2;
  options.batching.max_batch_size = 32;
  options.batching.max_delay_ms = 0.2;
  options.trace.sample_rate = sample_rate;
  serving::ServingClient client(options, &registry);
  constexpr int kProbeScenarios = 8;
  for (int i = 0; i < kProbeScenarios; ++i) {
    ALT_CHECK(client
                  .Deploy("probe_" + std::to_string(i),
                          ScenarioModel(7000 + static_cast<uint64_t>(i)))
                  .ok());
  }
  Rng rng(77);
  std::vector<Tensor> profiles;
  for (int i = 0; i < 16; ++i) profiles.push_back(Tensor::Randn({1, 4}, &rng));
  const std::vector<int64_t> behavior = {0, 1, 2, 3, 4};
  std::vector<std::future<Result<float>>> window;
  const double start = bench::MonotonicSeconds();
  for (int64_t i = 0; i < requests; ++i) {
    window.push_back(client.EnqueuePredict(
        "probe_" + std::to_string(i % kProbeScenarios),
        profiles[static_cast<size_t>(i) % profiles.size()], behavior));
    if (window.size() >= 4096) {
      for (auto& f : window) ALT_CHECK(f.get().ok());
      window.clear();
    }
  }
  for (auto& f : window) ALT_CHECK(f.get().ok());
  const double seconds = bench::MonotonicSeconds() - start;
  return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
}

int Run(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const std::string out_path =
      flags.GetString("out", "BENCH_serving.json");
  const int shards = static_cast<int>(flags.GetInt("shards", 4));
  const int scenarios =
      static_cast<int>(flags.GetInt("scenarios", smoke ? 24 : 200));
  const int64_t requests = flags.GetInt("requests", smoke ? 20000 : 1000000);
  const int burst = static_cast<int>(flags.GetInt("burst", 16));
  const double trace_sample = flags.GetDouble("trace_sample", 0.01);
  ALT_CHECK_GE(shards, 2);  // The run kills one shard and keeps serving.

  obs::MetricsRegistry registry;
  serving::ServingClient::Options options;
  options.num_shards = shards;
  options.replication = 2;
  options.hot_replication = 3;
  options.batching.max_batch_size = 32;
  options.batching.max_delay_ms = 0.2;
  options.trace.sample_rate = trace_sample;
  options.trace.slow_ring_size = 64;
  serving::ServingClient client(options, &registry);

  std::printf("deploying %d scenarios over %d shards (replication 2)...\n",
              scenarios, shards);
  for (int s = 0; s < scenarios; ++s) {
    serving::DeployOptions deploy;
    deploy.hot = s < 4;  // Zipf head: wider replica group.
    // SLO objectives the /slo burn windows measure against during the
    // kill/rejoin cycle.
    deploy.slo.target_latency_ms = 50.0;
    deploy.slo.availability = 0.999;
    const Status status =
        client.Deploy("scenario_" + std::to_string(s),
                      ScenarioModel(1000 + static_cast<uint64_t>(s)), deploy);
    ALT_CHECK(status.ok()) << status.ToString();
  }

  // Request pool: a handful of distinct inputs is enough — the bench
  // measures the serving plane, not the model.
  Rng rng(2023);
  std::vector<Tensor> profiles;
  for (int i = 0; i < 64; ++i) {
    profiles.push_back(Tensor::Randn({1, 4}, &rng));
  }
  const std::vector<int64_t> behavior = {0, 1, 2, 3, 4};
  const std::vector<double> cdf = ZipfCdf(scenarios);

  const std::string victim = "shard-" + std::to_string(shards - 1);
  const int64_t kill_at = requests / 3;
  const int64_t rejoin_at = 2 * requests / 3;
  constexpr int64_t kWindow = 8192;  // Outstanding-futures bound.

  std::printf("driving %lld Zipf requests in bursts of %d "
              "(killing %s at %lld, rejoining at %lld)...\n",
              static_cast<long long>(requests), burst, victim.c_str(),
              static_cast<long long>(kill_at),
              static_cast<long long>(rejoin_at));
  std::vector<std::future<Result<float>>> window;
  window.reserve(static_cast<size_t>(kWindow));
  int64_t sent = 0, completed = 0, lost = 0, captive_sent = 0;
  bool killed = false, rejoined = false;
  PhaseStats pre, degraded, recovered, total;
  double phase_start = bench::MonotonicSeconds();
  const double run_start = phase_start;
  // The victim's request share before the kill is the steady-state baseline
  // the rejoined shard must reclaim.
  int64_t victim_served_pre = 0, victim_served_at_rejoin = 0;

  auto drain = [&]() {
    for (auto& future : window) {
      if (future.get().ok()) {
        completed++;
      } else {
        lost++;
      }
    }
    window.clear();
  };

  while (sent < requests) {
    if (!killed && sent >= kill_at) {
      // Phase boundary: drain so pre-kill numbers are clean, then pull the
      // shard out from under the live traffic.
      drain();
      const double now = bench::MonotonicSeconds();
      pre.requests = sent;
      pre.seconds = now - run_start;
      victim_served_pre =
          client.coordinator()->shard(victim)->RequestsServed();
      // Burst sampling around the incident: capture every request while the
      // failover storm is live, fall back to the steady rate once the
      // window has turned over twice.
      client.tracer()->set_sample_rate(1.0);
      // Captive failover cohort: park the victim's dispatcher, queue one
      // micro-batch against a scenario it owns, and kill it mid-wait. The
      // cohort's requests block on the dead queue until the kill releases
      // them with Unavailable and the coordinator fails them over — a
      // guaranteed, genuinely slow trace whose decomposition carries the
      // failover segment (the /trace/slow contract asserted below).
      std::string captive_scenario;
      for (int c = 0; c < scenarios; ++c) {
        const std::string name = "scenario_" + std::to_string(c);
        const std::vector<std::string> replicas =
            client.coordinator()->ReplicasOf(name);
        if (!replicas.empty() && replicas.front() == victim) {
          captive_scenario = name;
          break;
        }
      }
      ALT_CHECK(!captive_scenario.empty())
          << "no scenario owned by " << victim;
      client.coordinator()->shard(victim)->PauseDispatchForTesting(true);
      std::vector<std::future<Result<float>>> captive;
      for (int c = 0; c < 32; ++c) {
        captive.push_back(client.EnqueuePredict(
            captive_scenario, profiles[static_cast<size_t>(c)], behavior));
      }
      // Hold long enough that the captive traces outrank ordinary deep-queue
      // waits in the slow ring even on a loaded machine.
      std::this_thread::sleep_for(std::chrono::milliseconds(180));
      ALT_CHECK(client.KillShard(victim).ok());
      client.coordinator()->shard(victim)->PauseDispatchForTesting(false);
      for (auto& future : captive) {
        // Cohort requests fail over to live replicas — none may be lost.
        if (future.get().ok()) { completed++; } else { lost++; }
      }
      captive_sent += 32;
      killed = true;
      phase_start = bench::MonotonicSeconds();
    }
    if (killed && sent >= kill_at + 2 * kWindow &&
        client.tracer()->sample_rate() == 1.0) {
      client.tracer()->set_sample_rate(trace_sample);
    }
    if (!rejoined && sent >= rejoin_at) {
      // Warm re-join under live traffic: cached bundles re-deploy first,
      // then the ring re-admits the shard's vnodes in staged batches.
      drain();
      const double now = bench::MonotonicSeconds();
      degraded.requests = sent - pre.requests;
      degraded.seconds = now - phase_start;
      const Status status = client.RejoinShard(victim);
      ALT_CHECK(status.ok()) << status.ToString();
      victim_served_at_rejoin =
          client.coordinator()->shard(victim)->RequestsServed();
      rejoined = true;
      phase_start = now;
    }
    const double u = rng.Uniform(0.0, 1.0);
    const int scenario_rank = static_cast<int>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const std::string scenario =
        "scenario_" + std::to_string(std::min(scenario_rank, scenarios - 1));
    for (int b = 0; b < burst && sent < requests; ++b, ++sent) {
      window.push_back(client.EnqueuePredict(
          scenario, profiles[static_cast<size_t>(sent) % profiles.size()],
          behavior));
      if (static_cast<int64_t>(window.size()) >= kWindow) drain();
    }
  }
  drain();
  client.DrainBatchQueues();
  const double run_end = bench::MonotonicSeconds();
  recovered.requests = sent - pre.requests - degraded.requests;
  recovered.seconds = run_end - phase_start;
  total.requests = sent;
  total.seconds = run_end - run_start;

  // Steady-state share pre-kill vs share over the post-rejoin drain window.
  const int64_t victim_served_recovered =
      client.coordinator()->shard(victim)->RequestsServed() -
      victim_served_at_rejoin;
  const double victim_share_pre =
      pre.requests > 0 ? static_cast<double>(victim_served_pre) /
                             static_cast<double>(pre.requests)
                       : 0.0;
  const double victim_share_recovered =
      recovered.requests > 0
          ? static_cast<double>(victim_served_recovered) /
                static_cast<double>(recovered.requests)
          : 0.0;

  const obs::HistogramSummary latency = registry.histogram_summary(
      "serving/batch_predictor/request_latency_ms");
  const int64_t rebalances =
      registry.counter_value("serving/rebalance_events");
  const int64_t failovers =
      registry.counter_value("serving/coordinator/failovers");
  const int64_t rejoins =
      registry.counter_value("serving/coordinator/rejoins");
  const serving::ServingClient::Stats stats = client.GetStats();

  // Slow-trace contract: the kill window must have produced at least one
  // retained ok trace whose decomposition shows the failover, and whose
  // segments account for its end-to-end wall time (within 5%).
  const std::vector<obs::RequestTracer::CompletedTrace> slow =
      client.tracer()->SlowTraces();
  int64_t failover_traces = 0;
  double best_failover_gap = 1.0;  // Relative |sum - total| / total.
  for (const auto& trace : slow) {
    if (!trace.ok || trace.SegmentMs(obs::segment::kFailover) <= 0.0) continue;
    ++failover_traces;
    if (trace.total_ms > 0.0) {
      best_failover_gap = std::min(
          best_failover_gap,
          std::abs(trace.SegmentSumMs() - trace.total_ms) / trace.total_ms);
    }
  }

  // Tracing-overhead A/B probe on an isolated small client: sampling off vs
  // the production 1% rate.
  const int64_t probe_requests = smoke ? 8000 : 120000;
  std::printf("probing tracing overhead (%lld requests per arm)...\n",
              static_cast<long long>(probe_requests));
  const double rps_untraced = ProbeArm(probe_requests, 0.0);
  const double rps_traced = ProbeArm(probe_requests, 0.01);
  const double trace_overhead =
      rps_untraced > 0.0 ? 1.0 - rps_traced / rps_untraced : 0.0;

  std::printf("total:     %lld requests in %.2fs -> %.0f req/s\n",
              static_cast<long long>(total.requests), total.seconds,
              total.throughput());
  std::printf("pre-kill:  %.0f req/s, degraded: %.0f req/s, "
              "recovered: %.0f req/s\n",
              pre.throughput(), degraded.throughput(),
              recovered.throughput());
  std::printf("latency:   p50 %.3f ms, p99 %.3f ms over %lld requests\n",
              latency.p50, latency.p99,
              static_cast<long long>(latency.count));
  std::printf("failover:  rebalance_events=%lld failovers=%lld "
              "live_shards=%d/%d imbalance=%.3f lost=%lld\n",
              static_cast<long long>(rebalances),
              static_cast<long long>(failovers), stats.live_shards,
              stats.num_shards, stats.routing_imbalance,
              static_cast<long long>(lost));
  std::printf("rejoin:    rejoins=%lld victim share pre-kill %.3f -> "
              "post-rejoin %.3f\n",
              static_cast<long long>(rejoins), victim_share_pre,
              victim_share_recovered);
  std::printf("tracing:   traced=%lld slow_ring=%zu failover_traces=%lld "
              "best_gap=%.3f slowest=%.3f ms\n",
              static_cast<long long>(stats.traced_requests), slow.size(),
              static_cast<long long>(failover_traces), best_failover_gap,
              stats.slowest_request_ms);
  std::printf("overhead:  untraced %.0f req/s vs 1%%-sampled %.0f req/s "
              "-> %.2f%%\n",
              rps_untraced, rps_traced, 100.0 * trace_overhead);

  Json::Array results;
  auto add = [&](const std::string& name, const PhaseStats& phase) {
    Json entry = Json::Object{};
    entry["name"] = name;
    entry["threads"] = shards;
    entry["requests"] = phase.requests;
    entry["throughput_rps"] = phase.throughput();
    entry["p99_ms"] = latency.p99;  // Cumulative over the whole run.
    entry["p50_ms"] = latency.p50;
    results.push_back(entry);
  };
  add("serving_scale_e2e", total);
  add("serving_scale_prekill", pre);
  add("serving_scale_postkill", degraded);
  add("serving_scale_postrejoin", recovered);

  Json doc = Json::Object{};
  doc["bench"] = "serving_scale";
  doc["smoke"] = smoke;
  doc["shards"] = shards;
  doc["scenarios"] = scenarios;
  doc["results"] = results;
  Json derived = Json::Object{};
  derived["lost_requests"] = lost;
  derived["completed_requests"] = completed;
  derived["rebalance_events"] = rebalances;
  derived["failovers"] = failovers;
  derived["rejoins"] = rejoins;
  derived["victim_share_prekill"] = victim_share_pre;
  derived["victim_share_postrejoin"] = victim_share_recovered;
  derived["routing_imbalance"] = stats.routing_imbalance;
  derived["live_shards"] = stats.live_shards;
  derived["traced_requests"] = stats.traced_requests;
  derived["slow_traces"] = static_cast<int64_t>(slow.size());
  derived["failover_traces"] = failover_traces;
  derived["failover_trace_gap"] = best_failover_gap;
  derived["slowest_request_ms"] = stats.slowest_request_ms;
  derived["trace_overhead_frac"] = trace_overhead;
  derived["scenarios_burning_at_end"] = stats.scenarios_burning;
  doc["derived"] = derived;
  doc["slo"] = client.slo()->ToJson();
  doc["obs"] = registry.ToJson();

  std::ofstream out(out_path);
  ALT_CHECK(out.good()) << "cannot open " << out_path;
  out << doc.DumpPretty() << "\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  // The scale contract, enforced: the kill must have triggered the
  // rebalance, no request may be lost anywhere in the kill -> rejoin
  // cycle, and the rejoined shard must reclaim its steady-state share.
  if (lost != 0) {
    std::printf("FAIL: %lld requests lost across the kill/rejoin cycle\n",
                static_cast<long long>(lost));
    return 1;
  }
  if (rebalances < 1) {
    std::printf("FAIL: shard kill did not trigger a rebalance event\n");
    return 1;
  }
  if (completed != requests + captive_sent) {
    std::printf("FAIL: completed %lld of %lld requests\n",
                static_cast<long long>(completed),
                static_cast<long long>(requests + captive_sent));
    return 1;
  }
  if (rejoins < 1) {
    std::printf("FAIL: warm re-join did not register\n");
    return 1;
  }
  if (stats.live_shards != shards) {
    std::printf("FAIL: %d of %d shards live after the re-join\n",
                stats.live_shards, shards);
    return 1;
  }
  if (victim_share_recovered < 0.9 * victim_share_pre) {
    std::printf("FAIL: rejoined shard serves %.3f of traffic vs %.3f "
                "steady-state (< 90%%)\n",
                victim_share_recovered, victim_share_pre);
    return 1;
  }
  if (failover_traces < 1) {
    std::printf("FAIL: no retained slow trace carries a failover segment\n");
    return 1;
  }
  if (best_failover_gap > 0.05) {
    std::printf("FAIL: best failover-trace segment sum is %.1f%% off its "
                "end-to-end latency (want <= 5%%)\n",
                100.0 * best_failover_gap);
    return 1;
  }
  if (!smoke && trace_overhead > 0.03) {
    std::printf("FAIL: 1%% trace sampling costs %.2f%% throughput "
                "(want < 3%%)\n",
                100.0 * trace_overhead);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace alt

int main(int argc, char** argv) { return alt::Run(argc, argv); }
