// Reproduces Table III: AUC of the compared strategies (SinH / MeH / MeL /
// Ours) on Dataset A, for the LSTM-based and BERT-based architectures.
//
// Absolute numbers differ from the paper (synthetic data, scaled sizes);
// the qualitative shape must match: MeH wins or ties, Ours is competitive
// with MeH at much lower FLOPs, and Ours beats the predefined light MeL.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/strategy_table.h"

int main(int argc, char** argv) {
  using namespace alt;
  bench::Flags flags(argc, argv);
  bench::BenchOptions options;
  options.workload = bench::Workload::kDatasetA;
  options.ApplyFlags(flags);

  std::printf("=== Table III: AUC on Dataset A (18 scenarios) ===\n");
  std::printf("scale=%.5f seq_len=%lld epochs=%lld initial=%lld\n\n",
              options.scale, static_cast<long long>(options.seq_len),
              static_cast<long long>(options.epochs),
              static_cast<long long>(options.initial_count));

  auto scenarios = bench::PrepareWorkload(options);
  auto initial = bench::PickInitialScenarios(
      options, static_cast<int64_t>(scenarios.size()));

  bench::StrategyResults lstm = bench::RunStrategies(
      options, scenarios, initial, models::EncoderKind::kLstm);
  bench::StrategyResults bert = bench::RunStrategies(
      options, scenarios, initial, models::EncoderKind::kBert);

  bench::PrintStrategyTable(lstm, bert);
  std::printf("\n");
  bench::PrintShapeSummary("LSTM-based", lstm);
  bench::PrintShapeSummary("BERT-based", bert);
  std::printf(
      "\nPaper Table III AVG reference: LSTM SinH=0.743 MeH=0.751 MeL=0.741 "
      "Ours=0.750 | BERT SinH=0.745 MeH=0.756 MeL=0.746 Ours=0.754\n");
  return 0;
}
