#ifndef ALT_BENCH_STRATEGY_TABLE_H_
#define ALT_BENCH_STRATEGY_TABLE_H_

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/util/table_printer.h"

namespace alt {
namespace bench {

/// Renders a Table III/IV-style AUC comparison for both encoder families.
inline void PrintStrategyTable(const StrategyResults& lstm,
                               const StrategyResults& bert) {
  TablePrinter table({"ID", "SinH(L)", "MeH(L)", "MeL(L)", "Ours(L)",
                      "SinH(B)", "MeH(B)", "MeL(B)", "Ours(B)"});
  const size_t n = lstm.sinh.size();
  for (size_t i = 0; i < n; ++i) {
    table.AddRow({std::to_string(i + 1), TablePrinter::Num(lstm.sinh[i]),
                  TablePrinter::Num(lstm.meh[i]),
                  TablePrinter::Num(lstm.mel[i]),
                  TablePrinter::Num(lstm.ours[i]),
                  TablePrinter::Num(bert.sinh[i]),
                  TablePrinter::Num(bert.meh[i]),
                  TablePrinter::Num(bert.mel[i]),
                  TablePrinter::Num(bert.ours[i])});
  }
  table.AddRow({"AVG", TablePrinter::Num(Mean(lstm.sinh)),
                TablePrinter::Num(Mean(lstm.meh)),
                TablePrinter::Num(Mean(lstm.mel)),
                TablePrinter::Num(Mean(lstm.ours)),
                TablePrinter::Num(Mean(bert.sinh)),
                TablePrinter::Num(Mean(bert.meh)),
                TablePrinter::Num(Mean(bert.mel)),
                TablePrinter::Num(Mean(bert.ours))});
  table.Print();
}

/// Checks and narrates the expected qualitative shape: MeH >= SinH (transfer
/// helps), Ours ~ MeH and Ours > MeL (NAS light competitive with heavy,
/// better than predefined light).
inline void PrintShapeSummary(const char* name, const StrategyResults& r) {
  const double sinh = Mean(r.sinh);
  const double meh = Mean(r.meh);
  const double mel = Mean(r.mel);
  const double ours = Mean(r.ours);
  std::printf(
      "[%s] AVG  SinH=%.3f  MeH=%.3f  MeL=%.3f  Ours=%.3f\n"
      "  shape: MeH-SinH=%+.3f (paper: positive)  Ours-MeL=%+.3f (paper: "
      "positive)  MeH-Ours=%+.3f (paper: small positive)\n",
      name, sinh, meh, mel, ours, meh - sinh, ours - mel, meh - ours);
}

}  // namespace bench
}  // namespace alt

#endif  // ALT_BENCH_STRATEGY_TABLE_H_
