// Reproduces Table VI: quality of the *initial* scenario agnostic model
// when built from {2, 4, 8, 16} initial scenarios, comparing the predefined
// LSTM and BERT heavy architectures against the NAS-constructed candidate.
// Averaged over 3 random initial-scenario draws, evaluated on a leave-out
// validation split of the pooled initial data (Sec. V-B5).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/nas/nas_search.h"
#include "src/train/trainer.h"
#include "src/util/table_printer.h"

namespace alt {
namespace bench {
namespace {

struct InitResult {
  double lstm = 0.0;
  double bert = 0.0;
  double nas = 0.0;
};

InitResult RunOnce(const BenchOptions& options,
                   const std::vector<PreparedScenario>& scenarios,
                   int64_t initial_count, uint64_t repeat) {
  BenchOptions opts = options;
  opts.initial_count = initial_count;
  auto initial = PickInitialScenarios(
      opts, static_cast<int64_t>(scenarios.size()), repeat);
  std::vector<data::ScenarioData> parts;
  for (int64_t idx : initial) {
    parts.push_back(scenarios[static_cast<size_t>(idx)].train);
  }
  data::ScenarioData pooled = data::ConcatScenarios(parts);
  Rng split_rng(options.seed * 11 + repeat);
  auto [fit, val] = data::SplitTrainTest(pooled, 0.25, &split_rng);

  train::TrainOptions train_options;
  train_options.epochs = options.epochs;
  train_options.learning_rate = options.learning_rate;
  train_options.seed = options.seed + repeat;

  InitResult result;
  for (auto [kind, out] :
       {std::pair{models::EncoderKind::kLstm, &result.lstm},
        std::pair{models::EncoderKind::kBert, &result.bert}}) {
    Rng rng(options.seed * 3 + repeat);
    auto model = models::BuildBaseModel(options.HeavyConfig(kind), &rng);
    ALT_CHECK(model.ok());
    ALT_CHECK(train::TrainModel(model.value().get(), fit, train_options).ok());
    *out = train::EvaluateAuc(model.value().get(), val);
  }

  // NAS candidate: unconstrained search on the pooled data (the init stage
  // has no inference budget — the agnostic model may be heavy).
  nas::NasSearchOptions nas_options;
  nas_options.supernet.num_layers = options.nas_layers;
  nas_options.search_epochs = options.nas_search_epochs;
  nas_options.weight_lr = options.learning_rate;
  nas_options.flops_budget = 0;
  nas_options.distill_delta = 0.0f;
  nas_options.final_train = train_options;
  nas_options.seed = options.seed * 17 + repeat;
  models::ModelConfig nas_base =
      options.HeavyConfig(models::EncoderKind::kLstm);
  auto nas_model =
      nas::SearchLightModel(nas_base, nullptr, fit, nas_options, nullptr);
  ALT_CHECK(nas_model.ok()) << nas_model.status().ToString();
  result.nas = train::EvaluateAuc(nas_model.value().get(), val);
  return result;
}

}  // namespace
}  // namespace bench
}  // namespace alt

int main(int argc, char** argv) {
  using namespace alt;
  bench::Flags flags(argc, argv);
  bench::BenchOptions options;
  options.workload = bench::Workload::kDatasetA;
  options.ApplyFlags(flags);
  const int64_t repeats = flags.GetInt("repeats", 3);

  std::printf("=== Table VI: initial-model AUC, predefined vs NAS ===\n");
  std::printf("Dataset A, %lld repeats per cell\n\n",
              static_cast<long long>(repeats));
  auto scenarios = bench::PrepareWorkload(options);

  TablePrinter table({"Initial Numbers", "LSTM", "BERT", "NAS"});
  for (int64_t count : {2, 4, 8, 16}) {
    double lstm = 0.0;
    double bert = 0.0;
    double nas_auc = 0.0;
    for (int64_t r = 0; r < repeats; ++r) {
      bench::InitResult result = bench::RunOnce(
          options, scenarios, count, static_cast<uint64_t>(r));
      lstm += result.lstm;
      bert += result.bert;
      nas_auc += result.nas;
    }
    table.AddRow({std::to_string(count),
                  TablePrinter::Num(lstm / repeats),
                  TablePrinter::Num(bert / repeats),
                  TablePrinter::Num(nas_auc / repeats)});
  }
  table.Print();
  std::printf(
      "\nPaper Table VI reference: {2: 0.731/0.733/0.751, 4: 0.749/0.748/"
      "0.757, 8: 0.762/0.761/0.767, 16: 0.771/0.778/0.783}.\n"
      "Expected shape: NAS >= predefined at every count; quality grows with "
      "more initial scenarios.\n");
  return 0;
}
