// Supports Sec. III-D's motivation for the budget-limited NAS: industrial
// models carry multiple behavior sequences, so the behavior encoding module
// is copied per channel and dominates inference cost. This bench measures
// FLOPs and latency as the channel count grows, for the heavy and light
// presets — the NAS savings multiply by the channel count.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/models/multi_sequence_model.h"
#include "src/util/table_printer.h"

namespace alt {
namespace bench {
namespace {

double MedianMs(models::MultiSequenceModel* model,
                const models::MultiSequenceBatch& batch, int reps) {
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    const double start = MonotonicSeconds();
    model->PredictProbs(batch);
    times.push_back((MonotonicSeconds() - start) * 1e3);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace
}  // namespace bench
}  // namespace alt

int main(int argc, char** argv) {
  using namespace alt;
  bench::Flags flags(argc, argv);
  bench::BenchOptions options;
  options.workload = bench::Workload::kDatasetA;
  options.ApplyFlags(flags);
  const int reps = static_cast<int>(flags.GetInt("reps", 51));

  std::printf("=== Multi-sequence scaling (Sec. III-D motivation) ===\n");
  std::printf("seq_len=%lld, single-sample inference, median of %d reps\n\n",
              static_cast<long long>(options.seq_len), reps);

  data::SyntheticConfig dc = options.MakeDataConfig();
  data::SyntheticGenerator generator(dc);
  data::ScenarioData sample_data = generator.GenerateScenario(0);
  std::vector<size_t> one_row = {0};

  TablePrinter table({"channels", "heavy FLOPs", "heavy ms", "light FLOPs",
                      "light ms", "encoder share %"});
  for (int64_t channels : {1, 2, 4, 8}) {
    Rng rng(options.seed + static_cast<uint64_t>(channels));
    auto heavy = models::BuildMultiSequenceModel(
        options.HeavyConfig(models::EncoderKind::kLstm), channels, &rng);
    auto light = models::BuildMultiSequenceModel(
        options.LightConfig(models::EncoderKind::kLstm), channels, &rng);
    ALT_CHECK(heavy.ok() && light.ok());
    models::MultiSequenceBatch batch = models::MakeMultiSequenceBatch(
        sample_data, one_row, channels, options.seed);

    // Encoder share: heavy FLOPs minus the channel-independent parts,
    // estimated by extrapolating from the 1-channel model.
    Rng ref_rng(options.seed);
    auto one_channel = models::BuildMultiSequenceModel(
        options.HeavyConfig(models::EncoderKind::kLstm), 1, &ref_rng);
    const double per_channel =
        channels <= 1
            ? 0.0
            : static_cast<double>(heavy.value()->FlopsPerSample() -
                                  one_channel.value()->FlopsPerSample()) /
                  static_cast<double>(channels - 1);
    const double share =
        100.0 * per_channel * static_cast<double>(channels) /
        static_cast<double>(heavy.value()->FlopsPerSample());

    table.AddRow(
        {std::to_string(channels),
         std::to_string(heavy.value()->FlopsPerSample()),
         TablePrinter::Num(bench::MedianMs(heavy.value().get(), batch, reps),
                           3),
         std::to_string(light.value()->FlopsPerSample()),
         TablePrinter::Num(bench::MedianMs(light.value().get(), batch, reps),
                           3),
         channels <= 1 ? "-" : TablePrinter::Num(share, 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: FLOPs and latency grow ~linearly with channels; the\n"
      "behavior encoders dominate total cost at realistic channel counts,\n"
      "which is why the paper budgets the searched encoder's FLOPs.\n");
  return 0;
}
