// Micro-benchmarks (google-benchmark) of the compute substrate: raw
// kernels, layer forwards, and end-to-end single-sample inference for the
// heavy / light model presets. These support Table V's latency numbers with
// kernel-level context.

#include <benchmark/benchmark.h>

#include "src/data/synthetic.h"
#include "src/models/base_model.h"
#include "src/nn/attention.h"
#include "src/nn/lstm.h"
#include "src/tensor/kernels.h"

namespace alt {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  Tensor c({n, n});
  for (auto _ : state) {
    MatMul(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

void BM_Conv1D(benchmark::State& state) {
  const int64_t kernel = state.range(0);
  Rng rng(2);
  Tensor input = Tensor::Randn({1, 128, 15}, &rng);
  Tensor weight = Tensor::Randn({15, kernel, 15}, &rng);
  Tensor bias = Tensor::Randn({15}, &rng);
  Tensor out({1, 128, 15});
  for (auto _ : state) {
    Conv1D(input, weight, &bias, /*dilation=*/1, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Conv1D)->Arg(1)->Arg(3)->Arg(7);

void BM_LstmForward(benchmark::State& state) {
  const int64_t seq_len = state.range(0);
  Rng rng(3);
  nn::Lstm lstm(15, 15, 1, &rng);
  lstm.SetTraining(false);
  Tensor x = Tensor::Randn({1, seq_len, 15}, &rng);
  for (auto _ : state) {
    ag::Variable out = lstm.Forward(ag::Variable::Constant(x));
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_LstmForward)->Arg(16)->Arg(64)->Arg(128);

void BM_AttentionForward(benchmark::State& state) {
  const int64_t seq_len = state.range(0);
  Rng rng(4);
  nn::MultiHeadSelfAttention mha(15, 3, &rng);
  mha.SetTraining(false);
  Tensor x = Tensor::Randn({1, seq_len, 15}, &rng);
  for (auto _ : state) {
    ag::Variable out = mha.Forward(ag::Variable::Constant(x));
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(64)->Arg(128);

data::Batch OneSample(int64_t profile_dim, int64_t seq_len, int64_t vocab) {
  Rng rng(5);
  data::Batch batch;
  batch.batch_size = 1;
  batch.seq_len = seq_len;
  batch.profiles = Tensor::Randn({1, profile_dim}, &rng);
  batch.behaviors.resize(static_cast<size_t>(seq_len));
  for (auto& id : batch.behaviors) id = rng.UniformInt(0, vocab - 1);
  batch.labels = Tensor({1, 1});
  return batch;
}

void ModelInference(benchmark::State& state, models::EncoderKind kind,
                    bool heavy) {
  const int64_t seq_len = state.range(0);
  Rng rng(6);
  models::ModelConfig config =
      heavy ? models::ModelConfig::Heavy(kind, 69, seq_len, 40)
            : models::ModelConfig::Light(kind, 69, seq_len, 40);
  auto model = models::BuildBaseModel(config, &rng);
  ALT_CHECK(model.ok());
  data::Batch batch = OneSample(69, seq_len, 40);
  for (auto _ : state) {
    auto probs = model.value()->PredictProbs(batch);
    benchmark::DoNotOptimize(probs.data());
  }
  state.counters["flops"] =
      static_cast<double>(model.value()->FlopsPerSample());
}

void BM_HeavyLstmInference(benchmark::State& state) {
  ModelInference(state, models::EncoderKind::kLstm, /*heavy=*/true);
}
void BM_LightLstmInference(benchmark::State& state) {
  ModelInference(state, models::EncoderKind::kLstm, /*heavy=*/false);
}
void BM_HeavyBertInference(benchmark::State& state) {
  ModelInference(state, models::EncoderKind::kBert, /*heavy=*/true);
}
void BM_LightBertInference(benchmark::State& state) {
  ModelInference(state, models::EncoderKind::kBert, /*heavy=*/false);
}
BENCHMARK(BM_HeavyLstmInference)->Arg(16)->Arg(128);
BENCHMARK(BM_LightLstmInference)->Arg(16)->Arg(128);
BENCHMARK(BM_HeavyBertInference)->Arg(16)->Arg(128);
BENCHMARK(BM_LightBertInference)->Arg(16)->Arg(128);

}  // namespace
}  // namespace alt

BENCHMARK_MAIN();
