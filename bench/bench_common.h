#ifndef ALT_BENCH_BENCH_COMMON_H_
#define ALT_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/data/synthetic.h"
#include "src/feature/data_preparation.h"
#include "src/models/model_config.h"
#include "src/nas/arch.h"

namespace alt {
namespace bench {

/// Minimal --flag=value / --flag value command-line parser shared by the
/// benchmark binaries.
class Flags {
 public:
  Flags(int argc, char** argv);

  double GetDouble(const std::string& name, double default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Which of the paper's synthetic dataset analogues to use.
enum class Workload { kDatasetA, kDatasetB };

/// Shared setup of the evaluation-section experiments.
struct BenchOptions {
  Workload workload = Workload::kDatasetA;
  /// Sample-size scale relative to the paper's Tables I/II.
  double scale = 1.0 / 600.0;
  int64_t min_scenario_size = 200;
  int64_t seq_len = 16;
  /// Number of randomly selected initial scenarios (paper: 8).
  int64_t initial_count = 8;
  /// Training epochs (paper: 5).
  int64_t epochs = 4;
  int64_t batch_size = 64;
  /// Learning rate. The paper uses 1e-3 over millions of samples; our
  /// workloads are ~500x smaller, so the default is scaled up accordingly.
  float learning_rate = 0.01f;
  int64_t nas_search_epochs = 4;
  int64_t nas_layers = 3;
  uint64_t seed = 2023;

  /// Reads --scale, --seq_len, --epochs, --initial, --seed, --full from
  /// flags. --full=1 switches to paper-sized sequences (128) and a larger
  /// sample scale.
  void ApplyFlags(const Flags& flags);

  data::SyntheticConfig MakeDataConfig() const;
  models::ModelConfig HeavyConfig(models::EncoderKind kind) const;
  models::ModelConfig LightConfig(models::EncoderKind kind) const;
};

/// One prepared scenario: processed train/test parts.
struct PreparedScenario {
  int64_t scenario_id = 0;
  data::ScenarioData train;
  data::ScenarioData test;
};

/// Generates and prepares every scenario of the workload.
std::vector<PreparedScenario> PrepareWorkload(const BenchOptions& options);

/// Random distinct initial-scenario indices (paper: 8 random of N).
std::vector<int64_t> PickInitialScenarios(const BenchOptions& options,
                                          int64_t num_scenarios,
                                          uint64_t repeat = 0);

/// Per-scenario AUC of the four compared strategies (Sec. V-A2), plus
/// efficiency info for Table V and the searched architectures for Fig. 9.
struct StrategyResults {
  std::vector<double> sinh;  // Single-Heavy
  std::vector<double> meh;   // Meta-Heavy
  std::vector<double> mel;   // Meta-Light (predefined light + distill)
  std::vector<double> ours;  // budget-limited NAS light + distill
  /// FLOPs per sample (model-level) averaged over scenarios.
  double heavy_flops = 0.0;
  double light_flops = 0.0;
  double ours_flops = 0.0;
  /// Architectures searched per scenario (index-aligned).
  std::vector<nas::Architecture> archs;
};

/// Which strategies to run (all four by default).
struct StrategySet {
  bool run_sinh = true;
  bool run_meh = true;
  bool run_mel = true;
  bool run_ours = true;
};

/// Runs the full comparison of Sec. V-B1 for one encoder family.
StrategyResults RunStrategies(const BenchOptions& options,
                              const std::vector<PreparedScenario>& scenarios,
                              const std::vector<int64_t>& initial,
                              models::EncoderKind encoder,
                              const StrategySet& set = StrategySet());

/// Mean of a vector (0 when empty).
double Mean(const std::vector<double>& values);

/// Monotonic wall-clock seconds since an arbitrary epoch. Benchmark timing
/// only — production telemetry must go through src/obs (ScopedTimerMs /
/// TraceSpan), which has one off switch (ALT_OBS).
double MonotonicSeconds();

}  // namespace bench
}  // namespace alt

#endif  // ALT_BENCH_BENCH_COMMON_H_
