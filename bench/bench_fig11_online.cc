// Reproduces Fig. 11: the online 7-day A/B comparison on a recommendation
// task with 34 scenarios. Policies:
//   baseline — a per-scenario light model trained on that scenario only
//              (the paper's expert-tuned light baselines);
//   MeL      — meta-adapted heavy teacher distilled into the predefined
//              light architecture;
//   Ours     — meta-adapted heavy teacher + budget-limited NAS light model.
// The simulator shows each policy the same daily candidate users and
// reports CTR from the generator's ground-truth click probabilities; the
// figure is the daily relative CTR improvement over the baseline.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/meta/meta_learner.h"
#include "src/nas/nas_search.h"
#include "src/serving/online_simulator.h"
#include "src/train/trainer.h"
#include "src/util/table_printer.h"

namespace alt {
namespace bench {
namespace {

data::SyntheticConfig RecommendationConfig(const BenchOptions& options,
                                           int64_t num_scenarios) {
  data::SyntheticConfig config;
  config.num_scenarios = num_scenarios;
  config.profile_dim = 32;
  config.seq_len = options.seq_len;
  // Same signal profile as the dataset presets: behavior sequences carry a
  // learnable share of the click signal.
  config.vocab_size = 30;
  config.seq_signal = 2.0;
  config.motif_signal = 1.5;
  config.num_motifs = 6;
  config.seed = options.seed * 3 + 2024;
  config.scenario_sizes.clear();
  // Long-tail sizes from ~1400 down to ~150.
  for (int64_t s = 0; s < num_scenarios; ++s) {
    config.scenario_sizes.push_back(
        std::max<int64_t>(150, static_cast<int64_t>(1400.0 /
                                                    (1.0 + 0.35 * s))));
  }
  return config;
}

serving::ScoringFn PolicyFor(models::BaseModel* model) {
  return [model](const data::ScenarioData& candidates) {
    return train::Predict(model, candidates);
  };
}

}  // namespace
}  // namespace bench
}  // namespace alt

int main(int argc, char** argv) {
  using namespace alt;
  bench::Flags flags(argc, argv);
  bench::BenchOptions options;
  // 34 scenarios x 3 policies is the most training-heavy bench; slightly
  // shorter per-scenario budgets keep the default run tractable.
  options.epochs = 3;
  options.nas_search_epochs = 2;
  options.ApplyFlags(flags);
  const int64_t num_scenarios = flags.GetInt("scenarios", 34);
  const int64_t days = flags.GetInt("days", 7);

  std::printf("=== Fig. 11: online CTR improvement over %lld days, %lld "
              "scenarios ===\n\n",
              static_cast<long long>(days),
              static_cast<long long>(num_scenarios));

  data::SyntheticConfig dc =
      bench::RecommendationConfig(options, num_scenarios);
  data::SyntheticGenerator generator(dc);

  models::ModelConfig heavy_config = models::ModelConfig::Heavy(
      models::EncoderKind::kLstm, dc.profile_dim, dc.seq_len, dc.vocab_size);
  heavy_config.learning_rate = options.learning_rate;
  models::ModelConfig light_config = models::ModelConfig::Light(
      models::EncoderKind::kLstm, dc.profile_dim, dc.seq_len, dc.vocab_size);
  light_config.learning_rate = options.learning_rate;

  // Meta learner over the first 8 scenarios (the platform's history).
  meta::MetaOptions meta_options;
  meta_options.init_train.epochs = options.epochs;
  meta_options.init_train.learning_rate = options.learning_rate;
  meta_options.finetune.epochs = std::max<int64_t>(1, options.epochs / 2);
  meta_options.finetune.learning_rate = options.learning_rate;
  meta_options.seed = options.seed;
  meta::MetaLearner learner(heavy_config, meta_options);
  std::vector<data::ScenarioData> initial;
  for (int64_t s = 0; s < std::min<int64_t>(8, num_scenarios); ++s) {
    initial.push_back(generator.GenerateScenario(s));
  }
  ALT_CHECK(learner.Initialize(initial).ok());

  Rng rng(options.seed);
  auto light_ref = models::BuildBaseModel(light_config, &rng);
  const int64_t budget =
      light_ref.value()->behavior_encoder()->Flops(dc.seq_len);

  serving::OnlineSimOptions sim;
  sim.days = days;
  sim.users_per_day = flags.GetInt("users_per_day", 200);
  sim.top_k = flags.GetInt("top_k", 20);
  sim.seed = options.seed;

  std::vector<double> base_daily(static_cast<size_t>(days), 0.0);
  std::vector<double> mel_daily(static_cast<size_t>(days), 0.0);
  std::vector<double> ours_daily(static_cast<size_t>(days), 0.0);

  train::TrainOptions train_options;
  train_options.epochs = options.epochs;
  train_options.learning_rate = options.learning_rate;

  for (int64_t s = 0; s < num_scenarios; ++s) {
    data::ScenarioData scenario_train = generator.GenerateScenario(s);

    // Baseline: scenario-only model with an even lighter architecture
    // (the paper's baselines use lighter models to meet the latency
    // budget without knowledge sharing).
    models::ModelConfig baseline_config = light_config;
    baseline_config.encoder_layers = 1;
    Rng base_rng(options.seed * 71 + static_cast<uint64_t>(s));
    auto baseline = models::BuildBaseModel(baseline_config, &base_rng);
    ALT_CHECK(baseline.ok());
    train_options.seed = options.seed * 3 + static_cast<uint64_t>(s);
    ALT_CHECK(train::TrainModel(baseline.value().get(), scenario_train,
                                train_options)
                  .ok());

    // Meta-adapted heavy teacher.
    auto heavy = learner.AdaptToScenario(scenario_train);
    ALT_CHECK(heavy.ok());

    // MeL: predefined light distilled from the teacher.
    Rng mel_rng(options.seed * 73 + static_cast<uint64_t>(s));
    auto mel = models::BuildBaseModel(light_config, &mel_rng);
    ALT_CHECK(mel.ok());
    ALT_CHECK(train::TrainWithDistillation(mel.value().get(),
                                           heavy.value().get(),
                                           scenario_train, 1.0f,
                                           train_options)
                  .ok());

    // Ours: budget-limited NAS + distillation.
    nas::NasSearchOptions nas_options;
    nas_options.supernet.num_layers = options.nas_layers;
    nas_options.search_epochs = options.nas_search_epochs;
    nas_options.weight_lr = options.learning_rate;
    nas_options.flops_budget = budget;
    nas_options.final_train = train_options;
    nas_options.seed = options.seed * 79 + static_cast<uint64_t>(s);
    auto ours = nas::SearchLightModel(light_config, heavy.value().get(),
                                      scenario_train, nas_options, nullptr);
    ALT_CHECK(ours.ok()) << ours.status().ToString();

    for (auto [model, daily] :
         {std::pair{baseline.value().get(), &base_daily},
          std::pair{mel.value().get(), &mel_daily},
          std::pair{ours.value().get(), &ours_daily}}) {
      auto series = serving::RunOnlineSimulation(
          generator, s, bench::PolicyFor(model), sim);
      ALT_CHECK(series.ok());
      for (int64_t d = 0; d < days; ++d) {
        (*daily)[static_cast<size_t>(d)] +=
            series.value().daily_ctr[static_cast<size_t>(d)];
      }
    }
    if ((s + 1) % 10 == 0) {
      std::printf("... %lld/%lld scenarios simulated\n",
                  static_cast<long long>(s + 1),
                  static_cast<long long>(num_scenarios));
    }
  }

  TablePrinter table({"day", "baseline CTR", "MeL CTR", "Ours CTR",
                      "MeL impr %", "Ours impr %"});
  double mel_total = 0.0;
  double ours_total = 0.0;
  for (int64_t d = 0; d < days; ++d) {
    const double base = base_daily[static_cast<size_t>(d)] / num_scenarios;
    const double mel = mel_daily[static_cast<size_t>(d)] / num_scenarios;
    const double ours = ours_daily[static_cast<size_t>(d)] / num_scenarios;
    const double mel_impr = 100.0 * (mel / base - 1.0);
    const double ours_impr = 100.0 * (ours / base - 1.0);
    mel_total += mel_impr;
    ours_total += ours_impr;
    table.AddRow({std::to_string(d + 1), TablePrinter::Num(base, 4),
                  TablePrinter::Num(mel, 4), TablePrinter::Num(ours, 4),
                  TablePrinter::Num(mel_impr, 2),
                  TablePrinter::Num(ours_impr, 2)});
  }
  table.Print();
  std::printf(
      "\nMean relative improvement: MeL %+.2f%%, Ours %+.2f%%\n"
      "Paper Fig. 11 reference: MeL +3.80%%, Ours +10.49%% (7-day average "
      "over 34 scenarios).\nExpected shape: Ours > MeL > baseline on every "
      "day.\n",
      mel_total / days, ours_total / days);
  return 0;
}
