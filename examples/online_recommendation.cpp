// Online recommendation walkthrough — the paper's online application
// (Sec. V-C). Compares three policies on a simulated 7-day CTR experiment
// for one scenario:
//   baseline — scenario-only light model,
//   MeL      — meta teacher distilled into the predefined light model,
//   ALT      — meta teacher + budget-limited NAS light model,
// then deploys the winner to the model server and reports serving latency
// percentiles.
//
// Build & run:  ./build/examples/online_recommendation

#include <cstdio>

#include "src/data/synthetic.h"
#include "src/meta/meta_learner.h"
#include "src/nas/nas_search.h"
#include "src/serving/serving_client.h"
#include "src/serving/online_simulator.h"
#include "src/train/trainer.h"

int main() {
  using namespace alt;

  data::SyntheticConfig data_config;
  data_config.num_scenarios = 6;
  data_config.profile_dim = 24;
  data_config.seq_len = 16;
  data_config.vocab_size = 40;
  data_config.scenario_sizes = {1200, 900, 700, 500, 400, 300};
  data_config.seed = 17;
  data::SyntheticGenerator generator(data_config);

  models::ModelConfig heavy_config = models::ModelConfig::Heavy(
      models::EncoderKind::kLstm, data_config.profile_dim,
      data_config.seq_len, data_config.vocab_size);
  heavy_config.learning_rate = 0.01f;
  models::ModelConfig light_config = models::ModelConfig::Light(
      models::EncoderKind::kLstm, data_config.profile_dim,
      data_config.seq_len, data_config.vocab_size);
  light_config.learning_rate = 0.01f;

  // Meta learner over 5 historical scenarios; scenario 5 is the target.
  meta::MetaOptions meta_options;
  meta_options.init_train.epochs = 4;
  meta_options.init_train.learning_rate = 0.01f;
  meta_options.finetune.epochs = 2;
  meta_options.finetune.learning_rate = 0.01f;
  meta::MetaLearner learner(heavy_config, meta_options);
  std::vector<data::ScenarioData> history;
  for (int64_t s = 0; s < 5; ++s) {
    history.push_back(generator.GenerateScenario(s));
  }
  if (!learner.Initialize(history).ok()) {
    std::printf("meta init failed\n");
    return 1;
  }

  const int64_t target = 5;
  data::ScenarioData target_data = generator.GenerateScenario(target);
  train::TrainOptions train_options;
  train_options.epochs = 4;
  train_options.learning_rate = 0.01f;

  // Baseline.
  Rng rng(23);
  auto baseline = models::BuildBaseModel(light_config, &rng);
  train::TrainModel(baseline.value().get(), target_data, train_options)
      .ok();

  // Teacher + MeL.
  auto teacher = learner.AdaptToScenario(target_data);
  auto mel = models::BuildBaseModel(light_config, &rng);
  train::TrainWithDistillation(mel.value().get(), teacher.value().get(),
                               target_data, 1.0f, train_options)
      .ok();

  // ALT: budget-limited NAS light model.
  auto light_ref = models::BuildBaseModel(light_config, &rng);
  nas::NasSearchOptions nas_options;
  nas_options.flops_budget =
      light_ref.value()->behavior_encoder()->Flops(data_config.seq_len);
  nas_options.search_epochs = 3;
  nas_options.weight_lr = 0.01f;
  nas_options.final_train = train_options;
  nas::NasSearchReport report;
  auto alt_model = nas::SearchLightModel(light_config, teacher.value().get(),
                                         target_data, nas_options, &report);
  if (!alt_model.ok()) {
    std::printf("NAS failed: %s\n", alt_model.status().ToString().c_str());
    return 1;
  }

  // 7-day CTR simulation; identical candidate streams for all policies.
  serving::OnlineSimOptions sim;
  sim.days = 7;
  sim.users_per_day = 200;
  sim.top_k = 40;
  auto run = [&](models::BaseModel* model) {
    return serving::RunOnlineSimulation(
               generator, target,
               [model](const data::ScenarioData& candidates) {
                 return train::Predict(model, candidates);
               },
               sim)
        .value();
  };
  auto base_ctr = run(baseline.value().get());
  auto mel_ctr = run(mel.value().get());
  auto alt_ctr = run(alt_model.value().get());

  std::printf("day  baseline   MeL        ALT\n");
  for (int64_t d = 0; d < sim.days; ++d) {
    std::printf("%3lld  %.4f     %.4f     %.4f\n",
                static_cast<long long>(d + 1),
                base_ctr.daily_ctr[static_cast<size_t>(d)],
                mel_ctr.daily_ctr[static_cast<size_t>(d)],
                alt_ctr.daily_ctr[static_cast<size_t>(d)]);
  }
  std::printf("mean CTR: baseline %.4f, MeL %.4f (%+.2f%%), ALT %.4f "
              "(%+.2f%%)\n",
              base_ctr.mean_ctr, mel_ctr.mean_ctr,
              100.0 * (mel_ctr.mean_ctr / base_ctr.mean_ctr - 1.0),
              alt_ctr.mean_ctr,
              100.0 * (alt_ctr.mean_ctr / base_ctr.mean_ctr - 1.0));

  // Deploy the ALT model and show serving latency.
  serving::ServingClient client;
  client.Deploy("recs", std::move(alt_model).value()).ok();
  for (int i = 0; i < 50; ++i) {
    data::ScenarioData users = generator.GenerateExtra(target, 1, 5000 + i);
    client.Predict("recs", MakeFullBatch(users)).ok();
  }
  auto stats = client.GetLatencyStats("recs").value();
  std::printf("serving latency over %lld requests: p50 %.3f ms, p99 %.3f "
              "ms\n",
              static_cast<long long>(stats.num_requests), stats.p50_ms,
              stats.p99_ms);
  std::printf("searched encoder:\n%s", report.arch.ToString().c_str());
  return 0;
}
