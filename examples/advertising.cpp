// Advertising walkthrough — the paper's second motivating field: many
// advertisers are already onboard and several NEW advertisers join at the
// same time. The example demonstrates:
//   - parallel scenario handling (Sec. IV-D): three advertisers are
//     processed concurrently, with asynchronous Eq. 3 feedback into the
//     scenario agnostic heavy model;
//   - hyperparameter-optimized initialization (Fig. 4's left branch via the
//     AntTune-style service);
//   - model bundle export for each deployed advertiser model.
//
// Build & run:  ./build/examples/advertising

#include <cstdio>
#include <fstream>
#include <memory>

#include "src/core/alt_system.h"
#include "src/data/synthetic.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serving/model_store.h"

int main() {
  using namespace alt;

  // 12 advertisers with long-tail audience sizes.
  data::SyntheticConfig data_config;
  data_config.num_scenarios = 12;
  data_config.profile_dim = 32;
  data_config.seq_len = 16;
  data_config.vocab_size = 40;
  data_config.scenario_sizes = {1400, 1100, 900, 750, 650, 550,
                                480,  420,  380, 340, 300, 260};
  data_config.divergence = 0.45;
  data_config.seed = 13;
  data::SyntheticGenerator generator(data_config);

  core::AltSystemOptions options;
  options.heavy_config = models::ModelConfig::Heavy(
      models::EncoderKind::kBert, data_config.profile_dim,
      data_config.seq_len, data_config.vocab_size);
  options.heavy_config.learning_rate = 0.01f;
  options.light_config = models::ModelConfig::Light(
      models::EncoderKind::kBert, data_config.profile_dim,
      data_config.seq_len, data_config.vocab_size);
  options.light_config.learning_rate = 0.01f;
  options.meta.init_train.epochs = 3;
  options.meta.finetune.epochs = 2;
  options.nas.search_epochs = 2;
  options.nas.final_train.epochs = 3;
  options.nas.final_train.learning_rate = 0.01f;
  options.nas.weight_lr = 0.01f;
  options.parallel_scenarios = 3;

  // HPO-assisted initialization: tune the pre-designed architecture with
  // the AntTune-style service (RACOS default) and keep the better candidate.
  options.use_hpo_init = true;
  options.hpo.tune.max_trials = 6;
  options.hpo.tune.parallelism = 2;
  options.hpo.tune.algorithm = "racos";
  options.hpo.train.epochs = 2;
  options.hpo.train.learning_rate = 0.01f;

  core::AltSystem system(options);

  std::vector<data::ScenarioData> initial;
  for (int64_t s = 0; s < 8; ++s) {
    initial.push_back(generator.GenerateScenario(s));
  }
  std::printf("[init] tuning the pre-designed architecture (AntTune-style "
              "HPO, RACOS) on 8 initial advertisers...\n");
  Status init = system.Initialize(initial);
  if (!init.ok()) {
    std::printf("initialize failed: %s\n", init.ToString().c_str());
    return 1;
  }

  // Four new advertisers join at once; process them in parallel.
  std::vector<data::ScenarioData> arriving;
  for (int64_t s = 8; s < 12; ++s) {
    arriving.push_back(generator.GenerateScenario(s));
  }
  std::printf("[arrival] 4 new advertisers; processing %lld in parallel\n",
              static_cast<long long>(options.parallel_scenarios));
  // TraceSpan instead of a raw stopwatch: the same interval both feeds the
  // printf below and lands in the trace exported at the end of the run.
  auto arrival_span =
      std::make_unique<obs::TraceSpan>("example/advertising/arrival");
  auto artifacts = system.OnScenariosArrival(arriving);
  const double arrival_seconds = arrival_span->ElapsedMillis() / 1e3;
  arrival_span.reset();  // Completes the span so the export below sees it.
  if (!artifacts.ok()) {
    std::printf("pipeline failed: %s\n",
                artifacts.status().ToString().c_str());
    return 1;
  }
  std::printf("[arrival] all pipelines finished in %.1fs\n", arrival_seconds);

  for (const core::ScenarioArtifacts& a : artifacts.value()) {
    std::printf("  advertiser %lld: heavy AUC %.3f -> light AUC %.3f, "
                "encoder %s, FLOPs %lld (budget %lld)\n",
                static_cast<long long>(a.scenario_id), a.heavy_test_auc,
                a.light_test_auc,
                a.arch.layers.empty()
                    ? "?"
                    : a.arch.layers[0].op.ToString().c_str(),
                static_cast<long long>(a.arch.Flops(data_config.seq_len)),
                static_cast<long long>(system.LightEncoderFlopsBudget()));
    // Export the deployed model as a self-contained serving bundle.
    const std::string path = "/tmp/alt_advertiser_" +
                             std::to_string(a.scenario_id) + ".bin";
    // The server owns the model; rebuild one from the deployed scenario by
    // re-running predictions is unnecessary — bundles are written by the
    // pipeline owner in production. Here we simply note the deployment.
    std::printf("    deployed as '%s'\n", a.deployment_name.c_str());
    (void)path;
  }

  std::printf("[server] %zu advertiser models deployed\n",
              system.serving()->Scenarios().size());

  // Observability snapshot of the whole run: every layer (trainer, NAS,
  // meta, serving, kernels) reported into the same registry/recorder.
  std::printf("\n[obs] metrics snapshot:\n%s",
              obs::MetricsRegistry::Global().ToString().c_str());
  std::printf("\n[obs] trace tree:\n%s",
              obs::TraceRecorder::Global().ToTextTree().c_str());
  const std::string trace_path = "/tmp/alt_advertising_trace.json";
  std::ofstream trace_out(trace_path);
  if (trace_out.good()) {
    trace_out << obs::TraceRecorder::Global().ToChromeJson().DumpPretty()
              << "\n";
    std::printf("[obs] Chrome trace written to %s "
                "(load in chrome://tracing or Perfetto)\n",
                trace_path.c_str());
  }
  return 0;
}
