// Quickstart: the smallest useful ALT program.
//
// Generates one synthetic long-tail scenario, trains the paper's Fig. 2
// model (profile MLP + LSTM behavior encoder + prediction head), evaluates
// AUC on a held-out split, and round-trips the model through a serving
// bundle.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/data/synthetic.h"
#include "src/models/base_model.h"
#include "src/serving/model_store.h"
#include "src/train/trainer.h"

int main() {
  using namespace alt;

  // 1. A small synthetic scenario (stands in for one bank / advertiser).
  data::SyntheticConfig data_config;
  data_config.num_scenarios = 1;
  data_config.profile_dim = 16;
  data_config.seq_len = 16;
  data_config.vocab_size = 30;
  data_config.scenario_sizes = {2000};
  data::SyntheticGenerator generator(data_config);
  data::ScenarioData scenario = generator.GenerateScenario(0);
  std::printf("scenario: %lld samples, positive rate %.2f\n",
              static_cast<long long>(scenario.num_samples()),
              scenario.PositiveRate());

  // 2. Train/test split (the paper holds out 20%).
  Rng split_rng(1);
  auto [train_data, test_data] = data::SplitTrainTest(scenario, 0.2,
                                                      &split_rng);

  // 3. Build the Fig. 2 model: LSTM behavior encoder, hidden size 15.
  models::ModelConfig config = models::ModelConfig::Light(
      models::EncoderKind::kLstm, data_config.profile_dim,
      data_config.seq_len, data_config.vocab_size);
  config.learning_rate = 0.01f;
  Rng model_rng(2);
  auto model = models::BuildBaseModel(config, &model_rng);
  if (!model.ok()) {
    std::printf("build failed: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("model: %lld parameters, %lld FLOPs/sample\n",
              static_cast<long long>(model.value()->NumParameters()),
              static_cast<long long>(model.value()->FlopsPerSample()));

  // 4. Train with Adam + binary cross-entropy.
  train::TrainOptions options;
  options.epochs = 5;
  options.learning_rate = config.learning_rate;
  auto report = train::TrainModel(model.value().get(), train_data, options);
  if (!report.ok()) {
    std::printf("training failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("training: loss %.4f -> %.4f over %lld epochs\n",
              report.value().first_epoch_loss,
              report.value().final_epoch_loss,
              static_cast<long long>(report.value().epochs_run));

  // 5. Evaluate.
  std::printf("test AUC: %.3f (random would be 0.500)\n",
              train::EvaluateAuc(model.value().get(), test_data));

  // 6. Export a serving bundle and reload it.
  const std::string path = "/tmp/alt_quickstart_model.bin";
  if (!serving::SaveModelBundleToFile(model.value().get(), path).ok()) {
    std::printf("bundle save failed\n");
    return 1;
  }
  auto reloaded = serving::LoadModelBundleFromFile(path);
  if (!reloaded.ok()) {
    std::printf("bundle load failed: %s\n",
                reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("bundle round-trip OK: reloaded test AUC %.3f\n",
              train::EvaluateAuc(reloaded.value().get(), test_data));
  return 0;
}
