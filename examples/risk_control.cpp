// Risk control walkthrough — the paper's motivating application (Fig. 1).
//
// A platform provides default-risk scoring for many banks. The example runs
// the whole ALT system end to end:
//   1. a Feature Factory holds profile features (daily refresh) and
//      behavior sequences (hourly refresh) for the user base;
//   2. eight initial banks' data builds the scenario agnostic heavy model;
//   3. a NEW bank joins: the automatic pipeline fine-tunes the heavy model
//      (Eq. 1, with Eq. 2 feedback), searches a budget-limited light model
//      with distillation, and deploys it to the model server;
//   4. a loan application arrives: features are joined from the factory and
//      scored by the deployed light model within the latency budget.
//
// Build & run:  ./build/examples/risk_control

#include <cstdio>

#include "src/core/alt_system.h"
#include "src/data/synthetic.h"
#include "src/feature/feature_factory.h"

int main() {
  using namespace alt;

  // --- Workload: 9 banks (8 initial + 1 new), long-tail sizes. ------------
  data::SyntheticConfig data_config;
  data_config.num_scenarios = 9;
  data_config.profile_dim = 24;
  data_config.seq_len = 16;
  data_config.vocab_size = 30;
  data_config.scenario_sizes = {1500, 1200, 900, 800, 700, 600, 500, 400,
                                350};
  data_config.seed = 7;
  data::SyntheticGenerator generator(data_config);

  // --- 1. Feature Factory (Sec. IV-B). ------------------------------------
  // Profile features refresh daily; the behavior sequence refreshes hourly.
  feature::FeatureFactory factory;
  Rng feature_rng(11);
  feature::FeatureDefinition profile_def;
  profile_def.name = "user_profile";
  profile_def.kind = feature::FeatureKind::kProfile;
  profile_def.frequency = feature::UpdateFrequency::kDaily;
  profile_def.dim = data_config.profile_dim;
  auto profile_producer = [&feature_rng, &data_config](const std::string&) {
    std::vector<float> values(static_cast<size_t>(data_config.profile_dim));
    for (float& v : values) v = static_cast<float>(feature_rng.Normal());
    return values;
  };
  feature::FeatureDefinition behavior_def;
  behavior_def.name = "txn_sequence";
  behavior_def.kind = feature::FeatureKind::kBehavior;
  behavior_def.frequency = feature::UpdateFrequency::kHourly;
  behavior_def.dim = data_config.seq_len;
  auto behavior_producer = [&feature_rng, &data_config](const std::string&) {
    std::vector<int64_t> events(static_cast<size_t>(data_config.seq_len));
    for (int64_t& e : events) {
      e = feature_rng.UniformInt(0, data_config.vocab_size - 1);
    }
    return events;
  };
  if (!factory.RegisterProfileFeature(profile_def, profile_producer).ok() ||
      !factory.RegisterBehaviorFeature(behavior_def, behavior_producer)
           .ok()) {
    std::printf("feature registration failed\n");
    return 1;
  }
  for (int u = 0; u < 5; ++u) {
    factory.AddUser("user_" + std::to_string(u));
  }
  const int64_t refreshes = factory.AdvanceClock(24);
  std::printf("[feature factory] %lld users, %lld refreshes over 24h "
              "(hourly behavior + daily profile)\n",
              static_cast<long long>(factory.NumUsers()),
              static_cast<long long>(refreshes));

  // --- 2. ALT system with the paper's heavy/light presets. ---------------
  core::AltSystemOptions options;
  options.heavy_config = models::ModelConfig::Heavy(
      models::EncoderKind::kLstm, data_config.profile_dim,
      data_config.seq_len, data_config.vocab_size);
  options.heavy_config.learning_rate = 0.01f;
  options.light_config = models::ModelConfig::Light(
      models::EncoderKind::kLstm, data_config.profile_dim,
      data_config.seq_len, data_config.vocab_size);
  options.light_config.learning_rate = 0.01f;
  options.meta.init_train.epochs = 4;
  options.meta.finetune.epochs = 2;
  options.nas.search_epochs = 3;
  options.nas.final_train.epochs = 4;
  options.nas.final_train.learning_rate = 0.01f;
  options.nas.weight_lr = 0.01f;
  core::AltSystem system(options);

  std::vector<data::ScenarioData> initial_banks;
  for (int64_t s = 0; s < 8; ++s) {
    initial_banks.push_back(generator.GenerateScenario(s));
  }
  Status init = system.Initialize(initial_banks);
  if (!init.ok()) {
    std::printf("initialize failed: %s\n", init.ToString().c_str());
    return 1;
  }
  std::printf("[init] scenario agnostic heavy model trained on 8 banks; "
              "NAS budget = %lld encoder FLOPs\n",
              static_cast<long long>(system.LightEncoderFlopsBudget()));

  // --- 3. A new bank joins; the automatic pipeline runs. -----------------
  data::ScenarioData new_bank = generator.GenerateScenario(8);
  auto artifacts = system.OnScenarioArrival(new_bank);
  if (!artifacts.ok()) {
    std::printf("pipeline failed: %s\n",
                artifacts.status().ToString().c_str());
    return 1;
  }
  const core::ScenarioArtifacts& a = artifacts.value();
  std::printf("[new bank] heavy AUC %.3f (%lld FLOPs) -> light AUC %.3f "
              "(%lld FLOPs, %.1fx lighter)\n",
              a.heavy_test_auc, static_cast<long long>(a.heavy_flops),
              a.light_test_auc, static_cast<long long>(a.light_flops),
              static_cast<double>(a.heavy_flops) /
                  static_cast<double>(a.light_flops));
  std::printf("[new bank] searched architecture:\n%s",
              a.arch.ToString().c_str());

  // --- 4. Serve a loan application via the feature factory. ---------------
  auto joined = factory.JoinUsers({"user_0", "user_1"}, "txn_sequence");
  if (!joined.ok()) {
    std::printf("feature join failed\n");
    return 1;
  }
  data::Batch request;
  request.batch_size = static_cast<int64_t>(joined.value().user_ids.size());
  request.seq_len = joined.value().seq_len;
  request.profiles = joined.value().profiles;
  request.behaviors = joined.value().behaviors;
  request.labels = Tensor({request.batch_size, 1});
  auto scores = system.serving()->Predict(a.deployment_name, request);
  if (!scores.ok()) {
    std::printf("serving failed: %s\n", scores.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < scores.value().size(); ++i) {
    std::printf("[serving] %s -> default risk %.3f\n",
                joined.value().user_ids[i].c_str(), scores.value()[i]);
  }
  auto latency = system.serving()->GetLatencyStats(a.deployment_name);
  std::printf("[serving] request latency: %.3f ms (budget: milliseconds)\n",
              latency.value().p50_ms);
  return 0;
}
