#include "src/obs/export.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "src/obs/memory_tracker.h"

namespace alt {
namespace obs {

namespace {

/// Shortest round-trippable decimal for a sample value. Integral values
/// (counts, byte gauges) print without an exponent or trailing zeros.
std::string FormatValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      v >= -9.2e18 && v <= 9.2e18) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string SanitizeNameChars(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::vector<std::string> SplitPath(const std::string& name) {
  std::vector<std::string> segments;
  size_t start = 0;
  while (start <= name.size()) {
    const size_t slash = name.find('/', start);
    if (slash == std::string::npos) {
      segments.push_back(name.substr(start));
      break;
    }
    segments.push_back(name.substr(start, slash - start));
    start = slash + 1;
  }
  return segments;
}

/// The registry name split into (family, instance id); id is empty when the
/// name has no instance segments.
std::pair<std::string, std::string> SplitFamily(const std::string& name) {
  const std::vector<std::string> segments = SplitPath(name);
  constexpr size_t kFamilySegments = 3;
  std::string family;
  std::string id;
  for (size_t i = 0; i < segments.size(); ++i) {
    std::string& out = i < kFamilySegments ? family : id;
    if (!out.empty()) out += i < kFamilySegments ? "_" : "/";
    out += i < kFamilySegments ? SanitizeNameChars(segments[i]) : segments[i];
  }
  return {"alt_" + family, id};
}

std::string LabelClause(const std::string& id) {
  if (id.empty()) return "";
  return "{id=\"" + EscapeLabelValue(id) + "\"}";
}

/// One family block: HELP + TYPE once, then every instance's samples.
template <typename Sample, typename RenderFn>
void RenderFamilies(
    const std::vector<std::pair<std::string, Sample>>& metrics,
    const char* type, std::string* out, const RenderFn& render_samples) {
  // Group by family; registry snapshots are name-sorted, so instances of a
  // family are adjacent, but grouping via map is robust to sanitization
  // collapsing distinct names.
  std::map<std::string, std::vector<std::pair<std::string, const Sample*>>>
      families;
  std::map<std::string, std::string> help_name;  // family -> registry name.
  for (const auto& [name, sample] : metrics) {
    auto [family, id] = SplitFamily(name);
    families[family].emplace_back(id, &sample);
    if (help_name.find(family) == help_name.end()) {
      std::string help = name;
      // Trim instance segments so the HELP line names the family, not one
      // arbitrary instance.
      if (!families[family].back().first.empty()) {
        help = name.substr(0, name.size() - id.size() - 1);
      }
      help_name[family] = help;
    }
  }
  for (const auto& [family, instances] : families) {
    *out += "# HELP " + family + " ALT registry metric " +
            EscapeLabelValue(help_name[family]) + "\n";
    *out += "# TYPE " + family + " " + type + "\n";
    for (const auto& [id, sample] : instances) {
      render_samples(family, id, *sample, out);
    }
  }
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PrometheusFamilyName(const std::string& registry_name) {
  return SplitFamily(registry_name).first;
}

std::string RenderPrometheus(const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  RenderFamilies(
      snapshot.counters, "counter", &out,
      [](const std::string& family, const std::string& id, int64_t value,
         std::string* text) {
        *text += family + LabelClause(id) + " " + std::to_string(value) + "\n";
      });
  RenderFamilies(
      snapshot.gauges, "gauge", &out,
      [](const std::string& family, const std::string& id, double value,
         std::string* text) {
        *text += family + LabelClause(id) + " " + FormatValue(value) + "\n";
      });
  RenderFamilies(
      snapshot.histograms, "histogram", &out,
      [](const std::string& family, const std::string& id,
         const HistogramBuckets& buckets, std::string* text) {
        std::string labels = id.empty() ? "" : "id=\"" +
                                               EscapeLabelValue(id) + "\",";
        int64_t cumulative = 0;
        for (size_t i = 0; i < buckets.bounds.size(); ++i) {
          cumulative += buckets.counts[i];
          *text += family + "_bucket{" + labels + "le=\"" +
                   FormatValue(buckets.bounds[i]) + "\"} " +
                   std::to_string(cumulative) + "\n";
        }
        cumulative += buckets.counts.back();
        *text += family + "_bucket{" + labels + "le=\"+Inf\"} " +
                 std::to_string(cumulative) + "\n";
        *text += family + "_sum" + LabelClause(id) + " " +
                 FormatValue(buckets.sum) + "\n";
        *text += family + "_count" + LabelClause(id) + " " +
                 std::to_string(buckets.count) + "\n";
      });
  return out;
}

std::string RenderPrometheus(MetricsRegistry* registry) {
  MemoryTracker::Global().PublishTo(registry);
  return RenderPrometheus(registry->TakeSnapshot());
}

}  // namespace obs
}  // namespace alt
