#include "src/obs/slo.h"

#include <algorithm>
#include <cmath>

#include "src/obs/trace.h"

namespace alt {
namespace obs {

SloTracker::SloTracker() : SloTracker(Options()) {}

SloTracker::SloTracker(Options options)
    : registry_(options.registry != nullptr ? options.registry
                                            : &MetricsRegistry::Global()),
      now_ms_(options.now_ms != nullptr
                  ? std::move(options.now_ms)
                  : std::function<double()>(
                        [] { return MonotonicMicros() / 1e3; })),
      bucket_ms_(options.bucket_ms > 0.0 ? options.bucket_ms : 1000.0),
      default_objective_(options.default_objective) {
  const double short_ms = std::max(options.short_window_ms, bucket_ms_);
  const double long_ms = std::max(options.long_window_ms, short_ms);
  short_buckets_ = static_cast<int64_t>(std::ceil(short_ms / bucket_ms_));
  long_buckets_ = static_cast<int64_t>(std::ceil(long_ms / bucket_ms_));
  ring_size_ = static_cast<size_t>(long_buckets_ + 1);
}

double SloTracker::NowMs() const { return now_ms_(); }

SloTracker::Scenario& SloTracker::ScenarioLocked(const std::string& name) {
  auto it = scenarios_.find(name);
  if (it == scenarios_.end()) {
    Scenario scenario;
    scenario.objective = default_objective_;
    scenario.ring.resize(ring_size_);
    it = scenarios_.emplace(name, std::move(scenario)).first;
  }
  return it->second;
}

void SloTracker::SetObjective(const std::string& scenario,
                              const SloObjective& objective) {
  MutexLock lock(mu_);
  ScenarioLocked(scenario).objective = objective;
}

void SloTracker::Record(const std::string& scenario, double latency_ms,
                        bool ok) {
  if (!registry_->enabled()) return;
  const int64_t index = static_cast<int64_t>(now_ms_() / bucket_ms_);
  MutexLock lock(mu_);
  Scenario& state = ScenarioLocked(scenario);
  const bool bad = !ok || (state.objective.target_latency_ms > 0.0 &&
                           latency_ms > state.objective.target_latency_ms);
  ++state.total;
  if (bad) ++state.bad;
  Bucket& bucket = state.ring[static_cast<size_t>(index) % ring_size_];
  if (bucket.index != index) {
    bucket.index = index;
    bucket.total = 0;
    bucket.bad = 0;
  }
  ++bucket.total;
  if (bad) ++bucket.bad;
}

void SloTracker::WindowCounts(const Scenario& scenario, int64_t now_index,
                              int64_t window_buckets, int64_t* total,
                              int64_t* bad) {
  *total = 0;
  *bad = 0;
  for (const Bucket& bucket : scenario.ring) {
    if (bucket.index < 0) continue;
    if (bucket.index > now_index) continue;          // Future (clock reset).
    if (bucket.index <= now_index - window_buckets) continue;  // Aged out.
    *total += bucket.total;
    *bad += bucket.bad;
  }
}

double SloTracker::Burn(int64_t total, int64_t bad,
                        const SloObjective& objective) {
  if (total <= 0) return 0.0;
  const double budget = 1.0 - objective.availability;
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  if (budget <= 0.0) return bad > 0 ? kInfiniteBurn : 0.0;
  return bad_fraction / budget;
}

std::map<std::string, SloTracker::ScenarioSlo> SloTracker::Snapshot() const {
  const int64_t now_index = static_cast<int64_t>(now_ms_() / bucket_ms_);
  std::map<std::string, ScenarioSlo> out;
  MutexLock lock(mu_);
  for (const auto& [name, state] : scenarios_) {
    ScenarioSlo slo;
    slo.objective = state.objective;
    slo.total = state.total;
    slo.bad = state.bad;
    int64_t total = 0;
    int64_t bad = 0;
    WindowCounts(state, now_index, short_buckets_, &total, &bad);
    slo.burn_short = Burn(total, bad, state.objective);
    WindowCounts(state, now_index, long_buckets_, &total, &bad);
    slo.burn_long = Burn(total, bad, state.objective);
    const double allowed =
        static_cast<double>(total) * (1.0 - state.objective.availability);
    if (allowed > 0.0) {
      slo.budget_remaining = std::max(
          0.0, std::min(1.0, 1.0 - static_cast<double>(bad) / allowed));
    } else {
      slo.budget_remaining = bad > 0 ? 0.0 : 1.0;
    }
    out.emplace(name, std::move(slo));
  }
  return out;
}

std::vector<std::string> SloTracker::Burning() const {
  std::vector<std::string> burning;
  for (const auto& [name, slo] : Snapshot()) {
    if (slo.burning()) burning.push_back(name);
  }
  return burning;
}

void SloTracker::PublishGauges() {
  for (const auto& [name, slo] : Snapshot()) {
    registry_->gauge("slo/burn/short/" + name)->Set(slo.burn_short);
    registry_->gauge("slo/burn/long/" + name)->Set(slo.burn_long);
    registry_->gauge("slo/budget/remaining/" + name)
        ->Set(slo.budget_remaining);
  }
}

Json SloTracker::ToJson() const {
  Json scenarios = Json::Object{};
  int64_t burning = 0;
  for (const auto& [name, slo] : Snapshot()) {
    Json entry = Json::Object{};
    Json objective = Json::Object{};
    objective["target_latency_ms"] = slo.objective.target_latency_ms;
    objective["availability"] = slo.objective.availability;
    entry["objective"] = std::move(objective);
    entry["total"] = slo.total;
    entry["bad"] = slo.bad;
    entry["burn_short"] = slo.burn_short;
    entry["burn_long"] = slo.burn_long;
    entry["budget_remaining"] = slo.budget_remaining;
    entry["burning"] = slo.burning();
    if (slo.burning()) ++burning;
    scenarios[name] = std::move(entry);
  }
  Json doc = Json::Object{};
  doc["scenarios"] = std::move(scenarios);
  doc["burning"] = burning;
  doc["short_window_ms"] = bucket_ms_ * static_cast<double>(short_buckets_);
  doc["long_window_ms"] = bucket_ms_ * static_cast<double>(long_buckets_);
  return doc;
}

}  // namespace obs
}  // namespace alt
