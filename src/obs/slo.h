#ifndef ALT_SRC_OBS_SLO_H_
#define ALT_SRC_OBS_SLO_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/json.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace obs {

/// Per-scenario SLO objectives + multi-window burn-rate tracking ------------
///
/// A request is "bad" when it fails, or when it exceeds the scenario's
/// latency target. Burn rate is the SRE error-budget derivative:
///
///   burn = (bad fraction over window) / (1 - availability objective)
///
/// burn > 1 means the scenario is consuming error budget faster than the
/// objective allows; the short window (default 60 s) catches incidents, the
/// long window (default 600 s) smooths recovery. Time comes from an
/// injectable `now_ms` function so tests drive the windows on a FakeClock
/// (the obs layer cannot depend on src/resilience — callers wrap their
/// Clock into the std::function).

struct SloObjective {
  /// Latency target in ms; requests slower than this are budget-burning
  /// even when they succeed. 0 disables the latency objective.
  double target_latency_ms = 0.0;
  /// Availability objective in [0,1); 0.999 allows 0.1% bad requests.
  double availability = 0.999;
};

class SloTracker {
 public:
  struct Options {
    MetricsRegistry* registry = nullptr;  // Null: the global registry.
    /// Monotonic milliseconds; null uses the process steady clock.
    std::function<double()> now_ms;
    double bucket_ms = 1000.0;
    double short_window_ms = 60'000.0;
    double long_window_ms = 600'000.0;
    /// Objective for scenarios that never had SetObjective called.
    SloObjective default_objective;
  };

  SloTracker();  // Default options.
  explicit SloTracker(Options options);
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Installs/overwrites a scenario's objective (DeployOptions::slo lands
  /// here on deploy).
  void SetObjective(const std::string& scenario, const SloObjective& objective);

  /// Records one request outcome. No-op when the registry is disabled
  /// (ALT_OBS=off turns the whole SLO plane off).
  void Record(const std::string& scenario, double latency_ms, bool ok);

  struct ScenarioSlo {
    SloObjective objective;
    int64_t total = 0;  // Lifetime counts.
    int64_t bad = 0;
    double burn_short = 0.0;
    double burn_long = 0.0;
    /// Long-window error budget still unspent, in [0,1].
    double budget_remaining = 1.0;
    bool burning() const { return burn_short > 1.0; }
  };

  /// Burn rates evaluated at now_ms() for every known scenario.
  std::map<std::string, ScenarioSlo> Snapshot() const;

  /// Scenarios whose short-window burn exceeds 1, sorted by name.
  std::vector<std::string> Burning() const;

  /// Writes `slo/burn/short/<s>`, `slo/burn/long/<s>`, and
  /// `slo/budget/remaining/<s>` gauges (exported as alt_slo_* families with
  /// the scenario in the `id` label) into this tracker's registry.
  void PublishGauges();

  /// The `/slo` document.
  Json ToJson() const;

  double NowMs() const;

  /// Sentinel burn rate for a zero error budget (availability >= 1) that is
  /// being violated.
  static constexpr double kInfiniteBurn = 1e9;

 private:
  struct Bucket {
    int64_t index = -1;  // now_ms / bucket_ms; -1 = empty slot.
    int64_t total = 0;
    int64_t bad = 0;
  };
  struct Scenario {
    SloObjective objective;
    int64_t total = 0;
    int64_t bad = 0;
    std::vector<Bucket> ring;
  };

  Scenario& ScenarioLocked(const std::string& name)
      ALT_REQUIRES(mu_);
  static void WindowCounts(const Scenario& scenario, int64_t now_index,
                           int64_t window_buckets, int64_t* total,
                           int64_t* bad);
  static double Burn(int64_t total, int64_t bad, const SloObjective& objective);

  MetricsRegistry* registry_;
  std::function<double()> now_ms_;
  double bucket_ms_;
  int64_t short_buckets_;
  int64_t long_buckets_;
  size_t ring_size_;
  SloObjective default_objective_;
  mutable Mutex mu_;
  std::map<std::string, Scenario> scenarios_ ALT_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace alt

#endif  // ALT_SRC_OBS_SLO_H_
