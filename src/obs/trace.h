#ifndef ALT_SRC_OBS_TRACE_H_
#define ALT_SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/json.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace obs {

/// Trace layer ----------------------------------------------------------------
///
/// `TraceSpan` is an RAII scope that records a named wall-time interval into
/// a `TraceRecorder`. Spans are cheap and thread-safe: each thread appends
/// completed spans to its own buffer (one short uncontended lock per span),
/// and export merges the per-thread buffers. Exports:
///   - `ToChromeJson()`: Chrome `trace_event` format (load in
///     chrome://tracing or Perfetto) — {"traceEvents": [{ph:"X", ...}]};
///   - `ToTextTree()`: indented per-thread text tree via util/table_printer.
///
/// The recorder obeys the same switch as the metrics layer: `ALT_OBS=off`
/// disables the global recorder at startup, `set_enabled(false)` per
/// instance; a span against a disabled recorder never reads the clock.
/// Per-thread buffers are capped (kMaxEventsPerThread); beyond the cap
/// events are counted as dropped instead of recorded.

/// One completed span. Timestamps are microseconds since the recorder's
/// construction (its epoch), as required by the Chrome trace format.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  int depth = 0;
  /// Request-scoped causality (all 0 for spans outside a sampled request).
  /// Export uses these to attach ids and emit Chrome flow events so Perfetto
  /// renders one causal lane per request across threads.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

class RequestTrace;  // src/obs/request_trace.h

/// Identity of one request as it crosses threads: caller → coordinator →
/// shard dispatcher → batch flush. Copied by value; the shared_ptr keeps the
/// per-request segment accumulator alive on every thread the request visits.
/// A default-constructed context is unsampled and makes every tracing hook
/// along the path a no-op.
struct RequestContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // The span that currently owns the request.
  uint64_t parent_span_id = 0;
  /// Microseconds (MonotonicMicros epoch) at StartRequest; 0 when request
  /// timing is disabled entirely (registry off).
  double start_us = 0.0;
  std::shared_ptr<RequestTrace> trace;  // Null = unsampled.
  bool sampled() const { return trace != nullptr; }
};

/// Process-unique span id, mixed from the parent id so ids stay deterministic
/// for a deterministic span sequence. Never returns 0 (0 = "no span").
uint64_t NextSpanId(uint64_t parent_span_id);

/// Microseconds on the process steady clock (arbitrary but fixed epoch).
/// Segment timing helper for serving code, which must not read raw chrono
/// clocks (lint L006).
double MonotonicMicros();

class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder used by ALT_TRACE_SPAN and the wired
  /// subsystems. Enabled unless ALT_OBS is off (same env switch as
  /// MetricsRegistry::Global).
  static TraceRecorder& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends one completed event to the calling thread's buffer.
  void Record(TraceEvent event);

  /// Total events currently buffered / dropped over the cap.
  size_t event_count() const;
  int64_t dropped_count() const;

  /// Removes all buffered events (keeps thread buffer registrations).
  void Clear();

  /// Chrome trace_event JSON: {"traceEvents": [...], "displayTimeUnit":
  /// "ms"}. Events are sorted by start time (ties: longer span first, so a
  /// parent precedes the children it encloses). `limit` > 0 keeps only the
  /// most recent `limit` X events (the tail of the sorted stream). Events
  /// that belong to a sampled request additionally carry `id` + `args`
  /// (trace/span/parent) and parent→child pairs emit Chrome flow events
  /// (ph "s"/"f") so Perfetto draws one causal lane per request.
  Json ToChromeJson(size_t limit = 0) const;

  /// Indented per-thread span tree (depth = nesting at record time).
  std::string ToTextTree() const;

  /// Microseconds since this recorder's epoch.
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  static constexpr size_t kMaxEventsPerThread = size_t{1} << 16;

 private:
  struct ThreadBuffer {
    Mutex mu;
    std::vector<TraceEvent> events ALT_GUARDED_BY(mu);
    int64_t dropped ALT_GUARDED_BY(mu) = 0;
    int tid = 0;  // Written once before the buffer is published.
  };

  ThreadBuffer* BufferForThisThread();
  std::vector<TraceEvent> SortedEvents() const;

  const uint64_t id_;  // Unique per recorder; keys the thread-local cache.
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  std::atomic<int> next_tid_{1};
  mutable Mutex mu_;  // Guards buffers_ (the list, not the contents).
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ ALT_GUARDED_BY(mu_);
};

/// RAII trace scope. Records into `recorder` (default: the global recorder)
/// when that recorder is enabled at construction time; otherwise the span is
/// inactive and free of clock reads.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, TraceRecorder* recorder = nullptr);
  /// Request-linked span: active only when the recorder is enabled AND `ctx`
  /// is sampled. The recorded event carries the request's trace id plus a
  /// fresh span id parented on ctx.span_id; hand `context()` to downstream
  /// work so its spans nest under this one in the request's causal lane.
  TraceSpan(std::string name, const RequestContext& ctx,
            TraceRecorder* recorder = nullptr);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return recorder_ != nullptr; }
  /// Wall time since construction; 0 when inactive.
  double ElapsedMillis() const;

  /// The context downstream work should propagate: this span's child context
  /// when active, else the construction-time context unchanged (so segment
  /// attribution still flows when only the recorder is disabled).
  RequestContext context() const;

 private:
  std::string name_;
  TraceRecorder* recorder_;  // Null when inactive.
  double start_us_ = 0.0;
  int depth_ = 0;
  RequestContext ctx_;       // Construction-time context (may be unsampled).
  uint64_t span_id_ = 0;     // This span's id; 0 unless request-linked.
};

}  // namespace obs
}  // namespace alt

/// Convenience macro: `ALT_TRACE_SPAN(span, "layer/component/what");`
/// declares an RAII span named `span` against the global recorder. Compiles
/// away entirely under -DALT_OBS_DISABLED.
#if defined(ALT_OBS_DISABLED)
#define ALT_TRACE_SPAN(var, name)
#else
#define ALT_TRACE_SPAN(var, name) ::alt::obs::TraceSpan var(name)
#endif

#endif  // ALT_SRC_OBS_TRACE_H_
