#ifndef ALT_SRC_OBS_TRACE_H_
#define ALT_SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/json.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace obs {

/// Trace layer ----------------------------------------------------------------
///
/// `TraceSpan` is an RAII scope that records a named wall-time interval into
/// a `TraceRecorder`. Spans are cheap and thread-safe: each thread appends
/// completed spans to its own buffer (one short uncontended lock per span),
/// and export merges the per-thread buffers. Exports:
///   - `ToChromeJson()`: Chrome `trace_event` format (load in
///     chrome://tracing or Perfetto) — {"traceEvents": [{ph:"X", ...}]};
///   - `ToTextTree()`: indented per-thread text tree via util/table_printer.
///
/// The recorder obeys the same switch as the metrics layer: `ALT_OBS=off`
/// disables the global recorder at startup, `set_enabled(false)` per
/// instance; a span against a disabled recorder never reads the clock.
/// Per-thread buffers are capped (kMaxEventsPerThread); beyond the cap
/// events are counted as dropped instead of recorded.

/// One completed span. Timestamps are microseconds since the recorder's
/// construction (its epoch), as required by the Chrome trace format.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  int depth = 0;
};

class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder used by ALT_TRACE_SPAN and the wired
  /// subsystems. Enabled unless ALT_OBS is off (same env switch as
  /// MetricsRegistry::Global).
  static TraceRecorder& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends one completed event to the calling thread's buffer.
  void Record(TraceEvent event);

  /// Total events currently buffered / dropped over the cap.
  size_t event_count() const;
  int64_t dropped_count() const;

  /// Removes all buffered events (keeps thread buffer registrations).
  void Clear();

  /// Chrome trace_event JSON: {"traceEvents": [...], "displayTimeUnit":
  /// "ms"}. Events are sorted by start time (ties: longer span first, so a
  /// parent precedes the children it encloses).
  Json ToChromeJson() const;

  /// Indented per-thread span tree (depth = nesting at record time).
  std::string ToTextTree() const;

  /// Microseconds since this recorder's epoch.
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  static constexpr size_t kMaxEventsPerThread = size_t{1} << 16;

 private:
  struct ThreadBuffer {
    Mutex mu;
    std::vector<TraceEvent> events ALT_GUARDED_BY(mu);
    int64_t dropped ALT_GUARDED_BY(mu) = 0;
    int tid = 0;  // Written once before the buffer is published.
  };

  ThreadBuffer* BufferForThisThread();
  std::vector<TraceEvent> SortedEvents() const;

  const uint64_t id_;  // Unique per recorder; keys the thread-local cache.
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  std::atomic<int> next_tid_{1};
  mutable Mutex mu_;  // Guards buffers_ (the list, not the contents).
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ ALT_GUARDED_BY(mu_);
};

/// RAII trace scope. Records into `recorder` (default: the global recorder)
/// when that recorder is enabled at construction time; otherwise the span is
/// inactive and free of clock reads.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, TraceRecorder* recorder = nullptr);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return recorder_ != nullptr; }
  /// Wall time since construction; 0 when inactive.
  double ElapsedMillis() const;

 private:
  std::string name_;
  TraceRecorder* recorder_;  // Null when inactive.
  double start_us_ = 0.0;
  int depth_ = 0;
};

}  // namespace obs
}  // namespace alt

/// Convenience macro: `ALT_TRACE_SPAN(span, "layer/component/what");`
/// declares an RAII span named `span` against the global recorder. Compiles
/// away entirely under -DALT_OBS_DISABLED.
#if defined(ALT_OBS_DISABLED)
#define ALT_TRACE_SPAN(var, name)
#else
#define ALT_TRACE_SPAN(var, name) ::alt::obs::TraceSpan var(name)
#endif

#endif  // ALT_SRC_OBS_TRACE_H_
