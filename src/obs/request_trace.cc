#include "src/obs/request_trace.h"

#include <algorithm>
#include <cstdlib>

namespace alt {
namespace obs {

namespace {

/// splitmix64 finalizer (same mix as the serving-layer p2c tie-breaker):
/// full avalanche, so consecutive tickets sample independently.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double SampleRateFromEnv() {
  const char* env = std::getenv("ALT_TRACE_SAMPLE");
  if (env == nullptr || env[0] == '\0') return 0.01;
  char* end = nullptr;
  const double rate = std::strtod(env, &end);
  if (end == env) return 0.01;
  return std::min(1.0, std::max(0.0, rate));
}

std::string HexTraceId(uint64_t id) {
  static const char* kDigits = "0123456789abcdef";
  std::string out = "0x";
  bool leading = true;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const int nibble = static_cast<int>((id >> shift) & 0xf);
    if (leading && nibble == 0 && shift != 0) continue;
    leading = false;
    out.push_back(kDigits[nibble]);
  }
  return out;
}

}  // namespace

RequestTrace::RequestTrace(uint64_t trace_id, std::string scenario,
                           double start_us)
    : trace_id_(trace_id),
      scenario_(std::move(scenario)),
      start_us_(start_us) {}

void RequestTrace::AddSegment(const char* name, double ms) {
  MutexLock lock(mu_);
  for (auto& [existing, total] : segments_) {
    if (existing == name) {
      total += ms;
      return;
    }
  }
  segments_.emplace_back(name, ms);
}

std::vector<std::pair<std::string, double>> RequestTrace::Segments() const {
  MutexLock lock(mu_);
  return segments_;
}

RequestTracer::RequestTracer() : RequestTracer(Options()) {}

RequestTracer::RequestTracer(Options options)
    : registry_(options.registry != nullptr ? options.registry
                                            : &MetricsRegistry::Global()),
      recorder_(options.recorder != nullptr ? options.recorder
                                            : &TraceRecorder::Global()),
      seed_(options.seed),
      slow_ring_size_(options.slow_ring_size > 0
                          ? static_cast<size_t>(options.slow_ring_size)
                          : 1),
      sample_rate_(options.sample_rate >= 0.0
                       ? std::min(1.0, options.sample_rate)
                       : SampleRateFromEnv()) {
  completed_ = registry_->counter("serving/trace/completed");
  slowest_gauge_ = registry_->gauge("serving/trace/slowest_ms");
}

bool RequestTracer::enabled() const { return registry_->enabled(); }

RequestContext RequestTracer::StartRequest(const std::string& scenario) {
  RequestContext ctx;
  if (!enabled()) return ctx;
  ctx.start_us = MonotonicMicros();
  const uint64_t ticket = ticket_.fetch_add(1, std::memory_order_relaxed);
  const double rate = sample_rate_.load(std::memory_order_relaxed);
  if (rate <= 0.0) return ctx;
  // Deterministic per-ticket coin: top 53 bits of the mix as a uniform in
  // [0,1). Same seed + same request order → same sampling decisions.
  const uint64_t coin = Mix64(seed_ ^ ticket);
  if ((coin >> 11) * 0x1.0p-53 >= rate) return ctx;
  ctx.trace_id = Mix64(~seed_ ^ (ticket * 0x9e3779b97f4a7c15ULL));
  if (ctx.trace_id == 0) ctx.trace_id = 1;
  ctx.span_id = NextSpanId(ctx.trace_id);
  ctx.trace = std::make_shared<RequestTrace>(ctx.trace_id, scenario,
                                             ctx.start_us);
  return ctx;
}

double RequestTracer::CompleteRequest(const RequestContext& ctx,
                                      const Status& status) {
  if (ctx.start_us == 0.0) return 0.0;  // Tracer was disabled at start.
  const double total_ms = (MonotonicMicros() - ctx.start_us) / 1e3;
  if (!ctx.sampled()) return total_ms;

  completed_->Add(1);
  CompletedTrace done;
  done.trace_id = ctx.trace_id;
  done.scenario = ctx.trace->scenario();
  done.total_ms = total_ms;
  done.ok = status.ok();
  done.status = status.ok() ? "OK" : status.ToString();
  done.segments = ctx.trace->Segments();
  for (const auto& [name, ms] : done.segments) {
    SegmentHistogram(name)->Observe(ms);
  }

  MutexLock lock(mu_);
  if (slow_.size() < slow_ring_size_) {
    slow_.push_back(std::move(done));
  } else {
    // Replace the fastest retained trace if this one is slower.
    size_t fastest = 0;
    for (size_t i = 1; i < slow_.size(); ++i) {
      if (slow_[i].total_ms < slow_[fastest].total_ms) fastest = i;
    }
    if (done.total_ms > slow_[fastest].total_ms) {
      slow_[fastest] = std::move(done);
    }
  }
  double slowest = 0.0;
  for (const CompletedTrace& t : slow_) slowest = std::max(slowest, t.total_ms);
  slowest_gauge_->Set(slowest);
  return total_ms;
}

Histogram* RequestTracer::SegmentHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto it = segment_hists_.find(name);
  if (it != segment_hists_.end()) return it->second;
  Histogram* hist = registry_->histogram("serving/trace/segment_ms/" + name);
  segment_hists_.emplace(name, hist);
  return hist;
}

double RequestTracer::CompletedTrace::SegmentSumMs() const {
  double sum = 0.0;
  for (const auto& [name, ms] : segments) sum += ms;
  return sum;
}

double RequestTracer::CompletedTrace::SegmentMs(
    const std::string& name) const {
  for (const auto& [seg, ms] : segments) {
    if (seg == name) return ms;
  }
  return 0.0;
}

std::vector<RequestTracer::CompletedTrace> RequestTracer::SlowTraces() const {
  std::vector<CompletedTrace> traces;
  {
    MutexLock lock(mu_);
    traces = slow_;
  }
  std::sort(traces.begin(), traces.end(),
            [](const CompletedTrace& a, const CompletedTrace& b) {
              return a.total_ms > b.total_ms;
            });
  return traces;
}

Json RequestTracer::ToJson() const {
  Json::Array entries;
  for (const CompletedTrace& trace : SlowTraces()) {
    Json entry = Json::Object{};
    entry["trace_id"] = HexTraceId(trace.trace_id);
    entry["scenario"] = trace.scenario;
    entry["total_ms"] = trace.total_ms;
    entry["segment_sum_ms"] = trace.SegmentSumMs();
    entry["ok"] = trace.ok;
    entry["status"] = trace.status;
    Json segments = Json::Object{};
    for (const auto& [name, ms] : trace.segments) segments[name] = ms;
    entry["segments"] = std::move(segments);
    entries.push_back(std::move(entry));
  }
  Json doc = Json::Object{};
  doc["sample_rate"] = sample_rate();
  doc["traced_requests"] = traced_requests();
  doc["slow_traces"] = std::move(entries);
  return doc;
}

int64_t RequestTracer::traced_requests() const { return completed_->value(); }

double RequestTracer::slowest_ms() const {
  MutexLock lock(mu_);
  double slowest = 0.0;
  for (const CompletedTrace& t : slow_) slowest = std::max(slowest, t.total_ms);
  return slowest;
}

double RequestTracer::sample_rate() const {
  return sample_rate_.load(std::memory_order_relaxed);
}

void RequestTracer::set_sample_rate(double rate) {
  sample_rate_.store(std::min(1.0, std::max(0.0, rate)),
                     std::memory_order_relaxed);
}

SegmentTimer::SegmentTimer(const RequestContext& ctx)
    : trace_(ctx.trace), on_destroy_(nullptr) {
  if (trace_ != nullptr) start_us_ = MonotonicMicros();
}

SegmentTimer::SegmentTimer(const RequestContext& ctx, const char* segment)
    : trace_(ctx.trace), on_destroy_(segment) {
  if (trace_ != nullptr) start_us_ = MonotonicMicros();
}

SegmentTimer::~SegmentTimer() {
  if (trace_ == nullptr || on_destroy_ == nullptr) return;
  trace_->AddSegment(on_destroy_, (MonotonicMicros() - start_us_) / 1e3);
}

void SegmentTimer::RecordAs(const char* segment) {
  if (trace_ == nullptr) return;
  const double now_us = MonotonicMicros();
  trace_->AddSegment(segment, (now_us - start_us_) / 1e3);
  start_us_ = now_us;
}

}  // namespace obs
}  // namespace alt
