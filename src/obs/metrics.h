#ifndef ALT_SRC_OBS_METRICS_H_
#define ALT_SRC_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/json.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace obs {

/// Process-wide metrics layer ------------------------------------------------
///
/// One canonical instrumentation API for every subsystem (ISSUE 3): named
/// counters, gauges, and fixed-bucket histograms registered in a
/// `MetricsRegistry`. Metric names follow the `layer/component/metric`
/// scheme (e.g. `serving/model_server/latency_ms`); per-instance metrics
/// append an instance segment (`serving/model_server/latency_ms/<scenario>`).
///
/// Concurrency model:
///   - counters and gauges are single atomics (relaxed; values are
///     monotone or last-writer-wins, no cross-metric ordering is promised);
///   - histograms shard their buckets over a small fixed set of mutexes
///     keyed by the calling thread, so concurrent `Observe` calls rarely
///     contend and snapshots merge the shards under all shard locks.
///
/// Disabling: the `ALT_OBS` environment variable (`off`/`0`/`false`) turns
/// the process-global registry off at startup; `set_enabled(false)` does the
/// same per registry (used by tests). A disabled registry records nothing —
/// every record call is one relaxed atomic load and an early return, so
/// instrumented hot paths stay at full speed. Compiling with
/// `-DALT_OBS_DISABLED` additionally removes the `ALT_OBS_*` macro call
/// sites entirely.
///
/// Lifetime: metric handles (`Counter*`, `Gauge*`, `Histogram*`) are owned
/// by their registry and stay valid for the registry's lifetime; they are
/// never deleted or re-created, so call sites may cache them.

class MetricsRegistry;

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  bool enabled() const { return enabled_->load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<int64_t> value_{0};
};

/// Last-writer-wins floating point level (queue depth, current loss, ...).
class Gauge {
 public:
  void Set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  bool enabled() const { return enabled_->load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

/// Read-only roll-up of one histogram at snapshot time. Count and sum are
/// exact; percentiles are linearly interpolated within the fixed buckets
/// (the top percentile is capped at the exact observed max).
struct HistogramSummary {
  int64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Raw merged bucket state of one histogram, the exposition layer's view
/// (Prometheus `_bucket`/`_sum`/`_count` series, see src/obs/export.h).
struct HistogramBuckets {
  std::vector<double> bounds;   // Upper bounds; the overflow bucket is +Inf.
  std::vector<int64_t> counts;  // Per-bucket counts, size bounds.size() + 1.
  int64_t count = 0;
  double sum = 0.0;
};

/// Fixed-bucket histogram with exact count/sum/min/max tracking. Bucket `i`
/// counts observations `v <= bounds[i]` (first matching bound); values above
/// the last bound land in an overflow bucket whose upper edge is the
/// observed max.
class Histogram {
 public:
  void Observe(double v);
  HistogramSummary Summarize() const;
  /// Merged per-bucket counts (non-cumulative; exposition accumulates).
  HistogramBuckets SnapshotBuckets() const;
  double Percentile(double q) const { return SummarizePercentile(q); }
  const std::vector<double>& bounds() const { return bounds_; }
  bool enabled() const { return enabled_->load(std::memory_order_relaxed); }

  /// 1-2-5 decade bounds from 1e-3 to 1e4, the default for *_ms metrics.
  static std::vector<double> DefaultLatencyBoundsMs();

  static constexpr int kShards = 8;

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds);
  struct Shard {
    mutable Mutex mu;
    // bounds.size() + 1 entries (overflow last).
    std::vector<int64_t> bucket_counts ALT_GUARDED_BY(mu);
    int64_t count ALT_GUARDED_BY(mu) = 0;
    double sum ALT_GUARDED_BY(mu) = 0.0;
    double min ALT_GUARDED_BY(mu) = 0.0;
    double max ALT_GUARDED_BY(mu) = 0.0;
  };

  double SummarizePercentile(double q) const;

  const std::atomic<bool>* enabled_;
  std::vector<double> bounds_;  // Strictly increasing upper bounds.
  Shard shards_[kShards];
};

/// Named metric registry. `Global()` is the canonical process-wide instance
/// every layer reports through; tests construct private registries for
/// isolation. Creating a metric is idempotent: the first call registers it,
/// later calls return the same handle (a histogram's bounds are fixed by the
/// first call).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry. Enabled unless the ALT_OBS environment
  /// variable is `off`/`0`/`false` at first use; when enabled, also installs
  /// the ParallelFor shard-timing observer (util/parallel_for.h) feeding
  /// `util/parallel_for/*` metrics.
  static MetricsRegistry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// `bounds` must be strictly increasing; empty selects
  /// Histogram::DefaultLatencyBoundsMs().
  Histogram* histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Snapshot reads; zero-valued defaults when the metric does not exist.
  int64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  HistogramSummary histogram_summary(const std::string& name) const;

  /// Typed full-registry snapshot (name-sorted), the input of the
  /// Prometheus exposition renderer (src/obs/export.h).
  struct Snapshot {
    bool enabled = true;
    std::vector<std::pair<std::string, int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramBuckets>> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// Serializes a full snapshot:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {name: summary}}.
  Json ToJson() const;

  /// Human-readable snapshot (util/table_printer tables).
  std::string ToString() const;

 private:
  std::atomic<bool> enabled_{true};
  mutable Mutex mu_;  // Guards the maps, not the metric values.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      ALT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ ALT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      ALT_GUARDED_BY(mu_);
};

/// RAII wall-time recorder: observes the elapsed milliseconds into `h` on
/// destruction. When the owning registry is disabled (or `h` is null) the
/// clock is never read, keeping disabled instrumentation near-free.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(Histogram* h)
      : hist_(h != nullptr && h->enabled() ? h : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimerMs() {
    if (hist_ != nullptr) hist_->Observe(ElapsedMillis());
  }
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

  double ElapsedMillis() const {
    if (hist_ == nullptr) return 0.0;
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace alt

/// Call-site macros: cache the metric handle in a function-local static so
/// steady-state cost is one pointer read plus the record call. Compiling
/// with -DALT_OBS_DISABLED removes the call sites entirely (the
/// compile-time switch of the observability layer).
#if defined(ALT_OBS_DISABLED)
#define ALT_OBS_COUNTER_ADD(name, delta) \
  do {                                   \
  } while (false)
#define ALT_OBS_GAUGE_SET(name, v) \
  do {                             \
  } while (false)
#define ALT_OBS_HISTOGRAM_OBSERVE(name, v) \
  do {                                     \
  } while (false)
#define ALT_OBS_HISTOGRAM_HANDLE(name) \
  (static_cast<::alt::obs::Histogram*>(nullptr))
#else
#define ALT_OBS_COUNTER_ADD(name, delta)                          \
  do {                                                            \
    static ::alt::obs::Counter* alt_obs_counter_ =                \
        ::alt::obs::MetricsRegistry::Global().counter(name);      \
    alt_obs_counter_->Add(delta);                                 \
  } while (false)
#define ALT_OBS_GAUGE_SET(name, v)                                \
  do {                                                            \
    static ::alt::obs::Gauge* alt_obs_gauge_ =                    \
        ::alt::obs::MetricsRegistry::Global().gauge(name);        \
    alt_obs_gauge_->Set(v);                                       \
  } while (false)
#define ALT_OBS_HISTOGRAM_OBSERVE(name, v)                        \
  do {                                                            \
    static ::alt::obs::Histogram* alt_obs_hist_ =                 \
        ::alt::obs::MetricsRegistry::Global().histogram(name);    \
    alt_obs_hist_->Observe(v);                                    \
  } while (false)
/// Expression form: the cached global-registry histogram handle for `name`
/// (null when compiled out), for use with obs::ScopedTimerMs.
#define ALT_OBS_HISTOGRAM_HANDLE(name)                            \
  ([]() -> ::alt::obs::Histogram* {                               \
    static ::alt::obs::Histogram* alt_obs_hist_ =                 \
        ::alt::obs::MetricsRegistry::Global().histogram(name);    \
    return alt_obs_hist_;                                         \
  }())
#endif  // ALT_OBS_DISABLED

#endif  // ALT_SRC_OBS_METRICS_H_
