#include "src/obs/memory_tracker.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"

namespace alt {
namespace obs {

namespace internal {
bool ObsEnabledFromEnv();  // metrics.cc
}  // namespace internal

namespace {

/// Innermost active phase tag of the calling thread.
thread_local const char* g_current_tag = nullptr;

}  // namespace

MemoryTracker::MemoryTracker() = default;

MemoryTracker& MemoryTracker::Global() {
  // Heap-allocated and never destroyed: tensor buffers may be freed during
  // static destruction and still report here.
  static MemoryTracker* global = []() {
    auto* tracker = new MemoryTracker();
    tracker->enabled_.store(internal::ObsEnabledFromEnv(),
                            std::memory_order_relaxed);
    return tracker;
  }();
  return *global;
}

void MemoryTracker::RecordAlloc(size_t bytes) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const int64_t delta = static_cast<int64_t>(bytes);
  const int64_t live =
      live_bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
  alloc_count_.fetch_add(1, std::memory_order_relaxed);
  allocated_bytes_.fetch_add(delta, std::memory_order_relaxed);
  int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (live > peak &&
         !peak_bytes_.compare_exchange_weak(peak, live,
                                            std::memory_order_relaxed)) {
  }
  const char* tag = g_current_tag;
  if (tag != nullptr) {
    MutexLock lock(tags_mu_);
    TagUsage& usage = tags_[tag];
    usage.allocated_bytes += delta;
    ++usage.allocs;
    usage.peak_bytes = std::max(usage.peak_bytes, live);
  }
}

void MemoryTracker::RecordFree(size_t bytes) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  live_bytes_.fetch_sub(static_cast<int64_t>(bytes),
                        std::memory_order_relaxed);
  free_count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, MemoryTracker::TagUsage>>
MemoryTracker::TagSnapshot() const {
  MutexLock lock(tags_mu_);
  return {tags_.begin(), tags_.end()};
}

void MemoryTracker::ResetPeak() {
  peak_bytes_.store(live_bytes_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

void MemoryTracker::PublishTo(MetricsRegistry* registry) const {
  if (registry == nullptr || !registry->enabled()) return;
  registry->gauge("memory/live_bytes")->Set(
      static_cast<double>(live_bytes()));
  registry->gauge("memory/peak_bytes")->Set(
      static_cast<double>(peak_bytes()));
  registry->gauge("memory/alloc_count")->Set(
      static_cast<double>(alloc_count()));
  registry->gauge("memory/free_count")->Set(
      static_cast<double>(free_count()));
  registry->gauge("memory/allocated_bytes_total")
      ->Set(static_cast<double>(allocated_bytes_total()));
  // Four segments so the tag lands in the exposition `id` label
  // (alt_memory_phase_allocated_bytes{id="train"}), one family per metric
  // rather than one per tag.
  for (const auto& [tag, usage] : TagSnapshot()) {
    registry->gauge("memory/phase/allocated_bytes/" + tag)
        ->Set(static_cast<double>(usage.allocated_bytes));
    registry->gauge("memory/phase/peak_bytes/" + tag)
        ->Set(static_cast<double>(usage.peak_bytes));
    registry->gauge("memory/phase/allocs/" + tag)
        ->Set(static_cast<double>(usage.allocs));
  }
}

Json MemoryTracker::ToJson() const {
  Json doc = Json::Object{};
  doc["enabled"] = enabled();
  doc["live_bytes"] = live_bytes();
  doc["peak_bytes"] = peak_bytes();
  doc["alloc_count"] = alloc_count();
  doc["free_count"] = free_count();
  doc["allocated_bytes_total"] = allocated_bytes_total();
  Json tags = Json::Object{};
  for (const auto& [tag, usage] : TagSnapshot()) {
    Json entry = Json::Object{};
    entry["allocated_bytes"] = usage.allocated_bytes;
    entry["allocs"] = usage.allocs;
    entry["peak_bytes"] = usage.peak_bytes;
    tags[tag] = entry;
  }
  doc["tags"] = tags;
  return doc;
}

ScopedMemoryTag::ScopedMemoryTag(const char* tag) : previous_(g_current_tag) {
  g_current_tag = tag;
}

ScopedMemoryTag::~ScopedMemoryTag() { g_current_tag = previous_; }

const char* ScopedMemoryTag::CurrentTag() { return g_current_tag; }

}  // namespace obs
}  // namespace alt
