#ifndef ALT_SRC_OBS_MEMORY_TRACKER_H_
#define ALT_SRC_OBS_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/json.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace obs {

class MetricsRegistry;

/// Tensor memory accounting --------------------------------------------------
///
/// The FLOPs budget of Eq. 4 bounds compute; this layer gives RAM the same
/// treatment. Every tensor storage allocation in the library flows through
/// `TrackingAllocator` (the allocator of `Tensor`'s buffer, see
/// src/tensor/tensor.h), which reports to the process-wide `MemoryTracker`:
///   - live bytes / peak live bytes / allocation + free counts, globally;
///   - per-phase attribution: a `ScopedMemoryTag` names the current pipeline
///     phase ("train", "nas", "meta", "serving", ...) on the calling thread,
///     and allocations made while the tag is active are charged to it.
///
/// Per-phase semantics: a tag accumulates the bytes and allocation count of
/// allocations performed under it, plus `peak_bytes` — the maximum *global*
/// live size observed while the tag was current. Frees are accounted
/// globally only (a buffer may outlive the phase that allocated it), so tag
/// byte counts are cumulative allocation volume, not live set.
///
/// Overhead: one relaxed atomic load per alloc/free when disabled
/// (ALT_OBS=off at startup; the switch is latched once so alloc/free
/// accounting stays symmetric), a handful of relaxed atomics when enabled,
/// plus one uncontended mutex when a phase tag is active. Compiling with
/// -DALT_OBS_DISABLED removes the accounting calls from the allocator
/// entirely.
class MemoryTracker {
 public:
  MemoryTracker();
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// The process-wide tracker fed by TrackingAllocator. Enabled unless the
  /// ALT_OBS environment variable is off at first use (latched; not
  /// runtime-togglable so alloc/free pairs always balance).
  static MemoryTracker& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void RecordAlloc(size_t bytes);
  void RecordFree(size_t bytes);

  int64_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  int64_t alloc_count() const {
    return alloc_count_.load(std::memory_order_relaxed);
  }
  int64_t free_count() const {
    return free_count_.load(std::memory_order_relaxed);
  }
  /// Cumulative bytes ever allocated (monotone).
  int64_t allocated_bytes_total() const {
    return allocated_bytes_.load(std::memory_order_relaxed);
  }

  /// Accounting of one phase tag.
  struct TagUsage {
    int64_t allocated_bytes = 0;  // Cumulative bytes allocated under the tag.
    int64_t allocs = 0;
    int64_t peak_bytes = 0;  // Max global live bytes seen under the tag.
  };
  /// Snapshot of every tag seen so far (empty when no tag was ever active).
  std::vector<std::pair<std::string, TagUsage>> TagSnapshot() const;

  /// Resets the peak to the current live size (bench/test epoch marker).
  void ResetPeak();

  /// Writes the current totals (and per-tag usage) into `registry` as
  /// `memory/*` gauges, which the exposition layer renders as
  /// `alt_memory_*`. Call before snapshotting the registry.
  void PublishTo(MetricsRegistry* registry) const;

  /// {"live_bytes": ..., "peak_bytes": ..., "allocs": ..., "frees": ...,
  ///  "allocated_bytes_total": ..., "tags": {tag: {...}}} — embedded into
  /// checkpoint meta and BENCH_*.json documents.
  Json ToJson() const;

 private:
  friend class ScopedMemoryTag;

  std::atomic<bool> enabled_{true};
  std::atomic<int64_t> live_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<int64_t> alloc_count_{0};
  std::atomic<int64_t> free_count_{0};
  std::atomic<int64_t> allocated_bytes_{0};

  mutable Mutex tags_mu_;
  std::map<std::string, TagUsage> tags_ ALT_GUARDED_BY(tags_mu_);
};

/// RAII phase tag: allocations on this thread are attributed to `tag` until
/// the scope ends. Nests; the innermost tag wins. Tags must be string
/// literals or otherwise outlive the scope.
class ScopedMemoryTag {
 public:
  explicit ScopedMemoryTag(const char* tag);
  ~ScopedMemoryTag();
  ScopedMemoryTag(const ScopedMemoryTag&) = delete;
  ScopedMemoryTag& operator=(const ScopedMemoryTag&) = delete;

  /// The tag active on the calling thread (null when none).
  static const char* CurrentTag();

 private:
  const char* previous_;
};

/// std::vector allocator that routes every allocation through the global
/// MemoryTracker. Stateless; interchangeable with std::allocator.
template <typename T>
struct TrackingAllocator {
  using value_type = T;

  TrackingAllocator() = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U>&) {}  // NOLINT

  T* allocate(size_t n) {
#if !defined(ALT_OBS_DISABLED)
    MemoryTracker::Global().RecordAlloc(n * sizeof(T));
#endif
    return std::allocator<T>{}.allocate(n);
  }

  void deallocate(T* p, size_t n) {
    std::allocator<T>{}.deallocate(p, n);
#if !defined(ALT_OBS_DISABLED)
    MemoryTracker::Global().RecordFree(n * sizeof(T));
#endif
  }

  bool operator==(const TrackingAllocator&) const { return true; }
  bool operator!=(const TrackingAllocator&) const { return false; }
};

}  // namespace obs
}  // namespace alt

#endif  // ALT_SRC_OBS_MEMORY_TRACKER_H_
