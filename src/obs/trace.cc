#include "src/obs/trace.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/table_printer.h"

namespace alt {
namespace obs {

namespace {

std::atomic<uint64_t> g_next_recorder_id{1};

/// Nesting depth of active spans on the current thread. A single counter is
/// enough: spans are strictly scoped, so interleaved recorders still nest.
thread_local int tls_span_depth = 0;

}  // namespace

namespace internal {
bool ObsEnabledFromEnv();  // Defined in metrics.cc.
}  // namespace internal

TraceRecorder::TraceRecorder()
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::Global() {
  // Never destroyed: threads may finish spans during static destruction.
  static TraceRecorder* global = []() {
    auto* recorder = new TraceRecorder();
    recorder->set_enabled(internal::ObsEnabledFromEnv());
    return recorder;
  }();
  return *global;
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  struct Entry {
    uint64_t recorder_id;
    std::shared_ptr<ThreadBuffer> buffer;
  };
  // Per-thread cache over all recorders this thread has recorded into.
  // Recorder ids are never reused, so a stale entry can never alias a new
  // recorder; the shared_ptr keeps the buffer alive independently of the
  // recorder's own lifetime.
  thread_local std::vector<Entry> cache;
  for (const Entry& entry : cache) {
    if (entry.recorder_id == id_) return entry.buffer.get();
  }
  auto buffer = std::make_shared<ThreadBuffer>();
  buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    buffers_.push_back(buffer);
  }
  cache.push_back({id_, buffer});
  return buffer.get();
}

void TraceRecorder::Record(TraceEvent event) {
  ThreadBuffer* buffer = BufferForThisThread();
  event.tid = buffer->tid;
  MutexLock lock(buffer->mu);
  if (buffer->events.size() >= kMaxEventsPerThread) {
    ++buffer->dropped;
    return;
  }
  buffer->events.push_back(std::move(event));
}

size_t TraceRecorder::event_count() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  size_t total = 0;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

int64_t TraceRecorder::dropped_count() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  int64_t total = 0;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

void TraceRecorder::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::vector<TraceEvent> TraceRecorder::SortedEvents() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;  // Parent before its children.
            });
  return events;
}

Json TraceRecorder::ToChromeJson() const {
  Json::Array trace_events;
  for (const TraceEvent& event : SortedEvents()) {
    Json entry = Json::Object{};
    entry["name"] = event.name;
    entry["cat"] = "alt";
    entry["ph"] = "X";
    entry["ts"] = event.ts_us;
    entry["dur"] = event.dur_us;
    entry["pid"] = 1;
    entry["tid"] = event.tid;
    trace_events.push_back(std::move(entry));
  }
  Json doc = Json::Object{};
  doc["traceEvents"] = std::move(trace_events);
  doc["displayTimeUnit"] = "ms";
  doc["droppedEvents"] = dropped_count();
  return doc;
}

std::string TraceRecorder::ToTextTree() const {
  std::map<int, std::vector<TraceEvent>> by_tid;
  for (TraceEvent& event : SortedEvents()) {
    by_tid[event.tid].push_back(std::move(event));
  }
  if (by_tid.empty()) return "(no spans recorded)\n";
  TablePrinter table({"tid", "span", "start_ms", "dur_ms"});
  for (const auto& [tid, events] : by_tid) {
    for (const TraceEvent& event : events) {
      table.AddRow({std::to_string(tid),
                    std::string(static_cast<size_t>(event.depth) * 2, ' ') +
                        event.name,
                    TablePrinter::Num(event.ts_us / 1e3),
                    TablePrinter::Num(event.dur_us / 1e3)});
    }
  }
  return table.ToString();
}

TraceSpan::TraceSpan(std::string name, TraceRecorder* recorder)
    : name_(std::move(name)),
      recorder_(recorder != nullptr ? recorder : &TraceRecorder::Global()) {
  if (!recorder_->enabled()) {
    recorder_ = nullptr;  // Inactive: no clock reads, nothing recorded.
    return;
  }
  depth_ = tls_span_depth++;
  start_us_ = recorder_->NowMicros();
}

TraceSpan::~TraceSpan() {
  if (recorder_ == nullptr) return;
  --tls_span_depth;
  TraceEvent event;
  event.name = std::move(name_);
  event.ts_us = start_us_;
  event.dur_us = recorder_->NowMicros() - start_us_;
  event.depth = depth_;
  recorder_->Record(std::move(event));
}

double TraceSpan::ElapsedMillis() const {
  if (recorder_ == nullptr) return 0.0;
  return (recorder_->NowMicros() - start_us_) / 1e3;
}

}  // namespace obs
}  // namespace alt
