#include "src/obs/trace.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/table_printer.h"

namespace alt {
namespace obs {

namespace {

std::atomic<uint64_t> g_next_recorder_id{1};
std::atomic<uint64_t> g_next_span_seq{1};

/// Nesting depth of active spans on the current thread. A single counter is
/// enough: spans are strictly scoped, so interleaved recorders still nest.
thread_local int tls_span_depth = 0;

/// splitmix64 finalizer: full-avalanche 64-bit mix.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string HexId(uint64_t id) {
  static const char* kDigits = "0123456789abcdef";
  std::string out = "0x";
  bool leading = true;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const int nibble = static_cast<int>((id >> shift) & 0xf);
    if (leading && nibble == 0 && shift != 0) continue;
    leading = false;
    out.push_back(kDigits[nibble]);
  }
  return out;
}

}  // namespace

uint64_t NextSpanId(uint64_t parent_span_id) {
  const uint64_t seq =
      g_next_span_seq.fetch_add(1, std::memory_order_relaxed);
  const uint64_t id = Mix64(parent_span_id ^ (seq * 0x9e3779b97f4a7c15ULL));
  return id == 0 ? 1 : id;
}

double MonotonicMicros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

namespace internal {
bool ObsEnabledFromEnv();  // Defined in metrics.cc.
}  // namespace internal

TraceRecorder::TraceRecorder()
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::Global() {
  // Never destroyed: threads may finish spans during static destruction.
  static TraceRecorder* global = []() {
    auto* recorder = new TraceRecorder();
    recorder->set_enabled(internal::ObsEnabledFromEnv());
    return recorder;
  }();
  return *global;
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  struct Entry {
    uint64_t recorder_id;
    std::shared_ptr<ThreadBuffer> buffer;
  };
  // Per-thread cache over all recorders this thread has recorded into.
  // Recorder ids are never reused, so a stale entry can never alias a new
  // recorder; the shared_ptr keeps the buffer alive independently of the
  // recorder's own lifetime.
  thread_local std::vector<Entry> cache;
  for (const Entry& entry : cache) {
    if (entry.recorder_id == id_) return entry.buffer.get();
  }
  auto buffer = std::make_shared<ThreadBuffer>();
  buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    buffers_.push_back(buffer);
  }
  cache.push_back({id_, buffer});
  return buffer.get();
}

void TraceRecorder::Record(TraceEvent event) {
  ThreadBuffer* buffer = BufferForThisThread();
  event.tid = buffer->tid;
  MutexLock lock(buffer->mu);
  if (buffer->events.size() >= kMaxEventsPerThread) {
    ++buffer->dropped;
    return;
  }
  buffer->events.push_back(std::move(event));
}

size_t TraceRecorder::event_count() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  size_t total = 0;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

int64_t TraceRecorder::dropped_count() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  int64_t total = 0;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

void TraceRecorder::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::vector<TraceEvent> TraceRecorder::SortedEvents() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;  // Parent before its children.
            });
  return events;
}

Json TraceRecorder::ToChromeJson(size_t limit) const {
  std::vector<TraceEvent> events = SortedEvents();
  const size_t total = events.size();
  if (limit > 0 && events.size() > limit) {
    // Keep the most recent `limit` events; the sort is by start time, so
    // this is the tail of the stream.
    events.erase(events.begin(),
                 events.begin() + static_cast<ptrdiff_t>(events.size() - limit));
  }

  // span id → position in `events`, for flow-event endpoints. Only spans
  // whose parent is also in the emitted slice get a flow edge.
  std::map<uint64_t, size_t> span_index;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].span_id != 0) span_index[events[i].span_id] = i;
  }

  Json::Array trace_events;
  for (const TraceEvent& event : events) {
    Json entry = Json::Object{};
    entry["name"] = event.name;
    entry["cat"] = "alt";
    entry["ph"] = "X";
    entry["ts"] = event.ts_us;
    entry["dur"] = event.dur_us;
    entry["pid"] = 1;
    entry["tid"] = event.tid;
    if (event.trace_id != 0) {
      entry["id"] = HexId(event.trace_id);
      Json args = Json::Object{};
      args["trace"] = HexId(event.trace_id);
      args["span"] = HexId(event.span_id);
      args["parent"] = HexId(event.parent_span_id);
      entry["args"] = std::move(args);
    }
    trace_events.push_back(std::move(entry));
  }
  // Flow events: one s→f pair per parent→child span edge, keyed by the
  // child's span id, binding to the enclosing slices ("bp":"e") so Perfetto
  // draws arrows across threads.
  for (const TraceEvent& event : events) {
    if (event.parent_span_id == 0) continue;
    auto it = span_index.find(event.parent_span_id);
    if (it == span_index.end()) continue;
    const TraceEvent& parent = events[it->second];
    Json start = Json::Object{};
    start["name"] = "request";
    start["cat"] = "alt_flow";
    start["ph"] = "s";
    start["id"] = HexId(event.span_id);
    start["ts"] = parent.ts_us;
    start["pid"] = 1;
    start["tid"] = parent.tid;
    trace_events.push_back(std::move(start));
    Json finish = Json::Object{};
    finish["name"] = "request";
    finish["cat"] = "alt_flow";
    finish["ph"] = "f";
    finish["bp"] = "e";
    finish["id"] = HexId(event.span_id);
    finish["ts"] = event.ts_us;
    finish["pid"] = 1;
    finish["tid"] = event.tid;
    trace_events.push_back(std::move(finish));
  }
  Json doc = Json::Object{};
  doc["traceEvents"] = std::move(trace_events);
  doc["displayTimeUnit"] = "ms";
  doc["droppedEvents"] = dropped_count();
  doc["totalEvents"] = static_cast<int64_t>(total);
  return doc;
}

std::string TraceRecorder::ToTextTree() const {
  std::map<int, std::vector<TraceEvent>> by_tid;
  for (TraceEvent& event : SortedEvents()) {
    by_tid[event.tid].push_back(std::move(event));
  }
  if (by_tid.empty()) return "(no spans recorded)\n";
  TablePrinter table({"tid", "span", "start_ms", "dur_ms"});
  for (const auto& [tid, events] : by_tid) {
    for (const TraceEvent& event : events) {
      table.AddRow({std::to_string(tid),
                    std::string(static_cast<size_t>(event.depth) * 2, ' ') +
                        event.name,
                    TablePrinter::Num(event.ts_us / 1e3),
                    TablePrinter::Num(event.dur_us / 1e3)});
    }
  }
  return table.ToString();
}

TraceSpan::TraceSpan(std::string name, TraceRecorder* recorder)
    : name_(std::move(name)),
      recorder_(recorder != nullptr ? recorder : &TraceRecorder::Global()) {
  if (!recorder_->enabled()) {
    recorder_ = nullptr;  // Inactive: no clock reads, nothing recorded.
    return;
  }
  depth_ = tls_span_depth++;
  start_us_ = recorder_->NowMicros();
}

TraceSpan::TraceSpan(std::string name, const RequestContext& ctx,
                     TraceRecorder* recorder)
    : name_(std::move(name)),
      recorder_(recorder != nullptr ? recorder : &TraceRecorder::Global()),
      ctx_(ctx) {
  if (!recorder_->enabled() || !ctx_.sampled()) {
    recorder_ = nullptr;  // Inactive; context() still forwards ctx_.
    return;
  }
  span_id_ = NextSpanId(ctx_.span_id);
  depth_ = tls_span_depth++;
  start_us_ = recorder_->NowMicros();
}

RequestContext TraceSpan::context() const {
  if (span_id_ == 0) return ctx_;
  RequestContext child = ctx_;
  child.parent_span_id = ctx_.span_id;
  child.span_id = span_id_;
  return child;
}

TraceSpan::~TraceSpan() {
  if (recorder_ == nullptr) return;
  --tls_span_depth;
  TraceEvent event;
  event.name = std::move(name_);
  event.ts_us = start_us_;
  event.dur_us = recorder_->NowMicros() - start_us_;
  event.depth = depth_;
  if (span_id_ != 0) {
    event.trace_id = ctx_.trace_id;
    event.span_id = span_id_;
    event.parent_span_id = ctx_.span_id;
  }
  recorder_->Record(std::move(event));
}

double TraceSpan::ElapsedMillis() const {
  if (recorder_ == nullptr) return 0.0;
  return (recorder_->NowMicros() - start_us_) / 1e3;
}

}  // namespace obs
}  // namespace alt
