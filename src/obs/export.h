#ifndef ALT_SRC_OBS_EXPORT_H_
#define ALT_SRC_OBS_EXPORT_H_

#include <string>

#include "src/obs/metrics.h"

namespace alt {
namespace obs {

/// Prometheus/OpenMetrics text exposition ------------------------------------
///
/// Renders a MetricsRegistry into the Prometheus text format (version
/// 0.0.4), the lingua franca of pull-based monitoring: one `# HELP` and
/// `# TYPE` line per metric family followed by its samples, histograms as
/// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
///
/// Naming scheme. Registry names are hierarchical
/// (`layer/component/metric[/instance...]`); exposition maps them to flat
/// Prometheus names with an `alt_` prefix:
///   serving/model_server/latency_ms/s3
///     -> alt_serving_model_server_latency_ms{id="s3"}
/// The first three path segments form the family name (fewer segments: all
/// of them); any remaining segments become the `id` label value, so
/// per-scenario instances of one metric share a family (one HELP/TYPE
/// block, one series per instance). Characters outside [a-zA-Z0-9_:] are
/// sanitized to '_'; label values are escaped per the format (backslash,
/// double quote, newline).
std::string RenderPrometheus(const MetricsRegistry::Snapshot& snapshot);

/// Snapshot-and-render convenience; publishes the global MemoryTracker into
/// `registry` first so `alt_memory_*` gauges are always current.
std::string RenderPrometheus(MetricsRegistry* registry);

/// The flat Prometheus family name of a registry metric name (no labels),
/// e.g. "serving/model_server/latency_ms/s3" ->
/// "alt_serving_model_server_latency_ms". Exposed for tests and tooling.
std::string PrometheusFamilyName(const std::string& registry_name);

/// Escapes a label value per the exposition format: `\` -> `\\`,
/// `"` -> `\"`, newline -> `\n`.
std::string EscapeLabelValue(const std::string& value);

}  // namespace obs
}  // namespace alt

#endif  // ALT_SRC_OBS_EXPORT_H_
