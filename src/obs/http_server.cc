#include "src/obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include "src/obs/export.h"
#include "src/obs/memory_tracker.h"
#include "src/obs/request_trace.h"
#include "src/obs/slo.h"
#include "src/util/logging.h"

namespace alt {
namespace obs {

namespace {

constexpr int kPollIntervalMs = 100;   // Stop-flag check cadence.
constexpr int kRequestTimeoutMs = 2000;
constexpr size_t kMaxRequestBytes = 8192;

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

/// First line "GET /path?query HTTP/1.1" -> "/path?query"; empty on parse
/// failure. The query string stays attached — Handle() owns splitting it so
/// endpoints like /trace?limit=200 can read their parameters.
std::string RequestPath(const std::string& request) {
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || line.substr(0, sp1) != "GET") return "";
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return "";
  return line.substr(sp1 + 1, sp2 - sp1 - 1);
}

/// "a=1&b=2" -> {{"a","1"},{"b","2"}}; valueless keys map to "".
std::map<std::string, std::string> ParseQuery(const std::string& query) {
  std::map<std::string, std::string> params;
  size_t start = 0;
  while (start < query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(start, end - start);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (!pair.empty()) params[pair] = "";
    } else {
      params[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    start = end + 1;
  }
  return params;
}

/// Strict non-negative integer parse; false on empty / non-digits / overflow.
bool ParseLimit(const std::string& text, size_t* out) {
  if (text.empty() || text.size() > 9) return false;
  size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  *out = value;
  return true;
}

void WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // Peer went away; nothing to salvage.
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

TelemetryServer::TelemetryServer(Options options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::Global();
  }
  if (options_.recorder == nullptr) {
    options_.recorder = &TraceRecorder::Global();
  }
}

Result<std::unique_ptr<TelemetryServer>> TelemetryServer::Start(
    Options options) {
  std::unique_ptr<TelemetryServer> server(
      new TelemetryServer(std::move(options)));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("telemetry: socket(): ") +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server->options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError(
        "telemetry: cannot bind 127.0.0.1:" +
        std::to_string(server->options_.port) + ": " + err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError(std::string("telemetry: listen(): ") + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError(std::string("telemetry: getsockname(): ") +
                               err);
  }
  server->listen_fd_ = fd;
  server->port_ = static_cast<int>(ntohs(addr.sin_port));
  server->pool_ = std::make_unique<ThreadPool>(1);
  TelemetryServer* raw = server.get();
  raw->pool_->Submit([raw]() { raw->AcceptLoop(); });
  ALT_LOG(Info) << "telemetry server listening on 127.0.0.1:" << server->port_;
  return server;
}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::Stop() {
  if (stop_.exchange(true)) return;
  if (pool_ != nullptr) {
    pool_->WaitIdle();
    pool_.reset();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TelemetryServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) continue;  // Timeout or EINTR: recheck the stop flag.
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    ServeConnection(conn);
    ::close(conn);
  }
}

void TelemetryServer::ServeConnection(int fd) const {
  std::string request;
  int waited_ms = 0;
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes &&
         waited_ms < kRequestTimeoutMs) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0) return;
    if (ready == 0) {
      waited_ms += kPollIntervalMs;
      continue;
    }
    char buf[2048];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }

  // A request that never produced a complete header block (peer hung up,
  // dribbled bytes until the timeout, or blew past the size cap) or whose
  // request line failed to parse gets a clean 400 — the serving thread
  // answers and moves on rather than wedging on garbage input.
  const bool complete = request.find("\r\n\r\n") != std::string::npos;
  const std::string path = RequestPath(request);
  Response response;
  if (!complete || path.empty()) {
    options_.registry
        ->counter("obs/telemetry_server/requests/bad_request")
        ->Add(1);
    response.status = 400;
    response.content_type = "text/plain; charset=utf-8";
    response.body = complete ? "bad request line\n"
                             : "incomplete or oversized request\n";
  } else {
    response = Handle(path);
  }
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  WriteAll(fd, out);
}

TelemetryServer::Response TelemetryServer::Handle(
    const std::string& full_path) const {
  Response response;
  const size_t query_pos = full_path.find('?');
  const std::string path = query_pos == std::string::npos
                               ? full_path
                               : full_path.substr(0, query_pos);
  const std::map<std::string, std::string> query =
      query_pos == std::string::npos
          ? std::map<std::string, std::string>{}
          : ParseQuery(full_path.substr(query_pos + 1));
  // Known endpoints only; arbitrary request paths must not mint metrics.
  const char* endpoint = path == "/metrics"      ? "metrics"
                         : path == "/trace"      ? "trace"
                         : path == "/trace/slow" ? "trace_slow"
                         : path == "/slo"        ? "slo"
                         : path == "/healthz"    ? "healthz"
                         : path == "/readyz"     ? "readyz"
                         : path == "/snapshot"   ? "snapshot"
                                                 : "other";
  options_.registry
      ->counter(std::string("obs/telemetry_server/requests/") + endpoint)
      ->Add(1);
  if (path == "/metrics") {
    // Sync the recorder's drop tally into a scrapeable counter
    // (alt_trace_dropped_events) as a delta so repeated scrapes never
    // double-count, and refresh the alt_slo_* burn gauges so the scrape
    // sees current windows rather than the last request's.
    Counter* dropped =
        options_.registry->counter("trace/dropped_events");
    const int64_t delta = options_.recorder->dropped_count() - dropped->value();
    if (delta > 0) dropped->Add(delta);
    if (options_.slo != nullptr) options_.slo->PublishGauges();
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderPrometheus(options_.registry);
    return response;
  }
  if (path == "/trace") {
    size_t limit = 0;
    const auto limit_it = query.find("limit");
    if (limit_it != query.end() && !ParseLimit(limit_it->second, &limit)) {
      response.status = 400;
      response.content_type = "text/plain; charset=utf-8";
      response.body =
          "bad limit: \"" + limit_it->second + "\" (want a non-negative integer)\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = options_.recorder->ToChromeJson(limit).Dump() + "\n";
    return response;
  }
  if (path == "/trace/slow") {
    if (options_.tracer == nullptr) {
      response.status = 404;
      response.content_type = "text/plain; charset=utf-8";
      response.body = "no request tracer wired\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = options_.tracer->ToJson().Dump() + "\n";
    return response;
  }
  if (path == "/slo") {
    if (options_.slo == nullptr) {
      response.status = 404;
      response.content_type = "text/plain; charset=utf-8";
      response.body = "no SLO tracker wired\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = options_.slo->ToJson().Dump() + "\n";
    return response;
  }
  if (path == "/healthz" || path == "/readyz") {
    const bool liveness = path == "/healthz";
    const std::function<Json()>& fn =
        liveness ? options_.health_fn : options_.ready_fn;
    Json body = Json::Object{};
    body[liveness ? "healthy" : "ready"] = true;
    if (fn) body = fn();
    const char* key = liveness ? "healthy" : "ready";
    const bool ok = body.contains(key) && body.at(key).is_bool() &&
                    body.at(key).as_bool();
    response.status = ok ? 200 : 503;
    response.content_type = "application/json";
    response.body = body.Dump() + "\n";
    return response;
  }
  if (path == "/snapshot") {
    MemoryTracker::Global().PublishTo(options_.registry);
    Json doc = Json::Object{};
    doc["metrics"] = options_.registry->ToJson();
    doc["memory"] = MemoryTracker::Global().ToJson();
    doc["trace_events"] = static_cast<int64_t>(
        options_.recorder->event_count());
    response.content_type = "application/json";
    response.body = doc.DumpPretty() + "\n";
    return response;
  }
  response.status = 404;
  response.content_type = "text/plain; charset=utf-8";
  response.body = "not found: " + (path.empty() ? "(bad request)" : path) +
                  "\nendpoints: /metrics /trace /trace/slow /slo /healthz"
                  " /readyz /snapshot\n";
  return response;
}

}  // namespace obs
}  // namespace alt
