#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

#include "src/util/logging.h"
#include "src/util/parallel_for.h"
#include "src/util/table_printer.h"

namespace alt {
namespace obs {

namespace internal {

/// Shared ALT_OBS switch for the metrics and trace layers.
bool ObsEnabledFromEnv() {
  const char* env = std::getenv("ALT_OBS");
  if (env == nullptr) return true;
  return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "false") != 0;
}

}  // namespace internal

namespace {

/// Shard index for the calling thread, cached per thread.
int ThreadShard() {
  thread_local const int shard = static_cast<int>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      static_cast<size_t>(Histogram::kShards));
  return shard;
}

/// Ratio-shaped bounds for the ParallelFor shard-imbalance histogram
/// (max shard time / mean shard time; 1.0 is a perfectly balanced region).
std::vector<double> ImbalanceBounds() {
  return {1.0, 1.05, 1.1, 1.2, 1.35, 1.5, 1.75, 2.0,
          2.5, 3.0,  4.0, 6.0, 8.0,  12.0, 16.0};
}

/// Feeds ParallelFor per-shard timings into the global registry. Installed
/// by MetricsRegistry::Global() only when observability is enabled, so a
/// disabled process never pays the per-shard clock reads.
void ParallelForMetricsObserver(int64_t shards, double max_shard_seconds,
                                double total_shard_seconds) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Counter* regions =
      registry.counter("util/parallel_for/regions_total");
  static Histogram* imbalance = registry.histogram(
      "util/parallel_for/shard_imbalance", ImbalanceBounds());
  regions->Add(1);
  const double mean = total_shard_seconds / static_cast<double>(shards);
  if (mean > 0.0) imbalance->Observe(max_shard_seconds / mean);
}

}  // namespace

void Gauge::Add(double delta) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

std::vector<double> Histogram::DefaultLatencyBoundsMs() {
  std::vector<double> bounds;
  for (double decade = 1e-3; decade < 1e5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::vector<double> bounds)
    : enabled_(enabled), bounds_(std::move(bounds)) {
  ALT_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    ALT_CHECK_LT(bounds_[i - 1], bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
  for (Shard& shard : shards_) {
    shard.bucket_counts.assign(bounds_.size() + 1, 0);
  }
}

void Histogram::Observe(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  // lower_bound: bucket i counts v in (bounds[i-1], bounds[i]], matching the
  // (lo, hi] interpolation in Summarize.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& shard = shards_[ThreadShard()];
  MutexLock lock(shard.mu);
  ++shard.bucket_counts[bucket];
  if (shard.count == 0) {
    shard.min = v;
    shard.max = v;
  } else {
    shard.min = std::min(shard.min, v);
    shard.max = std::max(shard.max, v);
  }
  ++shard.count;
  shard.sum += v;
}

HistogramBuckets Histogram::SnapshotBuckets() const {
  HistogramBuckets b;
  b.bounds = bounds_;
  b.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    b.count += shard.count;
    b.sum += shard.sum;
    for (size_t i = 0; i < b.counts.size(); ++i) {
      b.counts[i] += shard.bucket_counts[i];
    }
  }
  return b;
}

HistogramSummary Histogram::Summarize() const {
  std::vector<int64_t> merged(bounds_.size() + 1, 0);
  HistogramSummary s;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    if (shard.count == 0) continue;
    if (s.count == 0) {
      s.min = shard.min;
      s.max = shard.max;
    } else {
      s.min = std::min(s.min, shard.min);
      s.max = std::max(s.max, shard.max);
    }
    s.count += shard.count;
    s.sum += shard.sum;
    for (size_t i = 0; i < merged.size(); ++i) {
      merged[i] += shard.bucket_counts[i];
    }
  }
  if (s.count == 0) return s;
  s.mean = s.sum / static_cast<double>(s.count);

  // Interpolated percentile from the merged bucket counts. Bucket i spans
  // (lower_i, bounds_[i]] with lower_0 = min(0, min observed); the overflow
  // bucket's upper edge is the exact observed max.
  auto percentile = [&](double q) {
    const double rank = q * static_cast<double>(s.count);
    int64_t cumulative = 0;
    for (size_t i = 0; i < merged.size(); ++i) {
      if (merged[i] == 0) continue;
      const double next = static_cast<double>(cumulative + merged[i]);
      if (next >= rank) {
        const double lo = i == 0 ? std::min(0.0, s.min) : bounds_[i - 1];
        const double hi = i < bounds_.size() ? bounds_[i] : s.max;
        const double within =
            (rank - static_cast<double>(cumulative)) /
            static_cast<double>(merged[i]);
        return std::min(s.max, lo + (hi - lo) * within);
      }
      cumulative += merged[i];
    }
    return s.max;
  };
  s.p50 = percentile(0.50);
  s.p95 = percentile(0.95);
  s.p99 = percentile(0.99);
  return s;
}

double Histogram::SummarizePercentile(double q) const {
  HistogramSummary s = Summarize();
  if (q <= 0.50) return s.p50;
  if (q <= 0.95) return s.p95;
  return s.p99;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Heap-allocated and never destroyed: worker threads may record metrics
  // during static destruction, and the registry must outlive them.
  static MetricsRegistry* global = []() {
    auto* registry = new MetricsRegistry();
    registry->set_enabled(internal::ObsEnabledFromEnv());
    if (registry->enabled()) {
      SetParallelForObserver(&ParallelForMetricsObserver);
    }
    return registry;
  }();
  return *global;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBoundsMs();
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(
                                new Histogram(&enabled_, std::move(bounds))))
             .first;
  }
  return it->second.get();
}

int64_t MetricsRegistry::counter_value(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

HistogramSummary MetricsRegistry::histogram_summary(
    const std::string& name) const {
  const Histogram* hist = nullptr;
  {
    MutexLock lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) hist = it->second.get();
  }
  return hist == nullptr ? HistogramSummary{} : hist->Summarize();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  // Handle pointers are copied under the lock, values read without it:
  // histogram snapshots take the shard locks and must not nest inside mu_.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  Snapshot snapshot;
  {
    MutexLock lock(mu_);
    snapshot.enabled = enabled();
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }
  for (const auto& [name, c] : counters) {
    snapshot.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges) {
    snapshot.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms) {
    snapshot.histograms.emplace_back(name, h->SnapshotBuckets());
  }
  return snapshot;
}

Json MetricsRegistry::ToJson() const {
  // Copy the handle maps under the lock, then summarize without it:
  // histogram summaries take the shard locks and must not nest inside mu_.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    MutexLock lock(mu_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }

  Json counters_json = Json::Object{};
  for (const auto& [name, c] : counters) counters_json[name] = c->value();
  Json gauges_json = Json::Object{};
  for (const auto& [name, g] : gauges) gauges_json[name] = g->value();
  Json histograms_json = Json::Object{};
  for (const auto& [name, h] : histograms) {
    const HistogramSummary s = h->Summarize();
    Json entry = Json::Object{};
    entry["count"] = s.count;
    entry["sum"] = s.sum;
    entry["mean"] = s.mean;
    entry["min"] = s.min;
    entry["max"] = s.max;
    entry["p50"] = s.p50;
    entry["p95"] = s.p95;
    entry["p99"] = s.p99;
    histograms_json[name] = entry;
  }

  Json doc = Json::Object{};
  doc["enabled"] = enabled();
  doc["counters"] = counters_json;
  doc["gauges"] = gauges_json;
  doc["histograms"] = histograms_json;
  return doc;
}

std::string MetricsRegistry::ToString() const {
  const Json snapshot = ToJson();
  std::string out;

  const Json::Object& counters = snapshot.at("counters").as_object();
  const Json::Object& gauges = snapshot.at("gauges").as_object();
  if (!counters.empty() || !gauges.empty()) {
    TablePrinter scalars({"metric", "kind", "value"});
    for (const auto& [name, value] : counters) {
      scalars.AddRow({name, "counter", TablePrinter::Num(value.as_number(), 0)});
    }
    for (const auto& [name, value] : gauges) {
      scalars.AddRow({name, "gauge", TablePrinter::Num(value.as_number(), 3)});
    }
    out += scalars.ToString();
  }

  const Json::Object& histograms = snapshot.at("histograms").as_object();
  if (!histograms.empty()) {
    if (!out.empty()) out += "\n";
    TablePrinter table(
        {"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& [name, s] : histograms) {
      table.AddRow({name, TablePrinter::Num(s.at("count").as_number(), 0),
                    TablePrinter::Num(s.at("mean").as_number()),
                    TablePrinter::Num(s.at("p50").as_number()),
                    TablePrinter::Num(s.at("p95").as_number()),
                    TablePrinter::Num(s.at("p99").as_number()),
                    TablePrinter::Num(s.at("max").as_number())});
    }
    out += table.ToString();
  }
  return out.empty() ? "(no metrics recorded)\n" : out;
}

}  // namespace obs
}  // namespace alt
