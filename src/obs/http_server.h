#ifndef ALT_SRC_OBS_HTTP_SERVER_H_
#define ALT_SRC_OBS_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/json.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace alt {
namespace obs {

class RequestTracer;
class SloTracker;

/// Telemetry exposition server ------------------------------------------------
///
/// A small dependency-free blocking HTTP/1.1 server (POSIX sockets, loopback
/// only) that makes a running ALT process observable from outside:
///
///   GET /metrics     Prometheus text exposition of the registry (export.h),
///                    memory gauges, alt_trace_dropped_events, and (when an
///                    SloTracker is wired) fresh alt_slo_* burn gauges
///   GET /trace       Chrome trace_event JSON from the TraceRecorder;
///                    `?limit=N` serves only the N most recent events
///   GET /trace/slow  slow-request ring of the wired RequestTracer: the
///                    slowest completed traces with per-segment latency
///                    decomposition
///   GET /slo         per-scenario SLO burn rates from the wired SloTracker
///   GET /healthz     liveness: 200 {"healthy": true, ...} or 503; wired by
///                    the owner (e.g. AltSystem: no open serving breaker)
///   GET /readyz      readiness: 200/503, e.g. "system initialized"
///   GET /snapshot    full registry + memory JSON
///
/// Malformed requests (bad request line, unterminated or oversized headers)
/// get a clean 400 and never wedge the serving thread.
///
/// The accept loop runs on a dedicated util::ThreadPool thread; requests
/// are handled synchronously (each render is cheap), so the server costs
/// one mostly-idle thread. Health/readiness semantics are injected as
/// callbacks so this layer stays below serving in the dependency order.
class TelemetryServer {
 public:
  struct Options {
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
    int port = 0;
    /// nullptr selects MetricsRegistry::Global().
    MetricsRegistry* registry = nullptr;
    /// nullptr selects TraceRecorder::Global().
    TraceRecorder* recorder = nullptr;
    /// Slow-request trace source for /trace/slow; nullptr = 404 there.
    RequestTracer* tracer = nullptr;
    /// SLO burn source for /slo (and alt_slo_* gauge refresh on /metrics);
    /// nullptr = 404 there.
    SloTracker* slo = nullptr;
    /// Liveness probe; must return an object with a boolean `healthy` key
    /// (503 when false). Unset: always healthy.
    std::function<Json()> health_fn;
    /// Readiness probe; object with a boolean `ready` key (503 when
    /// false). Unset: always ready.
    std::function<Json()> ready_fn;
  };

  /// Binds, listens, and starts the accept thread. Fails with IOError
  /// when the port cannot be bound.
  static Result<std::unique_ptr<TelemetryServer>> Start(Options options);

  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// The bound port (the chosen one when Options::port was 0).
  int port() const { return port_; }

  /// Stops accepting and joins the accept thread. Idempotent.
  void Stop();

  /// Handles one request path and returns (status code, content type,
  /// body). Exposed for tests; the socket loop calls exactly this.
  struct Response {
    int status = 200;
    std::string content_type;
    std::string body;
  };
  Response Handle(const std::string& path) const;

 private:
  explicit TelemetryServer(Options options);

  void AcceptLoop();
  void ServeConnection(int fd) const;

  // Thread safety: no mutex. options_/listen_fd_/port_/pool_ are written
  // by Start() before the accept thread exists and are read-only
  // afterwards; stop_ is the only cross-thread signal. Stop() flips stop_,
  // pokes the listener with a loopback connect, waits for the accept loop
  // to drain (pool WaitIdle), and only then closes the fd — so the accept
  // thread never reads a closed descriptor.
  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::unique_ptr<ThreadPool> pool_;  // One thread: the accept loop.
};

}  // namespace obs
}  // namespace alt

#endif  // ALT_SRC_OBS_HTTP_SERVER_H_
