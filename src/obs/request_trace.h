#ifndef ALT_SRC_OBS_REQUEST_TRACE_H_
#define ALT_SRC_OBS_REQUEST_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/json.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace obs {

/// Request-scoped tracing --------------------------------------------------
///
/// `RequestTracer` mints a `RequestContext` per serving request (sampled
/// deterministically at `ALT_TRACE_SAMPLE` rate) and, when the request
/// completes, folds its per-segment wall-time decomposition into
///   - per-segment histograms (`serving/trace/segment_ms/<segment>`, exported as
///     `alt_serving_trace_segment_ms{id="<segment>"}`), and
///   - a bounded ring of the N slowest completed request traces, served at
///     `/trace/slow`.
/// The context propagates by value through ServingClient → ShardCoordinator
/// → WorkerShard → BatchPredictor; an unsampled context costs zero clock
/// reads anywhere along that path.

/// Canonical segment taxonomy of the serving path. Segment sums are designed
/// to account for a request's end-to-end latency:
///   direct path : route + [failover|shed_requeue]* + queue_wait + compute
///   batched path: batch_wait + (the flush's decomposition, attributed to
///                 the representative request; other sampled co-batched
///                 requests see the whole flush as `compute`)
namespace segment {
inline constexpr const char* kRoute = "route";          // p2c replica ranking
inline constexpr const char* kQueueWait = "queue_wait";  // shard dispatch queue
inline constexpr const char* kBatchWait = "batch_wait";  // micro-batch coalesce
inline constexpr const char* kCompute = "compute";       // engine Predict
inline constexpr const char* kRetryBackoff = "retry_backoff";  // retry sleeps
inline constexpr const char* kFailover = "failover";  // failed attempts + rebalance
inline constexpr const char* kShedRequeue = "shed_requeue";  // shed attempts
}  // namespace segment

/// Per-request segment accumulator, shared (via the RequestContext's
/// shared_ptr) by every thread a sampled request crosses. Same-named
/// segments merge by accumulation (e.g. route once per failover round).
class RequestTrace {
 public:
  RequestTrace(uint64_t trace_id, std::string scenario, double start_us);

  void AddSegment(const char* name, double ms);
  std::vector<std::pair<std::string, double>> Segments() const;

  uint64_t trace_id() const { return trace_id_; }
  const std::string& scenario() const { return scenario_; }
  double start_us() const { return start_us_; }

 private:
  const uint64_t trace_id_;
  const std::string scenario_;
  const double start_us_;  // MonotonicMicros at StartRequest.
  mutable Mutex mu_;
  std::vector<std::pair<std::string, double>> segments_ ALT_GUARDED_BY(mu_);
};

class RequestTracer {
 public:
  struct Options {
    /// Sampling probability in [0,1]. Negative means: read ALT_TRACE_SAMPLE
    /// from the environment, defaulting to 0.01.
    double sample_rate = -1.0;
    /// Seeds both the deterministic sampling decision and trace-id minting:
    /// the same seed and request order sample the same requests.
    uint64_t seed = 42;
    /// Capacity of the slowest-completed-traces ring.
    int slow_ring_size = 32;
    MetricsRegistry* registry = nullptr;  // Null: the global registry.
    TraceRecorder* recorder = nullptr;    // Null: the global recorder.
  };

  RequestTracer();  // Default options.
  explicit RequestTracer(Options options);
  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  /// True when the tracer's registry is enabled; when false, StartRequest
  /// returns an inert context and CompleteRequest returns 0.
  bool enabled() const;

  /// Ticks the request counter and returns the request's context: always
  /// carries start_us for end-to-end timing (when enabled); additionally
  /// carries a trace id + accumulator when this request is sampled.
  RequestContext StartRequest(const std::string& scenario);

  /// Completes a request started by StartRequest. Returns the end-to-end
  /// latency in ms (0 when the tracer was disabled at start). For sampled
  /// requests, also feeds segment histograms and the slow-trace ring.
  double CompleteRequest(const RequestContext& ctx, const Status& status);

  struct CompletedTrace {
    uint64_t trace_id = 0;
    std::string scenario;
    double total_ms = 0.0;
    bool ok = true;
    std::string status = "OK";
    std::vector<std::pair<std::string, double>> segments;
    double SegmentSumMs() const;
    /// ms of `name` across merged segments (0 when absent).
    double SegmentMs(const std::string& name) const;
  };

  /// The retained slowest completed traces, slowest first.
  std::vector<CompletedTrace> SlowTraces() const;
  /// The `/trace/slow` document.
  Json ToJson() const;

  int64_t traced_requests() const;
  double slowest_ms() const;

  /// Runtime-adjustable sampling (e.g. burst to 1.0 around an incident).
  double sample_rate() const;
  void set_sample_rate(double rate);

  TraceRecorder* recorder() const { return recorder_; }

 private:
  Histogram* SegmentHistogram(const std::string& name) ALT_EXCLUDES(mu_);

  MetricsRegistry* registry_;
  TraceRecorder* recorder_;
  uint64_t seed_;
  size_t slow_ring_size_;
  std::atomic<uint64_t> ticket_{0};
  std::atomic<double> sample_rate_;
  Counter* completed_ = nullptr;      // serving/trace/completed
  Gauge* slowest_gauge_ = nullptr;    // serving/trace/slowest_ms
  mutable Mutex mu_;
  std::map<std::string, Histogram*> segment_hists_ ALT_GUARDED_BY(mu_);
  std::vector<CompletedTrace> slow_ ALT_GUARDED_BY(mu_);  // Unordered ring.
};

/// Stopwatch that attributes wall time to a named segment of a sampled
/// request. Inactive (zero clock reads) for unsampled contexts.
///
///   SegmentTimer t(ctx, segment::kRoute);   // records on destruction
///   SegmentTimer t(ctx); ... t.RecordAs(segment::kFailover);  // per attempt
///
/// RecordAs restarts the stopwatch, so one timer can meter consecutive
/// attempts; time not claimed by RecordAs before destruction is discarded
/// unless a destructor segment was given.
class SegmentTimer {
 public:
  explicit SegmentTimer(const RequestContext& ctx);
  SegmentTimer(const RequestContext& ctx, const char* segment);
  ~SegmentTimer();
  SegmentTimer(const SegmentTimer&) = delete;
  SegmentTimer& operator=(const SegmentTimer&) = delete;

  /// Records time since construction (or the previous RecordAs) against
  /// `segment`, then restarts.
  void RecordAs(const char* segment);

 private:
  std::shared_ptr<RequestTrace> trace_;  // Null when inactive.
  const char* on_destroy_;               // Null: discard unclaimed time.
  double start_us_ = 0.0;
};

}  // namespace obs
}  // namespace alt

#endif  // ALT_SRC_OBS_REQUEST_TRACE_H_
