#include "src/models/multi_sequence_model.h"

#include <cmath>

#include "src/autograd/ops.h"
#include "src/util/logging.h"

namespace alt {
namespace models {

MultiSequenceBatch MakeMultiSequenceBatch(const data::ScenarioData& data,
                                          const std::vector<size_t>& indices,
                                          int64_t num_channels,
                                          uint64_t seed) {
  ALT_CHECK_GE(num_channels, 1);
  data::Batch base = MakeBatch(data, indices);
  MultiSequenceBatch batch;
  batch.profiles = std::move(base.profiles);
  batch.labels = std::move(base.labels);
  batch.batch_size = base.batch_size;
  batch.seq_len = base.seq_len;
  batch.behaviors.push_back(base.behaviors);
  for (int64_t c = 1; c < num_channels; ++c) {
    // Derive extra channels by deterministic per-channel rotation of each
    // row — distinct but equally informative sequences.
    Rng rng(seed * 131 + static_cast<uint64_t>(c));
    std::vector<int64_t> channel = base.behaviors;
    for (int64_t r = 0; r < batch.batch_size; ++r) {
      const int64_t offset = rng.UniformInt(1, batch.seq_len - 1);
      int64_t* row = channel.data() + r * batch.seq_len;
      std::rotate(row, row + offset, row + batch.seq_len);
    }
    batch.behaviors.push_back(std::move(channel));
  }
  return batch;
}

MultiSequenceModel::MultiSequenceModel(
    ModelConfig config, std::vector<std::unique_ptr<BehaviorEncoder>> encoders,
    Rng* rng)
    : config_(std::move(config)), encoders_(std::move(encoders)) {
  ALT_CHECK(!encoders_.empty());
  std::vector<int64_t> profile_dims;
  profile_dims.push_back(config_.profile_dim);
  for (int64_t d : config_.profile_hidden) profile_dims.push_back(d);
  profile_dims.push_back(config_.profile_out);
  profile_encoder_ = std::make_unique<nn::Mlp>(
      profile_dims, nn::Activation::kRelu, rng, config_.dropout);

  for (size_t c = 0; c < encoders_.size(); ++c) {
    embeddings_.push_back(std::make_unique<nn::Embedding>(
        config_.vocab_size, config_.hidden_dim, rng));
  }
  std::vector<int64_t> head_dims;
  head_dims.push_back(config_.profile_out +
                      static_cast<int64_t>(encoders_.size()) *
                          config_.hidden_dim);
  for (int64_t d : config_.head_hidden) head_dims.push_back(d);
  head_dims.push_back(1);
  head_ = std::make_unique<nn::Mlp>(head_dims, nn::Activation::kRelu, rng,
                                    config_.dropout);
}

ag::Variable MultiSequenceModel::Forward(const MultiSequenceBatch& batch,
                                         Rng* dropout_rng) {
  ALT_CHECK_EQ(static_cast<int64_t>(batch.behaviors.size()), num_channels());
  ag::Variable profile_emb = profile_encoder_->Forward(
      ag::Variable::Constant(batch.profiles), dropout_rng);
  std::vector<ag::Variable> features = {profile_emb};
  for (size_t c = 0; c < encoders_.size(); ++c) {
    ag::Variable embedded = embeddings_[c]->Forward(
        batch.behaviors[c], batch.batch_size, batch.seq_len);
    features.push_back(ag::MeanTime(encoders_[c]->Encode(embedded)));
  }
  return head_->Forward(ag::ConcatLastDim(features), dropout_rng);
}

std::vector<float> MultiSequenceModel::PredictProbs(
    const MultiSequenceBatch& batch) {
  const bool was_training = training();
  SetTraining(false);
  Tensor logits = Forward(batch).value();
  SetTraining(was_training);
  std::vector<float> probs(static_cast<size_t>(logits.numel()));
  for (int64_t i = 0; i < logits.numel(); ++i) {
    const float z = logits[i];
    probs[static_cast<size_t>(i)] =
        z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                  : std::exp(z) / (1.0f + std::exp(z));
  }
  return probs;
}

int64_t MultiSequenceModel::FlopsPerSample() const {
  int64_t flops = profile_encoder_->Flops(1) + head_->Flops(1);
  for (size_t c = 0; c < encoders_.size(); ++c) {
    flops += embeddings_[c]->Flops(config_.seq_len);
    flops += encoders_[c]->Flops(config_.seq_len);
    flops += config_.seq_len * config_.hidden_dim;  // mean pooling
  }
  return flops;
}

std::vector<std::pair<std::string, nn::Module*>>
MultiSequenceModel::Children() {
  std::vector<std::pair<std::string, nn::Module*>> out;
  out.emplace_back("profile_encoder", profile_encoder_.get());
  for (size_t c = 0; c < encoders_.size(); ++c) {
    out.emplace_back("embedding" + std::to_string(c), embeddings_[c].get());
    out.emplace_back("encoder" + std::to_string(c), encoders_[c].get());
  }
  out.emplace_back("head", head_.get());
  return out;
}

Result<std::unique_ptr<MultiSequenceModel>> BuildMultiSequenceModel(
    const ModelConfig& config, int64_t num_channels, Rng* rng) {
  if (num_channels < 1) {
    return Status::InvalidArgument("need at least one behavior channel");
  }
  std::vector<std::unique_ptr<BehaviorEncoder>> encoders;
  for (int64_t c = 0; c < num_channels; ++c) {
    switch (config.encoder) {
      case EncoderKind::kLstm:
        encoders.push_back(std::make_unique<LstmBehaviorEncoder>(
            config.hidden_dim, config.encoder_layers, rng));
        break;
      case EncoderKind::kBert:
        encoders.push_back(std::make_unique<BertBehaviorEncoder>(
            config.hidden_dim, config.num_heads, config.ff_dim,
            config.encoder_layers, config.seq_len, rng));
        break;
      default:
        return Status::InvalidArgument(
            "multi-sequence model needs kLstm or kBert encoders");
    }
  }
  return std::make_unique<MultiSequenceModel>(config, std::move(encoders),
                                              rng);
}

}  // namespace models
}  // namespace alt
