#include "src/models/model_config.h"

namespace alt {
namespace models {

const char* EncoderKindName(EncoderKind kind) {
  switch (kind) {
    case EncoderKind::kNone:
      return "none";
    case EncoderKind::kLstm:
      return "lstm";
    case EncoderKind::kBert:
      return "bert";
    case EncoderKind::kNas:
      return "nas";
  }
  return "?";
}

Result<EncoderKind> EncoderKindFromName(const std::string& name) {
  if (name == "none") return EncoderKind::kNone;
  if (name == "lstm") return EncoderKind::kLstm;
  if (name == "bert") return EncoderKind::kBert;
  if (name == "nas") return EncoderKind::kNas;
  return Status::InvalidArgument("unknown encoder kind: " + name);
}

Json ModelConfig::ToJson() const {
  Json j;
  j["profile_dim"] = profile_dim;
  j["vocab_size"] = vocab_size;
  j["seq_len"] = seq_len;
  j["encoder"] = EncoderKindName(encoder);
  j["hidden_dim"] = hidden_dim;
  j["encoder_layers"] = encoder_layers;
  j["num_heads"] = num_heads;
  j["ff_dim"] = ff_dim;
  if (!nas_arch.is_null()) j["nas_arch"] = nas_arch;
  Json::Array profile;
  for (int64_t d : profile_hidden) profile.push_back(d);
  j["profile_hidden"] = std::move(profile);
  j["profile_out"] = profile_out;
  Json::Array head;
  for (int64_t d : head_hidden) head.push_back(d);
  j["head_hidden"] = std::move(head);
  j["dropout"] = static_cast<double>(dropout);
  j["learning_rate"] = static_cast<double>(learning_rate);
  return j;
}

Result<ModelConfig> ModelConfig::FromJson(const Json& j) {
  if (!j.is_object()) return Status::InvalidArgument("config must be object");
  ModelConfig c;
  auto get_int = [&](const std::string& key, int64_t* out) -> Status {
    if (!j.contains(key)) return Status::OK();
    if (!j.at(key).is_number()) {
      return Status::InvalidArgument(key + " must be a number");
    }
    *out = j.at(key).as_int();
    return Status::OK();
  };
  ALT_RETURN_IF_ERROR(get_int("profile_dim", &c.profile_dim));
  ALT_RETURN_IF_ERROR(get_int("vocab_size", &c.vocab_size));
  ALT_RETURN_IF_ERROR(get_int("seq_len", &c.seq_len));
  ALT_RETURN_IF_ERROR(get_int("hidden_dim", &c.hidden_dim));
  ALT_RETURN_IF_ERROR(get_int("encoder_layers", &c.encoder_layers));
  ALT_RETURN_IF_ERROR(get_int("num_heads", &c.num_heads));
  ALT_RETURN_IF_ERROR(get_int("ff_dim", &c.ff_dim));
  ALT_RETURN_IF_ERROR(get_int("profile_out", &c.profile_out));
  if (j.contains("encoder")) {
    ALT_ASSIGN_OR_RETURN(c.encoder,
                         EncoderKindFromName(j.at("encoder").as_string()));
  }
  if (j.contains("nas_arch")) c.nas_arch = j.at("nas_arch");
  auto get_dims = [&](const std::string& key,
                      std::vector<int64_t>* out) -> Status {
    if (!j.contains(key)) return Status::OK();
    if (!j.at(key).is_array()) {
      return Status::InvalidArgument(key + " must be an array");
    }
    out->clear();
    for (const Json& v : j.at(key).as_array()) {
      if (!v.is_number()) {
        return Status::InvalidArgument(key + " entries must be numbers");
      }
      out->push_back(v.as_int());
    }
    return Status::OK();
  };
  ALT_RETURN_IF_ERROR(get_dims("profile_hidden", &c.profile_hidden));
  ALT_RETURN_IF_ERROR(get_dims("head_hidden", &c.head_hidden));
  if (j.contains("dropout")) {
    c.dropout = static_cast<float>(j.at("dropout").as_number());
  }
  if (j.contains("learning_rate")) {
    c.learning_rate = static_cast<float>(j.at("learning_rate").as_number());
  }
  if (c.encoder == EncoderKind::kBert && c.hidden_dim % c.num_heads != 0) {
    return Status::InvalidArgument("num_heads must divide hidden_dim");
  }
  return c;
}

ModelConfig ModelConfig::Heavy(EncoderKind kind, int64_t profile_dim,
                               int64_t seq_len, int64_t vocab_size) {
  ModelConfig c;
  c.encoder = kind;
  c.profile_dim = profile_dim;
  c.seq_len = seq_len;
  c.vocab_size = vocab_size;
  c.hidden_dim = 15;
  c.encoder_layers = 6;
  c.num_heads = 3;
  c.ff_dim = 32;
  return c;
}

ModelConfig ModelConfig::Light(EncoderKind kind, int64_t profile_dim,
                               int64_t seq_len, int64_t vocab_size) {
  ModelConfig c = Heavy(kind, profile_dim, seq_len, vocab_size);
  c.encoder_layers = 3;
  return c;
}

ModelConfig ModelConfig::ProfileOnly(int64_t profile_dim) {
  ModelConfig c;
  c.encoder = EncoderKind::kNone;
  c.profile_dim = profile_dim;
  return c;
}

}  // namespace models
}  // namespace alt
