#ifndef ALT_SRC_MODELS_BASE_MODEL_H_
#define ALT_SRC_MODELS_BASE_MODEL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/behavior_encoder.h"
#include "src/models/model_config.h"
#include "src/nn/embedding.h"
#include "src/nn/mlp.h"
#include "src/nn/module.h"

namespace alt {
namespace models {

/// The paper's Fig. 2 architecture:
///   profile features --MLP--> profile embedding
///   behavior ids --Embedding--> --BehaviorEncoder--> mean pool --> embedding
///   concat --> prediction MLP --> 1 logit.
/// When `encoder` is null the model is profile-only (the "Basic" baseline).
class BaseModel : public nn::Module {
 public:
  BaseModel(ModelConfig config, std::unique_ptr<BehaviorEncoder> encoder,
            Rng* rng);

  /// Forward pass to logits [B, 1]. `dropout_rng` enables dropout when the
  /// module is in training mode.
  ag::Variable Forward(const data::Batch& batch, Rng* dropout_rng = nullptr);

  /// Eval-mode predicted probabilities for a batch.
  std::vector<float> PredictProbs(const data::Batch& batch);

  /// Approximate inference FLOPs for one sample (the paper's efficiency
  /// metric, Table V).
  int64_t FlopsPerSample() const;

  const ModelConfig& config() const { return config_; }
  BehaviorEncoder* behavior_encoder() { return encoder_.get(); }

 protected:
  std::vector<std::pair<std::string, Module*>> Children() override;

 private:
  ModelConfig config_;
  std::unique_ptr<nn::Mlp> profile_encoder_;
  std::unique_ptr<nn::Embedding> embedding_;     // null if profile-only
  std::unique_ptr<BehaviorEncoder> encoder_;     // null if profile-only
  std::unique_ptr<nn::Mlp> head_;
};

/// Builds a model for kNone / kLstm / kBert configs. kNas configs must go
/// through alt::nas::BuildModel (which needs the architecture description).
Result<std::unique_ptr<BaseModel>> BuildBaseModel(const ModelConfig& config,
                                                  Rng* rng);

/// Builds an identically-configured model and copies `source`'s weights —
/// the "copy" step of the scenario specific module. For kNas configs use
/// alt::nas::CloneModel.
Result<std::unique_ptr<BaseModel>> CloneBaseModel(BaseModel* source, Rng* rng);

}  // namespace models
}  // namespace alt

#endif  // ALT_SRC_MODELS_BASE_MODEL_H_
