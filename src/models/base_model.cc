#include "src/models/base_model.h"

#include <cmath>

#include "src/autograd/ops.h"
#include "src/util/logging.h"

namespace alt {
namespace models {

BaseModel::BaseModel(ModelConfig config,
                     std::unique_ptr<BehaviorEncoder> encoder, Rng* rng)
    : config_(std::move(config)), encoder_(std::move(encoder)) {
  std::vector<int64_t> profile_dims;
  profile_dims.push_back(config_.profile_dim);
  for (int64_t d : config_.profile_hidden) profile_dims.push_back(d);
  profile_dims.push_back(config_.profile_out);
  profile_encoder_ = std::make_unique<nn::Mlp>(
      profile_dims, nn::Activation::kRelu, rng, config_.dropout);

  int64_t head_in = config_.profile_out;
  if (encoder_ != nullptr) {
    embedding_ = std::make_unique<nn::Embedding>(config_.vocab_size,
                                                 config_.hidden_dim, rng);
    head_in += config_.hidden_dim;
  }
  std::vector<int64_t> head_dims;
  head_dims.push_back(head_in);
  for (int64_t d : config_.head_hidden) head_dims.push_back(d);
  head_dims.push_back(1);
  head_ = std::make_unique<nn::Mlp>(head_dims, nn::Activation::kRelu, rng,
                                    config_.dropout);
}

ag::Variable BaseModel::Forward(const data::Batch& batch, Rng* dropout_rng) {
  ALT_CHECK_EQ(batch.profiles.size(1), config_.profile_dim);
  ag::Variable profile_in = ag::Variable::Constant(batch.profiles);
  ag::Variable profile_emb =
      profile_encoder_->Forward(profile_in, dropout_rng);

  ag::Variable features = profile_emb;
  if (encoder_ != nullptr) {
    ALT_CHECK_EQ(batch.seq_len, config_.seq_len);
    ag::Variable embedded = embedding_->Forward(
        batch.behaviors, batch.batch_size, batch.seq_len);
    ag::Variable encoded = encoder_->Encode(embedded);  // [B, T, H]
    ag::Variable pooled = ag::MeanTime(encoded);        // [B, H]
    features = ag::ConcatLastDim({profile_emb, pooled});
  }
  return head_->Forward(features, dropout_rng);  // [B, 1]
}

std::vector<float> BaseModel::PredictProbs(const data::Batch& batch) {
  const bool was_training = training();
  SetTraining(false);
  Tensor logits = Forward(batch).value();
  SetTraining(was_training);
  std::vector<float> probs(static_cast<size_t>(logits.numel()));
  for (int64_t i = 0; i < logits.numel(); ++i) {
    const float z = logits[i];
    probs[static_cast<size_t>(i)] =
        z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                  : std::exp(z) / (1.0f + std::exp(z));
  }
  return probs;
}

int64_t BaseModel::FlopsPerSample() const {
  int64_t flops = profile_encoder_->Flops(1);
  if (encoder_ != nullptr) {
    flops += embedding_->Flops(config_.seq_len);
    flops += encoder_->Flops(config_.seq_len);
    flops += config_.seq_len * config_.hidden_dim;  // mean pooling
  }
  flops += head_->Flops(1);
  return flops;
}

std::vector<std::pair<std::string, nn::Module*>> BaseModel::Children() {
  std::vector<std::pair<std::string, nn::Module*>> out;
  out.emplace_back("profile_encoder", profile_encoder_.get());
  if (encoder_ != nullptr) {
    out.emplace_back("embedding", embedding_.get());
    out.emplace_back("behavior_encoder", encoder_.get());
  }
  out.emplace_back("head", head_.get());
  return out;
}

Result<std::unique_ptr<BaseModel>> BuildBaseModel(const ModelConfig& config,
                                                  Rng* rng) {
  std::unique_ptr<BehaviorEncoder> encoder;
  switch (config.encoder) {
    case EncoderKind::kNone:
      break;
    case EncoderKind::kLstm:
      encoder = std::make_unique<LstmBehaviorEncoder>(
          config.hidden_dim, config.encoder_layers, rng);
      break;
    case EncoderKind::kBert:
      if (config.hidden_dim % config.num_heads != 0) {
        return Status::InvalidArgument("num_heads must divide hidden_dim");
      }
      encoder = std::make_unique<BertBehaviorEncoder>(
          config.hidden_dim, config.num_heads, config.ff_dim,
          config.encoder_layers, config.seq_len, rng);
      break;
    case EncoderKind::kNas:
      return Status::InvalidArgument(
          "kNas configs must be built via alt::nas::BuildModel");
  }
  return std::make_unique<BaseModel>(config, std::move(encoder), rng);
}

Result<std::unique_ptr<BaseModel>> CloneBaseModel(BaseModel* source,
                                                  Rng* rng) {
  ALT_ASSIGN_OR_RETURN(std::unique_ptr<BaseModel> clone,
                       BuildBaseModel(source->config(), rng));
  ALT_RETURN_IF_ERROR(clone->CopyParametersFrom(source));
  return clone;
}

}  // namespace models
}  // namespace alt
