#ifndef ALT_SRC_MODELS_BEHAVIOR_ENCODER_H_
#define ALT_SRC_MODELS_BEHAVIOR_ENCODER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/nn/embedding.h"
#include "src/nn/lstm.h"
#include "src/nn/module.h"
#include "src/nn/transformer.h"

namespace alt {
namespace models {

/// Interface of the Fig. 2 behavior encoding module: maps an embedded event
/// sequence [B, T, H] to contextualized features [B, T, H]. Implementations:
/// stacked LSTM, BERT-style transformer, and (in src/nas) the architecture
/// derived by the budget-limited NAS.
class BehaviorEncoder : public nn::Module {
 public:
  virtual ag::Variable Encode(const ag::Variable& embedded) = 0;
  /// Inference FLOPs for one sample of length `seq_len`.
  virtual int64_t Flops(int64_t seq_len) const = 0;
};

/// The paper's "LSTM-based" encoder.
class LstmBehaviorEncoder : public BehaviorEncoder {
 public:
  LstmBehaviorEncoder(int64_t hidden_dim, int64_t num_layers, Rng* rng)
      : lstm_(std::make_unique<nn::Lstm>(hidden_dim, hidden_dim, num_layers,
                                         rng)) {}

  ag::Variable Encode(const ag::Variable& embedded) override {
    return lstm_->Forward(embedded);
  }
  int64_t Flops(int64_t seq_len) const override {
    return lstm_->Flops(seq_len);
  }

 protected:
  std::vector<std::pair<std::string, Module*>> Children() override {
    return {{"lstm", lstm_.get()}};
  }

 private:
  std::unique_ptr<nn::Lstm> lstm_;
};

/// The paper's "BERT-based" encoder: learned positional embeddings plus a
/// transformer encoder stack.
class BertBehaviorEncoder : public BehaviorEncoder {
 public:
  BertBehaviorEncoder(int64_t hidden_dim, int64_t num_heads, int64_t ff_dim,
                      int64_t num_layers, int64_t max_seq_len, Rng* rng)
      : positions_(std::make_unique<nn::PositionalEmbedding>(max_seq_len,
                                                             hidden_dim, rng)),
        encoder_(std::make_unique<nn::TransformerEncoder>(
            hidden_dim, num_heads, ff_dim, num_layers, rng)) {}

  ag::Variable Encode(const ag::Variable& embedded) override {
    return encoder_->Forward(positions_->Forward(embedded));
  }
  int64_t Flops(int64_t seq_len) const override {
    return positions_->Flops(seq_len) + encoder_->Flops(seq_len);
  }

 protected:
  std::vector<std::pair<std::string, Module*>> Children() override {
    return {{"positions", positions_.get()}, {"encoder", encoder_.get()}};
  }

 private:
  std::unique_ptr<nn::PositionalEmbedding> positions_;
  std::unique_ptr<nn::TransformerEncoder> encoder_;
};

}  // namespace models
}  // namespace alt

#endif  // ALT_SRC_MODELS_BEHAVIOR_ENCODER_H_
