#ifndef ALT_SRC_MODELS_MULTI_SEQUENCE_MODEL_H_
#define ALT_SRC_MODELS_MULTI_SEQUENCE_MODEL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/base_model.h"
#include "src/models/behavior_encoder.h"
#include "src/nn/embedding.h"
#include "src/nn/mlp.h"

namespace alt {
namespace models {

/// A batch carrying several behavior sequences per user (e.g. clicks,
/// purchases, payments) in addition to the profile features.
struct MultiSequenceBatch {
  Tensor profiles;  // [B, profile_dim]
  /// One id matrix per behavior channel, each row-major [B, seq_len].
  std::vector<std::vector<int64_t>> behaviors;
  Tensor labels;  // [B, 1]
  int64_t batch_size = 0;
  int64_t seq_len = 0;
};

/// Builds a MultiSequenceBatch by replicating a single-channel scenario's
/// sequence through `num_channels` deterministic per-channel shuffles
/// (test/bench helper for multi-channel workloads).
MultiSequenceBatch MakeMultiSequenceBatch(const data::ScenarioData& data,
                                          const std::vector<size_t>& indices,
                                          int64_t num_channels,
                                          uint64_t seed);

/// The Sec. III-D observation made concrete: industrial models carry
/// several behavior sequences, so the behavior encoding module is
/// instantiated once per channel and dominates inference cost. Each channel
/// has its own embedding table and encoder copy; channel embeddings are
/// concatenated with the profile embedding before the prediction head.
///
/// This is the motivating workload for the budget-limited NAS: FlopsPerSample
/// grows linearly in the number of channels, so shrinking the encoder pays
/// off `num_channels` times.
class MultiSequenceModel : public nn::Module {
 public:
  /// `encoders` supplies one behavior encoder per channel (size >= 1).
  MultiSequenceModel(ModelConfig config,
                     std::vector<std::unique_ptr<BehaviorEncoder>> encoders,
                     Rng* rng);

  ag::Variable Forward(const MultiSequenceBatch& batch,
                       Rng* dropout_rng = nullptr);

  std::vector<float> PredictProbs(const MultiSequenceBatch& batch);

  int64_t FlopsPerSample() const;
  int64_t num_channels() const {
    return static_cast<int64_t>(encoders_.size());
  }
  const ModelConfig& config() const { return config_; }

 protected:
  std::vector<std::pair<std::string, Module*>> Children() override;

 private:
  ModelConfig config_;
  std::unique_ptr<nn::Mlp> profile_encoder_;
  std::vector<std::unique_ptr<nn::Embedding>> embeddings_;
  std::vector<std::unique_ptr<BehaviorEncoder>> encoders_;
  std::unique_ptr<nn::Mlp> head_;
};

/// Builds a multi-sequence model with `num_channels` copies of the
/// config's encoder kind (kLstm / kBert).
Result<std::unique_ptr<MultiSequenceModel>> BuildMultiSequenceModel(
    const ModelConfig& config, int64_t num_channels, Rng* rng);

}  // namespace models
}  // namespace alt

#endif  // ALT_SRC_MODELS_MULTI_SEQUENCE_MODEL_H_
