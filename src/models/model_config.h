#ifndef ALT_SRC_MODELS_MODEL_CONFIG_H_
#define ALT_SRC_MODELS_MODEL_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/json.h"
#include "src/util/status.h"

namespace alt {
namespace models {

/// Which behavior-sequence encoder the model uses (Fig. 2's "behavior
/// encoding module").
enum class EncoderKind {
  kNone,  // Profile-only "Basic" model (Table VII baseline).
  kLstm,  // Stacked LSTM (the paper's LSTM-based architecture).
  kBert,  // Transformer encoder stack (the paper's BERT-based architecture).
  kNas,   // Architecture found by the budget-limited NAS (Sec. III-D).
};

const char* EncoderKindName(EncoderKind kind);
Result<EncoderKind> EncoderKindFromName(const std::string& name);

/// Full architecture + training hyperparameters of one Fig. 2 model.
/// Serializable to JSON so models can be rebuilt at serving time and so the
/// hyperparameter-optimization module can mutate it (Fig. 3 search space).
struct ModelConfig {
  // Input schema.
  int64_t profile_dim = 16;
  int64_t vocab_size = 40;
  int64_t seq_len = 16;

  // Behavior encoding module.
  EncoderKind encoder = EncoderKind::kLstm;
  int64_t hidden_dim = 15;      // Paper: 15 hidden units.
  int64_t encoder_layers = 6;   // Paper: 6 heavy / 3 light.
  int64_t num_heads = 3;        // Must divide hidden_dim for kBert.
  int64_t ff_dim = 32;          // Paper: 32 intermediate units (BERT).
  /// NAS-derived architecture description; only used when encoder == kNas.
  Json nas_arch;

  // Profile encoding module (MLP hidden dims; output profile_out).
  std::vector<int64_t> profile_hidden = {32};
  int64_t profile_out = 16;

  // Prediction module (MLP hidden dims; output is always 1 logit).
  std::vector<int64_t> head_hidden = {16};

  float dropout = 0.0f;
  float learning_rate = 1e-3f;  // Paper: Adam, lr 0.001.

  Json ToJson() const;
  static Result<ModelConfig> FromJson(const Json& json);

  /// Presets matching the paper's implementation details (Sec. V-A3).
  static ModelConfig Heavy(EncoderKind kind, int64_t profile_dim,
                           int64_t seq_len, int64_t vocab_size);
  static ModelConfig Light(EncoderKind kind, int64_t profile_dim,
                           int64_t seq_len, int64_t vocab_size);
  static ModelConfig ProfileOnly(int64_t profile_dim);
};

}  // namespace models
}  // namespace alt

#endif  // ALT_SRC_MODELS_MODEL_CONFIG_H_
