#include "src/train/trainer.h"

#include <cmath>
#include <limits>

#include "src/analysis/graph_audit.h"
#include "src/autograd/ops.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/opt/optimizer.h"
#include "src/util/logging.h"

namespace alt {
namespace train {

namespace {

/// Shared epoch loop; `loss_fn` maps a batch to the scalar training loss.
template <typename LossFn>
Result<TrainReport> RunTraining(models::BaseModel* model,
                                const data::ScenarioData& train_data,
                                const TrainOptions& options, LossFn loss_fn) {
  if (train_data.num_samples() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  if (options.epochs <= 0 || options.batch_size <= 0) {
    return Status::InvalidArgument("epochs and batch_size must be positive");
  }
  model->SetTraining(true);
  opt::Adam optimizer(model->Parameters(), options.learning_rate);
  Rng rng(options.seed);
  Rng dropout_rng = rng.Fork();

  TrainReport report;
  double best_loss = std::numeric_limits<double>::infinity();
  int64_t bad_epochs = 0;
  bool audited = false;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Histogram* epoch_time = metrics.histogram("train/trainer/epoch_time_ms");
  obs::Histogram* step_time = metrics.histogram("train/trainer/step_time_ms");
  obs::Counter* steps_total = metrics.counter("train/trainer/steps_total");
  obs::Gauge* last_epoch_loss = metrics.gauge("train/trainer/last_epoch_loss");
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    ALT_TRACE_SPAN(epoch_span, "train/epoch");
    obs::ScopedTimerMs epoch_timer(epoch_time);
    double epoch_loss = 0.0;
    int64_t num_batches = 0;
    for (const auto& indices : data::ShuffledBatchIndices(
             train_data.num_samples(), options.batch_size, &rng)) {
      obs::ScopedTimerMs step_timer(step_time);
      steps_total->Add(1);
      data::Batch batch = MakeBatch(train_data, indices);
      optimizer.ZeroGrad();
      ag::Variable loss = loss_fn(batch, &dropout_rng);
      if (options.audit_graph && !audited) {
        audited = true;
        analysis::GraphReport audit =
            analysis::AuditModel(loss, model->Parameters());
        ALT_LOG(Info) << "first-batch graph audit:\n" << audit.ToString();
        if (!audit.clean()) {
          return Status::FailedPrecondition("graph audit failed: " +
                                            audit.errors.front());
        }
      }
      epoch_loss += loss.value()[0];
      ++num_batches;
      loss.Backward();
      if (options.grad_clip > 0.0f) {
        optimizer.ClipGradNorm(options.grad_clip);
      }
      optimizer.Step();
    }
    epoch_loss /= static_cast<double>(num_batches);
    last_epoch_loss->Set(epoch_loss);
    ALT_OBS_COUNTER_ADD("train/trainer/epochs_total", 1);
    if (epoch == 0) report.first_epoch_loss = epoch_loss;
    report.final_epoch_loss = epoch_loss;
    ++report.epochs_run;
    if (options.patience > 0) {
      if (epoch_loss < best_loss - options.min_improvement) {
        best_loss = epoch_loss;
        bad_epochs = 0;
      } else if (++bad_epochs >= options.patience) {
        break;
      }
    }
  }
  model->SetTraining(false);
  return report;
}

}  // namespace

Result<TrainReport> TrainModel(models::BaseModel* model,
                               const data::ScenarioData& train_data,
                               const TrainOptions& options) {
  return RunTraining(
      model, train_data, options,
      [model](const data::Batch& batch, Rng* dropout_rng) {
        ag::Variable logits = model->Forward(batch, dropout_rng);
        ag::Variable targets = ag::Variable::Constant(batch.labels);
        return ag::BCEWithLogits(logits, targets);
      });
}

Result<TrainReport> TrainWithDistillation(models::BaseModel* student,
                                          models::BaseModel* teacher,
                                          const data::ScenarioData& train_data,
                                          float delta,
                                          const TrainOptions& options) {
  if (teacher == nullptr) {
    return Status::InvalidArgument("teacher must not be null");
  }
  return RunTraining(
      student, train_data, options,
      [student, teacher, delta](const data::Batch& batch, Rng* dropout_rng) {
        ag::Variable logits = student->Forward(batch, dropout_rng);
        ag::Variable hard = ag::Variable::Constant(batch.labels);
        // Teacher soft labels, eval mode, no gradient.
        std::vector<float> teacher_probs = teacher->PredictProbs(batch);
        Tensor soft_tensor =
            Tensor::FromVector({batch.batch_size, 1}, teacher_probs);
        ag::Variable soft = ag::Variable::Constant(std::move(soft_tensor));
        ag::Variable loss_hard = ag::BCEWithLogits(logits, hard);
        ag::Variable loss_soft = ag::BCEWithLogits(logits, soft);
        return ag::Add(loss_hard, ag::ScalarMul(loss_soft, delta));
      });
}

std::vector<float> Predict(models::BaseModel* model,
                           const data::ScenarioData& dataset,
                           int64_t batch_size) {
  std::vector<float> out;
  out.reserve(static_cast<size_t>(dataset.num_samples()));
  std::vector<size_t> indices;
  for (int64_t start = 0; start < dataset.num_samples();
       start += batch_size) {
    const int64_t end = std::min(dataset.num_samples(), start + batch_size);
    indices.clear();
    for (int64_t i = start; i < end; ++i) {
      indices.push_back(static_cast<size_t>(i));
    }
    data::Batch batch = MakeBatch(dataset, indices);
    std::vector<float> probs = model->PredictProbs(batch);
    out.insert(out.end(), probs.begin(), probs.end());
  }
  return out;
}

double EvaluateAuc(models::BaseModel* model,
                   const data::ScenarioData& dataset) {
  return data::Auc(dataset.labels, Predict(model, dataset));
}

double EvaluateLogLoss(models::BaseModel* model,
                       const data::ScenarioData& dataset) {
  return data::LogLoss(dataset.labels, Predict(model, dataset));
}

}  // namespace train
}  // namespace alt
