#include "src/train/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/analysis/graph_audit.h"
#include "src/autograd/ops.h"
#include "src/obs/memory_tracker.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/opt/optimizer.h"
#include "src/resilience/checkpoint.h"
#include "src/util/logging.h"

namespace alt {
namespace train {

namespace {

/// Everything a resumed run must restore for bit-exact continuation:
/// weights, Adam moments, both RNG streams, and the progress counters.
Status SaveTrainerCheckpoint(const std::string& path,
                             models::BaseModel* model,
                             const opt::Adam& optimizer, const Rng& rng,
                             const Rng& dropout_rng, int64_t next_epoch,
                             const TrainReport& report, double best_loss,
                             int64_t bad_epochs) {
  resilience::CheckpointBuilder builder;
  Json& meta = builder.mutable_meta();
  meta["kind"] = "trainer";
  meta["next_epoch"] = next_epoch;
  meta["epochs_run"] = report.epochs_run;
  meta["first_epoch_loss"] = report.first_epoch_loss;
  meta["final_epoch_loss"] = report.final_epoch_loss;
  meta["bad_epochs"] = bad_epochs;
  // Infinity (no finite loss yet) is not representable in JSON; absence
  // of the key means "still infinite".
  if (std::isfinite(best_loss)) meta["best_loss"] = best_loss;
  ALT_ASSIGN_OR_RETURN(std::string weights,
                       resilience::ModuleWeightsBlob(model));
  builder.AddBlob("weights", std::move(weights));
  ALT_ASSIGN_OR_RETURN(std::string adam, resilience::AdamStateBlob(optimizer));
  builder.AddBlob("adam", std::move(adam));
  builder.AddBlob("rng", rng.SaveState());
  builder.AddBlob("dropout_rng", dropout_rng.SaveState());
  return builder.WriteToFile(path);
}

Status RestoreTrainerCheckpoint(const resilience::CheckpointReader& ckpt,
                                models::BaseModel* model,
                                opt::Adam* optimizer, Rng* rng,
                                Rng* dropout_rng, int64_t* next_epoch,
                                TrainReport* report, double* best_loss,
                                int64_t* bad_epochs) {
  if (!ckpt.meta().contains("kind") ||
      ckpt.meta().at("kind").as_string() != "trainer") {
    return Status::InvalidArgument("not a trainer checkpoint");
  }
  ALT_ASSIGN_OR_RETURN(std::string weights, ckpt.blob("weights"));
  ALT_RETURN_IF_ERROR(resilience::RestoreModuleWeights(model, weights));
  ALT_ASSIGN_OR_RETURN(std::string adam, ckpt.blob("adam"));
  ALT_RETURN_IF_ERROR(resilience::RestoreAdamState(optimizer, adam));
  ALT_ASSIGN_OR_RETURN(std::string rng_state, ckpt.blob("rng"));
  ALT_ASSIGN_OR_RETURN(std::string dropout_state, ckpt.blob("dropout_rng"));
  if (!rng->LoadState(rng_state) || !dropout_rng->LoadState(dropout_state)) {
    return Status::InvalidArgument("corrupt RNG state in checkpoint");
  }
  *next_epoch = ckpt.meta().at("next_epoch").as_int();
  report->epochs_run = ckpt.meta().at("epochs_run").as_int();
  report->first_epoch_loss = ckpt.meta().at("first_epoch_loss").as_number();
  report->final_epoch_loss = ckpt.meta().at("final_epoch_loss").as_number();
  *bad_epochs = ckpt.meta().at("bad_epochs").as_int();
  if (ckpt.meta().contains("best_loss")) {
    *best_loss = ckpt.meta().at("best_loss").as_number();
  }
  return Status::OK();
}

/// Shared epoch loop; `loss_fn` maps a batch to the scalar training loss.
template <typename LossFn>
Result<TrainReport> RunTraining(models::BaseModel* model,
                                const data::ScenarioData& train_data,
                                const TrainOptions& options, LossFn loss_fn) {
  if (train_data.num_samples() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  if (options.epochs <= 0 || options.batch_size <= 0) {
    return Status::InvalidArgument("epochs and batch_size must be positive");
  }
  obs::ScopedMemoryTag memory_tag("train");
  model->SetTraining(true);
  opt::Adam optimizer(model->Parameters(), options.learning_rate);
  Rng rng(options.seed);
  Rng dropout_rng = rng.Fork();

  TrainReport report;
  double best_loss = std::numeric_limits<double>::infinity();
  int64_t bad_epochs = 0;
  bool audited = false;
  const bool checkpointing = !options.checkpoint_path.empty();
  const int64_t checkpoint_every = std::max<int64_t>(
      1, options.checkpoint_every_epochs);
  int64_t start_epoch = 0;
  if (checkpointing && options.resume) {
    Result<resilience::CheckpointReader> loaded =
        resilience::CheckpointReader::ReadFromFile(options.checkpoint_path);
    if (loaded.ok()) {
      ALT_RETURN_IF_ERROR(RestoreTrainerCheckpoint(
          loaded.value(), model, &optimizer, &rng, &dropout_rng, &start_epoch,
          &report, &best_loss, &bad_epochs));
      ALT_LOG(Info) << "resumed training from " << options.checkpoint_path
                    << " at epoch " << start_epoch;
      if (start_epoch >= options.epochs) {
        model->SetTraining(false);
        return report;
      }
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      // A missing checkpoint means a clean start; a corrupt one is an error.
      return loaded.status();
    }
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Histogram* epoch_time = metrics.histogram("train/trainer/epoch_time_ms");
  obs::Histogram* step_time = metrics.histogram("train/trainer/step_time_ms");
  obs::Counter* steps_total = metrics.counter("train/trainer/steps_total");
  obs::Gauge* last_epoch_loss = metrics.gauge("train/trainer/last_epoch_loss");
  for (int64_t epoch = start_epoch; epoch < options.epochs; ++epoch) {
    ALT_TRACE_SPAN(epoch_span, "train/epoch");
    obs::ScopedTimerMs epoch_timer(epoch_time);
    double epoch_loss = 0.0;
    int64_t num_batches = 0;
    for (const auto& indices : data::ShuffledBatchIndices(
             train_data.num_samples(), options.batch_size, &rng)) {
      obs::ScopedTimerMs step_timer(step_time);
      steps_total->Add(1);
      data::Batch batch = MakeBatch(train_data, indices);
      optimizer.ZeroGrad();
      ag::Variable loss = loss_fn(batch, &dropout_rng);
      if (options.audit_graph && !audited) {
        audited = true;
        analysis::GraphReport audit =
            analysis::AuditModel(loss, model->Parameters());
        ALT_LOG(Info) << "first-batch graph audit:\n" << audit.ToString();
        if (!audit.clean()) {
          return Status::FailedPrecondition("graph audit failed: " +
                                            audit.errors.front());
        }
      }
      epoch_loss += loss.value()[0];
      ++num_batches;
      loss.Backward();
      if (options.grad_clip > 0.0f) {
        optimizer.ClipGradNorm(options.grad_clip);
      }
      optimizer.Step();
    }
    epoch_loss /= static_cast<double>(num_batches);
    last_epoch_loss->Set(epoch_loss);
    ALT_OBS_COUNTER_ADD("train/trainer/epochs_total", 1);
    if (epoch == 0) report.first_epoch_loss = epoch_loss;
    report.final_epoch_loss = epoch_loss;
    ++report.epochs_run;
    bool stop_early = false;
    if (options.patience > 0) {
      if (epoch_loss < best_loss - options.min_improvement) {
        best_loss = epoch_loss;
        bad_epochs = 0;
      } else if (++bad_epochs >= options.patience) {
        stop_early = true;
      }
    }
    if (checkpointing && ((epoch + 1) % checkpoint_every == 0 ||
                          epoch + 1 == options.epochs || stop_early)) {
      const Status saved = SaveTrainerCheckpoint(
          options.checkpoint_path, model, optimizer, rng, dropout_rng,
          epoch + 1, report, best_loss, bad_epochs);
      // A failed save must not kill the run: training state is intact and
      // the previous checkpoint (if any) is still whole on disk.
      if (!saved.ok()) {
        ALT_LOG(Warning) << "checkpoint save failed (continuing): "
                         << saved.ToString();
      }
    }
    if (stop_early) break;
  }
  model->SetTraining(false);
  return report;
}

}  // namespace

Result<TrainReport> TrainModel(models::BaseModel* model,
                               const data::ScenarioData& train_data,
                               const TrainOptions& options) {
  return RunTraining(
      model, train_data, options,
      [model](const data::Batch& batch, Rng* dropout_rng) {
        ag::Variable logits = model->Forward(batch, dropout_rng);
        ag::Variable targets = ag::Variable::Constant(batch.labels);
        return ag::BCEWithLogits(logits, targets);
      });
}

Result<TrainReport> TrainWithDistillation(models::BaseModel* student,
                                          models::BaseModel* teacher,
                                          const data::ScenarioData& train_data,
                                          float delta,
                                          const TrainOptions& options) {
  if (teacher == nullptr) {
    return Status::InvalidArgument("teacher must not be null");
  }
  return RunTraining(
      student, train_data, options,
      [student, teacher, delta](const data::Batch& batch, Rng* dropout_rng) {
        ag::Variable logits = student->Forward(batch, dropout_rng);
        ag::Variable hard = ag::Variable::Constant(batch.labels);
        // Teacher soft labels, eval mode, no gradient.
        std::vector<float> teacher_probs = teacher->PredictProbs(batch);
        Tensor soft_tensor =
            Tensor::FromVector({batch.batch_size, 1}, teacher_probs);
        ag::Variable soft = ag::Variable::Constant(std::move(soft_tensor));
        ag::Variable loss_hard = ag::BCEWithLogits(logits, hard);
        ag::Variable loss_soft = ag::BCEWithLogits(logits, soft);
        return ag::Add(loss_hard, ag::ScalarMul(loss_soft, delta));
      });
}

std::vector<float> Predict(models::BaseModel* model,
                           const data::ScenarioData& dataset,
                           int64_t batch_size) {
  std::vector<float> out;
  out.reserve(static_cast<size_t>(dataset.num_samples()));
  std::vector<size_t> indices;
  for (int64_t start = 0; start < dataset.num_samples();
       start += batch_size) {
    const int64_t end = std::min(dataset.num_samples(), start + batch_size);
    indices.clear();
    for (int64_t i = start; i < end; ++i) {
      indices.push_back(static_cast<size_t>(i));
    }
    data::Batch batch = MakeBatch(dataset, indices);
    std::vector<float> probs = model->PredictProbs(batch);
    out.insert(out.end(), probs.begin(), probs.end());
  }
  return out;
}

double EvaluateAuc(models::BaseModel* model,
                   const data::ScenarioData& dataset) {
  return data::Auc(dataset.labels, Predict(model, dataset));
}

double EvaluateLogLoss(models::BaseModel* model,
                       const data::ScenarioData& dataset) {
  return data::LogLoss(dataset.labels, Predict(model, dataset));
}

}  // namespace train
}  // namespace alt
