#ifndef ALT_SRC_TRAIN_TRAINER_H_
#define ALT_SRC_TRAIN_TRAINER_H_

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"
#include "src/data/metrics.h"
#include "src/models/base_model.h"
#include "src/util/status.h"

namespace alt {
namespace train {

/// Options for supervised training runs. The defaults follow the paper's
/// implementation details (Adam, lr 0.001, cross-entropy), with batch size
/// and epochs scaled to the synthetic workloads.
struct TrainOptions {
  int64_t epochs = 3;
  int64_t batch_size = 64;
  float learning_rate = 1e-3f;
  /// Global gradient-norm clip; <= 0 disables.
  float grad_clip = 5.0f;
  uint64_t seed = 1;
  /// Stop early when the epoch training loss fails to improve by at least
  /// `min_improvement` for `patience` consecutive epochs; 0 disables.
  int64_t patience = 0;
  float min_improvement = 1e-4f;
  /// Debug: statically audit the recorded loss graph on the first batch
  /// (analysis::AuditModel) and fail with FailedPrecondition on hard
  /// violations (cycle, grad-shape mismatch, unreachable trainable
  /// parameter). The report is logged at Info level.
  bool audit_graph = false;
  /// Checkpoint/resume for long runs. A non-empty `checkpoint_path` makes
  /// the run atomically overwrite that file with weights + Adam moments +
  /// RNG streams + progress every `checkpoint_every_epochs` completed
  /// epochs. With `resume` true, a run finding a checkpoint at that path
  /// restores it and continues to `epochs` total — bitwise identical to
  /// the uninterrupted run with the same seed (no checkpoint: clean start).
  std::string checkpoint_path;
  int64_t checkpoint_every_epochs = 1;
  bool resume = false;
};

/// Summary of one training run.
struct TrainReport {
  int64_t epochs_run = 0;
  double first_epoch_loss = 0.0;
  double final_epoch_loss = 0.0;
};

/// Trains `model` with binary cross-entropy on hard labels (Adam).
Result<TrainReport> TrainModel(models::BaseModel* model,
                               const data::ScenarioData& train_data,
                               const TrainOptions& options);

/// Trains `student` with the distillation loss of Eq. 5:
///   L = CE(y', y_hard) + delta * CE(y'_soft, y_soft)
/// where y_soft is the teacher's predicted probability. The teacher is used
/// in eval mode and receives no gradient.
Result<TrainReport> TrainWithDistillation(models::BaseModel* student,
                                          models::BaseModel* teacher,
                                          const data::ScenarioData& train_data,
                                          float delta,
                                          const TrainOptions& options);

/// Eval-mode predictions for the whole dataset, batched to bound memory.
std::vector<float> Predict(models::BaseModel* model,
                           const data::ScenarioData& dataset,
                           int64_t batch_size = 256);

/// AUC of `model` on `dataset`.
double EvaluateAuc(models::BaseModel* model, const data::ScenarioData& dataset);

/// Mean binary cross-entropy of `model` on `dataset`.
double EvaluateLogLoss(models::BaseModel* model,
                       const data::ScenarioData& dataset);

}  // namespace train
}  // namespace alt

#endif  // ALT_SRC_TRAIN_TRAINER_H_
