#include "src/meta/meta_learner.h"

#include <algorithm>

#include "src/autograd/ops.h"
#include "src/obs/memory_tracker.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"

namespace alt {
namespace meta {

MetaLearner::MetaLearner(models::ModelConfig config, MetaOptions options,
                         ModelBuilder builder)
    : config_(std::move(config)),
      options_(std::move(options)),
      builder_(builder ? std::move(builder) : &models::BuildBaseModel),
      rng_(options_.seed) {}

Status MetaLearner::Initialize(
    const std::vector<data::ScenarioData>& initial_scenarios) {
  if (initial_scenarios.empty()) {
    return Status::InvalidArgument("need at least one initial scenario");
  }
  ALT_TRACE_SPAN(init_span, "meta/initialize");
  obs::ScopedMemoryTag memory_tag("meta");
  data::ScenarioData pooled = data::ConcatScenarios(initial_scenarios);
  std::unique_ptr<models::BaseModel> model;
  {
    MutexLock lock(mu_);
    ALT_ASSIGN_OR_RETURN(model, builder_(config_, &rng_));
  }
  train::TrainOptions init = options_.init_train;
  init.learning_rate = config_.learning_rate;
  init.seed = options_.seed * 17 + 1;
  ALT_RETURN_IF_ERROR(train::TrainModel(model.get(), pooled, init).status());
  MutexLock lock(mu_);
  agnostic_ = std::move(model);
  return Status::OK();
}

Status MetaLearner::AdoptInitialModel(
    std::unique_ptr<models::BaseModel> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  if (model->config().profile_dim != config_.profile_dim ||
      model->config().seq_len != config_.seq_len ||
      model->config().vocab_size != config_.vocab_size) {
    return Status::InvalidArgument(
        "adopted model's input schema does not match");
  }
  MutexLock lock(mu_);
  config_ = model->config();
  agnostic_ = std::move(model);
  return Status::OK();
}

Result<std::unique_ptr<models::BaseModel>> MetaLearner::CloneAgnostic() {
  MutexLock lock(mu_);
  if (agnostic_ == nullptr) {
    return Status::FailedPrecondition("meta learner not initialized");
  }
  ALT_ASSIGN_OR_RETURN(auto clone, builder_(config_, &rng_));
  ALT_RETURN_IF_ERROR(clone->CopyParametersFrom(agnostic_.get()));
  return clone;
}

Result<std::unique_ptr<models::BaseModel>> MetaLearner::AdaptToScenario(
    const data::ScenarioData& scenario_train, bool send_feedback) {
  if (scenario_train.num_samples() < 4) {
    return Status::InvalidArgument("scenario has too few samples");
  }
  // Per-scenario adapt time: the latency a long-tail scenario pays between
  // arrival and having a usable specialized model.
  ALT_TRACE_SPAN(adapt_span, "meta/adapt");
  obs::ScopedMemoryTag memory_tag("meta");
  obs::ScopedTimerMs adapt_timer(
      obs::MetricsRegistry::Global().histogram("meta/meta_learner/adapt_time_ms"));
  ALT_OBS_COUNTER_ADD("meta/meta_learner/adaptations_total", 1);
  // theta_u <- copy of theta_0.
  ALT_ASSIGN_OR_RETURN(std::unique_ptr<models::BaseModel> adapted,
                       CloneAgnostic());

  // Split into support D_u^s and query D_u^q.
  Rng split_rng(options_.seed * 1009 +
                static_cast<uint64_t>(scenario_train.scenario_id) * 31 + 7);
  auto [support, query] = data::SplitSupportQuery(
      scenario_train, options_.query_fraction, &split_rng);

  // Eq. 1: fine-tune on the support set.
  train::TrainOptions finetune = options_.finetune;
  finetune.learning_rate = config_.learning_rate;
  finetune.seed = options_.seed * 2003 +
                  static_cast<uint64_t>(scenario_train.scenario_id) + 13;
  ALT_RETURN_IF_ERROR(
      train::TrainModel(adapted.get(), support, finetune).status());

  // Eq. 2: feed the query-set loss gradient back into theta_0.
  if (send_feedback && query.num_samples() > 0) {
    ALT_RETURN_IF_ERROR(ApplyQueryFeedback(adapted.get(), query));
  }
  return adapted;
}

Status MetaLearner::ApplyQueryFeedback(models::BaseModel* adapted,
                                       const data::ScenarioData& query) {
  // Accumulate the query-set gradient at theta_u (first-order approximation
  // of Eq. 2: the gradient w.r.t. theta_u stands in for the gradient
  // w.r.t. theta_0; see DESIGN.md).
  adapted->SetTraining(false);
  adapted->ZeroGrad();
  constexpr int64_t kChunk = 256;
  int64_t num_chunks = 0;
  for (int64_t start = 0; start < query.num_samples(); start += kChunk) {
    std::vector<size_t> idx;
    const int64_t end = std::min(query.num_samples(), start + kChunk);
    for (int64_t i = start; i < end; ++i) {
      idx.push_back(static_cast<size_t>(i));
    }
    data::Batch batch = MakeBatch(query, idx);
    ag::Variable loss = ag::BCEWithLogits(
        adapted->Forward(batch), ag::Variable::Constant(batch.labels));
    loss.Backward();
    ++num_chunks;
  }
  if (num_chunks == 0) return Status::OK();
  const float scale =
      options_.meta_lr / static_cast<float>(num_chunks);

  // theta_0 <- theta_0 - eta * grad, serialized across scenarios (Eq. 3's
  // asynchronous accumulation).
  MutexLock lock(mu_);
  if (agnostic_ == nullptr) {
    return Status::FailedPrecondition("meta learner not initialized");
  }
  auto dst = agnostic_->NamedParameters();
  auto src = adapted->NamedParameters();
  if (dst.size() != src.size()) {
    return Status::Internal("adapted model diverged from agnostic model");
  }
  for (size_t i = 0; i < dst.size(); ++i) {
    if (dst[i].first != src[i].first ||
        !dst[i].second->value().SameShape(src[i].second->value())) {
      return Status::Internal("parameter mismatch at " + dst[i].first);
    }
    if (src[i].second->has_grad()) {
      dst[i].second->mutable_value().Axpy(-scale, src[i].second->grad());
    }
  }
  return Status::OK();
}

Status MetaLearner::PeriodicRefresh(
    const std::vector<data::ScenarioData>& all_scenarios,
    const train::TrainOptions& options) {
  if (all_scenarios.empty()) {
    return Status::InvalidArgument("no scenarios to refresh from");
  }
  data::ScenarioData pooled = data::ConcatScenarios(all_scenarios);
  // Refresh trains a detached copy, then swaps it in, so adapt threads are
  // never blocked for the duration of training.
  ALT_ASSIGN_OR_RETURN(std::unique_ptr<models::BaseModel> refreshed,
                       CloneAgnostic());
  ALT_RETURN_IF_ERROR(
      train::TrainModel(refreshed.get(), pooled, options).status());
  MutexLock lock(mu_);
  agnostic_ = std::move(refreshed);
  return Status::OK();
}

}  // namespace meta
}  // namespace alt
