#ifndef ALT_SRC_META_META_LEARNER_H_
#define ALT_SRC_META_META_LEARNER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/base_model.h"
#include "src/train/trainer.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace meta {

/// Builds a model from a config; injected so the meta learner can host
/// NAS-initialized agnostic models without depending on src/nas (pass
/// alt::nas::BuildModel from higher layers). Defaults to
/// models::BuildBaseModel.
using ModelBuilder = std::function<Result<std::unique_ptr<models::BaseModel>>(
    const models::ModelConfig&, Rng*)>;

/// Options of the scenario agnostic / scenario specific heavy model
/// machinery (Sec. III-B/C).
struct MetaOptions {
  /// Training of the initial agnostic model on pooled scenarios (Fig. 4).
  train::TrainOptions init_train;
  /// Fine-tuning of the per-scenario copy on the support split (Eq. 1).
  train::TrainOptions finetune;
  /// Fraction of a scenario's data held out as the query set D_u^q.
  double query_fraction = 0.3;
  /// The conservative meta step size eta of Eq. 2/3.
  float meta_lr = 0.02f;
  uint64_t seed = 9;

  MetaOptions() {
    init_train.epochs = 3;
    finetune.epochs = 2;
  }
};

/// Owns the scenario agnostic heavy model f0 and implements the meta
/// learning loop of the paper:
///  - Initialize() trains f0 on the pooled initial scenarios, or
///    AdoptInitialModel() installs an externally-constructed candidate
///    (e.g. the HPO- or NAS-initialized model, whichever validated better).
///  - AdaptToScenario() copies f0, fine-tunes the copy on the scenario's
///    support split (Eq. 1), and — first-order approximation — applies the
///    query-split gradient of the adapted model back onto f0 scaled by the
///    conservative eta (Eq. 2).
///  - Multiple scenarios may adapt concurrently from different threads;
///    feedback applications are serialized on an internal mutex, which is
///    exactly the asynchronous accumulation of Eq. 3.
class MetaLearner {
 public:
  MetaLearner(models::ModelConfig config, MetaOptions options,
              ModelBuilder builder = nullptr);

  /// Trains f0 from scratch on the pooled initial scenarios.
  Status Initialize(const std::vector<data::ScenarioData>& initial_scenarios);

  /// Installs an externally built/trained f0 (must match `config`'s input
  /// schema; its config replaces the learner's).
  Status AdoptInitialModel(std::unique_ptr<models::BaseModel> model);

  bool initialized() const {
    MutexLock lock(mu_);
    return agnostic_ != nullptr;
  }

  /// The full Eq. 1 + Eq. 2 step for one scenario. Thread-safe. When
  /// `send_feedback` is false, only the fine-tuned copy is produced (used
  /// by ablations).
  Result<std::unique_ptr<models::BaseModel>> AdaptToScenario(
      const data::ScenarioData& scenario_train, bool send_feedback = true);

  /// Thread-safe snapshot of f0.
  Result<std::unique_ptr<models::BaseModel>> CloneAgnostic();

  /// Direct access for evaluation (not synchronized with adapt threads —
  /// callers must ensure no adaptation is in flight).
  models::BaseModel* agnostic_model() ALT_NO_THREAD_SAFETY_ANALYSIS {
    return agnostic_.get();  // alt_analyze: allow(A101): unsynchronized eval-only view, see contract above
  }

  /// Periodically retrain f0 on all stored scenario data (the "Meta-Train
  /// like" refresh extension the paper mentions in Sec. III-C).
  Status PeriodicRefresh(const std::vector<data::ScenarioData>& all_scenarios,
                         const train::TrainOptions& options);

  const models::ModelConfig& config() const { return config_; }
  const MetaOptions& options() const { return options_; }

 private:
  /// Applies the query-set gradient of `adapted` onto f0 (Eq. 2),
  /// first-order, under the update mutex.
  Status ApplyQueryFeedback(models::BaseModel* adapted,
                            const data::ScenarioData& query);

  models::ModelConfig config_;
  MetaOptions options_;
  ModelBuilder builder_;
  Rng rng_;
  mutable Mutex mu_;  // Guards agnostic_ parameter reads/writes.
  std::unique_ptr<models::BaseModel> agnostic_ ALT_GUARDED_BY(mu_);
};

}  // namespace meta
}  // namespace alt

#endif  // ALT_SRC_META_META_LEARNER_H_
