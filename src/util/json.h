#ifndef ALT_SRC_UTIL_JSON_H_
#define ALT_SRC_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/util/status.h"

namespace alt {

/// A minimal JSON document model used for search-space configurations
/// (Fig. 3 of the paper), architecture exports (Fig. 9), and model metadata.
/// Supports null, bool, number (double), string, array, object.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}           // NOLINT
  Json(bool b) : value_(b) {}                         // NOLINT
  Json(double d) : value_(d) {}                       // NOLINT
  Json(int i) : value_(static_cast<double>(i)) {}     // NOLINT
  Json(int64_t i) : value_(static_cast<double>(i)) {} // NOLINT
  Json(size_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}     // NOLINT
  Json(std::string s) : value_(std::move(s)) {}       // NOLINT
  Json(Array a) : value_(std::move(a)) {}             // NOLINT
  Json(Object o) : value_(std::move(o)) {}            // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  int64_t as_int() const { return static_cast<int64_t>(std::get<double>(value_)); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  Array& as_array() { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }
  Object& as_object() { return std::get<Object>(value_); }

  /// Object member access; creates the object/member on mutation.
  Json& operator[](const std::string& key);
  /// Const lookup; returns a shared null Json when the key is absent.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Serializes to a compact JSON string.
  std::string Dump() const;
  /// Serializes with 2-space indentation.
  std::string DumpPretty() const;

  /// Parses `text`; returns InvalidArgument on malformed input.
  static Result<Json> Parse(const std::string& text);

  bool operator==(const Json& other) const { return value_ == other.value_; }

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace alt

#endif  // ALT_SRC_UTIL_JSON_H_
