#include "src/util/logging.h"

#include <atomic>
#include <mutex>

namespace alt {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const bool enabled =
      level_ >= GetLogLevel() || level_ == LogLevel::kFatal;
  if (enabled) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace alt
