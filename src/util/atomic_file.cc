#include "src/util/atomic_file.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <ostream>

namespace alt {

namespace {

/// Distinct temp names for concurrent writers targeting the same path from
/// one process; cross-process collisions are avoided by the pid-free rename
/// semantics (last rename wins, both contents are complete).
std::string TempPathFor(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
  return path + ".tmp." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream*)>& writer) {
  const std::string tmp = TempPathFor(path);
  Status result = Status::OK();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::IOError("cannot open temp file " + tmp);
    }
    result = writer(&out);
    if (result.ok()) {
      out.flush();
      if (!out.good()) {
        result = Status::IOError("short write to " + tmp);
      }
    }
  }
  if (result.ok()) {
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      result = Status::IOError("rename " + tmp + " -> " + path + ": " +
                               ec.message());
    }
  }
  if (!result.ok()) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);  // Best effort; the error wins.
  }
  return result;
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  return AtomicWriteFile(path, [&contents](std::ostream* out) {
    out->write(contents.data(),
               static_cast<std::streamsize>(contents.size()));
    if (!out->good()) return Status::IOError("short write");
    return Status::OK();
  });
}

}  // namespace alt
