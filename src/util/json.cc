#include "src/util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/util/logging.h"

namespace alt {

namespace {
const Json& NullJson() {
  static const Json* kNull = new Json();
  return *kNull;
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
    return;
  }
  // Shortest representation that parses back to exactly the same double.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  *out += buf;
}

/// Recursive-descent parser over a string view with position tracking.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    SkipWhitespace();
    ALT_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at position " +
                                     std::to_string(pos_));
    }
    return value;
  }

 private:
  Result<Json> ParseValue() {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true", Json(true));
      case 'f':
        return ParseLiteral("false", Json(false));
      case 'n':
        return ParseLiteral("null", Json(nullptr));
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // consume '{'
    Json::Object obj;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      SkipWhitespace();
      if (Peek() != '"') return Fail("expected string key");
      ALT_ASSIGN_OR_RETURN(Json key, ParseString());
      SkipWhitespace();
      if (Peek() != ':') return Fail("expected ':'");
      ++pos_;
      SkipWhitespace();
      ALT_ASSIGN_OR_RETURN(Json value, ParseValue());
      obj.emplace(key.as_string(), std::move(value));
      SkipWhitespace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(obj));
      }
      return Fail("expected ',' or '}'");
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // consume '['
    Json::Array arr;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      SkipWhitespace();
      ALT_ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.push_back(std::move(value));
      SkipWhitespace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(arr));
      }
      return Fail("expected ',' or ']'");
    }
  }

  Result<Json> ParseString() {
    ++pos_;  // consume '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Json(std::move(out));
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += h - '0';
              } else if (h >= 'a' && h <= 'f') {
                code += h - 'a' + 10;
              } else if (h >= 'A' && h <= 'F') {
                code += h - 'A' + 10;
              } else {
                return Fail("bad hex digit");
              }
            }
            // Basic-plane code points only; encode as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    char* end = nullptr;
    std::string num = text_.substr(start, pos_ - start);
    double d = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    return Json(d);
  }

  Result<Json> ParseLiteral(const std::string& literal, Json value) {
    if (text_.compare(pos_, literal.size(), literal) != 0) {
      return Fail("bad literal");
    }
    pos_ += literal.size();
    return value;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument(what + " at position " +
                                   std::to_string(pos_));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Json& Json::operator[](const std::string& key) {
  if (!is_object()) value_ = Object{};
  return as_object()[key];
}

const Json& Json::at(const std::string& key) const {
  if (!is_object()) return NullJson();
  auto it = as_object().find(key);
  if (it == as_object().end()) return NullJson();
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string pad_close =
      indent > 0 ? std::string(static_cast<size_t>(indent * depth), ' ') : "";
  const char* nl = indent > 0 ? "\n" : "";
  if (is_null()) {
    *out += "null";
  } else if (is_bool()) {
    *out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    AppendNumber(out, as_number());
  } else if (is_string()) {
    AppendEscaped(out, as_string());
  } else if (is_array()) {
    const Array& arr = as_array();
    if (arr.empty()) {
      *out += "[]";
      return;
    }
    *out += "[";
    *out += nl;
    for (size_t i = 0; i < arr.size(); ++i) {
      *out += pad;
      arr[i].DumpTo(out, indent, depth + 1);
      if (i + 1 < arr.size()) *out += ",";
      *out += nl;
    }
    *out += pad_close;
    *out += "]";
  } else {
    const Object& obj = as_object();
    if (obj.empty()) {
      *out += "{}";
      return;
    }
    *out += "{";
    *out += nl;
    size_t i = 0;
    for (const auto& [key, value] : obj) {
      *out += pad;
      AppendEscaped(out, key);
      *out += indent > 0 ? ": " : ":";
      value.DumpTo(out, indent, depth + 1);
      if (++i < obj.size()) *out += ",";
      *out += nl;
    }
    *out += pad_close;
    *out += "}";
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Json::DumpPretty() const {
  std::string out;
  DumpTo(&out, /*indent=*/2, /*depth=*/0);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace alt
