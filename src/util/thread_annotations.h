#ifndef ALT_SRC_UTIL_THREAD_ANNOTATIONS_H_
#define ALT_SRC_UTIL_THREAD_ANNOTATIONS_H_

/// Thread-safety annotation macros -------------------------------------------
///
/// Wrappers over Clang's thread-safety attributes
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), spelled with an
/// ALT_ prefix so the repo builds on any compiler:
///
///   - under Clang with the `ALT_THREAD_SAFETY` CMake option ON
///     (`-DALT_THREAD_SAFETY=ON`, which also adds `-Wthread-safety
///     -Werror=thread-safety`), the macros expand to the real attributes and
///     the compiler proves lock discipline;
///   - everywhere else they expand to nothing.
///
/// Independently of the compiler, `tools/alt_analyze` parses these
/// annotations lexically and enforces the same discipline (rules A101-A103),
/// so GCC-only builds still get a checked contract.
///
/// Usage rules (see DESIGN.md "Static analysis"):
///   - every mutable field shared between threads is `ALT_GUARDED_BY(mu)`
///     (atomics excepted: they synchronize themselves);
///   - private helpers called with the lock held are `ALT_REQUIRES(mu)`
///     and carry the `Locked` name suffix;
///   - public entry points that take the lock themselves may declare
///     `ALT_EXCLUDES(mu)` to document (and check) non-reentrancy;
///   - the annotated capability type is `alt::Mutex` (src/util/mutex.h) —
///     Clang rejects `guarded_by` on a plain std::mutex, which carries no
///     capability attribute.

#if defined(ALT_THREAD_SAFETY) && defined(__clang__)
#define ALT_TS_ATTRIBUTE_(x) __attribute__((x))
#else
#define ALT_TS_ATTRIBUTE_(x)
#endif

/// Class attribute: the type is a lockable capability ("mutex").
#define ALT_CAPABILITY(x) ALT_TS_ATTRIBUTE_(capability(x))

/// Class attribute: RAII object that holds a capability for its lifetime.
#define ALT_SCOPED_CAPABILITY ALT_TS_ATTRIBUTE_(scoped_lockable)

/// Field attribute: reads/writes require holding `x`.
#define ALT_GUARDED_BY(x) ALT_TS_ATTRIBUTE_(guarded_by(x))

/// Field attribute: the pointed-to data requires holding `x`.
#define ALT_PT_GUARDED_BY(x) ALT_TS_ATTRIBUTE_(pt_guarded_by(x))

/// Function attribute: the caller must hold the capability on entry.
#define ALT_REQUIRES(...) ALT_TS_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Function attribute: the caller must NOT hold the capability (the
/// function acquires it itself; calling it with the lock held deadlocks).
#define ALT_EXCLUDES(...) ALT_TS_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Function attribute: acquires the capability (held on return).
#define ALT_ACQUIRE(...) ALT_TS_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// Function attribute: releases the capability (not held on return).
#define ALT_RELEASE(...) ALT_TS_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// Function attribute: acquires the capability when returning `value`.
#define ALT_TRY_ACQUIRE(...) \
  ALT_TS_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// Function attribute: asserts the capability is held (runtime-checked
/// elsewhere; informs the static analysis only).
#define ALT_ASSERT_CAPABILITY(x) ALT_TS_ATTRIBUTE_(assert_capability(x))

/// Function attribute: returns a reference to the named capability.
#define ALT_RETURN_CAPABILITY(x) ALT_TS_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use with a
/// comment explaining why the discipline cannot be expressed.
#define ALT_NO_THREAD_SAFETY_ANALYSIS \
  ALT_TS_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // ALT_SRC_UTIL_THREAD_ANNOTATIONS_H_
