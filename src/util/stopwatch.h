#ifndef ALT_SRC_UTIL_STOPWATCH_H_
#define ALT_SRC_UTIL_STOPWATCH_H_

#include <chrono>

namespace alt {

/// Monotonic wall-clock stopwatch used for trial time limits and inference
/// latency measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace alt

#endif  // ALT_SRC_UTIL_STOPWATCH_H_
