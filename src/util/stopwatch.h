#ifndef ALT_SRC_UTIL_STOPWATCH_H_
#define ALT_SRC_UTIL_STOPWATCH_H_

#include <chrono>

namespace alt {

/// Monotonic wall-clock stopwatch.
///
/// DEPRECATED for telemetry (ISSUE 3): production instrumentation must go
/// through the observability layer — `obs::ScopedTimerMs` for metric
/// histograms and `obs::TraceSpan` / `ALT_TRACE_SPAN` for trace timing — so
/// wall-time reporting has one source of truth (and one off switch,
/// ALT_OBS). Stopwatch remains for tests, benchmarks, and control-flow
/// timeouts (e.g. hpo::TuneService trial budgets), where the measured time
/// *is* program logic rather than an observation.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace alt

#endif  // ALT_SRC_UTIL_STOPWATCH_H_
