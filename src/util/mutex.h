#ifndef ALT_SRC_UTIL_MUTEX_H_
#define ALT_SRC_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.h"

/// Annotated synchronization primitives --------------------------------------
///
/// `alt::Mutex` wraps std::mutex and carries the `capability` attribute that
/// Clang's thread-safety analysis needs: `ALT_GUARDED_BY(mu)` is only legal
/// when `mu` is a capability-annotated type, so guarded state must hang off
/// an alt::Mutex, never a bare std::mutex. `alt::MutexLock` is the RAII
/// holder (scoped capability) and `alt::CondVar` wraps
/// std::condition_variable_any so waits can be expressed against an
/// alt::Mutex directly — Mutex satisfies BasicLockable, and the wait methods
/// are `ALT_REQUIRES(mu)` so both Clang and tools/alt_analyze see the lock
/// contract.
///
/// Style note: condition waits use explicit `while (!pred) cv.Wait(mu);`
/// loops rather than lambda predicates. Clang's analysis cannot see the held
/// capability inside a lambda body, so predicate closures over guarded
/// fields would produce false positives under -Werror=thread-safety.

namespace alt {

/// A std::mutex with Clang capability annotations. Satisfies Lockable, so it
/// works with std::lock_guard / std::unique_lock as well as alt::MutexLock.
class ALT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ALT_ACQUIRE() { mu_.lock(); }
  void unlock() ALT_RELEASE() { mu_.unlock(); }
  bool try_lock() ALT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over alt::Mutex. Equivalent to std::lock_guard but visible to
/// the thread-safety analysis as a scoped capability.
class ALT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ALT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ALT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with alt::Mutex. The Wait* methods require the
/// mutex to be held on entry (and hold it again on return), exactly like
/// std::condition_variable::wait with a unique_lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before returning.
  void Wait(Mutex& mu) ALT_REQUIRES(mu) { cv_.wait(mu); }

  /// As Wait, but returns std::cv_status::timeout once `deadline` passes.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           const std::chrono::time_point<Clock, Duration>&
                               deadline) ALT_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  /// As Wait, but returns std::cv_status::timeout after `rel_time`.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& rel_time)
      ALT_REQUIRES(mu) {
    return cv_.wait_for(mu, rel_time);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace alt

#endif  // ALT_SRC_UTIL_MUTEX_H_
