#include "src/util/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <future>
#include <thread>
#include <vector>

#include "src/util/thread_pool.h"

namespace alt {

namespace {

// Target scalar ops per task for ParallelForWork.
constexpr int64_t kTargetTaskWork = int64_t{1} << 15;

// > 0 while the current thread runs inside a parallel region body.
thread_local int tls_parallel_depth = 0;

struct ParallelRegionGuard {
  ParallelRegionGuard() { ++tls_parallel_depth; }
  ~ParallelRegionGuard() { --tls_parallel_depth; }
};

int DefaultThreads() {
  static const int resolved = []() {
    if (const char* env = std::getenv("ALT_THREADS")) {
      const int parsed = std::atoi(env);
      if (parsed > 0) return std::min(parsed, 1024);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }();
  return resolved;
}

std::atomic<int> g_thread_override{0};

std::atomic<ParallelForObserver> g_parallel_for_observer{nullptr};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int ComputeThreads() {
  const int override_n = g_thread_override.load(std::memory_order_relaxed);
  return override_n > 0 ? override_n : DefaultThreads();
}

void SetComputeThreads(int n) {
  g_thread_override.store(n > 0 ? std::min(n, 1024) : 0,
                          std::memory_order_relaxed);
}

ThreadPool* ComputePool(size_t min_workers) {
  // Function-local static: created on first demand, joined cleanly at exit.
  static ThreadPool pool(1);
  pool.EnsureWorkers(min_workers);
  return &pool;
}

bool InParallelRegion() { return tls_parallel_depth > 0; }

void SetParallelForObserver(ParallelForObserver observer) {
  g_parallel_for_observer.store(observer, std::memory_order_relaxed);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  if (end <= begin) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t n = end - begin;
  const int64_t num_chunks = (n + grain - 1) / grain;

  auto run_chunks = [&](int64_t chunk_begin, int64_t chunk_end) {
    for (int64_t c = chunk_begin; c < chunk_end; ++c) {
      const int64_t lo = begin + c * grain;
      const int64_t hi = std::min<int64_t>(end, lo + grain);
      body(lo, hi);
    }
  };

  if (num_chunks == 1) {
    // Single chunk: no concurrency, and deliberately no region marker so a
    // nested kernel (e.g. the GEMM inside a batch-of-1 BatchedMatMul) can
    // still parallelize.
    run_chunks(0, 1);
    return;
  }

  const int threads = ComputeThreads();
  if (threads <= 1 || InParallelRegion()) {
    ParallelRegionGuard guard;
    run_chunks(0, num_chunks);
    return;
  }

  const int64_t shards = std::min<int64_t>(threads, num_chunks);
  ThreadPool* pool = ComputePool(static_cast<size_t>(shards - 1));

  // Contiguous chunk shards: shard s covers [s*per + min(s, extra), ...).
  const int64_t per = num_chunks / shards;
  const int64_t extra = num_chunks % shards;
  auto shard_begin = [per, extra](int64_t s) {
    return s * per + std::min<int64_t>(s, extra);
  };

  // Shard-imbalance observability: only time shards when an observer is
  // installed (i.e. when obs is enabled), so the default path has no clock
  // reads. Each shard writes its own slot; the join orders the reads.
  const ParallelForObserver observer =
      g_parallel_for_observer.load(std::memory_order_relaxed);
  std::vector<double> shard_seconds(
      observer != nullptr ? static_cast<size_t>(shards) : 0, 0.0);
  auto run_shard = [&run_chunks, &shard_seconds, observer](
                       int64_t shard, int64_t cb, int64_t ce) {
    ParallelRegionGuard guard;
    if (observer == nullptr) {
      run_chunks(cb, ce);
      return;
    }
    const double t0 = NowSeconds();
    run_chunks(cb, ce);
    shard_seconds[static_cast<size_t>(shard)] = NowSeconds() - t0;
  };

  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(shards - 1));
  for (int64_t s = 1; s < shards; ++s) {
    const int64_t cb = shard_begin(s);
    const int64_t ce = shard_begin(s + 1);
    futures.push_back(
        pool->Submit([&run_shard, s, cb, ce]() { run_shard(s, cb, ce); }));
  }

  std::exception_ptr first_error;
  try {
    run_shard(0, shard_begin(0), shard_begin(1));
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  if (observer != nullptr) {
    double max_s = 0.0;
    double total_s = 0.0;
    for (double s : shard_seconds) {
      max_s = std::max(max_s, s);
      total_s += s;
    }
    observer(shards, max_s, total_s);
  }
}

void ParallelForWork(int64_t n, int64_t work_per_item,
                     const std::function<void(int64_t, int64_t)>& body) {
  const int64_t grain =
      std::max<int64_t>(1, kTargetTaskWork / std::max<int64_t>(1, work_per_item));
  ParallelFor(0, n, grain, body);
}

}  // namespace alt
