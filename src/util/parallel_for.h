#ifndef ALT_SRC_UTIL_PARALLEL_FOR_H_
#define ALT_SRC_UTIL_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace alt {

class ThreadPool;

/// Thread-count configuration for the compute-kernel layer --------------------
///
/// The number of compute threads resolves, in priority order, to:
///   1. the last value passed to SetComputeThreads (if > 0),
///   2. the ALT_THREADS environment variable (read once, at first use),
///   3. std::thread::hardware_concurrency().
/// The result is always >= 1. A value of 1 makes every ParallelFor run inline
/// on the calling thread with no pool involvement at all.
int ComputeThreads();

/// Overrides the compute thread count; `n <= 0` clears the override so the
/// environment/hardware default applies again. Intended for tests and
/// benchmarks; call between (not during) parallel regions.
void SetComputeThreads(int n);

/// The lazily created process-wide pool backing ParallelFor. Grows on demand
/// to `min_workers` workers. Exposed mainly for diagnostics; kernels should
/// go through ParallelFor instead of submitting to the pool directly.
ThreadPool* ComputePool(size_t min_workers);

/// True while the current thread is executing the body of a parallel region.
/// Nested ParallelFor calls detect this and run inline, so a kernel invoked
/// from inside another parallel kernel (or from a ComputePool task) can never
/// deadlock waiting for pool capacity.
bool InParallelRegion();

/// Data-parallel loop over [begin, end) -----------------------------------
///
/// The range is split into fixed chunks of `grain` iterations whose
/// boundaries are `begin + i * grain` — they depend only on (begin, end,
/// grain), never on the thread count. `body(chunk_begin, chunk_end)` is
/// invoked exactly once per chunk; chunks may run concurrently and in any
/// order. Because a given chunk always covers the same sub-range, a body
/// whose per-chunk computation is deterministic produces bit-identical
/// results for every thread count, including the threads == 1 inline path
/// (which walks the same chunks sequentially).
///
/// Scheduling: chunks are sharded contiguously over min(ComputeThreads(),
/// num_chunks) workers; the calling thread executes the first shard itself.
/// If the whole range fits in one chunk, `body` runs directly on the caller
/// (without marking a parallel region, so nested kernels may still fan out).
///
/// Exceptions thrown by `body` are captured; the first one is rethrown on
/// the calling thread after all chunks have finished.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

/// Observability hook ------------------------------------------------------
///
/// When an observer is installed, each multi-shard ParallelFor times its
/// shards and reports (shard count, slowest shard seconds, summed shard
/// seconds) after the join — the raw material for shard-imbalance metrics.
/// With no observer installed (the default, and always when ALT_OBS=off)
/// the per-shard clock reads are skipped entirely, so the hook costs one
/// relaxed atomic load per parallel region. Installed by
/// obs::MetricsRegistry::Global(); src/util stays independent of src/obs.
using ParallelForObserver = void (*)(int64_t shards,
                                     double max_shard_seconds,
                                     double total_shard_seconds);
void SetParallelForObserver(ParallelForObserver observer);

/// Convenience wrapper deriving the grain from the approximate number of
/// scalar operations each item costs, so every task gets a meaningful amount
/// of work (~32K scalar ops). The grain depends only on `work_per_item`,
/// keeping chunk boundaries — and therefore results — independent of the
/// thread count. Ranges cheaper than one grain run inline.
void ParallelForWork(int64_t n, int64_t work_per_item,
                     const std::function<void(int64_t, int64_t)>& body);

}  // namespace alt

#endif  // ALT_SRC_UTIL_PARALLEL_FOR_H_
