#ifndef ALT_SRC_UTIL_RNG_H_
#define ALT_SRC_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/logging.h"

namespace alt {

/// Deterministic random number generator used everywhere in the library so
/// experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// A new generator derived from this one; lets sub-components own
  /// independent deterministic streams.
  Rng Fork() { return Rng(engine_()); }

  /// Uniform in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    ALT_CHECK_LE(lo, hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal scaled to N(mean, stddev^2).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Gumbel(0, 1) noise, used by the GDAS sampler (Eq. 7 in the paper).
  double Gumbel() {
    double u = Uniform(1e-12, 1.0);
    return -std::log(-std::log(u));
  }

  /// Bernoulli(p).
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Index sampled proportionally to non-negative `weights`.
  size_t Categorical(const std::vector<double>& weights) {
    ALT_CHECK(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
      ALT_CHECK_GE(w, 0.0);
      total += w;
    }
    if (total <= 0.0) return UniformInt(0, static_cast<int64_t>(weights.size()) - 1);
    double r = Uniform(0.0, total);
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.size() - 1;
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// `k` distinct indices from [0, n) in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k) {
    ALT_CHECK_LE(k, n);
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    Shuffle(&idx);
    idx.resize(k);
    return idx;
  }

  std::mt19937_64& engine() { return engine_; }

  /// Serialized engine state (text), for checkpoint/resume: restoring the
  /// state continues the exact random stream of the saved run.
  std::string SaveState() const {
    std::ostringstream out;
    out << engine_;
    return out.str();
  }

  /// Restores a SaveState() snapshot. Returns false (engine untouched on
  /// parse failure is not guaranteed; reseed on false) for malformed input.
  bool LoadState(const std::string& state) {
    std::istringstream in(state);
    in >> engine_;
    return !in.fail();
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace alt

#endif  // ALT_SRC_UTIL_RNG_H_
