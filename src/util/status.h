#ifndef ALT_SRC_UTIL_STATUS_H_
#define ALT_SRC_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace alt {

/// Error codes used across the ALT library. Library code never throws;
/// fallible operations return Status or Result<T> (RocksDB/Arrow idiom).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kDeadlineExceeded,
  kInternal,
  kUnimplemented,
  kCancelled,
  kIOError,
  /// A required backend (e.g. a serving shard) is gone or unreachable;
  /// retrying against a different replica may succeed.
  kUnavailable,
  /// The backend is alive but over capacity and is shedding load (e.g. a
  /// serving shard past its queue watermark). The request was rejected at
  /// admission — nothing was enqueued — so the caller should back off and
  /// retry later rather than fail over as if the backend were dead.
  kResourceExhausted,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error container. Holds T on success, Status otherwise.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (error).
  Result(Status status)  // NOLINT(runtime/explicit)
      : value_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// The error status. OK when this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  /// Requires ok(). Accessing the value of an error Result aborts.
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define ALT_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::alt::Status _alt_status = (expr);            \
    if (!_alt_status.ok()) return _alt_status;     \
  } while (false)

/// Evaluates a Result expression; assigns its value to `lhs` or returns the
/// error. Usage: ALT_ASSIGN_OR_RETURN(auto x, ComputeX());
#define ALT_ASSIGN_OR_RETURN(lhs, expr)                       \
  ALT_ASSIGN_OR_RETURN_IMPL_(                                 \
      ALT_STATUS_CONCAT_(_alt_result, __LINE__), lhs, expr)

#define ALT_STATUS_CONCAT_INNER_(a, b) a##b
#define ALT_STATUS_CONCAT_(a, b) ALT_STATUS_CONCAT_INNER_(a, b)
#define ALT_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                               \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

}  // namespace alt

#endif  // ALT_SRC_UTIL_STATUS_H_
