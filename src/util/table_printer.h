#ifndef ALT_SRC_UTIL_TABLE_PRINTER_H_
#define ALT_SRC_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace alt {

/// Renders aligned ASCII tables for the benchmark harness, matching the
/// row/column layout of the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string Num(double value, int precision = 3);

  /// Renders the table with a header separator.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace alt

#endif  // ALT_SRC_UTIL_TABLE_PRINTER_H_
