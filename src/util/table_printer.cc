#include "src/util/table_printer.h"

#include <cstdio>
#include <iostream>

#include "src/util/logging.h"

namespace alt {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  ALT_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace alt
