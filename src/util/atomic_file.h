#ifndef ALT_SRC_UTIL_ATOMIC_FILE_H_
#define ALT_SRC_UTIL_ATOMIC_FILE_H_

#include <functional>
#include <iosfwd>
#include <string>

#include "src/util/status.h"

namespace alt {

/// Crash-safe file replacement: `writer` streams into a temporary file in
/// the target's directory, which is renamed over `path` only after every
/// write succeeded. Readers therefore never observe a partially-written
/// file — they see either the previous content or the complete new one.
///
/// Any short write (a writer error, a failed flush, or a failed rename)
/// aborts the replacement, removes the temporary file, and surfaces as
/// kIOError (or the writer's own error status); `path` is left untouched.
Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(std::ostream*)>& writer);

/// Convenience overload for ready-made contents.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

}  // namespace alt

#endif  // ALT_SRC_UTIL_ATOMIC_FILE_H_
