#include "src/util/thread_pool.h"

#include "src/util/logging.h"

namespace alt {

ThreadPool::ThreadPool(size_t num_threads) {
  ALT_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::EnsureWorkers(size_t num_threads) {
  std::lock_guard<std::mutex> lock(mutex_);
  ALT_CHECK(!shutdown_);
  while (workers_.size() < num_threads) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

size_t ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace alt
