#include "src/util/thread_pool.h"

#include "src/util/logging.h"

namespace alt {

ThreadPool::ThreadPool(size_t num_threads) {
  ALT_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::EnsureWorkers(size_t num_threads) {
  MutexLock lock(mutex_);
  ALT_CHECK(!shutdown_);
  while (workers_.size() < num_threads) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

size_t ThreadPool::num_threads() const {
  MutexLock lock(mutex_);
  return workers_.size();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mutex_);
  while (!(queue_.empty() && active_ == 0)) idle_cv_.Wait(mutex_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mutex_);
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace alt
