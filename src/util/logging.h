#ifndef ALT_SRC_UTIL_LOGGING_H_
#define ALT_SRC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace alt {

/// Log severities, ordered. Messages below the global threshold are dropped.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the global minimum severity that is emitted. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log message. Emits on destruction; kFatal aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the message is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define ALT_LOG(level)                                                    \
  ::alt::internal_logging::LogMessage(::alt::LogLevel::k##level, __FILE__, \
                                      __LINE__)                            \
      .stream()

/// CHECK-style invariant assertion. Failure logs and aborts; these guard
/// programmer errors (bad shapes, null handles), not recoverable conditions.
#define ALT_CHECK(cond)                                  \
  if (!(cond))                                           \
  ::alt::internal_logging::LogMessage(                   \
      ::alt::LogLevel::kFatal, __FILE__, __LINE__)       \
      .stream()                                          \
      << "Check failed: " #cond " "

#define ALT_CHECK_EQ(a, b) ALT_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define ALT_CHECK_NE(a, b) ALT_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define ALT_CHECK_LT(a, b) ALT_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define ALT_CHECK_LE(a, b) ALT_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define ALT_CHECK_GT(a, b) ALT_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define ALT_CHECK_GE(a, b) ALT_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Debug-only variants of ALT_CHECK for hot-path invariants (null-handle and
/// index guards in accessors). Active in builds without NDEBUG, and in any
/// build compiled with -DALT_ENABLE_DCHECKS (tools/check.sh turns this on for
/// the sanitizer configurations); compiled to nothing otherwise.
#if !defined(NDEBUG) || defined(ALT_ENABLE_DCHECKS)
#define ALT_DCHECK_ENABLED 1
#else
#define ALT_DCHECK_ENABLED 0
#endif

#if ALT_DCHECK_ENABLED
#define ALT_DCHECK(cond) ALT_CHECK(cond)
#define ALT_DCHECK_EQ(a, b) ALT_CHECK_EQ(a, b)
#define ALT_DCHECK_NE(a, b) ALT_CHECK_NE(a, b)
#define ALT_DCHECK_LT(a, b) ALT_CHECK_LT(a, b)
#define ALT_DCHECK_LE(a, b) ALT_CHECK_LE(a, b)
#define ALT_DCHECK_GT(a, b) ALT_CHECK_GT(a, b)
#define ALT_DCHECK_GE(a, b) ALT_CHECK_GE(a, b)
#else
/// Disabled: never evaluates the condition, swallows streamed operands.
#define ALT_DCHECK(cond) \
  while (false) ::alt::internal_logging::NullStream()
#define ALT_DCHECK_EQ(a, b) ALT_DCHECK((a) == (b))
#define ALT_DCHECK_NE(a, b) ALT_DCHECK((a) != (b))
#define ALT_DCHECK_LT(a, b) ALT_DCHECK((a) < (b))
#define ALT_DCHECK_LE(a, b) ALT_DCHECK((a) <= (b))
#define ALT_DCHECK_GT(a, b) ALT_DCHECK((a) > (b))
#define ALT_DCHECK_GE(a, b) ALT_DCHECK((a) >= (b))
#endif

}  // namespace alt

#endif  // ALT_SRC_UTIL_LOGGING_H_
