#ifndef ALT_SRC_UTIL_THREAD_POOL_H_
#define ALT_SRC_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace alt {

/// A worker pool. Tasks are arbitrary callables; Submit returns a future for
/// the task's result. Used by the AntTune-style trial scheduler, for parallel
/// scenario handling, and as the backing pool of the compute-kernel layer
/// (see src/util/parallel_for.h). The pool can grow (EnsureWorkers) but never
/// shrinks before destruction.
///
/// Thread safety: all state is guarded by `mutex_`; every public method is
/// safe to call from any thread, including from inside running tasks
/// (Submit/EnsureWorkers re-acquire the lock only briefly). WaitIdle must
/// not be called from a pool task — it would wait for itself.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>>
      ALT_EXCLUDES(mutex_) {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.NotifyOne();
    return result;
  }

  /// Blocks until every queued and running task has finished.
  void WaitIdle() ALT_EXCLUDES(mutex_);

  /// Grows the pool to at least `num_threads` workers. No-op if the pool is
  /// already that large; safe to call while tasks are running.
  void EnsureWorkers(size_t num_threads) ALT_EXCLUDES(mutex_);

  size_t num_threads() const ALT_EXCLUDES(mutex_);

 private:
  void WorkerLoop() ALT_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  std::vector<std::thread> workers_ ALT_GUARDED_BY(mutex_);
  std::deque<std::function<void()>> queue_ ALT_GUARDED_BY(mutex_);
  CondVar cv_;
  CondVar idle_cv_;
  size_t active_ ALT_GUARDED_BY(mutex_) = 0;
  bool shutdown_ ALT_GUARDED_BY(mutex_) = false;
};

}  // namespace alt

#endif  // ALT_SRC_UTIL_THREAD_POOL_H_
