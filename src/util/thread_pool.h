#ifndef ALT_SRC_UTIL_THREAD_POOL_H_
#define ALT_SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace alt {

/// A worker pool. Tasks are arbitrary callables; Submit returns a future for
/// the task's result. Used by the AntTune-style trial scheduler, for parallel
/// scenario handling, and as the backing pool of the compute-kernel layer
/// (see src/util/parallel_for.h). The pool can grow (EnsureWorkers) but never
/// shrinks before destruction.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Blocks until every queued and running task has finished.
  void WaitIdle();

  /// Grows the pool to at least `num_threads` workers. No-op if the pool is
  /// already that large; safe to call while tasks are running.
  void EnsureWorkers(size_t num_threads);

  size_t num_threads() const;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace alt

#endif  // ALT_SRC_UTIL_THREAD_POOL_H_
