#ifndef ALT_SRC_TENSOR_CPU_FEATURES_H_
#define ALT_SRC_TENSOR_CPU_FEATURES_H_

namespace alt {

/// Runtime CPU-feature dispatch for the kernel layer ------------------------
///
/// The blocked scalar kernels in kernels.cc are the guaranteed-identical
/// contract; the AVX2+FMA micro-kernels in kernels_avx2.cc and the AVX-512
/// micro-kernels in kernels_avx512.cc are drop-in accelerations selected
/// once per process. Selection order:
///
///   1. ALT_SIMD environment variable: "off"/"scalar" forces the scalar
///      path, "avx2" pins AVX2 (no 512-bit code even on capable hosts —
///      useful to avoid AVX-512 frequency licensing on mixed fleets),
///      "avx512" requests the widest tier, "auto"/unset picks the best
///      level the host supports. A request the host or build cannot satisfy
///      falls back to the best available level with a warning.
///   2. Hardware probe: __builtin_cpu_supports on avx2+fma, and
///      avx512f+avx512bw+avx512vl for the 512-bit tier, gated on the
///      matching translation unit actually having been compiled (non-x86
///      builds always resolve to scalar).
///
/// The resolved level is cached in an atomic; SetSimdLevel overrides it at
/// runtime so tests and benchmarks can compare the paths in one process.
/// Kernels re-read ActiveSimdLevel() per call (one relaxed load), so an
/// override takes effect immediately on all threads.
///
/// Levels are ordered: every AVX-512 host also dispatches the 256-bit row
/// primitives (kAvx512 implies AVX2+FMA are usable), so kernels may test
/// `level >= kAvx2` for those and reserve `== kAvx512` for the wide GEMM.
enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// The level kernels dispatch on right now (env/probe resolution happens on
/// first call; later calls are one relaxed atomic load).
SimdLevel ActiveSimdLevel();

/// True when the AVX2 backend is usable: compiled in AND supported by the
/// host CPU. Independent of ALT_SIMD / SetSimdLevel.
bool Avx2Supported();
/// Same for the AVX-512 (F+BW+VL) backend.
bool Avx512Supported();
/// True when the int8 path may use the VNNI dot-product instructions:
/// Avx512Supported() plus compile/host avx512vnni. Not a dispatch level of
/// its own — it refines the kAvx512 int8 GEMM only.
bool Avx512VnniSupported();

/// Forces the dispatch level. Requesting a level the host/build cannot run
/// is ignored (the level is left at the best supported one) and returns
/// false; otherwise returns true. Test/bench hook — not meant for production
/// configuration, which should use ALT_SIMD.
bool SetSimdLevel(SimdLevel level);

/// "avx512", "avx2" or "scalar".
const char* SimdLevelName(SimdLevel level);
const char* ActiveSimdName();

}  // namespace alt

#endif  // ALT_SRC_TENSOR_CPU_FEATURES_H_
