#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "src/tensor/kernels.h"
#include "src/util/logging.h"

namespace alt {

int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    ALT_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const std::vector<int64_t>& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(ShapeNumel(shape_)), 0.0f);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          std::vector<float> values) {
  ALT_CHECK_EQ(ShapeNumel(shape), static_cast<int64_t>(values.size()));
  Tensor t;
  t.shape_ = std::move(shape);
  // Copy (not move): `values` uses the default allocator while tensor
  // storage is tracked, so the buffer must enter the accounted arena.
  t.data_.assign(values.begin(), values.end());
  return t;
}

Tensor Tensor::Scalar(float value) { return FromVector({1}, {value}); }

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng* rng, float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::RandUniform(std::vector<int64_t> shape, Rng* rng, float lo,
                           float hi) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

int64_t Tensor::size(int64_t dim) const {
  ALT_CHECK_GE(dim, 0);
  ALT_CHECK_LT(dim, ndim());
  return shape_[static_cast<size_t>(dim)];
}

float& Tensor::at(int64_t i, int64_t j) {
  ALT_CHECK_EQ(ndim(), 2);
  return data_[static_cast<size_t>(i * shape_[1] + j)];
}

float& Tensor::at(int64_t i, int64_t j, int64_t k) {
  ALT_CHECK_EQ(ndim(), 3);
  return data_[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
}

float Tensor::at(int64_t i, int64_t j) const {
  ALT_CHECK_EQ(ndim(), 2);
  return data_[static_cast<size_t>(i * shape_[1] + j)];
}

float Tensor::at(int64_t i, int64_t j, int64_t k) const {
  ALT_CHECK_EQ(ndim(), 3);
  return data_[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  ALT_CHECK(SameShape(other)) << ShapeToString(shape_) << " vs "
                              << ShapeToString(other.shape_);
  // alpha == 1.0f multiplies exactly, so this shares the axpy kernel
  // bit-for-bit with Axpy.
  VecAxpy(1.0f, other.data(), data(), numel());
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  ALT_CHECK(SameShape(other)) << ShapeToString(shape_) << " vs "
                              << ShapeToString(other.shape_);
  VecAxpy(alpha, other.data(), data(), numel());
}

void Tensor::ScaleInPlace(float alpha) {
  VecScale(alpha, data(), numel());
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  ALT_CHECK_EQ(ShapeNumel(new_shape), numel());
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

float Tensor::SumAll() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::MeanAll() const {
  ALT_CHECK_GT(numel(), 0);
  return SumAll() / static_cast<float>(numel());
}

float Tensor::MaxAll() const {
  ALT_CHECK_GT(numel(), 0);
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::MinAll() const {
  ALT_CHECK_GT(numel(), 0);
  return *std::min_element(data_.begin(), data_.end());
}

int64_t Tensor::ArgMaxAll() const {
  ALT_CHECK_GT(numel(), 0);
  return static_cast<int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

double Tensor::SquaredNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

std::string Tensor::ToString(int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " {";
  int64_t n = std::min<int64_t>(numel(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace alt
