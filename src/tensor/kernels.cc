#include "src/tensor/kernels.h"

#include <algorithm>
#include <limits>

#include "src/util/logging.h"

namespace alt {

namespace {

/// Inner 2-D gemm on raw pointers: C[m,n] (+)= A[m,k] * B[k,n].
void GemmImpl(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C[m,n] += A[k,m]^T B[k,n].
void GemmTransAImpl(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C[m,n] += A[m,k] B[n,k]^T.
void GemmTransBImpl(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

}  // namespace

void MatMul(const Tensor& a, const Tensor& b, Tensor* c) {
  ALT_CHECK_EQ(a.ndim(), 2);
  ALT_CHECK_EQ(b.ndim(), 2);
  ALT_CHECK_EQ(a.size(1), b.size(0));
  ALT_CHECK_EQ(c->size(0), a.size(0));
  ALT_CHECK_EQ(c->size(1), b.size(1));
  GemmImpl(a.data(), b.data(), c->data(), a.size(0), a.size(1), b.size(1),
           /*accumulate=*/false);
}

void MatMulAcc(const Tensor& a, const Tensor& b, Tensor* c) {
  ALT_CHECK_EQ(a.size(1), b.size(0));
  GemmImpl(a.data(), b.data(), c->data(), a.size(0), a.size(1), b.size(1),
           /*accumulate=*/true);
}

void MatMulTransAAcc(const Tensor& a, const Tensor& b, Tensor* c) {
  ALT_CHECK_EQ(a.size(0), b.size(0));
  GemmTransAImpl(a.data(), b.data(), c->data(), a.size(1), a.size(0),
                 b.size(1));
}

void MatMulTransBAcc(const Tensor& a, const Tensor& b, Tensor* c) {
  ALT_CHECK_EQ(a.size(1), b.size(1));
  GemmTransBImpl(a.data(), b.data(), c->data(), a.size(0), a.size(1),
                 b.size(0));
}

void BatchedMatMul(const Tensor& a, bool trans_a, const Tensor& b,
                   bool trans_b, Tensor* c, bool accumulate) {
  ALT_CHECK_EQ(a.ndim(), 3);
  ALT_CHECK_EQ(b.ndim(), 3);
  ALT_CHECK_EQ(c->ndim(), 3);
  const int64_t batch = a.size(0);
  ALT_CHECK_EQ(b.size(0), batch);
  ALT_CHECK_EQ(c->size(0), batch);
  const int64_t m = trans_a ? a.size(2) : a.size(1);
  const int64_t k = trans_a ? a.size(1) : a.size(2);
  const int64_t kb = trans_b ? b.size(2) : b.size(1);
  const int64_t n = trans_b ? b.size(1) : b.size(2);
  ALT_CHECK_EQ(k, kb);
  ALT_CHECK_EQ(c->size(1), m);
  ALT_CHECK_EQ(c->size(2), n);

  const int64_t a_stride = a.size(1) * a.size(2);
  const int64_t b_stride = b.size(1) * b.size(2);
  const int64_t c_stride = m * n;
  for (int64_t bi = 0; bi < batch; ++bi) {
    const float* ap = a.data() + bi * a_stride;
    const float* bp = b.data() + bi * b_stride;
    float* cp = c->data() + bi * c_stride;
    if (!accumulate) std::fill(cp, cp + c_stride, 0.0f);
    if (!trans_a && !trans_b) {
      GemmImpl(ap, bp, cp, m, k, n, /*accumulate=*/true);
    } else if (trans_a && !trans_b) {
      GemmTransAImpl(ap, bp, cp, m, k, n);
    } else if (!trans_a && trans_b) {
      GemmTransBImpl(ap, bp, cp, m, k, n);
    } else {
      // (A^T B^T): rarely needed; do it elementwise.
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          float acc = 0.0f;
          for (int64_t p = 0; p < k; ++p) acc += ap[p * m + i] * bp[j * k + p];
          cp[i * n + j] += acc;
        }
      }
    }
  }
}

void Conv1D(const Tensor& input, const Tensor& weight, const Tensor* bias,
            int64_t dilation, Tensor* out) {
  ALT_CHECK_EQ(input.ndim(), 3);
  ALT_CHECK_EQ(weight.ndim(), 3);
  const int64_t batch = input.size(0);
  const int64_t seq = input.size(1);
  const int64_t cin = input.size(2);
  const int64_t cout = weight.size(0);
  const int64_t k = weight.size(1);
  ALT_CHECK_EQ(weight.size(2), cin);
  ALT_CHECK_EQ(out->size(0), batch);
  ALT_CHECK_EQ(out->size(1), seq);
  ALT_CHECK_EQ(out->size(2), cout);
  ALT_CHECK_GE(dilation, 1);

  // SAME padding: output position t reads input positions
  // t + (j - (k-1)/2) * dilation for tap j in [0, k).
  const int64_t half = (k - 1) / 2;
  out->SetZero();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      float* orow = out->data() + (b * seq + t) * cout;
      for (int64_t j = 0; j < k; ++j) {
        const int64_t ti = t + (j - half) * dilation;
        if (ti < 0 || ti >= seq) continue;
        const float* irow = input.data() + (b * seq + ti) * cin;
        const float* wtap = weight.data() + j * cin;  // [cout, k, cin]
        for (int64_t co = 0; co < cout; ++co) {
          const float* w = wtap + co * k * cin;
          float acc = 0.0f;
          for (int64_t ci = 0; ci < cin; ++ci) acc += irow[ci] * w[ci];
          orow[co] += acc;
        }
      }
      if (bias != nullptr) {
        for (int64_t co = 0; co < cout; ++co) orow[co] += (*bias)[co];
      }
    }
  }
}

void Conv1DBackward(const Tensor& input, const Tensor& weight,
                    const Tensor& grad_out, int64_t dilation,
                    Tensor* grad_input, Tensor* grad_weight,
                    Tensor* grad_bias) {
  const int64_t batch = input.size(0);
  const int64_t seq = input.size(1);
  const int64_t cin = input.size(2);
  const int64_t cout = weight.size(0);
  const int64_t k = weight.size(1);
  const int64_t half = (k - 1) / 2;

  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      const float* grow = grad_out.data() + (b * seq + t) * cout;
      if (grad_bias != nullptr) {
        for (int64_t co = 0; co < cout; ++co) (*grad_bias)[co] += grow[co];
      }
      for (int64_t j = 0; j < k; ++j) {
        const int64_t ti = t + (j - half) * dilation;
        if (ti < 0 || ti >= seq) continue;
        const float* irow = input.data() + (b * seq + ti) * cin;
        float* girow = grad_input != nullptr
                           ? grad_input->data() + (b * seq + ti) * cin
                           : nullptr;
        for (int64_t co = 0; co < cout; ++co) {
          const float g = grow[co];
          if (g == 0.0f) continue;
          const float* w = weight.data() + (co * k + j) * cin;
          if (girow != nullptr) {
            for (int64_t ci = 0; ci < cin; ++ci) girow[ci] += g * w[ci];
          }
          if (grad_weight != nullptr) {
            float* gw = grad_weight->data() + (co * k + j) * cin;
            for (int64_t ci = 0; ci < cin; ++ci) gw[ci] += g * irow[ci];
          }
        }
      }
    }
  }
}

void AvgPool1D(const Tensor& input, int64_t k, Tensor* out) {
  const int64_t batch = input.size(0);
  const int64_t seq = input.size(1);
  const int64_t c = input.size(2);
  const int64_t half = (k - 1) / 2;
  out->SetZero();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      float* orow = out->data() + (b * seq + t) * c;
      int64_t count = 0;
      for (int64_t j = 0; j < k; ++j) {
        const int64_t ti = t + j - half;
        if (ti < 0 || ti >= seq) continue;
        ++count;
        const float* irow = input.data() + (b * seq + ti) * c;
        for (int64_t ci = 0; ci < c; ++ci) orow[ci] += irow[ci];
      }
      ALT_CHECK_GT(count, 0);
      const float inv = 1.0f / static_cast<float>(count);
      for (int64_t ci = 0; ci < c; ++ci) orow[ci] *= inv;
    }
  }
}

void AvgPool1DBackward(const Tensor& grad_out, int64_t k, Tensor* grad_input) {
  const int64_t batch = grad_out.size(0);
  const int64_t seq = grad_out.size(1);
  const int64_t c = grad_out.size(2);
  const int64_t half = (k - 1) / 2;
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      int64_t count = 0;
      for (int64_t j = 0; j < k; ++j) {
        const int64_t ti = t + j - half;
        if (ti >= 0 && ti < seq) ++count;
      }
      const float inv = 1.0f / static_cast<float>(count);
      const float* grow = grad_out.data() + (b * seq + t) * c;
      for (int64_t j = 0; j < k; ++j) {
        const int64_t ti = t + j - half;
        if (ti < 0 || ti >= seq) continue;
        float* girow = grad_input->data() + (b * seq + ti) * c;
        for (int64_t ci = 0; ci < c; ++ci) girow[ci] += grow[ci] * inv;
      }
    }
  }
}

void MaxPool1D(const Tensor& input, int64_t k, Tensor* out,
               std::vector<int64_t>* argmax) {
  const int64_t batch = input.size(0);
  const int64_t seq = input.size(1);
  const int64_t c = input.size(2);
  const int64_t half = (k - 1) / 2;
  argmax->assign(static_cast<size_t>(out->numel()), -1);
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      float* orow = out->data() + (b * seq + t) * c;
      int64_t* arow = argmax->data() + (b * seq + t) * c;
      for (int64_t ci = 0; ci < c; ++ci) {
        orow[ci] = -std::numeric_limits<float>::infinity();
      }
      for (int64_t j = 0; j < k; ++j) {
        const int64_t ti = t + j - half;
        if (ti < 0 || ti >= seq) continue;
        const float* irow = input.data() + (b * seq + ti) * c;
        for (int64_t ci = 0; ci < c; ++ci) {
          if (irow[ci] > orow[ci]) {
            orow[ci] = irow[ci];
            arow[ci] = ti;
          }
        }
      }
    }
  }
}

void MaxPool1DBackward(const Tensor& grad_out,
                       const std::vector<int64_t>& argmax,
                       Tensor* grad_input) {
  const int64_t batch = grad_out.size(0);
  const int64_t seq = grad_out.size(1);
  const int64_t c = grad_out.size(2);
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      const float* grow = grad_out.data() + (b * seq + t) * c;
      const int64_t* arow = argmax.data() + (b * seq + t) * c;
      for (int64_t ci = 0; ci < c; ++ci) {
        const int64_t ti = arow[ci];
        if (ti < 0) continue;
        grad_input->data()[(b * seq + ti) * c + ci] += grow[ci];
      }
    }
  }
}

}  // namespace alt
