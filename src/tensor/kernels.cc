#include "src/tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/obs/metrics.h"
#include "src/tensor/cpu_features.h"
#include "src/tensor/kernels_simd.h"
#include "src/tensor/scratch.h"
#include "src/util/logging.h"
#include "src/util/parallel_for.h"

namespace alt {

namespace {

/// Cache/register blocking parameters ----------------------------------------
///
/// The GEMMs are structured as: parallel row panels (kRowGrain rows of C per
/// ParallelFor chunk) x column blocks (kNC columns of B/C) x k blocks (kKC
/// reduction steps), with a kMR-row register tile whose inner j loop is a
/// branch-free multiply-add stream the compiler auto-vectorizes. The k
/// dimension is additionally unrolled by 4 inside the register tile so each
/// load/store of a C row amortizes four fused multiply-adds.
///
/// Determinism: every row of C accumulates its k products in exactly the same
/// order (quads of k in pairwise order, then the k tail sequentially) no
/// matter how rows are grouped into panels, and ParallelFor chunk boundaries
/// are fixed multiples of the grain. Results are therefore bit-identical for
/// any thread count. kRowGrain is a multiple of kMR so register-tile
/// boundaries also never depend on the partition.
constexpr int64_t kKC = 256;
constexpr int64_t kNC = 1024;
constexpr int64_t kMR = 4;
constexpr int64_t kRowGrain = 32;
static_assert(kRowGrain % kMR == 0, "panels must preserve register tiling");
static_assert(kKC % 4 == 0, "k blocks must preserve the quad unroll");

/// Approximate scalar ops per C element per unit k, for grain derivation.
constexpr int64_t kGemmWorkPerRow = 2;

/// One relaxed atomic load; re-read per kernel call so SetSimdLevel (tests,
/// benchmarks) takes effect immediately. The AVX-512 tier only replaces the
/// GEMM micro-panels and long dot products; every other vector primitive
/// uses the 256-bit implementations whenever the level is at least kAvx2
/// (an AVX-512 host always supports them).
inline bool UseAvx2() { return ActiveSimdLevel() >= SimdLevel::kAvx2; }

template <bool kTransA>
inline float LoadA(const float* a, int64_t lda, int64_t i, int64_t p) {
  return kTransA ? a[p * lda + i] : a[i * lda + p];
}

/// C[i, j] += sum_p A(i, p) * B[p, j] over the given i/p/j sub-block.
/// A is indexed [i, p] with leading dimension lda (or [p, i] if kTransA).
template <bool kTransA>
void MicroPanel(const float* __restrict__ a, int64_t lda,
                const float* __restrict__ b, int64_t ldb,
                float* __restrict__ c, int64_t ldc, int64_t i_begin,
                int64_t i_end, int64_t p_begin, int64_t p_end, int64_t j_begin,
                int64_t j_end) {
  int64_t i = i_begin;
  for (; i + kMR <= i_end; i += kMR) {
    float* __restrict__ c0 = c + (i + 0) * ldc;
    float* __restrict__ c1 = c + (i + 1) * ldc;
    float* __restrict__ c2 = c + (i + 2) * ldc;
    float* __restrict__ c3 = c + (i + 3) * ldc;
    int64_t p = p_begin;
    for (; p + 4 <= p_end; p += 4) {
      const float* __restrict__ b0 = b + (p + 0) * ldb;
      const float* __restrict__ b1 = b + (p + 1) * ldb;
      const float* __restrict__ b2 = b + (p + 2) * ldb;
      const float* __restrict__ b3 = b + (p + 3) * ldb;
      const float a00 = LoadA<kTransA>(a, lda, i + 0, p);
      const float a01 = LoadA<kTransA>(a, lda, i + 0, p + 1);
      const float a02 = LoadA<kTransA>(a, lda, i + 0, p + 2);
      const float a03 = LoadA<kTransA>(a, lda, i + 0, p + 3);
      const float a10 = LoadA<kTransA>(a, lda, i + 1, p);
      const float a11 = LoadA<kTransA>(a, lda, i + 1, p + 1);
      const float a12 = LoadA<kTransA>(a, lda, i + 1, p + 2);
      const float a13 = LoadA<kTransA>(a, lda, i + 1, p + 3);
      const float a20 = LoadA<kTransA>(a, lda, i + 2, p);
      const float a21 = LoadA<kTransA>(a, lda, i + 2, p + 1);
      const float a22 = LoadA<kTransA>(a, lda, i + 2, p + 2);
      const float a23 = LoadA<kTransA>(a, lda, i + 2, p + 3);
      const float a30 = LoadA<kTransA>(a, lda, i + 3, p);
      const float a31 = LoadA<kTransA>(a, lda, i + 3, p + 1);
      const float a32 = LoadA<kTransA>(a, lda, i + 3, p + 2);
      const float a33 = LoadA<kTransA>(a, lda, i + 3, p + 3);
      for (int64_t j = j_begin; j < j_end; ++j) {
        c0[j] += (a00 * b0[j] + a01 * b1[j]) + (a02 * b2[j] + a03 * b3[j]);
        c1[j] += (a10 * b0[j] + a11 * b1[j]) + (a12 * b2[j] + a13 * b3[j]);
        c2[j] += (a20 * b0[j] + a21 * b1[j]) + (a22 * b2[j] + a23 * b3[j]);
        c3[j] += (a30 * b0[j] + a31 * b1[j]) + (a32 * b2[j] + a33 * b3[j]);
      }
    }
    for (; p < p_end; ++p) {
      const float* __restrict__ bp = b + p * ldb;
      const float a0 = LoadA<kTransA>(a, lda, i + 0, p);
      const float a1 = LoadA<kTransA>(a, lda, i + 1, p);
      const float a2 = LoadA<kTransA>(a, lda, i + 2, p);
      const float a3 = LoadA<kTransA>(a, lda, i + 3, p);
      for (int64_t j = j_begin; j < j_end; ++j) {
        c0[j] += a0 * bp[j];
        c1[j] += a1 * bp[j];
        c2[j] += a2 * bp[j];
        c3[j] += a3 * bp[j];
      }
    }
  }
  // Row tail (< kMR rows): identical k order — quads pairwise, then the
  // sequential k tail — so a row computes the same bits whichever path
  // handles it.
  for (; i < i_end; ++i) {
    float* __restrict__ ci = c + i * ldc;
    int64_t p = p_begin;
    for (; p + 4 <= p_end; p += 4) {
      const float* __restrict__ b0 = b + (p + 0) * ldb;
      const float* __restrict__ b1 = b + (p + 1) * ldb;
      const float* __restrict__ b2 = b + (p + 2) * ldb;
      const float* __restrict__ b3 = b + (p + 3) * ldb;
      const float a0 = LoadA<kTransA>(a, lda, i, p);
      const float a1 = LoadA<kTransA>(a, lda, i, p + 1);
      const float a2 = LoadA<kTransA>(a, lda, i, p + 2);
      const float a3 = LoadA<kTransA>(a, lda, i, p + 3);
      for (int64_t j = j_begin; j < j_end; ++j) {
        ci[j] += (a0 * b0[j] + a1 * b1[j]) + (a2 * b2[j] + a3 * b3[j]);
      }
    }
    for (; p < p_end; ++p) {
      const float* __restrict__ bp = b + p * ldb;
      const float av = LoadA<kTransA>(a, lda, i, p);
      for (int64_t j = j_begin; j < j_end; ++j) ci[j] += av * bp[j];
    }
  }
}

/// Shared driver: C[m,n] += op(A) * B with blocking and row-panel
/// parallelism. B is [k, n] with leading dimension ldb. The SIMD level is
/// sampled once per call so a mid-call SetSimdLevel from another thread
/// cannot mix micro-kernels within one GEMM.
template <bool kTransA>
void BlockedGemm(const float* a, int64_t lda, const float* b, int64_t ldb,
                 float* c, int64_t m, int64_t k, int64_t n) {
  const SimdLevel level = ActiveSimdLevel();
  ParallelFor(0, m, kRowGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t j0 = 0; j0 < n; j0 += kNC) {
      const int64_t j1 = std::min<int64_t>(n, j0 + kNC);
      for (int64_t p0 = 0; p0 < k; p0 += kKC) {
        const int64_t p1 = std::min<int64_t>(k, p0 + kKC);
        if (level == SimdLevel::kAvx512) {
          simd::GemmMicroPanelAvx512(a, lda, b, ldb, c, n, i0, i1, p0, p1,
                                     j0, j1, kTransA);
        } else if (level == SimdLevel::kAvx2) {
          simd::GemmMicroPanelAvx2(a, lda, b, ldb, c, n, i0, i1, p0, p1, j0,
                                   j1, kTransA);
        } else {
          MicroPanel<kTransA>(a, lda, b, ldb, c, n, i0, i1, p0, p1, j0, j1);
        }
      }
    }
  });
}

/// C[m,n] (+)= A[m,k] * B[k,n].
void GemmImpl(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  BlockedGemm<false>(a, k, b, n, c, m, k, n);
}

/// C[m,n] += A[k,m]^T B[k,n].
void GemmTransAImpl(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  BlockedGemm<true>(a, m, b, n, c, m, k, n);
}

/// C[m,n] += A[m,k] B[n,k]^T. B is repacked as B^T so the inner loops stream
/// contiguously; the pack is O(kn) against O(mkn) compute. For very small m
/// the pack does not amortize, so fall back to sequential dot products.
void GemmTransBImpl(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  if (m < kMR) {
    const SimdLevel level = ActiveSimdLevel();
    for (int64_t i = 0; i < m; ++i) {
      const float* __restrict__ arow = a + i * k;
      float* __restrict__ crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* __restrict__ brow = b + j * k;
        if (level == SimdLevel::kAvx512) {
          crow[j] += simd::DotAvx512(arow, brow, k);
        } else if (level == SimdLevel::kAvx2) {
          crow[j] += simd::DotAvx2(arow, brow, k);
        } else {
          float acc = 0.0f;
          for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
          crow[j] += acc;
        }
      }
    }
    return;
  }
  ScratchFrame frame;
  float* bt = frame.Floats(k * n);
  for (int64_t j = 0; j < n; ++j) {
    const float* __restrict__ brow = b + j * k;
    for (int64_t p = 0; p < k; ++p) bt[p * n + j] = brow[p];
  }
  BlockedGemm<false>(a, k, bt, n, c, m, k, n);
}

}  // namespace

void VecAxpy(float alpha, const float* x, float* y, int64_t n) {
  const bool avx2 = UseAvx2();
  ParallelForWork(n, kGemmWorkPerRow, [&](int64_t lo, int64_t hi) {
    if (avx2) {
      simd::VecAxpyAvx2(alpha, x + lo, y + lo, hi - lo);
      return;
    }
    const float* __restrict__ xs = x;
    float* __restrict__ ys = y;
    for (int64_t i = lo; i < hi; ++i) ys[i] += alpha * xs[i];
  });
}

void VecScale(float alpha, float* y, int64_t n) {
  const bool avx2 = UseAvx2();
  ParallelForWork(n, 1, [&](int64_t lo, int64_t hi) {
    if (avx2) {
      simd::VecScaleAvx2(alpha, y + lo, hi - lo);
      return;
    }
    float* __restrict__ ys = y;
    for (int64_t i = lo; i < hi; ++i) ys[i] *= alpha;
  });
}

void VecRelu(const float* x, float* y, int64_t n) {
  if (UseAvx2()) {
    simd::VecReluAvx2(x, y, n);
    return;
  }
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void RowScale(float alpha, float* y, int64_t n) {
  if (UseAvx2()) {
    simd::VecScaleAvx2(alpha, y, n);
    return;
  }
  for (int64_t i = 0; i < n; ++i) y[i] *= alpha;
}

float RowMax(const float* x, int64_t n) {
  ALT_DCHECK_GE(n, 1);
  if (UseAvx2()) return simd::RowMaxAvx2(x, n);
  float best = x[0];
  for (int64_t i = 1; i < n; ++i) best = std::max(best, x[i]);
  return best;
}

double RowSumDouble(const float* x, int64_t n) {
  if (UseAvx2()) return simd::RowSumAvx2(x, n);
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) total += static_cast<double>(x[i]);
  return total;
}

void RowMeanVar(const float* x, int64_t n, double* mean, double* var) {
  if (UseAvx2()) {
    simd::RowMeanVarAvx2(x, n, mean, var);
    return;
  }
  double m = 0.0;
  for (int64_t i = 0; i < n; ++i) m += x[i];
  m /= static_cast<double>(n);
  double v = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = x[i] - m;
    v += d * d;
  }
  *mean = m;
  *var = v / static_cast<double>(n);
}

void RowNormalizeAffine(const float* src, float mean, float istd,
                        const float* gamma, const float* beta, float* xhat,
                        float* dst, int64_t n) {
  if (UseAvx2()) {
    simd::RowNormalizeAffineAvx2(src, mean, istd, gamma, beta, xhat, dst, n);
    return;
  }
  for (int64_t j = 0; j < n; ++j) {
    const float xh = (src[j] - mean) * istd;
    xhat[j] = xh;
    dst[j] = xh * gamma[j] + beta[j];
  }
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* c) {
  ALT_CHECK_EQ(a.ndim(), 2);
  ALT_CHECK_EQ(b.ndim(), 2);
  ALT_CHECK_EQ(a.size(1), b.size(0));
  ALT_CHECK_EQ(c->size(0), a.size(0));
  ALT_CHECK_EQ(c->size(1), b.size(1));
  // Handles cached per call site; disabled-mode cost is one relaxed load and
  // zero clock reads (the < 3% bench_kernels budget, see DESIGN.md). The
  // per-ISA split needs both handles pre-resolved because the macro latches
  // its name on first use — a runtime-built name would pin the first ISA.
  const SimdLevel timer_level = ActiveSimdLevel();
  obs::ScopedTimerMs timer(
      timer_level == SimdLevel::kAvx512
          ? ALT_OBS_HISTOGRAM_HANDLE("tensor/gemm/time_ms/avx512")
          : timer_level == SimdLevel::kAvx2
                ? ALT_OBS_HISTOGRAM_HANDLE("tensor/gemm/time_ms/avx2")
                : ALT_OBS_HISTOGRAM_HANDLE("tensor/gemm/time_ms/scalar"));
  ALT_OBS_COUNTER_ADD("tensor/gemm/calls_total", 1);
  GemmImpl(a.data(), b.data(), c->data(), a.size(0), a.size(1), b.size(1),
           /*accumulate=*/false);
}

void MatMulAcc(const Tensor& a, const Tensor& b, Tensor* c) {
  ALT_CHECK_EQ(a.size(1), b.size(0));
  GemmImpl(a.data(), b.data(), c->data(), a.size(0), a.size(1), b.size(1),
           /*accumulate=*/true);
}

void MatMulTransAAcc(const Tensor& a, const Tensor& b, Tensor* c) {
  ALT_CHECK_EQ(a.size(0), b.size(0));
  GemmTransAImpl(a.data(), b.data(), c->data(), a.size(1), a.size(0),
                 b.size(1));
}

void MatMulTransBAcc(const Tensor& a, const Tensor& b, Tensor* c) {
  ALT_CHECK_EQ(a.size(1), b.size(1));
  GemmTransBImpl(a.data(), b.data(), c->data(), a.size(0), a.size(1),
                 b.size(0));
}

void BatchedMatMul(const Tensor& a, bool trans_a, const Tensor& b,
                   bool trans_b, Tensor* c, bool accumulate) {
  ALT_CHECK_EQ(a.ndim(), 3);
  ALT_CHECK_EQ(b.ndim(), 3);
  ALT_CHECK_EQ(c->ndim(), 3);
  const int64_t batch = a.size(0);
  ALT_CHECK_EQ(b.size(0), batch);
  ALT_CHECK_EQ(c->size(0), batch);
  const int64_t m = trans_a ? a.size(2) : a.size(1);
  const int64_t k = trans_a ? a.size(1) : a.size(2);
  const int64_t kb = trans_b ? b.size(2) : b.size(1);
  const int64_t n = trans_b ? b.size(1) : b.size(2);
  ALT_CHECK_EQ(k, kb);
  ALT_CHECK_EQ(c->size(1), m);
  ALT_CHECK_EQ(c->size(2), n);

  const SimdLevel timer_level = ActiveSimdLevel();
  obs::ScopedTimerMs timer(
      timer_level == SimdLevel::kAvx512
          ? ALT_OBS_HISTOGRAM_HANDLE("tensor/batched_matmul/time_ms/avx512")
          : timer_level == SimdLevel::kAvx2
                ? ALT_OBS_HISTOGRAM_HANDLE("tensor/batched_matmul/time_ms/avx2")
                : ALT_OBS_HISTOGRAM_HANDLE(
                      "tensor/batched_matmul/time_ms/scalar"));

  const int64_t a_stride = a.size(1) * a.size(2);
  const int64_t b_stride = b.size(1) * b.size(2);
  const int64_t c_stride = m * n;
  // Parallel over the batch; with batch == 1 the outer loop collapses and
  // the per-matrix GEMM parallelizes over row panels instead.
  ParallelFor(0, batch, /*grain=*/1, [&](int64_t b0, int64_t b1) {
    for (int64_t bi = b0; bi < b1; ++bi) {
      const float* ap = a.data() + bi * a_stride;
      const float* bp = b.data() + bi * b_stride;
      float* cp = c->data() + bi * c_stride;
      if (!accumulate) std::fill(cp, cp + c_stride, 0.0f);
      if (!trans_a && !trans_b) {
        GemmImpl(ap, bp, cp, m, k, n, /*accumulate=*/true);
      } else if (trans_a && !trans_b) {
        GemmTransAImpl(ap, bp, cp, m, k, n);
      } else if (!trans_a && trans_b) {
        GemmTransBImpl(ap, bp, cp, m, k, n);
      } else {
        // (A^T B^T): rarely needed; do it elementwise.
        for (int64_t i = 0; i < m; ++i) {
          for (int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (int64_t p = 0; p < k; ++p) {
              acc += ap[p * m + i] * bp[j * k + p];
            }
            cp[i * n + j] += acc;
          }
        }
      }
    }
  });
}

void Conv1D(const Tensor& input, const Tensor& weight, const Tensor* bias,
            int64_t dilation, Tensor* out) {
  ALT_CHECK_EQ(input.ndim(), 3);
  ALT_CHECK_EQ(weight.ndim(), 3);
  const int64_t batch = input.size(0);
  const int64_t seq = input.size(1);
  const int64_t cin = input.size(2);
  const int64_t cout = weight.size(0);
  const int64_t k = weight.size(1);
  ALT_CHECK_EQ(weight.size(2), cin);
  ALT_CHECK_EQ(out->size(0), batch);
  ALT_CHECK_EQ(out->size(1), seq);
  ALT_CHECK_EQ(out->size(2), cout);
  ALT_CHECK_GE(dilation, 1);

  const SimdLevel timer_level = ActiveSimdLevel();
  obs::ScopedTimerMs timer(
      timer_level == SimdLevel::kAvx512
          ? ALT_OBS_HISTOGRAM_HANDLE("tensor/conv1d/time_ms/avx512")
          : timer_level == SimdLevel::kAvx2
                ? ALT_OBS_HISTOGRAM_HANDLE("tensor/conv1d/time_ms/avx2")
                : ALT_OBS_HISTOGRAM_HANDLE("tensor/conv1d/time_ms/scalar"));

  // im2col + GEMM: each output row [t, :] is X2[t, :] * W^T where
  // X2[t, j*cin + ci] holds input[t + (j - half)*dilation, ci] under SAME
  // padding (zeros outside the sequence). The repacked weight Wt[p, co] is
  // shared read-only across the batch; the im2col buffer comes from the
  // worker thread's scratch arena (tracked, reused across calls) instead of
  // an untracked per-call thread_local vector.
  const int64_t half = (k - 1) / 2;
  const int64_t cols = k * cin;
  std::vector<float> wt(static_cast<size_t>(cols * cout));
  for (int64_t co = 0; co < cout; ++co) {
    const float* __restrict__ w = weight.data() + co * cols;
    for (int64_t p = 0; p < cols; ++p) {
      wt[static_cast<size_t>(p * cout + co)] = w[p];
    }
  }

  ParallelFor(0, batch, /*grain=*/1, [&](int64_t b0, int64_t b1) {
    ScratchFrame frame;
    float* x2 = frame.Floats(seq * cols);
    for (int64_t b = b0; b < b1; ++b) {
      // Zero-fill so the SAME-padding taps that skip out-of-range time
      // steps read zeros.
      std::fill(x2, x2 + seq * cols, 0.0f);
      for (int64_t t = 0; t < seq; ++t) {
        float* __restrict__ xrow = x2 + t * cols;
        for (int64_t j = 0; j < k; ++j) {
          const int64_t ti = t + (j - half) * dilation;
          if (ti < 0 || ti >= seq) continue;
          const float* __restrict__ irow = input.data() + (b * seq + ti) * cin;
          float* __restrict__ dst = xrow + j * cin;
          for (int64_t ci = 0; ci < cin; ++ci) dst[ci] = irow[ci];
        }
      }
      float* cp = out->data() + b * seq * cout;
      GemmImpl(x2, wt.data(), cp, seq, cols, cout,
               /*accumulate=*/false);
      if (bias != nullptr) {
        for (int64_t t = 0; t < seq; ++t) {
          float* __restrict__ orow = cp + t * cout;
          for (int64_t co = 0; co < cout; ++co) orow[co] += (*bias)[co];
        }
      }
    }
  });
}

void Conv1DBackward(const Tensor& input, const Tensor& weight,
                    const Tensor& grad_out, int64_t dilation,
                    Tensor* grad_input, Tensor* grad_weight,
                    Tensor* grad_bias) {
  const int64_t batch = input.size(0);
  const int64_t seq = input.size(1);
  const int64_t cin = input.size(2);
  const int64_t cout = weight.size(0);
  const int64_t k = weight.size(1);
  const int64_t half = (k - 1) / 2;

  // Sequential: grad_weight/grad_bias accumulate across the whole batch and
  // grad_input rows overlap across taps, so naive loop parallelism would
  // race. Backward cost is dominated by the forward GEMMs elsewhere.
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      const float* grow = grad_out.data() + (b * seq + t) * cout;
      if (grad_bias != nullptr) {
        for (int64_t co = 0; co < cout; ++co) (*grad_bias)[co] += grow[co];
      }
      for (int64_t j = 0; j < k; ++j) {
        const int64_t ti = t + (j - half) * dilation;
        if (ti < 0 || ti >= seq) continue;
        const float* irow = input.data() + (b * seq + ti) * cin;
        float* girow = grad_input != nullptr
                           ? grad_input->data() + (b * seq + ti) * cin
                           : nullptr;
        for (int64_t co = 0; co < cout; ++co) {
          const float g = grow[co];
          const float* __restrict__ w = weight.data() + (co * k + j) * cin;
          if (girow != nullptr) {
            for (int64_t ci = 0; ci < cin; ++ci) girow[ci] += g * w[ci];
          }
          if (grad_weight != nullptr) {
            float* __restrict__ gw = grad_weight->data() + (co * k + j) * cin;
            for (int64_t ci = 0; ci < cin; ++ci) gw[ci] += g * irow[ci];
          }
        }
      }
    }
  }
}

void AvgPool1D(const Tensor& input, int64_t k, Tensor* out) {
  const int64_t batch = input.size(0);
  const int64_t seq = input.size(1);
  const int64_t c = input.size(2);
  const int64_t half = (k - 1) / 2;
  out->SetZero();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      float* orow = out->data() + (b * seq + t) * c;
      int64_t count = 0;
      for (int64_t j = 0; j < k; ++j) {
        const int64_t ti = t + j - half;
        if (ti < 0 || ti >= seq) continue;
        ++count;
        const float* irow = input.data() + (b * seq + ti) * c;
        for (int64_t ci = 0; ci < c; ++ci) orow[ci] += irow[ci];
      }
      ALT_CHECK_GT(count, 0);
      const float inv = 1.0f / static_cast<float>(count);
      for (int64_t ci = 0; ci < c; ++ci) orow[ci] *= inv;
    }
  }
}

void AvgPool1DBackward(const Tensor& grad_out, int64_t k, Tensor* grad_input) {
  const int64_t batch = grad_out.size(0);
  const int64_t seq = grad_out.size(1);
  const int64_t c = grad_out.size(2);
  const int64_t half = (k - 1) / 2;
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      int64_t count = 0;
      for (int64_t j = 0; j < k; ++j) {
        const int64_t ti = t + j - half;
        if (ti >= 0 && ti < seq) ++count;
      }
      const float inv = 1.0f / static_cast<float>(count);
      const float* grow = grad_out.data() + (b * seq + t) * c;
      for (int64_t j = 0; j < k; ++j) {
        const int64_t ti = t + j - half;
        if (ti < 0 || ti >= seq) continue;
        float* girow = grad_input->data() + (b * seq + ti) * c;
        for (int64_t ci = 0; ci < c; ++ci) girow[ci] += grow[ci] * inv;
      }
    }
  }
}

void MaxPool1D(const Tensor& input, int64_t k, Tensor* out,
               std::vector<int64_t>* argmax) {
  const int64_t batch = input.size(0);
  const int64_t seq = input.size(1);
  const int64_t c = input.size(2);
  const int64_t half = (k - 1) / 2;
  argmax->assign(static_cast<size_t>(out->numel()), -1);
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      float* orow = out->data() + (b * seq + t) * c;
      int64_t* arow = argmax->data() + (b * seq + t) * c;
      for (int64_t ci = 0; ci < c; ++ci) {
        orow[ci] = -std::numeric_limits<float>::infinity();
      }
      for (int64_t j = 0; j < k; ++j) {
        const int64_t ti = t + j - half;
        if (ti < 0 || ti >= seq) continue;
        const float* irow = input.data() + (b * seq + ti) * c;
        for (int64_t ci = 0; ci < c; ++ci) {
          if (irow[ci] > orow[ci]) {
            orow[ci] = irow[ci];
            arow[ci] = ti;
          }
        }
      }
    }
  }
}

void MaxPool1DBackward(const Tensor& grad_out,
                       const std::vector<int64_t>& argmax,
                       Tensor* grad_input) {
  const int64_t batch = grad_out.size(0);
  const int64_t seq = grad_out.size(1);
  const int64_t c = grad_out.size(2);
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      const float* grow = grad_out.data() + (b * seq + t) * c;
      const int64_t* arow = argmax.data() + (b * seq + t) * c;
      for (int64_t ci = 0; ci < c; ++ci) {
        const int64_t ti = arow[ci];
        if (ti < 0) continue;
        grad_input->data()[(b * seq + ti) * c + ci] += grow[ci];
      }
    }
  }
}

}  // namespace alt
