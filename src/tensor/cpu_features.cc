#include "src/tensor/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "src/tensor/kernels_simd.h"
#include "src/util/logging.h"

namespace alt {

namespace {

constexpr int kUnresolved = -1;

/// Resolved dispatch level; kUnresolved until the first ActiveSimdLevel().
/// Resolution is idempotent, so a benign first-use race costs at most a
/// duplicate probe.
std::atomic<int> g_level{kUnresolved};

bool HostHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool HostHasAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

bool HostHasAvx512Vnni() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512vnni");
#else
  return false;
#endif
}

SimdLevel BestSupported() {
  if (Avx512Supported()) return SimdLevel::kAvx512;
  if (Avx2Supported()) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
}

SimdLevel Resolve() {
  const char* env = std::getenv("ALT_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0) {
      return SimdLevel::kScalar;
    }
    if (std::strcmp(env, "avx2") == 0) {
      if (Avx2Supported()) return SimdLevel::kAvx2;
      ALT_LOG(Warning) << "ALT_SIMD=avx2 requested but "
                       << (simd::Avx2CompiledIn() ? "the host CPU"
                                                  : "this build")
                       << " lacks AVX2+FMA; using the scalar kernels";
      return SimdLevel::kScalar;
    }
    if (std::strcmp(env, "avx512") == 0) {
      if (Avx512Supported()) return SimdLevel::kAvx512;
      ALT_LOG(Warning) << "ALT_SIMD=avx512 requested but "
                       << (simd::Avx512CompiledIn() ? "the host CPU"
                                                    : "this build")
                       << " lacks AVX-512 F+BW+VL; using the "
                       << SimdLevelName(BestSupported()) << " kernels";
      return BestSupported();
    }
    if (std::strcmp(env, "auto") != 0) {
      ALT_LOG(Warning) << "unknown ALT_SIMD value '" << env
                       << "' (expected off|scalar|avx2|avx512|auto); "
                          "using auto";
    }
  }
  return BestSupported();
}

bool Supported(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
      return Avx2Supported();
    case SimdLevel::kAvx512:
      return Avx512Supported();
  }
  return false;
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level == kUnresolved) {
    level = static_cast<int>(Resolve());
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

bool Avx2Supported() { return simd::Avx2CompiledIn() && HostHasAvx2(); }

bool Avx512Supported() {
  return simd::Avx512CompiledIn() && HostHasAvx512();
}

bool Avx512VnniSupported() {
  return Avx512Supported() && simd::Avx512VnniCompiledIn() &&
         HostHasAvx512Vnni();
}

bool SetSimdLevel(SimdLevel level) {
  if (!Supported(level)) {
    g_level.store(static_cast<int>(BestSupported()),
                  std::memory_order_relaxed);
    return false;
  }
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      return "scalar";
  }
  return "scalar";
}

const char* ActiveSimdName() { return SimdLevelName(ActiveSimdLevel()); }

}  // namespace alt
