// AVX-512 micro-kernels behind the runtime dispatcher (cpu_features.h).
//
// Like kernels_avx2.cc, this is the only translation unit compiled with the
// AVX-512 flags (-mavx512f -mavx512bw -mavx512vl; see
// src/tensor/CMakeLists.txt), so 512-bit instructions cannot leak into code
// that runs before dispatch. Callers reach these functions only when
// ActiveSimdLevel() == kAvx512. On toolchains/architectures without AVX-512
// the file degrades to aborting stubs and Avx512CompiledIn() == false.
//
// The register tiles go up to 8 rows x 32 columns (16 zmm accumulators out
// of the 32 architectural registers), which keeps two b loads feeding
// sixteen FMAs per k step — broadcast/load pressure is what capped the AVX2
// tile. Column tails use mask registers ((1 << rem) - 1), so no lane ever
// touches memory outside the sub-block and there is no scalar epilogue to
// fall into.
//
// Determinism: identical contract to the AVX2 tier — each C element is
// loaded once, accumulated with sequential-p FMAs, stored once; the bits of
// C[i][j] depend only on (p_begin, p_end), never on which tile shape covered
// the element or how rows were partitioned across threads.

#include "src/tensor/kernels_simd.h"
#include "src/util/logging.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)

#include <immintrin.h>

#include <algorithm>

namespace alt {
namespace simd {

namespace {

inline __mmask16 TailMask16(int64_t rem) {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

/// Fixed-order horizontal sum: 256-bit halves first, then the AVX2 pairwise
/// pattern, so the grouping is pinned by this code and not by the compiler.
inline float HSum512(__m512 v) {
  // _mm512_extractf32x8_ps needs AVX512DQ; the f64x4 extract is plain F.
  __m256 half = _mm256_add_ps(
      _mm512_castps512_ps256(v),
      _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(v), 1)));
  __m128 lo = _mm256_castps256_ps128(half);
  __m128 hi = _mm256_extractf128_ps(half, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

inline int32_t HSumI32x16(__m512i v) {
  __m256i half = _mm256_add_epi32(_mm512_castsi512_si256(v),
                                  _mm512_extracti64x4_epi64(v, 1));
  __m128i lo = _mm256_castsi256_si128(half);
  __m128i hi = _mm256_extracti128_si256(half, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 1));
  return _mm_cvtsi128_si32(s);
}

template <bool kTransA>
inline float AElem(const float* a, int64_t lda, int64_t i, int64_t p) {
  return kTransA ? a[p * lda + i] : a[i * lda + p];
}

/// kRows x (16 * kVecs) register tile: kRows*kVecs zmm accumulators held
/// across the whole [p_begin, p_end) reduction. The main tile is 8x32
/// (16 accumulators); 4-row bands widen to 4x48 so more FMAs share each
/// broadcast. kRows*kVecs + kVecs + 1 must stay within the 32 zmm registers.
template <bool kTransA, int kRows, int kVecs>
inline void Tile(const float* __restrict__ a, int64_t lda,
                 const float* __restrict__ b, int64_t ldb,
                 float* __restrict__ c, int64_t ldc, int64_t i,
                 int64_t p_begin, int64_t p_end, int64_t j) {
  __m512 acc[kRows][kVecs];
  for (int r = 0; r < kRows; ++r) {
    for (int v = 0; v < kVecs; ++v) {
      acc[r][v] = _mm512_loadu_ps(c + (i + r) * ldc + j + 16 * v);
    }
  }
  for (int64_t p = p_begin; p < p_end; ++p) {
    const float* __restrict__ bp = b + p * ldb + j;
    __m512 bv[kVecs];
    for (int v = 0; v < kVecs; ++v) bv[v] = _mm512_loadu_ps(bp + 16 * v);
    for (int r = 0; r < kRows; ++r) {
      const __m512 av = _mm512_set1_ps(AElem<kTransA>(a, lda, i + r, p));
      for (int v = 0; v < kVecs; ++v) {
        acc[r][v] = _mm512_fmadd_ps(av, bv[v], acc[r][v]);
      }
    }
  }
  for (int r = 0; r < kRows; ++r) {
    for (int v = 0; v < kVecs; ++v) {
      _mm512_storeu_ps(c + (i + r) * ldc + j + 16 * v, acc[r][v]);
    }
  }
}

/// kRows x (<=16) masked tile for column tails; inactive lanes are never
/// loaded or stored.
template <bool kTransA, int kRows>
inline void TileMasked(const float* __restrict__ a, int64_t lda,
                       const float* __restrict__ b, int64_t ldb,
                       float* __restrict__ c, int64_t ldc, int64_t i,
                       int64_t p_begin, int64_t p_end, int64_t j,
                       __mmask16 mask) {
  __m512 acc[kRows];
  for (int r = 0; r < kRows; ++r) {
    acc[r] = _mm512_maskz_loadu_ps(mask, c + (i + r) * ldc + j);
  }
  for (int64_t p = p_begin; p < p_end; ++p) {
    const __m512 bv = _mm512_maskz_loadu_ps(mask, b + p * ldb + j);
    for (int r = 0; r < kRows; ++r) {
      acc[r] = _mm512_fmadd_ps(
          _mm512_set1_ps(AElem<kTransA>(a, lda, i + r, p)), bv, acc[r]);
    }
  }
  for (int r = 0; r < kRows; ++r) {
    _mm512_mask_storeu_ps(c + (i + r) * ldc + j, mask, acc[r]);
  }
}

template <bool kTransA, int kRows, int kVecs>
inline void RowBand(const float* __restrict__ a, int64_t lda,
                    const float* __restrict__ b, int64_t ldb,
                    float* __restrict__ c, int64_t ldc, int64_t i,
                    int64_t p_begin, int64_t p_end, int64_t j_begin,
                    int64_t j_end) {
  int64_t j = j_begin;
  for (; j + 16 * kVecs <= j_end; j += 16 * kVecs) {
    Tile<kTransA, kRows, kVecs>(a, lda, b, ldb, c, ldc, i, p_begin, p_end, j);
  }
  while (j < j_end) {
    const int64_t rem = std::min<int64_t>(16, j_end - j);
    TileMasked<kTransA, kRows>(a, lda, b, ldb, c, ldc, i, p_begin, p_end, j,
                               TailMask16(rem));
    j += rem;
  }
}

template <bool kTransA>
void MicroPanelImpl(const float* __restrict__ a, int64_t lda,
                    const float* __restrict__ b, int64_t ldb,
                    float* __restrict__ c, int64_t ldc, int64_t i_begin,
                    int64_t i_end, int64_t p_begin, int64_t p_end,
                    int64_t j_begin, int64_t j_end) {
  int64_t i = i_begin;
  for (; i + 8 <= i_end; i += 8) {
    RowBand<kTransA, 8, 2>(a, lda, b, ldb, c, ldc, i, p_begin, p_end, j_begin,
                           j_end);
  }
  for (; i + 4 <= i_end; i += 4) {
    RowBand<kTransA, 4, 3>(a, lda, b, ldb, c, ldc, i, p_begin, p_end, j_begin,
                           j_end);
  }
  for (; i + 2 <= i_end; i += 2) {
    RowBand<kTransA, 2, 4>(a, lda, b, ldb, c, ldc, i, p_begin, p_end, j_begin,
                           j_end);
  }
  for (; i < i_end; ++i) {
    RowBand<kTransA, 1, 4>(a, lda, b, ldb, c, ldc, i, p_begin, p_end, j_begin,
                           j_end);
  }
}

/// Sign-extends 64 int8 values into two 32-lane int16 vectors.
inline void Cvt64(const int8_t* p, __m512i* lo, __m512i* hi) {
  const __m512i v = _mm512_loadu_si512(p);
  *lo = _mm512_cvtepi8_epi16(_mm512_castsi512_si256(v));
  *hi = _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(v, 1));
}

inline __m512i Cvt32(const int8_t* p) {
  return _mm512_cvtepi8_epi16(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}

}  // namespace

bool Avx512CompiledIn() { return true; }

void GemmMicroPanelAvx512(const float* a, int64_t lda, const float* b,
                          int64_t ldb, float* c, int64_t ldc, int64_t i_begin,
                          int64_t i_end, int64_t p_begin, int64_t p_end,
                          int64_t j_begin, int64_t j_end, bool trans_a) {
  if (trans_a) {
    MicroPanelImpl<true>(a, lda, b, ldb, c, ldc, i_begin, i_end, p_begin,
                         p_end, j_begin, j_end);
  } else {
    MicroPanelImpl<false>(a, lda, b, ldb, c, ldc, i_begin, i_end, p_begin,
                          p_end, j_begin, j_end);
  }
}

float DotAvx512(const float* a, const float* b, int64_t n) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  int64_t p = 0;
  for (; p + 32 <= n; p += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + p), _mm512_loadu_ps(b + p),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + p + 16),
                           _mm512_loadu_ps(b + p + 16), acc1);
  }
  for (; p + 16 <= n; p += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + p), _mm512_loadu_ps(b + p),
                           acc0);
  }
  if (p < n) {
    const __mmask16 mask = TailMask16(n - p);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, a + p),
                           _mm512_maskz_loadu_ps(mask, b + p), acc1);
  }
  return HSum512(_mm512_add_ps(acc0, acc1));
}

int32_t Int8DotAvx512(const int8_t* a, const int8_t* b, int64_t k) {
  __m512i acc = _mm512_setzero_si512();
  int64_t p = 0;
  for (; p + 64 <= k; p += 64) {
    __m512i alo, ahi, blo, bhi;
    Cvt64(a + p, &alo, &ahi);
    Cvt64(b + p, &blo, &bhi);
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(alo, blo));
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(ahi, bhi));
  }
  for (; p + 32 <= k; p += 32) {
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(Cvt32(a + p), Cvt32(b + p)));
  }
  int32_t sum = HSumI32x16(acc);
  for (; p < k; ++p) {
    sum += static_cast<int32_t>(a[p]) * static_cast<int32_t>(b[p]);
  }
  return sum;
}

void Int8DotX4Avx512(const int8_t* a, const int8_t* b, int64_t ldb, int64_t k,
                     int32_t* out) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  __m512i acc2 = _mm512_setzero_si512();
  __m512i acc3 = _mm512_setzero_si512();
  const int8_t* b0 = b;
  const int8_t* b1 = b + ldb;
  const int8_t* b2 = b + 2 * ldb;
  const int8_t* b3 = b + 3 * ldb;
  int64_t p = 0;
  for (; p + 64 <= k; p += 64) {
    __m512i alo, ahi, lo, hi;
    Cvt64(a + p, &alo, &ahi);
    Cvt64(b0 + p, &lo, &hi);
    acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(alo, lo));
    acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(ahi, hi));
    Cvt64(b1 + p, &lo, &hi);
    acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(alo, lo));
    acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(ahi, hi));
    Cvt64(b2 + p, &lo, &hi);
    acc2 = _mm512_add_epi32(acc2, _mm512_madd_epi16(alo, lo));
    acc2 = _mm512_add_epi32(acc2, _mm512_madd_epi16(ahi, hi));
    Cvt64(b3 + p, &lo, &hi);
    acc3 = _mm512_add_epi32(acc3, _mm512_madd_epi16(alo, lo));
    acc3 = _mm512_add_epi32(acc3, _mm512_madd_epi16(ahi, hi));
  }
  out[0] = HSumI32x16(acc0);
  out[1] = HSumI32x16(acc1);
  out[2] = HSumI32x16(acc2);
  out[3] = HSumI32x16(acc3);
  for (; p < k; ++p) {
    const int32_t av = a[p];
    out[0] += av * static_cast<int32_t>(b0[p]);
    out[1] += av * static_cast<int32_t>(b1[p]);
    out[2] += av * static_cast<int32_t>(b2[p]);
    out[3] += av * static_cast<int32_t>(b3[p]);
  }
}

void Int8QuantizeRowVnniAvx512(const float* x, int64_t k, int64_t k4,
                               uint8_t* out, float* scale_out) {
  // Pass 1: maxabs. max is order-independent, so the lane split cannot
  // change the result vs. the scalar/AVX2 loops. The sign-bit clear goes
  // through the integer domain: _mm512_and_ps needs AVX512DQ, which is not
  // in this TU's flag set.
  const __m512i absmask = _mm512_set1_epi32(0x7fffffff);
  __m512 mx = _mm512_setzero_ps();
  int64_t p = 0;
  for (; p + 16 <= k; p += 16) {
    mx = _mm512_max_ps(
        mx, _mm512_castsi512_ps(_mm512_and_si512(
                _mm512_castps_si512(_mm512_loadu_ps(x + p)), absmask)));
  }
  if (p < k) {
    const __mmask16 mask = TailMask16(k - p);
    mx = _mm512_max_ps(
        mx, _mm512_castsi512_ps(_mm512_and_si512(
                _mm512_castps_si512(_mm512_maskz_loadu_ps(mask, x + p)),
                absmask)));
  }
  const float maxabs = _mm512_reduce_max_ps(mx);
  *scale_out = maxabs / 127.0f;
  const float inv = maxabs > 0.0f ? 127.0f / maxabs : 0.0f;
  // Pass 2: quantize, offset to u8 (q XOR 0x80 — exact in the truncated
  // low byte), and narrow with vpmovdb. Same IEEE multiply and
  // nearest-even conversion as the scalar lrintf path, so the codes are
  // bit-identical across quantizer implementations.
  const __m512 invv = _mm512_set1_ps(inv);
  const __m512i hi = _mm512_set1_epi32(127);
  const __m512i lo = _mm512_set1_epi32(-127);
  const __m512i off = _mm512_set1_epi32(0x80);
  p = 0;
  for (; p + 16 <= k; p += 16) {
    __m512i q =
        _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(x + p), invv));
    q = _mm512_xor_si512(_mm512_min_epi32(hi, _mm512_max_epi32(lo, q)), off);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + p),
                     _mm512_cvtepi32_epi8(q));
  }
  if (p < k) {
    const __mmask16 mask = TailMask16(k - p);
    __m512i q = _mm512_cvtps_epi32(
        _mm512_mul_ps(_mm512_maskz_loadu_ps(mask, x + p), invv));
    q = _mm512_xor_si512(_mm512_min_epi32(hi, _mm512_max_epi32(lo, q)), off);
    _mm512_mask_cvtepi32_storeu_epi8(out + p, mask, q);
    p = k;
  }
  for (; p < k4; ++p) out[p] = 0x80;  // Neutral code: q = 0.
}

#if defined(__AVX512VNNI__)

bool Avx512VnniCompiledIn() { return true; }

namespace {

/// Offset-binary correction + dequantization for 16 columns of VNNI
/// accumulator: (sa * sw[j]) * float(acc_j - 128 * rs[j]). Both products
/// round per lane exactly like the scalar arm's
/// `sa * sw[j] * float(acc - 128 * rs[j])` (left-associated), so the fp32
/// bits match across paths.
inline __m512 DequantVnni(__m512i acc, __m512i rsv, __m512 sa512,
                          const float* sw) {
  const __m512i corr = _mm512_sub_epi32(acc, _mm512_slli_epi32(rsv, 7));
  const __m512 scale = _mm512_mul_ps(sa512, _mm512_loadu_ps(sw));
  return _mm512_mul_ps(scale, _mm512_cvtepi32_ps(corr));
}

}  // namespace

namespace {

/// Stores one row's worth of a 64-column accumulator block, dequantized.
inline void StoreDequant64(__m512i a0, __m512i a1, __m512i a2, __m512i a3,
                           float sa, const float* sw, const int32_t* rs,
                           float* crow) {
  const __m512 sa512 = _mm512_set1_ps(sa);
  _mm512_storeu_ps(crow, DequantVnni(a0, _mm512_loadu_si512(rs), sa512, sw));
  _mm512_storeu_ps(crow + 16,
                   DequantVnni(a1, _mm512_loadu_si512(rs + 16), sa512,
                               sw + 16));
  _mm512_storeu_ps(crow + 32,
                   DequantVnni(a2, _mm512_loadu_si512(rs + 32), sa512,
                               sw + 32));
  _mm512_storeu_ps(crow + 48,
                   DequantVnni(a3, _mm512_loadu_si512(rs + 48), sa512,
                               sw + 48));
}

}  // namespace

void Int8GemmVnniAvx512(const uint8_t* au, int64_t m, int64_t k4,
                        const int8_t* w_vnni, int64_t n, int64_t j_begin,
                        int64_t j_end, const float* sx, const float* sw,
                        const int32_t* row_sums, float* c) {
  // Each zmm lane is one output column's int32 accumulator; vpdpbusd folds
  // four u8*s8 products per lane per step, so there is no horizontal
  // reduction at all — the win over the madd kernels at serving-size k.
  // Rows go two at a time: eight independent accumulator chains hide the
  // ~5-cycle vpdpbusd latency (four chains leave the loop latency-bound at
  // under half throughput), and each weight load feeds both rows. The
  // +128 correction and the dequantizing store are fused so accumulators
  // go straight from registers to the fp32 output rows. j blocks are outer
  // so a block's weight slice (64 * k4 bytes) stays L1-resident across all
  // m rows.
  int64_t j = j_begin;
  for (; j + 64 <= j_end; j += 64) {
    const int32_t* rs = row_sums + j;
    int64_t i = 0;
    for (; i + 2 <= m; i += 2) {
      const uint8_t* a0 = au + i * k4;
      const uint8_t* a1 = a0 + k4;
      __m512i acc00 = _mm512_setzero_si512();
      __m512i acc01 = _mm512_setzero_si512();
      __m512i acc02 = _mm512_setzero_si512();
      __m512i acc03 = _mm512_setzero_si512();
      __m512i acc10 = _mm512_setzero_si512();
      __m512i acc11 = _mm512_setzero_si512();
      __m512i acc12 = _mm512_setzero_si512();
      __m512i acc13 = _mm512_setzero_si512();
      for (int64_t p4 = 0; p4 < k4 / 4; ++p4) {
        const __m512i av0 = _mm512_set1_epi32(
            *reinterpret_cast<const int*>(a0 + 4 * p4));
        const __m512i av1 = _mm512_set1_epi32(
            *reinterpret_cast<const int*>(a1 + 4 * p4));
        const int8_t* wp = w_vnni + (p4 * n + j) * 4;
        __m512i w0 = _mm512_loadu_si512(wp);
        __m512i w1 = _mm512_loadu_si512(wp + 64);
        __m512i w2 = _mm512_loadu_si512(wp + 128);
        __m512i w3 = _mm512_loadu_si512(wp + 192);
        // Pin the shared weight vectors to registers: without this, gcc
        // folds each load into a vpdpbusd memory operand and issues it
        // twice (once per row), pushing the loop from 6 to 10 load uops
        // per step and past the two-loads-per-cycle port budget.
        asm("" : "+v"(w0), "+v"(w1), "+v"(w2), "+v"(w3));
        acc00 = _mm512_dpbusd_epi32(acc00, av0, w0);
        acc10 = _mm512_dpbusd_epi32(acc10, av1, w0);
        acc01 = _mm512_dpbusd_epi32(acc01, av0, w1);
        acc11 = _mm512_dpbusd_epi32(acc11, av1, w1);
        acc02 = _mm512_dpbusd_epi32(acc02, av0, w2);
        acc12 = _mm512_dpbusd_epi32(acc12, av1, w2);
        acc03 = _mm512_dpbusd_epi32(acc03, av0, w3);
        acc13 = _mm512_dpbusd_epi32(acc13, av1, w3);
      }
      StoreDequant64(acc00, acc01, acc02, acc03, sx[i], sw + j, rs,
                     c + i * n + j);
      StoreDequant64(acc10, acc11, acc12, acc13, sx[i + 1], sw + j, rs,
                     c + (i + 1) * n + j);
    }
    if (i < m) {
      const uint8_t* a0 = au + i * k4;
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512();
      __m512i acc3 = _mm512_setzero_si512();
      for (int64_t p4 = 0; p4 < k4 / 4; ++p4) {
        const __m512i av = _mm512_set1_epi32(
            *reinterpret_cast<const int*>(a0 + 4 * p4));
        const int8_t* wp = w_vnni + (p4 * n + j) * 4;
        acc0 = _mm512_dpbusd_epi32(acc0, av, _mm512_loadu_si512(wp));
        acc1 = _mm512_dpbusd_epi32(acc1, av, _mm512_loadu_si512(wp + 64));
        acc2 = _mm512_dpbusd_epi32(acc2, av, _mm512_loadu_si512(wp + 128));
        acc3 = _mm512_dpbusd_epi32(acc3, av, _mm512_loadu_si512(wp + 192));
      }
      StoreDequant64(acc0, acc1, acc2, acc3, sx[i], sw + j, rs,
                     c + i * n + j);
    }
  }
  while (j < j_end) {
    const int64_t rem = std::min<int64_t>(16, j_end - j);
    const __mmask16 mask = TailMask16(rem);
    const __m512i rsv = _mm512_maskz_loadu_epi32(mask, row_sums + j);
    const __m512 swv = _mm512_maskz_loadu_ps(mask, sw + j);
    for (int64_t i = 0; i < m; ++i) {
      const uint8_t* a0 = au + i * k4;
      __m512i accv = _mm512_setzero_si512();
      for (int64_t p4 = 0; p4 < k4 / 4; ++p4) {
        const __m512i av = _mm512_set1_epi32(
            *reinterpret_cast<const int*>(a0 + 4 * p4));
        const __m512i wv = _mm512_maskz_loadu_epi32(
            mask, w_vnni + (p4 * n + j) * 4);
        accv = _mm512_dpbusd_epi32(accv, av, wv);
      }
      const __m512i corr =
          _mm512_sub_epi32(accv, _mm512_slli_epi32(rsv, 7));
      const __m512 scale = _mm512_mul_ps(_mm512_set1_ps(sx[i]), swv);
      _mm512_mask_storeu_ps(c + i * n + j, mask,
                            _mm512_mul_ps(scale, _mm512_cvtepi32_ps(corr)));
    }
    j += rem;
  }
}

#else  // !__AVX512VNNI__

bool Avx512VnniCompiledIn() { return false; }

void Int8GemmVnniAvx512(const uint8_t*, int64_t, int64_t, const int8_t*,
                        int64_t, int64_t, int64_t, const float*, const float*,
                        const int32_t*, float*) {
  ALT_CHECK(false) << "VNNI kernel called but not compiled in; "
                      "cpu_features dispatch is broken";
  __builtin_unreachable();
}

#endif  // __AVX512VNNI__

}  // namespace simd
}  // namespace alt

#else  // !(AVX-512 F+BW+VL)

#include "src/util/logging.h"

namespace alt {
namespace simd {

namespace {
[[noreturn]] void Unavailable512() {
  ALT_CHECK(false) << "AVX-512 kernel called but not compiled in; "
                      "cpu_features dispatch is broken";
  __builtin_unreachable();
}
}  // namespace

bool Avx512CompiledIn() { return false; }
bool Avx512VnniCompiledIn() { return false; }

void GemmMicroPanelAvx512(const float*, int64_t, const float*, int64_t,
                          float*, int64_t, int64_t, int64_t, int64_t, int64_t,
                          int64_t, int64_t, bool) {
  Unavailable512();
}
void Int8GemmVnniAvx512(const uint8_t*, int64_t, int64_t, const int8_t*,
                        int64_t, int64_t, int64_t, const float*, const float*,
                        const int32_t*, float*) {
  Unavailable512();
}
void Int8QuantizeRowVnniAvx512(const float*, int64_t, int64_t, uint8_t*,
                               float*) {
  Unavailable512();
}
float DotAvx512(const float*, const float*, int64_t) { Unavailable512(); }
int32_t Int8DotAvx512(const int8_t*, const int8_t*, int64_t) {
  Unavailable512();
}
void Int8DotX4Avx512(const int8_t*, const int8_t*, int64_t, int64_t,
                     int32_t*) {
  Unavailable512();
}

}  // namespace simd
}  // namespace alt

#endif  // AVX-512 F+BW+VL
