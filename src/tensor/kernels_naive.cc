#include "src/tensor/kernels_naive.h"

#include <algorithm>

#include "src/util/logging.h"

namespace alt {
namespace naive {

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmTransA(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmTransB(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

void BatchedMatMul(const Tensor& a, bool trans_a, const Tensor& b,
                   bool trans_b, Tensor* c, bool accumulate) {
  const int64_t batch = a.size(0);
  const int64_t m = trans_a ? a.size(2) : a.size(1);
  const int64_t k = trans_a ? a.size(1) : a.size(2);
  const int64_t n = trans_b ? b.size(1) : b.size(2);
  const int64_t a_stride = a.size(1) * a.size(2);
  const int64_t b_stride = b.size(1) * b.size(2);
  const int64_t c_stride = m * n;
  for (int64_t bi = 0; bi < batch; ++bi) {
    const float* ap = a.data() + bi * a_stride;
    const float* bp = b.data() + bi * b_stride;
    float* cp = c->data() + bi * c_stride;
    if (!accumulate) std::fill(cp, cp + c_stride, 0.0f);
    if (!trans_a && !trans_b) {
      Gemm(ap, bp, cp, m, k, n, /*accumulate=*/true);
    } else if (trans_a && !trans_b) {
      GemmTransA(ap, bp, cp, m, k, n);
    } else if (!trans_a && trans_b) {
      GemmTransB(ap, bp, cp, m, k, n);
    } else {
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          float acc = 0.0f;
          for (int64_t p = 0; p < k; ++p) acc += ap[p * m + i] * bp[j * k + p];
          cp[i * n + j] += acc;
        }
      }
    }
  }
}

void Conv1D(const Tensor& input, const Tensor& weight, const Tensor* bias,
            int64_t dilation, Tensor* out) {
  const int64_t batch = input.size(0);
  const int64_t seq = input.size(1);
  const int64_t cin = input.size(2);
  const int64_t cout = weight.size(0);
  const int64_t k = weight.size(1);
  ALT_CHECK_EQ(weight.size(2), cin);
  const int64_t half = (k - 1) / 2;
  out->SetZero();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      float* orow = out->data() + (b * seq + t) * cout;
      for (int64_t j = 0; j < k; ++j) {
        const int64_t ti = t + (j - half) * dilation;
        if (ti < 0 || ti >= seq) continue;
        const float* irow = input.data() + (b * seq + ti) * cin;
        const float* wtap = weight.data() + j * cin;  // [cout, k, cin]
        for (int64_t co = 0; co < cout; ++co) {
          const float* w = wtap + co * k * cin;
          float acc = 0.0f;
          for (int64_t ci = 0; ci < cin; ++ci) acc += irow[ci] * w[ci];
          orow[co] += acc;
        }
      }
      if (bias != nullptr) {
        for (int64_t co = 0; co < cout; ++co) orow[co] += (*bias)[co];
      }
    }
  }
}

}  // namespace naive
}  // namespace alt
