#ifndef ALT_SRC_TENSOR_KERNELS_NAIVE_H_
#define ALT_SRC_TENSOR_KERNELS_NAIVE_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace alt {
namespace naive {

/// Reference implementations of the dense kernels, byte-for-byte the scalar
/// triple loops the library shipped with before the blocked/parallel kernel
/// layer landed. They are compiled with the default optimization flags (no
/// per-file -O3 override), so they measure exactly what the pre-kernel-layer
/// build would do. Kept for two purposes:
///   1. the kernel parity test suite checks the optimized kernels against
///      them over randomized shapes, and
///   2. bench_kernels reports the optimized/naive GFLOP/s ratio so the perf
///      trajectory is tracked from the PR that introduced the layer onward.
/// Do not "optimize" these: their value is being the frozen baseline.

/// C[m,n] (+)= A[m,k] * B[k,n].
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool accumulate);

/// C[m,n] += A[k,m]^T B[k,n].
void GemmTransA(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n);

/// C[m,n] += A[m,k] B[n,k]^T.
void GemmTransB(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n);

/// Batched C[b] (+)= op(A[b]) op(B[b]); same contract as alt::BatchedMatMul.
void BatchedMatMul(const Tensor& a, bool trans_a, const Tensor& b,
                   bool trans_b, Tensor* c, bool accumulate);

/// Direct 1-D convolution; same contract as alt::Conv1D.
void Conv1D(const Tensor& input, const Tensor& weight, const Tensor* bias,
            int64_t dilation, Tensor* out);

}  // namespace naive
}  // namespace alt

#endif  // ALT_SRC_TENSOR_KERNELS_NAIVE_H_
