// AVX2+FMA micro-kernels behind the runtime dispatcher (cpu_features.h).
//
// This translation unit is the only one compiled with -mavx2 -mfma (see
// src/tensor/CMakeLists.txt), so no AVX2 instruction can leak into code that
// runs before dispatch: callers reach these functions only after
// ActiveSimdLevel() == kAvx2, which implies both compile-time and host
// support. On toolchains/architectures without AVX2 the file degrades to
// aborting stubs and Avx2CompiledIn() == false, keeping the link portable.
//
// Determinism: every accumulator pattern below is fixed by the (i, p, j)
// sub-block alone. Each C element is loaded once, accumulated with
// sequential-p FMAs, and stored once; lanes are independent elements, so the
// bits of C[i][j] never depend on which register tile (4-row, 1-row, or
// masked epilogue) covered it, nor on how ParallelFor partitioned the rows.
// Tails use masked loads/stores so no lane ever touches memory outside the
// sub-block.

#include "src/tensor/kernels_simd.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace alt {
namespace simd {

namespace {

/// Lane mask for the final j tail: lane l is active iff l < rem (1 <= rem <= 7).
inline __m256i TailMask(int64_t rem) {
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(rem)), iota);
}

/// Fixed-order horizontal sum: (lane0+lane4)+(lane1+lane5) ... pairwise.
inline float HSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

inline double HSumD(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

inline int32_t HSumI32(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 1));
  return _mm_cvtsi128_si32(s);
}

template <bool kTransA>
inline float AElem(const float* a, int64_t lda, int64_t i, int64_t p) {
  return kTransA ? a[p * lda + i] : a[i * lda + p];
}

/// The register-tiled panel: 4 rows x 16 columns of C live in 8 ymm
/// accumulators across the whole [p_begin, p_end) reduction, so C is touched
/// exactly once per k block (the scalar panel re-streams C every k quad —
/// that difference is most of the AVX2 win). Row tails run one row at a
/// time with a wider 32-column tile (more b reuse per a broadcast, which is
/// the m=1 inference shape); column tails drop to one vector and finally a
/// masked vector.
template <bool kTransA>
void MicroPanelImpl(const float* __restrict__ a, int64_t lda,
                    const float* __restrict__ b, int64_t ldb,
                    float* __restrict__ c, int64_t ldc, int64_t i_begin,
                    int64_t i_end, int64_t p_begin, int64_t p_end,
                    int64_t j_begin, int64_t j_end) {
  int64_t i = i_begin;
  for (; i + 4 <= i_end; i += 4) {
    float* __restrict__ c0 = c + (i + 0) * ldc;
    float* __restrict__ c1 = c + (i + 1) * ldc;
    float* __restrict__ c2 = c + (i + 2) * ldc;
    float* __restrict__ c3 = c + (i + 3) * ldc;
    int64_t j = j_begin;
    for (; j + 16 <= j_end; j += 16) {
      __m256 acc00 = _mm256_loadu_ps(c0 + j);
      __m256 acc01 = _mm256_loadu_ps(c0 + j + 8);
      __m256 acc10 = _mm256_loadu_ps(c1 + j);
      __m256 acc11 = _mm256_loadu_ps(c1 + j + 8);
      __m256 acc20 = _mm256_loadu_ps(c2 + j);
      __m256 acc21 = _mm256_loadu_ps(c2 + j + 8);
      __m256 acc30 = _mm256_loadu_ps(c3 + j);
      __m256 acc31 = _mm256_loadu_ps(c3 + j + 8);
      for (int64_t p = p_begin; p < p_end; ++p) {
        const float* __restrict__ bp = b + p * ldb + j;
        const __m256 b0 = _mm256_loadu_ps(bp);
        const __m256 b1 = _mm256_loadu_ps(bp + 8);
        __m256 av = _mm256_set1_ps(AElem<kTransA>(a, lda, i + 0, p));
        acc00 = _mm256_fmadd_ps(av, b0, acc00);
        acc01 = _mm256_fmadd_ps(av, b1, acc01);
        av = _mm256_set1_ps(AElem<kTransA>(a, lda, i + 1, p));
        acc10 = _mm256_fmadd_ps(av, b0, acc10);
        acc11 = _mm256_fmadd_ps(av, b1, acc11);
        av = _mm256_set1_ps(AElem<kTransA>(a, lda, i + 2, p));
        acc20 = _mm256_fmadd_ps(av, b0, acc20);
        acc21 = _mm256_fmadd_ps(av, b1, acc21);
        av = _mm256_set1_ps(AElem<kTransA>(a, lda, i + 3, p));
        acc30 = _mm256_fmadd_ps(av, b0, acc30);
        acc31 = _mm256_fmadd_ps(av, b1, acc31);
      }
      _mm256_storeu_ps(c0 + j, acc00);
      _mm256_storeu_ps(c0 + j + 8, acc01);
      _mm256_storeu_ps(c1 + j, acc10);
      _mm256_storeu_ps(c1 + j + 8, acc11);
      _mm256_storeu_ps(c2 + j, acc20);
      _mm256_storeu_ps(c2 + j + 8, acc21);
      _mm256_storeu_ps(c3 + j, acc30);
      _mm256_storeu_ps(c3 + j + 8, acc31);
    }
    for (; j + 8 <= j_end; j += 8) {
      __m256 acc0 = _mm256_loadu_ps(c0 + j);
      __m256 acc1 = _mm256_loadu_ps(c1 + j);
      __m256 acc2 = _mm256_loadu_ps(c2 + j);
      __m256 acc3 = _mm256_loadu_ps(c3 + j);
      for (int64_t p = p_begin; p < p_end; ++p) {
        const __m256 bv = _mm256_loadu_ps(b + p * ldb + j);
        acc0 = _mm256_fmadd_ps(
            _mm256_set1_ps(AElem<kTransA>(a, lda, i + 0, p)), bv, acc0);
        acc1 = _mm256_fmadd_ps(
            _mm256_set1_ps(AElem<kTransA>(a, lda, i + 1, p)), bv, acc1);
        acc2 = _mm256_fmadd_ps(
            _mm256_set1_ps(AElem<kTransA>(a, lda, i + 2, p)), bv, acc2);
        acc3 = _mm256_fmadd_ps(
            _mm256_set1_ps(AElem<kTransA>(a, lda, i + 3, p)), bv, acc3);
      }
      _mm256_storeu_ps(c0 + j, acc0);
      _mm256_storeu_ps(c1 + j, acc1);
      _mm256_storeu_ps(c2 + j, acc2);
      _mm256_storeu_ps(c3 + j, acc3);
    }
    if (j < j_end) {
      const __m256i mask = TailMask(j_end - j);
      __m256 acc0 = _mm256_maskload_ps(c0 + j, mask);
      __m256 acc1 = _mm256_maskload_ps(c1 + j, mask);
      __m256 acc2 = _mm256_maskload_ps(c2 + j, mask);
      __m256 acc3 = _mm256_maskload_ps(c3 + j, mask);
      for (int64_t p = p_begin; p < p_end; ++p) {
        const __m256 bv = _mm256_maskload_ps(b + p * ldb + j, mask);
        acc0 = _mm256_fmadd_ps(
            _mm256_set1_ps(AElem<kTransA>(a, lda, i + 0, p)), bv, acc0);
        acc1 = _mm256_fmadd_ps(
            _mm256_set1_ps(AElem<kTransA>(a, lda, i + 1, p)), bv, acc1);
        acc2 = _mm256_fmadd_ps(
            _mm256_set1_ps(AElem<kTransA>(a, lda, i + 2, p)), bv, acc2);
        acc3 = _mm256_fmadd_ps(
            _mm256_set1_ps(AElem<kTransA>(a, lda, i + 3, p)), bv, acc3);
      }
      _mm256_maskstore_ps(c0 + j, mask, acc0);
      _mm256_maskstore_ps(c1 + j, mask, acc1);
      _mm256_maskstore_ps(c2 + j, mask, acc2);
      _mm256_maskstore_ps(c3 + j, mask, acc3);
    }
  }
  for (; i < i_end; ++i) {
    float* __restrict__ ci = c + i * ldc;
    int64_t j = j_begin;
    for (; j + 32 <= j_end; j += 32) {
      __m256 acc0 = _mm256_loadu_ps(ci + j);
      __m256 acc1 = _mm256_loadu_ps(ci + j + 8);
      __m256 acc2 = _mm256_loadu_ps(ci + j + 16);
      __m256 acc3 = _mm256_loadu_ps(ci + j + 24);
      for (int64_t p = p_begin; p < p_end; ++p) {
        const float* __restrict__ bp = b + p * ldb + j;
        const __m256 av = _mm256_set1_ps(AElem<kTransA>(a, lda, i, p));
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp + 8), acc1);
        acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp + 16), acc2);
        acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp + 24), acc3);
      }
      _mm256_storeu_ps(ci + j, acc0);
      _mm256_storeu_ps(ci + j + 8, acc1);
      _mm256_storeu_ps(ci + j + 16, acc2);
      _mm256_storeu_ps(ci + j + 24, acc3);
    }
    for (; j + 8 <= j_end; j += 8) {
      __m256 acc = _mm256_loadu_ps(ci + j);
      for (int64_t p = p_begin; p < p_end; ++p) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(AElem<kTransA>(a, lda, i, p)),
                              _mm256_loadu_ps(b + p * ldb + j), acc);
      }
      _mm256_storeu_ps(ci + j, acc);
    }
    if (j < j_end) {
      const __m256i mask = TailMask(j_end - j);
      __m256 acc = _mm256_maskload_ps(ci + j, mask);
      for (int64_t p = p_begin; p < p_end; ++p) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(AElem<kTransA>(a, lda, i, p)),
                              _mm256_maskload_ps(b + p * ldb + j, mask), acc);
      }
      _mm256_maskstore_ps(ci + j, mask, acc);
    }
  }
}

}  // namespace

bool Avx2CompiledIn() { return true; }

void GemmMicroPanelAvx2(const float* a, int64_t lda, const float* b,
                        int64_t ldb, float* c, int64_t ldc, int64_t i_begin,
                        int64_t i_end, int64_t p_begin, int64_t p_end,
                        int64_t j_begin, int64_t j_end, bool trans_a) {
  if (trans_a) {
    MicroPanelImpl<true>(a, lda, b, ldb, c, ldc, i_begin, i_end, p_begin,
                         p_end, j_begin, j_end);
  } else {
    MicroPanelImpl<false>(a, lda, b, ldb, c, ldc, i_begin, i_end, p_begin,
                          p_end, j_begin, j_end);
  }
}

float DotAvx2(const float* a, const float* b, int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int64_t p = 0;
  for (; p + 16 <= n; p += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p), _mm256_loadu_ps(b + p),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p + 8),
                           _mm256_loadu_ps(b + p + 8), acc1);
  }
  for (; p + 8 <= n; p += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p), _mm256_loadu_ps(b + p),
                           acc0);
  }
  float sum = HSum(_mm256_add_ps(acc0, acc1));
  for (; p < n; ++p) sum += a[p] * b[p];
  return sum;
}

void VecAxpyAvx2(float alpha, const float* x, float* y, int64_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i,
        _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void VecScaleAvx2(float alpha, float* y, int64_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(av, _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] *= alpha;
}

void VecReluAvx2(const float* x, float* y, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

float RowMaxAvx2(const float* x, int64_t n) {
  int64_t i = 0;
  float best = x[0];
  if (n >= 8) {
    __m256 acc = _mm256_loadu_ps(x);
    i = 8;
    for (; i + 8 <= n; i += 8) {
      acc = _mm256_max_ps(acc, _mm256_loadu_ps(x + i));
    }
    __m128 s = _mm_max_ps(_mm256_castps256_ps128(acc),
                          _mm256_extractf128_ps(acc, 1));
    s = _mm_max_ps(s, _mm_movehl_ps(s, s));
    s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
    best = _mm_cvtss_f32(s);
  }
  for (; i < n; ++i) best = best > x[i] ? best : x[i];
  return best;
}

double RowSumAvx2(const float* x, int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  double sum = HSumD(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) sum += static_cast<double>(x[i]);
  return sum;
}

void RowMeanVarAvx2(const float* x, int64_t n, double* mean, double* var) {
  const double m = RowSumAvx2(x, n) / static_cast<double>(n);
  const __m256d mv = _mm256_set1_pd(m);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256d d0 =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v)), mv);
    const __m256d d1 =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)), mv);
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  double ss = HSumD(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - m;
    ss += d * d;
  }
  *mean = m;
  *var = ss / static_cast<double>(n);
}

void RowNormalizeAffineAvx2(const float* src, float mean, float istd,
                            const float* gamma, const float* beta,
                            float* xhat, float* dst, int64_t n) {
  const __m256 mv = _mm256_set1_ps(mean);
  const __m256 sv = _mm256_set1_ps(istd);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 xh =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(src + j), mv), sv);
    _mm256_storeu_ps(xhat + j, xh);
    _mm256_storeu_ps(
        dst + j,
        _mm256_fmadd_ps(xh, _mm256_loadu_ps(gamma + j),
                        _mm256_loadu_ps(beta + j)));
  }
  for (; j < n; ++j) {
    const float xh = (src[j] - mean) * istd;
    xhat[j] = xh;
    dst[j] = xh * gamma[j] + beta[j];
  }
}

namespace {

/// Sign-extends 32 int8 values into two 16-lane int16 vectors.
inline void Cvt32(const int8_t* p, __m256i* lo, __m256i* hi) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  *lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(v));
  *hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(v, 1));
}

}  // namespace

int32_t Int8DotAvx2(const int8_t* a, const int8_t* b, int64_t k) {
  __m256i acc = _mm256_setzero_si256();
  int64_t p = 0;
  for (; p + 32 <= k; p += 32) {
    __m256i a0, a1, b0, b1;
    Cvt32(a + p, &a0, &a1);
    Cvt32(b + p, &b0, &b1);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a0, b0));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a1, b1));
  }
  for (; p + 16 <= k; p += 16) {
    const __m256i av = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p)));
    const __m256i bv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
  }
  int32_t sum = HSumI32(acc);
  for (; p < k; ++p) {
    sum += static_cast<int32_t>(a[p]) * static_cast<int32_t>(b[p]);
  }
  return sum;
}

void Int8DotX4Avx2(const int8_t* a, const int8_t* b, int64_t ldb, int64_t k,
                   int32_t* out) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  const int8_t* b0 = b;
  const int8_t* b1 = b + ldb;
  const int8_t* b2 = b + 2 * ldb;
  const int8_t* b3 = b + 3 * ldb;
  int64_t p = 0;
  for (; p + 32 <= k; p += 32) {
    __m256i alo, ahi, lo, hi;
    Cvt32(a + p, &alo, &ahi);
    Cvt32(b0 + p, &lo, &hi);
    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(alo, lo));
    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(ahi, hi));
    Cvt32(b1 + p, &lo, &hi);
    acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(alo, lo));
    acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(ahi, hi));
    Cvt32(b2 + p, &lo, &hi);
    acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(alo, lo));
    acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(ahi, hi));
    Cvt32(b3 + p, &lo, &hi);
    acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(alo, lo));
    acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(ahi, hi));
  }
  out[0] = HSumI32(acc0);
  out[1] = HSumI32(acc1);
  out[2] = HSumI32(acc2);
  out[3] = HSumI32(acc3);
  for (; p < k; ++p) {
    const int32_t av = a[p];
    out[0] += av * static_cast<int32_t>(b0[p]);
    out[1] += av * static_cast<int32_t>(b1[p]);
    out[2] += av * static_cast<int32_t>(b2[p]);
    out[3] += av * static_cast<int32_t>(b3[p]);
  }
}

void Int8QuantizeRowAvx2(const float* x, int64_t k, int8_t* out,
                         float* scale_out) {
  // Pass 1: maxabs. max is order-independent, so the lane split cannot
  // change the result vs. the scalar loop.
  const __m256 absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 mx = _mm256_setzero_ps();
  int64_t p = 0;
  for (; p + 8 <= k; p += 8) {
    mx = _mm256_max_ps(mx, _mm256_and_ps(_mm256_loadu_ps(x + p), absmask));
  }
  __m128 s =
      _mm_max_ps(_mm256_castps256_ps128(mx), _mm256_extractf128_ps(mx, 1));
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
  float maxabs = _mm_cvtss_f32(s);
  for (; p < k; ++p) {
    const float a = std::fabs(x[p]);
    maxabs = maxabs > a ? maxabs : a;
  }
  *scale_out = maxabs / 127.0f;
  const float inv = maxabs > 0.0f ? 127.0f / maxabs : 0.0f;
  // Pass 2: quantize. The multiply is the same IEEE product the scalar path
  // computes, and cvtps2dq rounds to nearest-even under the default MXCSR
  // mode — exactly what std::lrintf does under the default fenv — so the
  // int8 codes are bit-identical to the scalar arm. |x * inv| <= 127 + 1ulp
  // by construction, so the int32 conversion cannot overflow.
  const __m256 invv = _mm256_set1_ps(inv);
  const __m256i hi = _mm256_set1_epi32(127);
  const __m256i lo = _mm256_set1_epi32(-127);
  // Picks byte 0 of each dword within each 128-bit lane.
  const __m256i byte0 = _mm256_setr_epi8(
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
  p = 0;
  for (; p + 8 <= k; p += 8) {
    __m256i q =
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x + p), invv));
    q = _mm256_min_epi32(hi, _mm256_max_epi32(lo, q));
    const __m256i b = _mm256_shuffle_epi8(q, byte0);
    _mm_storel_epi64(
        reinterpret_cast<__m128i*>(out + p),
        _mm_unpacklo_epi32(_mm256_castsi256_si128(b),
                           _mm256_extracti128_si256(b, 1)));
  }
  for (; p < k; ++p) {
    const long q = std::lrintf(x[p] * inv);
    out[p] =
        static_cast<int8_t>(std::max<long>(-127, std::min<long>(127, q)));
  }
}

}  // namespace simd
}  // namespace alt

#else  // !(__AVX2__ && __FMA__)

#include "src/util/logging.h"

namespace alt {
namespace simd {

namespace {
[[noreturn]] void AbortUnavailable() {
  ALT_CHECK(false) << "AVX2 kernel called but not compiled in; "
                      "cpu_features dispatch is broken";
  __builtin_unreachable();
}
}  // namespace

bool Avx2CompiledIn() { return false; }

void GemmMicroPanelAvx2(const float*, int64_t, const float*, int64_t, float*,
                        int64_t, int64_t, int64_t, int64_t, int64_t, int64_t,
                        int64_t, bool) {
  AbortUnavailable();
}
float DotAvx2(const float*, const float*, int64_t) { AbortUnavailable(); }
void VecAxpyAvx2(float, const float*, float*, int64_t) { AbortUnavailable(); }
void VecScaleAvx2(float, float*, int64_t) { AbortUnavailable(); }
void VecReluAvx2(const float*, float*, int64_t) { AbortUnavailable(); }
float RowMaxAvx2(const float*, int64_t) { AbortUnavailable(); }
double RowSumAvx2(const float*, int64_t) { AbortUnavailable(); }
void RowMeanVarAvx2(const float*, int64_t, double*, double*) { AbortUnavailable(); }
void RowNormalizeAffineAvx2(const float*, float, float, const float*,
                            const float*, float*, float*, int64_t) {
  AbortUnavailable();
}
int32_t Int8DotAvx2(const int8_t*, const int8_t*, int64_t) { AbortUnavailable(); }
void Int8DotX4Avx2(const int8_t*, const int8_t*, int64_t, int64_t, int32_t*) {
  AbortUnavailable();
}
void Int8QuantizeRowAvx2(const float*, int64_t, int8_t*, float*) {
  AbortUnavailable();
}

}  // namespace simd
}  // namespace alt

#endif  // __AVX2__ && __FMA__
