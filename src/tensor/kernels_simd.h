#ifndef ALT_SRC_TENSOR_KERNELS_SIMD_H_
#define ALT_SRC_TENSOR_KERNELS_SIMD_H_

#include <cstdint>

namespace alt {
namespace simd {

/// Internal interface between the dispatching kernels (kernels.cc, quant.cc —
/// compiled with the project's baseline flags) and the AVX2+FMA translation
/// unit (kernels_avx2.cc — compiled with -mavx2 -mfma when the toolchain
/// supports it). Nothing outside src/tensor/ may include this header; the
/// public contract is kernels.h/quant.h plus cpu_features.h.
///
/// Every function here must only be called when cpu_features.h resolves to
/// SimdLevel::kAvx2 (which implies Avx2CompiledIn() && host support). On
/// builds without AVX2 the definitions are aborting stubs so the library
/// still links on any architecture.
///
/// Determinism contract: for a fixed input, each function below produces the
/// same bits on every call and — for the GEMM micro-panels — the per-element
/// accumulation order depends only on (p_begin, p_end), never on how rows or
/// columns were partitioned across threads. See kernels.cc for the blocking
/// invariants these slot into.

/// True when this build contains real AVX2 code paths (compile-time fact;
/// host support is probed separately by cpu_features.cc).
bool Avx2CompiledIn();

/// C[i, j] += sum_p A(i, p) * B[p, j] over the given sub-block, FMA form:
/// sequential p, C held in registers across [p_begin, p_end). A is indexed
/// [i, p] with leading dimension lda, or [p, i] when trans_a.
void GemmMicroPanelAvx2(const float* a, int64_t lda, const float* b,
                        int64_t ldb, float* c, int64_t ldc, int64_t i_begin,
                        int64_t i_end, int64_t p_begin, int64_t p_end,
                        int64_t j_begin, int64_t j_end, bool trans_a);

/// sum_p a[p] * b[p], 8-lane FMA with fixed lane-combine order.
float DotAvx2(const float* a, const float* b, int64_t n);

/// y[i] += alpha * x[i] over [0, n).
void VecAxpyAvx2(float alpha, const float* x, float* y, int64_t n);
/// y[i] *= alpha over [0, n).
void VecScaleAvx2(float alpha, float* y, int64_t n);
/// y[i] = max(x[i], 0).
void VecReluAvx2(const float* x, float* y, int64_t n);

/// max_i x[i]; n >= 1. Exact (max is order-independent).
float RowMaxAvx2(const float* x, int64_t n);
/// sum_i x[i] accumulated in 4 double lanes, fixed combine order.
double RowSumAvx2(const float* x, int64_t n);
/// Two-pass mean and (population) variance in double, 4-lane accumulation.
void RowMeanVarAvx2(const float* x, int64_t n, double* mean, double* var);
/// Layer-norm inner loop: xhat[j] = (src[j] - mean) * istd;
/// dst[j] = xhat[j] * gamma[j] + beta[j].
void RowNormalizeAffineAvx2(const float* src, float mean, float istd,
                            const float* gamma, const float* beta,
                            float* xhat, float* dst, int64_t n);

/// sum_p a[p] * b[p] over int8 operands with exact int32 accumulation
/// (sign-extend to int16, _mm256_madd_epi16). Bit-identical to the scalar
/// reference for any order because integer addition is associative.
int32_t Int8DotAvx2(const int8_t* a, const int8_t* b, int64_t k);

/// Four int8 dot products sharing the sign-extension of `a`:
/// out[j] = sum_p a[p] * b[j*ldb + p] for j in 0..3.
void Int8DotX4Avx2(const int8_t* a, const int8_t* b, int64_t ldb, int64_t k,
                   int32_t* out);

/// AVX-512 (F+BW+VL) tier — kernels_avx512.cc. Same contracts as the AVX2
/// functions above, with 16-lane vectors and mask-register tails; only call
/// when ActiveSimdLevel() == kAvx512. The int8 dots are bit-identical to
/// the AVX2/scalar ones (exact int32); the fp32 panels define their own
/// fixed reduction grouping, distinct from both other levels.
bool Avx512CompiledIn();

void GemmMicroPanelAvx512(const float* a, int64_t lda, const float* b,
                          int64_t ldb, float* c, int64_t ldc, int64_t i_begin,
                          int64_t i_end, int64_t p_begin, int64_t p_end,
                          int64_t j_begin, int64_t j_end, bool trans_a);

float DotAvx512(const float* a, const float* b, int64_t n);

int32_t Int8DotAvx512(const int8_t* a, const int8_t* b, int64_t k);
void Int8DotX4Avx512(const int8_t* a, const int8_t* b, int64_t ldb, int64_t k,
                     int32_t* out);

/// VNNI refinement of the int8 GEMM (vpdpbusd; only call when
/// cpu_features' Avx512VnniSupported() is true). The weight is in the
/// packed "VNNI layout" [k4/4, n, 4]: for column j and depth p,
/// w_vnni[(p/4)*n*4 + j*4 + p%4] = q(W)[j][p], zero-padded to k4 =
/// RoundUp(k, 4) depths. `au` is one activation row of k4 bytes holding
/// q(x)+128 (offset-binary), padding arbitrary (the padded weights are 0).
///
/// `au` holds m such rows with stride k4. Accumulates, for every row i and
/// j in [j_begin, j_end), the exact int32
///   acc_ij = sum_p (q(x)[i][p] + 128) * q(W)[j][p]
/// then fuses the dequantization store
///   c[i * n + j] = (sx[i] * sw[j]) * float(acc_ij - 128 * row_sums[j])
/// with the product associated exactly like the scalar arm, so the fp32
/// output bits match the madd/scalar int8 kernels.
void Int8GemmVnniAvx512(const uint8_t* au, int64_t m, int64_t k4,
                        const int8_t* w_vnni, int64_t n, int64_t j_begin,
                        int64_t j_end, const float* sx, const float* sw,
                        const int32_t* row_sums, float* c);
bool Avx512VnniCompiledIn();

/// One row of activation quantization straight into the VNNI GEMM's
/// offset-binary input: out[p] = (clamp(rint(x[p] * 127 / maxabs)) XOR 0x80)
/// for p < k, and the neutral code 0x80 (q = 0) for the k..k4 padding.
/// The int8 codes match Int8QuantizeRowAvx2 / the scalar path bit-for-bit
/// (identical multiply; cvtps2dq and lrintf both round to nearest-even).
/// Plain AVX-512, callable whenever ActiveSimdLevel() == kAvx512.
void Int8QuantizeRowVnniAvx512(const float* x, int64_t k, int64_t k4,
                               uint8_t* out, float* scale_out);

/// One row of symmetric int8 activation quantization:
/// *scale_out = maxabs(x) / 127, out[p] = clamp(rint(x[p] * 127 / maxabs)).
/// Rounding is cvtps2dq (nearest-even under the default MXCSR mode), which
/// matches the scalar std::lrintf path bit-for-bit.
void Int8QuantizeRowAvx2(const float* x, int64_t k, int8_t* out,
                         float* scale_out);

}  // namespace simd
}  // namespace alt

#endif  // ALT_SRC_TENSOR_KERNELS_SIMD_H_
