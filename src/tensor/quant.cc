#include "src/tensor/quant.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/tensor/cpu_features.h"
#include "src/tensor/kernels_simd.h"
#include "src/tensor/scratch.h"
#include "src/util/logging.h"
#include "src/util/parallel_for.h"

namespace alt {
namespace quant {
namespace {

// Clamp to +-127 (not -128) to keep the grid symmetric around zero.
inline int8_t QuantizeValue(float v, float inv_scale) {
  const long q = std::lrintf(v * inv_scale);
  return static_cast<int8_t>(
      std::max<long>(-127, std::min<long>(127, q)));
}

/// Output-column chunk size for the int8 GEMMs: wide enough that the SIMD
/// panels run with full vectors and the per-chunk weight slice is reused
/// across all m activation rows.
constexpr int64_t kColGrain = 64;

int32_t Int8DotScalar(const int8_t* a, const int8_t* b, int64_t k) {
  int32_t acc = 0;
  for (int64_t p = 0; p < k; ++p) {
    acc += static_cast<int32_t>(a[p]) * static_cast<int32_t>(b[p]);
  }
  return acc;
}

}  // namespace

QuantizedMatrix QuantizeWeight(const Tensor& w) {
  ALT_CHECK_EQ(w.ndim(), 2) << "QuantizeWeight expects a [k, n] matrix ";
  const int64_t k = w.size(0);
  const int64_t n = w.size(1);
  QuantizedMatrix q;
  q.rows = n;
  q.cols = k;
  q.data.resize(static_cast<size_t>(n * k));
  q.scales.resize(static_cast<size_t>(n));
  q.row_sums.resize(static_cast<size_t>(n));
  const float* src = w.data();
  for (int64_t j = 0; j < n; ++j) {
    float maxabs = 0.0f;
    for (int64_t p = 0; p < k; ++p) {
      maxabs = std::max(maxabs, std::fabs(src[p * n + j]));
    }
    const float scale = maxabs / 127.0f;
    const float inv_scale = maxabs > 0.0f ? 127.0f / maxabs : 0.0f;
    q.scales[static_cast<size_t>(j)] = scale;
    int8_t* dst = q.data.data() + j * k;
    int32_t sum = 0;
    for (int64_t p = 0; p < k; ++p) {
      dst[p] = QuantizeValue(src[p * n + j], inv_scale);
      sum += dst[p];
    }
    q.row_sums[static_cast<size_t>(j)] = sum;
  }
  if (Avx512VnniSupported()) {
    const int64_t k4 = (k + 3) & ~int64_t{3};
    q.vnni_data.assign(static_cast<size_t>(k4 * n), 0);
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* row = q.data.data() + j * k;
      for (int64_t p = 0; p < k; ++p) {
        q.vnni_data[static_cast<size_t>((p / 4) * n * 4 + j * 4 + p % 4)] =
            row[p];
      }
    }
  }
  return q;
}

Tensor DequantizeWeight(const QuantizedMatrix& q) {
  Tensor w({q.cols, q.rows});
  float* dst = w.data();
  for (int64_t j = 0; j < q.rows; ++j) {
    const float scale = q.scales[static_cast<size_t>(j)];
    const int8_t* row = q.data.data() + j * q.cols;
    for (int64_t p = 0; p < q.cols; ++p) {
      dst[p * q.rows + j] = scale * static_cast<float>(row[p]);
    }
  }
  return w;
}

void QuantizeRows(const float* x, int64_t m, int64_t k, int8_t* xq,
                  float* scales) {
  // The AVX2 row quantizer produces the same int8 codes bit-for-bit (same
  // IEEE multiply; cvtps2dq and lrintf both round to nearest-even under the
  // default modes), so this dispatch cannot change results.
  if (ActiveSimdLevel() >= SimdLevel::kAvx2) {
    for (int64_t i = 0; i < m; ++i) {
      simd::Int8QuantizeRowAvx2(x + i * k, k, xq + i * k, scales + i);
    }
    return;
  }
  for (int64_t i = 0; i < m; ++i) {
    const float* row = x + i * k;
    float maxabs = 0.0f;
    for (int64_t p = 0; p < k; ++p) {
      maxabs = std::max(maxabs, std::fabs(row[p]));
    }
    scales[i] = maxabs / 127.0f;
    const float inv_scale = maxabs > 0.0f ? 127.0f / maxabs : 0.0f;
    int8_t* dst = xq + i * k;
    for (int64_t p = 0; p < k; ++p) {
      dst[p] = QuantizeValue(row[p], inv_scale);
    }
  }
}

void Int8Gemm(const int8_t* xq, const float* sx, const QuantizedMatrix& w,
              int64_t m, float* c) {
  const int64_t n = w.rows;
  const int64_t k = w.cols;
  const int8_t* wq = w.data.data();
  const float* sw = w.scales.data();
  const SimdLevel level = ActiveSimdLevel();
  if (level == SimdLevel::kAvx512 && !w.vnni_data.empty() &&
      Avx512VnniSupported()) {
    // vpdpbusd path: activations are offset to u8 (q + 128) once, outside
    // the parallel region; the per-column bias 128 * row_sums[j] is
    // subtracted from the exact int32 accumulator, so bits still match the
    // madd/scalar arms below.
    const int64_t k4 = (k + 3) & ~int64_t{3};
    ScratchFrame frame;
    uint8_t* au = reinterpret_cast<uint8_t*>(frame.Int8(m * k4));
    for (int64_t i = 0; i < m; ++i) {
      const int8_t* srcrow = xq + i * k;
      uint8_t* dstrow = au + i * k4;
      for (int64_t p = 0; p < k; ++p) {
        dstrow[p] = static_cast<uint8_t>(srcrow[p] ^ 0x80);
      }
      for (int64_t p = k; p < k4; ++p) dstrow[p] = 0;
    }
    const int8_t* wv = w.vnni_data.data();
    const int32_t* rs = w.row_sums.data();
    // Fixed 64-column chunks: full zmm lanes per panel call, and a chunk's
    // weight slice (64 * k4 bytes) stays cache-resident across the m rows.
    // The kernel fuses the 128-offset correction and the dequantizing store,
    // so accumulators never round-trip through memory.
    ParallelFor(0, n, kColGrain, [&](int64_t j0, int64_t j1) {
      simd::Int8GemmVnniAvx512(au, m, k4, wv, n, j0, j1, sx, sw, rs, c);
    });
    return;
  }
  // Parallel over output columns: every c[i, j] is produced by exactly one
  // chunk, and the int32 dot is exact, so neither the partition nor the
  // SIMD level can change bits.
  ParallelFor(0, n, kColGrain, [&](int64_t j0, int64_t j1) {
    for (int64_t i = 0; i < m; ++i) {
      const int8_t* arow = xq + i * k;
      const float sa = sx[i];
      float* crow = c + i * n;
      int64_t j = j0;
      if (level == SimdLevel::kAvx512) {
        for (; j + 4 <= j1; j += 4) {
          int32_t acc[4];
          simd::Int8DotX4Avx512(arow, wq + j * k, k, k, acc);
          for (int64_t t = 0; t < 4; ++t) {
            crow[j + t] = sa * sw[j + t] * static_cast<float>(acc[t]);
          }
        }
        for (; j < j1; ++j) {
          crow[j] = sa * sw[j] * static_cast<float>(
                                     simd::Int8DotAvx512(arow, wq + j * k, k));
        }
      } else if (level == SimdLevel::kAvx2) {
        for (; j + 4 <= j1; j += 4) {
          int32_t acc[4];
          simd::Int8DotX4Avx2(arow, wq + j * k, k, k, acc);
          for (int64_t t = 0; t < 4; ++t) {
            crow[j + t] = sa * sw[j + t] * static_cast<float>(acc[t]);
          }
        }
        for (; j < j1; ++j) {
          crow[j] = sa * sw[j] *
                    static_cast<float>(simd::Int8DotAvx2(arow, wq + j * k, k));
        }
      } else {
        for (; j < j1; ++j) {
          crow[j] = sa * sw[j] *
                    static_cast<float>(Int8DotScalar(arow, wq + j * k, k));
        }
      }
    }
  });
}

void Int8MatMul(const float* x, int64_t m, const QuantizedMatrix& w,
                float* out) {
  const SimdLevel timer_level = ActiveSimdLevel();
  obs::ScopedTimerMs timer(
      timer_level == SimdLevel::kAvx512
          ? ALT_OBS_HISTOGRAM_HANDLE("tensor/int8_gemm/time_ms/avx512")
          : timer_level == SimdLevel::kAvx2
                ? ALT_OBS_HISTOGRAM_HANDLE("tensor/int8_gemm/time_ms/avx2")
                : ALT_OBS_HISTOGRAM_HANDLE("tensor/int8_gemm/time_ms/scalar"));
  const int64_t k = w.cols;
  ScratchFrame frame;
  if (timer_level == SimdLevel::kAvx512 && !w.vnni_data.empty() &&
      Avx512VnniSupported()) {
    // Fast path: quantize each row straight into the VNNI GEMM's
    // offset-binary layout, skipping the int8 intermediate and the
    // separate +128 pass. The u8 codes carry the same integer values the
    // generic path feeds Int8Gemm, so the fp32 output bits are unchanged.
    const int64_t k4 = (k + 3) & ~int64_t{3};
    uint8_t* au = reinterpret_cast<uint8_t*>(frame.Int8(m * k4));
    float* sx = frame.Floats(m);
    for (int64_t i = 0; i < m; ++i) {
      simd::Int8QuantizeRowVnniAvx512(x + i * k, k, k4, au + i * k4, sx + i);
    }
    const int64_t n = w.rows;
    const int8_t* wv = w.vnni_data.data();
    const float* sw = w.scales.data();
    const int32_t* rs = w.row_sums.data();
    ParallelFor(0, n, kColGrain, [&](int64_t j0, int64_t j1) {
      simd::Int8GemmVnniAvx512(au, m, k4, wv, n, j0, j1, sx, sw, rs, out);
    });
    return;
  }
  int8_t* xq = frame.Int8(m * k);
  float* sx = frame.Floats(m);
  QuantizeRows(x, m, k, xq, sx);
  Int8Gemm(xq, sx, w, m, out);
}

double MaxRoundTripError(const Tensor& w, const QuantizedMatrix& q) {
  ALT_CHECK_EQ(w.ndim(), 2) << "MaxRoundTripError expects a [k, n] matrix ";
  ALT_CHECK_EQ(w.size(0), q.cols);
  ALT_CHECK_EQ(w.size(1), q.rows);
  const float* src = w.data();
  double worst = 0.0;
  for (int64_t j = 0; j < q.rows; ++j) {
    const double scale = q.scales[static_cast<size_t>(j)];
    const int8_t* row = q.data.data() + j * q.cols;
    for (int64_t p = 0; p < q.cols; ++p) {
      const double back = scale * static_cast<double>(row[p]);
      worst = std::max(
          worst, std::fabs(static_cast<double>(src[p * q.rows + j]) - back));
    }
  }
  return worst;
}

}  // namespace quant
}  // namespace alt
