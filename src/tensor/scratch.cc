#include "src/tensor/scratch.h"

#include <atomic>
#include <vector>

#include "src/obs/memory_tracker.h"
#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace alt {

namespace {

constexpr size_t kAlignFloats = 8;           // 32 bytes.
constexpr size_t kMinBlockFloats = 1 << 14;  // 64 KiB.

std::atomic<int64_t> g_peak_bytes{0};
std::atomic<int64_t> g_reserved_bytes{0};

void RaisePeak(int64_t used_bytes) {
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (used_bytes > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, used_bytes,
                                             std::memory_order_relaxed)) {
  }
  if (used_bytes > peak) {
    ALT_OBS_GAUGE_SET("memory/scratch/peak_bytes",
                      static_cast<double>(used_bytes));
  }
}

using Block = std::vector<float, obs::TrackingAllocator<float>>;

/// One arena per thread. Blocks are append-only while any frame is live, so
/// handed-out spans never move; when the last frame closes, a fragmented
/// arena is consolidated into a single block for the next user.
struct Arena {
  std::vector<Block> blocks;
  size_t active = 0;  // Block currently being carved.
  size_t offset = 0;  // Float offset within blocks[active].
  int depth = 0;      // Live frames on this thread.

  ~Arena() {
    g_reserved_bytes.fetch_sub(CapacityBytes(), std::memory_order_relaxed);
  }

  int64_t CapacityBytes() const {
    int64_t total = 0;
    for (const Block& b : blocks) {
      total += static_cast<int64_t>(b.size() * sizeof(float));
    }
    return total;
  }

  int64_t UsedBytes() const {
    int64_t used = 0;
    for (size_t i = 0; i < active && i < blocks.size(); ++i) {
      used += static_cast<int64_t>(blocks[i].size() * sizeof(float));
    }
    return used + static_cast<int64_t>(offset * sizeof(float));
  }

  void AppendBlock(size_t floats) {
    size_t size = kMinBlockFloats;
    const size_t cap =
        static_cast<size_t>(CapacityBytes() / sizeof(float));
    if (cap > size) size = cap;  // Geometric growth across blocks.
    if (floats > size) size = floats;
    blocks.emplace_back(size);
    g_reserved_bytes.fetch_add(
        static_cast<int64_t>(size * sizeof(float)),
        std::memory_order_relaxed);
    ALT_OBS_GAUGE_SET(
        "memory/scratch/reserved_bytes",
        static_cast<double>(g_reserved_bytes.load(std::memory_order_relaxed)));
  }

  float* Take(size_t floats) {
    ALT_CHECK_GT(depth, 0) << "scratch Take outside any ScratchFrame";
    offset = (offset + kAlignFloats - 1) & ~(kAlignFloats - 1);
    while (active < blocks.size() &&
           blocks[active].size() - offset < floats) {
      ++active;
      offset = 0;
    }
    if (active == blocks.size()) AppendBlock(floats);
    float* p = blocks[active].data() + offset;
    offset += floats;
    RaisePeak(UsedBytes());
    return p;
  }

  void Restore(size_t block, size_t off) {
    active = block;
    offset = off;
    --depth;
    // Between top-level frames nothing is live: collapse a multi-block
    // arena into one block so later frames stop block-hopping.
    if (depth == 0 && blocks.size() > 1) {
      const size_t total =
          static_cast<size_t>(CapacityBytes() / sizeof(float));
      g_reserved_bytes.fetch_sub(CapacityBytes(), std::memory_order_relaxed);
      blocks.clear();
      active = 0;
      offset = 0;
      AppendBlock(total);
    }
  }
};

Arena& ThreadArena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace

ScratchFrame::ScratchFrame() {
  Arena& arena = ThreadArena();
  saved_block_ = arena.active;
  saved_offset_ = arena.offset;
  ++arena.depth;
}

ScratchFrame::~ScratchFrame() {
  ThreadArena().Restore(saved_block_, saved_offset_);
}

float* ScratchFrame::Floats(int64_t n) {
  return ThreadArena().Take(static_cast<size_t>(n));
}

int32_t* ScratchFrame::Int32(int64_t n) {
  return reinterpret_cast<int32_t*>(
      ThreadArena().Take(static_cast<size_t>(n)));
}

int8_t* ScratchFrame::Int8(int64_t n) {
  const size_t floats =
      (static_cast<size_t>(n) + sizeof(float) - 1) / sizeof(float);
  return reinterpret_cast<int8_t*>(ThreadArena().Take(floats));
}

int64_t ScratchPeakBytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}

int64_t ScratchReservedBytes() {
  return g_reserved_bytes.load(std::memory_order_relaxed);
}

}  // namespace alt
