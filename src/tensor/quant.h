#ifndef ALT_SRC_TENSOR_QUANT_H_
#define ALT_SRC_TENSOR_QUANT_H_

#include <cstdint>
#include <vector>

#include "src/obs/memory_tracker.h"
#include "src/tensor/tensor.h"

namespace alt {
namespace quant {

/// Post-training int8 quantization for the serving path ---------------------
///
/// Scheme: symmetric linear quantization with
///   - static per-output-column weight scales, computed once at deploy time
///     (`QuantizeWeight`): scale_w[j] = maxabs(W[:, j]) / 127;
///   - dynamic per-row activation scales, computed per request
///     (`QuantizeRows`): scale_x[i] = maxabs(X[i, :]) / 127.
///
/// The int8 GEMM accumulates in int32 — exactly, since |q| <= 127 keeps any
/// realistic reduction depth far below 2^31 — and dequantizes with
/// C[i, j] = scale_x[i] * scale_w[j] * acc32. Integer accumulation is
/// order-independent, so the int8 path is bit-identical between the AVX2
/// and scalar backends (unlike the fp32 kernels, which only agree to
/// rounding). Round-trip error per weight is bounded by scale_w[j] / 2.
///
/// Weights are stored transposed ([n, k] for a [k, n] Linear weight) so the
/// per-output dot products stream k contiguously on both operands.

struct QuantizedMatrix {
  int64_t rows = 0;  ///< Output features n; data is row-major [rows, cols].
  int64_t cols = 0;  ///< Reduction depth k.
  std::vector<int8_t, obs::TrackingAllocator<int8_t>> data;
  std::vector<float> scales;    ///< [rows] dequantization scale per output.
  std::vector<int32_t> row_sums;  ///< [rows] sum of q values (VNNI bias fix).
  /// Optional repack of `data` in the vpdpbusd-friendly "[k4/4, n, 4]"
  /// layout, zero-padded to k4 = RoundUp(cols, 4) depths. Populated at
  /// quantize time only when cpu_features' Avx512VnniSupported() — the only
  /// consumer. The VNNI GEMM computes with activations offset by +128
  /// (u8 x s8), then subtracts 128 * row_sums[j]; all integer math, so its
  /// results are bit-identical to the madd/scalar int8 kernels.
  std::vector<int8_t, obs::TrackingAllocator<int8_t>> vnni_data;
};

/// Quantizes a [k, n] fp32 weight symmetric per output column into the
/// transposed int8 layout above. All-zero columns get scale 0.
QuantizedMatrix QuantizeWeight(const Tensor& w);

/// Reconstructs the [k, n] fp32 weight (diagnostics/tests).
Tensor DequantizeWeight(const QuantizedMatrix& q);

/// Symmetric per-row activation quantization of X [m, k]:
/// scales[i] = maxabs(X[i, :]) / 127, xq = clamp(round(x / scale), +-127).
void QuantizeRows(const float* x, int64_t m, int64_t k, int8_t* xq,
                  float* scales);

/// C[m, n] = dequant(Xq * Wq^T). Overwrites C. Parallel over output
/// columns; exact int32 accumulation makes the result independent of the
/// partition and of the SIMD level.
void Int8Gemm(const int8_t* xq, const float* sx, const QuantizedMatrix& w,
              int64_t m, float* c);

/// The serving matmul: dynamically quantizes X [m, k] (scratch-arena
/// buffers), then Int8Gemm into out [m, w.rows].
void Int8MatMul(const float* x, int64_t m, const QuantizedMatrix& w,
                float* out);

/// Largest |W - dequant(quant(W))| over all elements, for error-bound tests.
double MaxRoundTripError(const Tensor& w, const QuantizedMatrix& q);

}  // namespace quant
}  // namespace alt

#endif  // ALT_SRC_TENSOR_QUANT_H_
