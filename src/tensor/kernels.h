#ifndef ALT_SRC_TENSOR_KERNELS_H_
#define ALT_SRC_TENSOR_KERNELS_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace alt {

/// Raw dense compute kernels shared by autograd forward and backward passes.
/// All kernels operate on pre-shaped tensors; shape validation happens at the
/// op layer. Accumulating variants (suffix `Acc`) add into the output, which
/// is what backward passes need for gradient accumulation.
///
/// The GEMM-family kernels are cache-blocked and register-tiled, and
/// parallelize over row panels (or the batch dimension) through
/// src/util/parallel_for.h. Reduction order per output element is fixed by
/// the blocking constants alone, so results are bit-identical for every
/// thread count (ALT_THREADS / alt::SetComputeThreads). The original scalar
/// kernels are preserved in kernels_naive.h as the parity/benchmark baseline.
///
/// SIMD dispatch (src/tensor/cpu_features.h): on AVX2+FMA hosts the micro
/// panels and the row primitives below run the AVX2 implementations from
/// kernels_avx2.cc unless ALT_SIMD=off forces the scalar path. The two
/// levels agree to rounding (different but fixed reduction orders); within
/// one level results remain bit-identical across thread counts.

/// y[i] += alpha * x[i]. The shared axpy primitive behind
/// Tensor::AddInPlace / Tensor::Axpy, optimizer updates, and gradient
/// accumulation; threaded above a fixed size cutoff.
void VecAxpy(float alpha, const float* x, float* y, int64_t n);
/// y[i] *= alpha.
void VecScale(float alpha, float* y, int64_t n);

/// Sequential row primitives for the hot elementwise/softmax/layer-norm
/// loops in src/autograd/ops.cc. Unlike VecAxpy/VecScale these never spawn
/// parallel work — callers invoke them per row inside their own ParallelFor
/// chunks — but they do dispatch to the AVX2 backend.
/// y[i] = max(x[i], 0).
void VecRelu(const float* x, float* y, int64_t n);
/// y[i] *= alpha (sequential flavor of VecScale).
void RowScale(float alpha, float* y, int64_t n);
/// max_i x[i]; requires n >= 1. Exact at any SIMD level.
float RowMax(const float* x, int64_t n);
/// Double-precision sum; the SIMD level fixes the accumulation grouping.
double RowSumDouble(const float* x, int64_t n);
/// Two-pass population mean/variance in double precision.
void RowMeanVar(const float* x, int64_t n, double* mean, double* var);
/// Layer-norm inner loop: xhat[j] = (src[j] - mean) * istd;
/// dst[j] = xhat[j] * gamma[j] + beta[j].
void RowNormalizeAffine(const float* src, float mean, float istd,
                        const float* gamma, const float* beta, float* xhat,
                        float* dst, int64_t n);

/// C = A[m,k] * B[k,n]. Overwrites C.
void MatMul(const Tensor& a, const Tensor& b, Tensor* c);
/// C += A[m,k] * B[k,n].
void MatMulAcc(const Tensor& a, const Tensor& b, Tensor* c);
/// C += A[k,m]^T * B[k,n]  (i.e. C[m,n] += sum_k A[k,m] B[k,n]).
void MatMulTransAAcc(const Tensor& a, const Tensor& b, Tensor* c);
/// C += A[m,k] * B[n,k]^T.
void MatMulTransBAcc(const Tensor& a, const Tensor& b, Tensor* c);

/// Batched matrix product over the leading dimension:
/// C[b] (+)= op(A[b]) * op(B[b]) with optional transposes.
/// A: [B, m, k] (or [B, k, m] if trans_a), B analogous, C: [B, m, n].
void BatchedMatMul(const Tensor& a, bool trans_a, const Tensor& b,
                   bool trans_b, Tensor* c, bool accumulate);

/// 1-D convolution with SAME padding and stride 1 over layout [B, T, Cin].
/// weight: [Cout, K, Cin], bias: [Cout] (may be null), dilation >= 1.
/// out: [B, T, Cout]. Overwrites out.
void Conv1D(const Tensor& input, const Tensor& weight, const Tensor* bias,
            int64_t dilation, Tensor* out);
/// Backward of Conv1D: accumulates into grad_input / grad_weight / grad_bias
/// (any may be null to skip).
void Conv1DBackward(const Tensor& input, const Tensor& weight,
                    const Tensor& grad_out, int64_t dilation,
                    Tensor* grad_input, Tensor* grad_weight,
                    Tensor* grad_bias);

/// 1-D average pooling, kernel `k`, stride 1, SAME padding, layout [B, T, C].
/// The average divides by the number of valid (in-bounds) taps.
void AvgPool1D(const Tensor& input, int64_t k, Tensor* out);
void AvgPool1DBackward(const Tensor& grad_out, int64_t k, Tensor* grad_input);

/// 1-D max pooling; `argmax` (same shape as out) records the winning input
/// time index per output element for the backward pass.
void MaxPool1D(const Tensor& input, int64_t k, Tensor* out,
               std::vector<int64_t>* argmax);
void MaxPool1DBackward(const Tensor& grad_out,
                       const std::vector<int64_t>& argmax, Tensor* grad_input);

}  // namespace alt

#endif  // ALT_SRC_TENSOR_KERNELS_H_
