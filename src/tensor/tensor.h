#ifndef ALT_SRC_TENSOR_TENSOR_H_
#define ALT_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/obs/memory_tracker.h"
#include "src/util/rng.h"

namespace alt {

/// Tensor storage buffer: every allocation and free is accounted by the
/// process-wide obs::MemoryTracker (live/peak bytes, per-phase attribution).
/// Code that needs a raw float buffer should hold a Tensor (or this vector
/// type) so the accounting stays complete — alt_lint L009 flags bypasses.
using TensorStorage = std::vector<float, obs::TrackingAllocator<float>>;

/// A dense, row-major, float32 n-dimensional array. Value semantics: copies
/// copy the buffer. This is the storage type for model parameters,
/// activations, and gradients throughout the library.
class Tensor {
 public:
  /// An empty 0-element tensor.
  Tensor() = default;

  /// A zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  /// Factory constructors -------------------------------------------------
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values);
  /// A scalar tensor of shape [1].
  static Tensor Scalar(float value);
  /// I.i.d. N(0, stddev^2) entries.
  static Tensor Randn(std::vector<int64_t> shape, Rng* rng,
                      float stddev = 1.0f);
  /// I.i.d. Uniform(lo, hi) entries.
  static Tensor RandUniform(std::vector<int64_t> shape, Rng* rng, float lo,
                            float hi);

  /// Shape access ----------------------------------------------------------
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t dim) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Element access --------------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  float& at(int64_t i) { return data_[static_cast<size_t>(i)]; }
  float& at(int64_t i, int64_t j);
  float& at(int64_t i, int64_t j, int64_t k);
  float at(int64_t i) const { return data_[static_cast<size_t>(i)]; }
  float at(int64_t i, int64_t j) const;
  float at(int64_t i, int64_t j, int64_t k) const;

  /// In-place mutation -----------------------------------------------------
  void Fill(float value);
  void SetZero() { Fill(0.0f); }
  /// this += other (same shape).
  void AddInPlace(const Tensor& other);
  /// this += alpha * other (same shape). The axpy primitive used by
  /// optimizers and gradient accumulation.
  void Axpy(float alpha, const Tensor& other);
  /// this *= alpha.
  void ScaleInPlace(float alpha);

  /// Shape manipulation (copies metadata, shares no aliasing surprises) ----
  /// Same data, new shape; numel must match.
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  /// Reductions ------------------------------------------------------------
  float SumAll() const;
  float MeanAll() const;
  float MaxAll() const;
  float MinAll() const;
  /// Index of the maximum element (first on ties).
  int64_t ArgMaxAll() const;
  /// Squared L2 norm of all entries.
  double SquaredNorm() const;

  /// Debug string such as "Tensor[2, 3] {1, 2, 3, ...}".
  std::string ToString(int64_t max_elems = 8) const;

 private:
  std::vector<int64_t> shape_;
  TensorStorage data_;
};

/// Returns the product of `shape` entries; checks non-negativity.
int64_t ShapeNumel(const std::vector<int64_t>& shape);

/// Renders "[2, 3, 4]".
std::string ShapeToString(const std::vector<int64_t>& shape);

}  // namespace alt

#endif  // ALT_SRC_TENSOR_TENSOR_H_
