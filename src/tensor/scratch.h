#ifndef ALT_SRC_TENSOR_SCRATCH_H_
#define ALT_SRC_TENSOR_SCRATCH_H_

#include <cstddef>
#include <cstdint>

namespace alt {

/// Thread-local scratch arena for kernel-layer temporaries ------------------
///
/// The GEMM pack buffer, the Conv1D im2col matrix, and the int8 activation
/// buffers are per-call temporaries that used to live in ad-hoc
/// `thread_local std::vector<float>`s — invisible to the obs::MemoryTracker
/// and re-zeroed/reallocated per call. A ScratchFrame carves them out of one
/// per-thread arena instead:
///
///   ScratchFrame frame;
///   float* x2 = frame.Floats(seq * cols);
///   int8_t* xq = frame.Int8(m * k);
///
/// Frames nest (LIFO); destroying a frame releases its allocations back to
/// the arena without freeing memory, so steady-state kernels allocate
/// nothing. The arena's backing store uses obs::TrackingAllocator, so
/// scratch bytes appear in the global tensor-memory accounting, and the
/// high-water marks are published as gauges (`memory/scratch/peak_bytes`,
/// `memory/scratch/reserved_bytes` — exported as `alt_memory_scratch_*`).
///
/// Pointer stability: every span handed out by a live frame stays valid for
/// the frame's lifetime (growth appends blocks; it never moves old ones).
/// Spans are 32-byte aligned for the AVX2 kernels. Thread safety: arenas are
/// strictly per-thread; a ParallelFor worker that needs scratch opens its
/// own frame inside the worker body.
class ScratchFrame {
 public:
  ScratchFrame();
  ~ScratchFrame();
  ScratchFrame(const ScratchFrame&) = delete;
  ScratchFrame& operator=(const ScratchFrame&) = delete;

  /// Uninitialized spans; contents are whatever a previous frame left there.
  float* Floats(int64_t n);
  int32_t* Int32(int64_t n);
  int8_t* Int8(int64_t n);

 private:
  size_t saved_block_;
  size_t saved_offset_;
};

/// Largest bytes-in-use observed in any single thread's arena, process-wide.
int64_t ScratchPeakBytes();
/// Total backing-store bytes currently reserved across all live threads.
int64_t ScratchReservedBytes();

}  // namespace alt

#endif  // ALT_SRC_TENSOR_SCRATCH_H_
