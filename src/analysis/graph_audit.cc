#include "src/analysis/graph_audit.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "src/util/logging.h"
#include "src/util/table_printer.h"

namespace alt {
namespace analysis {

namespace {

using ag::Node;

/// Display name for a node in diagnostics: op name, or "leaf"/"param".
const char* NodeName(const Node* node) {
  if (node->parents.empty() && node->op_name[0] == '\0') {
    return node->requires_grad ? "param" : "leaf";
  }
  return node->op_name;
}

/// DFS colors: absent from the map = unvisited, kGray = on the current DFS
/// path, kBlack = fully explored.
enum class Color : uint8_t { kGray, kBlack };

}  // namespace

GraphReport AuditModel(const ag::Variable& root,
                       const std::vector<ag::Variable*>& params) {
  ALT_CHECK(root.defined()) << "AuditGraph requires a defined root";
  GraphReport report;

  // Iterative DFS from the root over parent links. The visited map doubles
  // as the cycle detector: meeting a gray node again is a back edge, i.e. a
  // shared_ptr cycle that Backward() would mis-handle and that can never be
  // freed. Traversal stays terminating either way because nodes are entered
  // at most once.
  std::unordered_map<Node*, Color> color;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  std::vector<Node*> post_order;  // Every parent precedes its consumer.
  stack.push_back({root.node().get(), 0});
  color[root.node().get()] = Color::kGray;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      Node* parent = frame.node->parents[frame.next_parent++].get();
      if (parent == nullptr) {
        report.errors.push_back(std::string("null parent link under '") +
                                NodeName(frame.node) + "' node");
        continue;
      }
      auto it = color.find(parent);
      if (it == color.end()) {
        color[parent] = Color::kGray;
        stack.push_back({parent, 0});
      } else if (it->second == Color::kGray) {
        if (!report.has_cycle) {
          report.errors.push_back(
              std::string("reference cycle detected (back edge from '") +
              NodeName(frame.node) + "' into '" + NodeName(parent) +
              "'); the cycle leaks and breaks Backward()");
        }
        report.has_cycle = true;
      }
    } else {
      color[frame.node] = Color::kBlack;
      post_order.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Per-node statistics and consistency checks.
  constexpr int64_t kMaxListed = 5;  // Cap per-node error spam.
  int64_t shape_mismatches_listed = 0;
  const Node* example_dead = nullptr;
  for (Node* node : post_order) {
    ++report.num_nodes;
    report.num_edges += static_cast<int64_t>(node->parents.size());
    const bool is_leaf = node->parents.empty();
    if (is_leaf) {
      ++report.num_leaves;
      if (node->requires_grad) ++report.num_trainable_leaves;
    } else {
      if (!node->requires_grad) {
        ++report.num_dead_nodes;
        if (example_dead == nullptr) example_dead = node;
      }
      report.total_flops += node->flops;
      OpStat& stat = report.per_op[NodeName(node)];
      ++stat.count;
      stat.flops += node->flops;
    }
    if (node->grad_allocated && !node->grad.SameShape(node->value)) {
      ++report.num_shape_mismatches;
      if (shape_mismatches_listed < kMaxListed) {
        ++shape_mismatches_listed;
        report.errors.push_back(
            std::string("grad/value shape mismatch at '") + NodeName(node) +
            "': grad " + ShapeToString(node->grad.shape()) + " vs value " +
            ShapeToString(node->value.shape()));
      }
    }
  }
  if (report.num_shape_mismatches > kMaxListed) {
    report.errors.push_back(
        "... and " + std::to_string(report.num_shape_mismatches - kMaxListed) +
        " more shape mismatches");
  }
  if (report.num_dead_nodes > 0) {
    report.warnings.push_back(
        std::to_string(report.num_dead_nodes) +
        " dead op node(s) (e.g. '" + NodeName(example_dead) +
        "'): recorded forward work that can never receive gradient");
  }

  // Longest root-to-leaf path. post_order lists every parent before each of
  // its consumers, so the reverse is a topological order rooted at `root`;
  // one relaxation sweep computes longest distances. Undefined on cycles.
  if (!report.has_cycle) {
    std::unordered_map<Node*, int64_t> depth;
    depth.reserve(color.size());
    for (auto it = post_order.rbegin(); it != post_order.rend(); ++it) {
      Node* node = *it;
      const int64_t d = depth[node];  // Root default-initializes to 0.
      report.max_depth = std::max(report.max_depth, d);
      for (const auto& parent : node->parents) {
        if (parent == nullptr) continue;
        int64_t& pd = depth[parent.get()];
        pd = std::max(pd, d + 1);
      }
    }
  }

  // Watched-parameter reachability: a trainable leaf the loss cannot reach
  // keeps its zero gradient forever — the optimizer silently no-ops on it.
  int64_t unreached_listed = 0;
  for (size_t i = 0; i < params.size(); ++i) {
    const ag::Variable* param = params[i];
    if (param == nullptr || !param->defined()) continue;
    if (!param->node()->requires_grad) continue;
    if (color.find(param->node().get()) == color.end()) {
      ++report.num_unreached_params;
      if (unreached_listed < kMaxListed) {
        ++unreached_listed;
        report.errors.push_back(
            "trainable leaf #" + std::to_string(i) + " " +
            ShapeToString(param->value().shape()) +
            " is unreachable from the root (silent no-grad)");
      }
    }
  }
  if (report.num_unreached_params > kMaxListed) {
    report.errors.push_back(
        "... and " + std::to_string(report.num_unreached_params - kMaxListed) +
        " more unreached trainable leaves");
  }

  return report;
}

GraphReport AuditGraph(const ag::Variable& root) {
  return AuditModel(root, {});
}

std::string GraphReport::ToString() const {
  TablePrinter summary({"metric", "value"});
  summary.AddRow({"nodes", std::to_string(num_nodes)});
  summary.AddRow({"edges", std::to_string(num_edges)});
  summary.AddRow({"max depth", has_cycle ? "n/a (cycle)"
                                         : std::to_string(max_depth)});
  summary.AddRow({"leaves", std::to_string(num_leaves)});
  summary.AddRow({"trainable leaves", std::to_string(num_trainable_leaves)});
  summary.AddRow({"dead op nodes", std::to_string(num_dead_nodes)});
  summary.AddRow({"shape mismatches", std::to_string(num_shape_mismatches)});
  summary.AddRow({"unreached params", std::to_string(num_unreached_params)});
  summary.AddRow({"cycle", has_cycle ? "YES" : "no"});
  summary.AddRow({"total flops", std::to_string(total_flops)});

  // Per-op breakdown, most expensive first.
  std::vector<std::pair<std::string, OpStat>> ops(per_op.begin(),
                                                  per_op.end());
  std::sort(ops.begin(), ops.end(), [](const auto& a, const auto& b) {
    if (a.second.flops != b.second.flops) {
      return a.second.flops > b.second.flops;
    }
    return a.first < b.first;
  });
  TablePrinter breakdown({"op", "count", "flops"});
  for (const auto& [name, stat] : ops) {
    breakdown.AddRow(
        {name, std::to_string(stat.count), std::to_string(stat.flops)});
  }

  std::string out = "GraphAudit\n" + summary.ToString();
  if (!ops.empty()) out += breakdown.ToString();
  for (const std::string& e : errors) out += "ERROR: " + e + "\n";
  for (const std::string& w : warnings) out += "WARNING: " + w + "\n";
  return out;
}

}  // namespace analysis
}  // namespace alt
