#ifndef ALT_SRC_ANALYSIS_GRAPH_AUDIT_H_
#define ALT_SRC_ANALYSIS_GRAPH_AUDIT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/autograd/variable.h"

namespace alt {
namespace analysis {

/// Aggregated statistics for one op kind in an audited graph.
struct OpStat {
  int64_t count = 0;
  int64_t flops = 0;
};

/// Structured result of a static walk over a recorded autograd graph.
///
/// ALT produces models with no human in the loop, so silent graph bugs
/// (shape drift, parameters that never receive gradients, reference cycles
/// that leak, FLOPs accounting that diverges from the Eq. 4 budget) must be
/// machine-checkable. AuditGraph walks the Node DAG reachable from a root
/// Variable without running backward and reports:
///
///  - node/edge counts and the longest root-to-leaf path (max_depth);
///  - reference cycles (a shared_ptr cycle in `parents` leaks forever and
///    breaks Backward()'s DAG assumption) — reported as an error;
///  - per-node value/grad shape consistency (an allocated grad whose shape
///    differs from its value indicates gradient corruption) — an error;
///  - trainable leaves in `params` unreachable from the root (a silent
///    no-grad bug: the optimizer updates them with stale zero grads) — an
///    error;
///  - dead subgraphs: op nodes that cannot receive gradient
///    (requires_grad == false) yet pin their parent chain in memory — a
///    warning, since constant folding is sometimes intentional;
///  - a per-op FLOPs estimate (sum of Node::flops over reachable op nodes)
///    using the same accounting conventions as nas::OpSpec::Flops, so the
///    graph cost can be cross-checked against the NAS budget model.
struct GraphReport {
  int64_t num_nodes = 0;   // Reachable nodes, leaves included.
  int64_t num_edges = 0;   // Parent links among reachable nodes.
  int64_t max_depth = 0;   // Longest root-to-leaf path; 0 if has_cycle.
  int64_t num_leaves = 0;  // Nodes with no parents.
  int64_t num_trainable_leaves = 0;  // Leaves with requires_grad.
  int64_t num_dead_nodes = 0;        // Op nodes with requires_grad == false.
  int64_t num_shape_mismatches = 0;  // Allocated grads with wrong shape.
  int64_t num_unreached_params = 0;  // Watched params not in the graph.
  bool has_cycle = false;
  /// Total forward FLOPs of all reachable op nodes.
  int64_t total_flops = 0;
  /// Per-op-kind node counts and FLOPs, keyed by Node::op_name.
  std::map<std::string, OpStat> per_op;
  /// Human-readable descriptions of hard failures (cycle, shape mismatch,
  /// unreached trainable leaf). Empty iff clean().
  std::vector<std::string> errors;
  /// Suspicious-but-legal findings (dead subgraphs).
  std::vector<std::string> warnings;

  /// True when the graph passed every hard check.
  bool clean() const { return errors.empty(); }

  /// Renders the summary and the per-op breakdown as aligned ASCII tables
  /// (util/table_printer), followed by any errors and warnings.
  std::string ToString() const;
};

/// Audits the graph reachable from `root`. Never runs backward_fn and never
/// mutates the graph; safe on graphs with cycles (traversal is iterative
/// and visited-guarded). `root` must be defined.
GraphReport AuditGraph(const ag::Variable& root);

/// AuditGraph plus reachability checks for `params`: every defined Variable
/// in `params` with requires_grad that is not reachable from `root` is
/// reported as an unreached trainable leaf (error). Null entries are
/// ignored. Typical call: AuditModel(loss, model->Parameters()).
GraphReport AuditModel(const ag::Variable& root,
                       const std::vector<ag::Variable*>& params);

}  // namespace analysis
}  // namespace alt

#endif  // ALT_SRC_ANALYSIS_GRAPH_AUDIT_H_
