#ifndef ALT_SRC_NAS_SUPERNET_H_
#define ALT_SRC_NAS_SUPERNET_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/models/behavior_encoder.h"
#include "src/nas/arch.h"
#include "src/nas/nas_ops.h"

namespace alt {
namespace nas {

/// Structural options of the supernet (search space of Fig. 6).
struct SupernetOptions {
  int64_t num_layers = 3;
  /// Candidate operation set; empty = DefaultOpCandidates().
  std::vector<OpSpec> candidates;
  /// Gumbel-softmax temperature (Eq. 7); anneal via set_tau().
  double tau = 1.0;
};

/// The differentiable supernet implementing the paper's budget-limited NAS:
///
///  - Every layer holds architecture-distribution logits for (i) its input
///    choice among all earlier outputs, (ii) its operation choice, and
///    (iii) an independent on/off gate per possible residual input.
///  - In training mode, Encode() samples one choice per decision with the
///    Gumbel-softmax straight-through estimator of GDAS (Eq. 7/8): only the
///    sampled op executes, and gradients flow to the winning logit.
///  - In eval mode, argmax choices run deterministically.
///  - FlopsLoss() is the differentiable expected-FLOPs regularizer of Eq. 4.
///  - Derive() extracts the maximum-joint-probability architecture subject
///    to a FLOPs budget (knapsack DP over per-layer choice combos).
///
/// It plugs into BaseModel as a BehaviorEncoder, so the search trains the
/// full Fig. 2 model (profile branch included) end to end.
class SupernetEncoder : public models::BehaviorEncoder {
 public:
  SupernetEncoder(int64_t dim, SupernetOptions options, uint64_t sample_seed,
                  Rng* rng);

  ag::Variable Encode(const ag::Variable& embedded) override;

  /// FLOPs of the current argmax architecture (unconstrained derive).
  int64_t Flops(int64_t seq_len) const override;

  /// Architecture-distribution parameters (trained on the validation split).
  std::vector<ag::Variable*> ArchParameters();
  /// Operation weights + attentive-sum logits (trained on the train split).
  std::vector<ag::Variable*> WeightParameters();

  /// Expected inference FLOPs under the current architecture distribution,
  /// normalized to [0, 1]; differentiable w.r.t. the arch logits.
  ag::Variable FlopsLoss(int64_t seq_len);

  void set_tau(double tau) { options_.tau = tau; }
  double tau() const { return options_.tau; }

  /// Maximum-joint-probability architecture with Flops(seq_len) <= budget
  /// (budget <= 0 disables the constraint). Falls back to the minimum-FLOPs
  /// architecture when nothing fits, with a warning.
  Result<Architecture> Derive(int64_t flops_budget, int64_t seq_len) const;

  /// Gumbel sampling stream; exposed so search checkpoints can persist and
  /// restore it for bit-exact resume.
  Rng& sample_rng() { return sample_rng_; }

 protected:
  std::vector<std::pair<std::string, ag::Variable*>> LocalParameters()
      override;
  std::vector<std::pair<std::string, Module*>> Children() override;

 private:
  struct LayerChoices {
    ag::Variable input_logits;             // [i+1]
    ag::Variable op_logits;                // [num_candidates]
    std::vector<ag::Variable> res_logits;  // each [2]: (off, on)
    std::vector<std::unique_ptr<NasOpModule>> ops;
  };

  /// Gumbel straight-through pick: returns (argmax index, gate Variable
  /// whose value is 1 and whose gradient reaches the winning logit).
  std::pair<int64_t, ag::Variable> GumbelPick(const ag::Variable& logits);

  int64_t dim_;
  SupernetOptions options_;
  Rng sample_rng_;
  std::vector<LayerChoices> layers_;
  ag::Variable attn_logits_;  // [num_layers] attentive output sum (weights)
};

}  // namespace nas
}  // namespace alt

#endif  // ALT_SRC_NAS_SUPERNET_H_
