#ifndef ALT_SRC_NAS_NAS_OPS_H_
#define ALT_SRC_NAS_NAS_OPS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/nas/arch.h"
#include "src/nn/attention.h"
#include "src/nn/conv.h"
#include "src/nn/lstm.h"
#include "src/nn/module.h"

namespace alt {
namespace nas {

/// A single candidate operation instantiated as an nn module over [B, T, D].
/// Pooling ops are stateless; conv/LSTM/attention own parameters.
class NasOpModule : public nn::Module {
 public:
  NasOpModule(const OpSpec& spec, int64_t dim, Rng* rng);

  ag::Variable Forward(const ag::Variable& x);

  const OpSpec& spec() const { return spec_; }

 protected:
  std::vector<std::pair<std::string, Module*>> Children() override;

 private:
  OpSpec spec_;
  std::unique_ptr<nn::Conv1DLayer> conv_;
  std::unique_ptr<nn::LstmLayer> lstm_;
  std::unique_ptr<nn::MultiHeadSelfAttention> attention_;
};

/// Head count used by attention candidates; matches OpSpec::Flops.
int64_t NasAttentionHeads(int64_t dim);

}  // namespace nas
}  // namespace alt

#endif  // ALT_SRC_NAS_NAS_OPS_H_
