#ifndef ALT_SRC_NAS_NAS_SEARCH_H_
#define ALT_SRC_NAS_NAS_SEARCH_H_

#include <memory>

#include "src/data/dataset.h"
#include "src/models/base_model.h"
#include "src/nas/arch.h"
#include "src/nas/supernet.h"
#include "src/train/trainer.h"

namespace alt {
namespace nas {

/// Options of the budget-limited NAS (Sec. III-D).
struct NasSearchOptions {
  SupernetOptions supernet;
  /// Supernet training epochs (alternating weight/arch steps). The arch
  /// logits need enough steps to become informative: with near-uniform
  /// probabilities the budgeted extraction degenerates to the cheapest ops.
  int64_t search_epochs = 4;
  int64_t batch_size = 64;
  float weight_lr = 1e-3f;
  float arch_lr = 1e-2f;
  /// Trade-off lambda of Eq. 4 (weight of the normalized FLOPs loss). The
  /// hard budget is enforced at extraction; lambda only biases the search.
  float lambda_flops = 0.05f;
  /// FLOPs budget for the derived architecture; <= 0 disables. The paper
  /// sets this to the predefined light model's FLOPs.
  int64_t flops_budget = 0;
  /// Distillation weight delta of Eq. 5 (0 = hard labels only).
  float distill_delta = 1.0f;
  /// Fraction of the train data held out as the NAS validation split.
  double val_fraction = 0.3;
  /// Gumbel temperature annealing: tau from tau_start to tau_end.
  double tau_start = 2.0;
  double tau_end = 0.3;
  /// Final training of the derived model.
  train::TrainOptions final_train;
  /// Checkpoint/resume of the supernet search (same contract as
  /// train::TrainOptions): with a non-empty `checkpoint_path`, the search
  /// atomically overwrites that file (supernet weights, both Adam states,
  /// all RNG streams, progress) every `checkpoint_every_epochs` search
  /// epochs; with `resume` true an existing checkpoint is restored and the
  /// resumed search derives the same architecture as an uninterrupted run.
  std::string checkpoint_path;
  int64_t checkpoint_every_epochs = 1;
  bool resume = false;
  uint64_t seed = 5;
  /// Debug: audit the supernet loss graph on the first search step, audit
  /// the derived encoder's graph, and cross-check the graph FLOPs estimate
  /// against the Eq. 4 budget model (arch.Flops). Hard graph violations
  /// fail the search; the final training also runs its first-batch audit.
  bool audit_graph = false;
};

/// Outcome of one search.
struct NasSearchReport {
  Architecture arch;
  int64_t encoder_flops = 0;  // Derived encoder FLOPs at seq_len.
  double supernet_val_auc = 0.0;
};

/// Runs the budget-limited NAS for one scenario:
///  1. trains the supernet on `train_data` (weights on the train split with
///     the distillation loss of Eq. 5 when `teacher` != null; architecture
///     logits on the validation split with the FLOPs regularizer, Eq. 4);
///  2. derives the max-joint-probability architecture under the budget;
///  3. trains a fresh model with the derived encoder (again distilling);
///  4. returns the trained scenario specific light model.
/// `light_base` supplies input dims, hidden width, and seq_len; its encoder
/// kind is ignored (replaced by the searched encoder).
Result<std::unique_ptr<models::BaseModel>> SearchLightModel(
    const models::ModelConfig& light_base, models::BaseModel* teacher,
    const data::ScenarioData& train_data, const NasSearchOptions& options,
    NasSearchReport* report);

/// Builds a model for any encoder kind, including kNas (reads the
/// architecture from config.nas_arch). Supersedes models::BuildBaseModel
/// wherever NAS models may appear (serving, cloning).
Result<std::unique_ptr<models::BaseModel>> BuildModel(
    const models::ModelConfig& config, Rng* rng);

/// Clone (same config, copied weights) supporting all encoder kinds.
Result<std::unique_ptr<models::BaseModel>> CloneModel(
    models::BaseModel* source, Rng* rng);

}  // namespace nas
}  // namespace alt

#endif  // ALT_SRC_NAS_NAS_SEARCH_H_
