#ifndef ALT_SRC_NAS_ARCH_H_
#define ALT_SRC_NAS_ARCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/json.h"
#include "src/util/status.h"

namespace alt {
namespace nas {

/// Candidate operation families of the paper's search space (Sec. III-D and
/// V-A3): 1-D standard and dilated convolutions, average/max pooling, LSTM,
/// and multi-head self-attention.
enum class OpType {
  kConv,         // standard conv1d, SAME padding
  kDilatedConv,  // dilation 2
  kAvgPool,      // kernel 3
  kMaxPool,      // kernel 3
  kLstm,         // single LSTM layer
  kAttention,    // multi-head self-attention
};

/// One concrete candidate operation.
struct OpSpec {
  OpType type = OpType::kConv;
  int64_t kernel = 3;  // Meaningful for conv/pool types.

  /// Short name: "conv3", "dconv5", "avgpool3", "maxpool3", "lstm", "attn".
  std::string ToString() const;
  static Result<OpSpec> FromString(const std::string& name);

  /// Inference FLOPs of this op for one [T, dim] sample.
  int64_t Flops(int64_t seq_len, int64_t dim) const;

  bool operator==(const OpSpec& other) const {
    return type == other.type && kernel == other.kernel;
  }
};

/// The paper's experimental candidate set: standard and dilated 1-D convs
/// with kernels {1, 3, 5, 7}, avg/max pooling with kernel 3, LSTM, and
/// self-attention (Sec. V-A3). Note kernel-1 dilated == kernel-1 standard,
/// so dilated convs use kernels {3, 5, 7}.
std::vector<OpSpec> DefaultOpCandidates();

/// One searched layer: which earlier output it consumes, which operation it
/// applies, and which earlier outputs are added as residuals (each previous
/// output has an independent gate — a layer can have multiple residuals).
struct LayerSpec {
  /// 0 = original input; i >= 1 = output of layer i.
  int64_t input = 0;
  OpSpec op;
  /// residuals[r] == true adds source r (same indexing as `input`).
  /// Size must be the layer's index + 1 (layer i can see sources 0..i).
  std::vector<bool> residuals;
};

/// A derived light behavior-encoder architecture (Fig. 6): a stack of
/// searched layers whose outputs are combined by an attentive sum.
struct Architecture {
  int64_t dim = 15;  // Channel width (equals the behavior embedding dim).
  std::vector<LayerSpec> layers;

  int64_t num_layers() const { return static_cast<int64_t>(layers.size()); }

  /// Total inference FLOPs for one length-`seq_len` sample: op FLOPs plus
  /// residual additions plus the attentive output sum.
  int64_t Flops(int64_t seq_len) const;

  /// Structural validation (input/residual indices in range).
  Status Validate() const;

  Json ToJson() const;
  static Result<Architecture> FromJson(const Json& json);

  /// Multi-line ASCII rendering in the style of the paper's Fig. 9.
  std::string ToString() const;
};

}  // namespace nas
}  // namespace alt

#endif  // ALT_SRC_NAS_ARCH_H_
