#ifndef ALT_SRC_NAS_DERIVED_ENCODER_H_
#define ALT_SRC_NAS_DERIVED_ENCODER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/models/behavior_encoder.h"
#include "src/nas/arch.h"
#include "src/nas/nas_ops.h"

namespace alt {
namespace nas {

/// The behavior encoder instantiating a searched Architecture (Fig. 6):
/// each layer applies its operation to the chosen earlier output, adds its
/// gated residual inputs, and the final output is an attentive (learned
/// softmax-weighted) sum of all layer outputs.
class DerivedNasEncoder : public models::BehaviorEncoder {
 public:
  DerivedNasEncoder(Architecture arch, Rng* rng);

  ag::Variable Encode(const ag::Variable& embedded) override;
  int64_t Flops(int64_t seq_len) const override {
    return arch_.Flops(seq_len);
  }

  const Architecture& arch() const { return arch_; }

 protected:
  std::vector<std::pair<std::string, ag::Variable*>> LocalParameters()
      override {
    return {{"attn_logits", &attn_logits_}};
  }
  std::vector<std::pair<std::string, Module*>> Children() override;

 private:
  Architecture arch_;
  std::vector<std::unique_ptr<NasOpModule>> ops_;  // one per layer
  ag::Variable attn_logits_;  // [num_layers] attentive-sum weights
};

}  // namespace nas
}  // namespace alt

#endif  // ALT_SRC_NAS_DERIVED_ENCODER_H_
