#include "src/nas/supernet.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/autograd/ops.h"
#include "src/util/logging.h"

namespace alt {
namespace nas {

namespace {

/// Softmax of a logits tensor as plain doubles (for Derive, Eq. 9).
std::vector<double> SoftmaxValues(const Tensor& logits) {
  std::vector<double> p(static_cast<size_t>(logits.numel()));
  double max_v = logits[0];
  for (int64_t i = 1; i < logits.numel(); ++i) {
    max_v = std::max<double>(max_v, logits[i]);
  }
  double total = 0.0;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    p[static_cast<size_t>(i)] = std::exp(logits[i] - max_v);
    total += p[static_cast<size_t>(i)];
  }
  for (double& v : p) v /= total;
  return p;
}

}  // namespace

SupernetEncoder::SupernetEncoder(int64_t dim, SupernetOptions options,
                                 uint64_t sample_seed, Rng* rng)
    : dim_(dim), options_(std::move(options)), sample_rng_(sample_seed) {
  ALT_CHECK_GE(options_.num_layers, 1);
  if (options_.candidates.empty()) {
    options_.candidates = DefaultOpCandidates();
  }
  const int64_t n_ops = static_cast<int64_t>(options_.candidates.size());
  for (int64_t i = 0; i < options_.num_layers; ++i) {
    LayerChoices layer;
    layer.input_logits = ag::Variable::Parameter(Tensor::Zeros({i + 1}));
    layer.op_logits = ag::Variable::Parameter(Tensor::Zeros({n_ops}));
    for (int64_t r = 0; r <= i; ++r) {
      // Slight bias toward "off" keeps early sampled architectures lean.
      layer.res_logits.push_back(
          ag::Variable::Parameter(Tensor::FromVector({2}, {0.5f, 0.0f})));
    }
    for (const OpSpec& spec : options_.candidates) {
      layer.ops.push_back(std::make_unique<NasOpModule>(spec, dim_, rng));
    }
    layers_.push_back(std::move(layer));
  }
  attn_logits_ =
      ag::Variable::Parameter(Tensor::Zeros({options_.num_layers}));
}

std::pair<int64_t, ag::Variable> SupernetEncoder::GumbelPick(
    const ag::Variable& logits) {
  const int64_t n = logits.value().numel();
  if (training()) {
    Tensor noise({n});
    for (int64_t i = 0; i < n; ++i) {
      noise[i] = static_cast<float>(sample_rng_.Gumbel());
    }
    ag::Variable perturbed = ag::ScalarMul(
        ag::Add(logits, ag::Variable::Constant(std::move(noise))),
        static_cast<float>(1.0 / options_.tau));
    ag::Variable probs = ag::SoftmaxLastDim(perturbed);
    const int64_t m = probs.value().ArgMaxAll();
    // Eq. 8: gate value is exactly 1 in the forward pass; the backward pass
    // reaches the winning logit through P_m.
    ag::Variable pm = ag::IndexSelect(probs, m);
    ag::Variable gate = ag::ScalarAdd(ag::Sub(pm, ag::Detach(pm)), 1.0f);
    return {m, gate};
  }
  // Eval: deterministic argmax, no gradient needed.
  return {logits.value().ArgMaxAll(), ag::Variable()};
}

ag::Variable SupernetEncoder::Encode(const ag::Variable& embedded) {
  ALT_CHECK_EQ(embedded.value().size(2), dim_);
  std::vector<ag::Variable> outs;
  outs.push_back(embedded);
  for (int64_t i = 0; i < options_.num_layers; ++i) {
    LayerChoices& layer = layers_[static_cast<size_t>(i)];

    auto [input_idx, input_gate] = GumbelPick(layer.input_logits);
    ag::Variable in = outs[static_cast<size_t>(input_idx)];
    if (input_gate.defined()) in = ag::MulScalarVar(in, input_gate);

    auto [op_idx, op_gate] = GumbelPick(layer.op_logits);
    ag::Variable h = layer.ops[static_cast<size_t>(op_idx)]->Forward(in);
    if (op_gate.defined()) h = ag::MulScalarVar(h, op_gate);

    for (size_t r = 0; r < layer.res_logits.size(); ++r) {
      auto [on, res_gate] = GumbelPick(layer.res_logits[r]);
      if (on == 1) {
        ag::Variable res = outs[r];
        if (res_gate.defined()) res = ag::MulScalarVar(res, res_gate);
        h = ag::Add(h, res);
      }
    }
    outs.push_back(h);
  }
  ag::Variable weights = ag::SoftmaxLastDim(attn_logits_);
  ag::Variable result;
  for (int64_t i = 0; i < options_.num_layers; ++i) {
    ag::Variable term = ag::MulScalarVar(
        outs[static_cast<size_t>(i + 1)], ag::IndexSelect(weights, i));
    result = result.defined() ? ag::Add(result, term) : term;
  }
  return result;
}

int64_t SupernetEncoder::Flops(int64_t seq_len) const {
  Result<Architecture> arch = Derive(/*flops_budget=*/0, seq_len);
  ALT_CHECK(arch.ok());
  return arch.value().Flops(seq_len);
}

std::vector<ag::Variable*> SupernetEncoder::ArchParameters() {
  std::vector<ag::Variable*> out;
  for (LayerChoices& layer : layers_) {
    out.push_back(&layer.input_logits);
    out.push_back(&layer.op_logits);
    for (ag::Variable& r : layer.res_logits) out.push_back(&r);
  }
  return out;
}

std::vector<ag::Variable*> SupernetEncoder::WeightParameters() {
  // Everything in the module tree except the architecture logits.
  std::vector<ag::Variable*> arch = ArchParameters();
  std::vector<ag::Variable*> out;
  for (ag::Variable* p : Parameters()) {
    if (std::find(arch.begin(), arch.end(), p) == arch.end()) {
      out.push_back(p);
    }
  }
  return out;
}

ag::Variable SupernetEncoder::FlopsLoss(int64_t seq_len) {
  ag::Variable total;
  double max_total = 0.0;
  const int64_t res_flops = seq_len * dim_;
  for (LayerChoices& layer : layers_) {
    // Expected op FLOPs: <softmax(op_logits), flops_vector>.
    const int64_t n_ops = static_cast<int64_t>(options_.candidates.size());
    Tensor flops_vec({n_ops});
    double max_op = 0.0;
    for (int64_t o = 0; o < n_ops; ++o) {
      const double f = static_cast<double>(
          options_.candidates[static_cast<size_t>(o)].Flops(seq_len, dim_));
      flops_vec[o] = static_cast<float>(f);
      max_op = std::max(max_op, f);
    }
    ag::Variable p_op = ag::SoftmaxLastDim(layer.op_logits);
    ag::Variable expected_op =
        ag::SumAll(ag::Mul(p_op, ag::Variable::Constant(flops_vec)));
    total = total.defined() ? ag::Add(total, expected_op) : expected_op;
    max_total += max_op;

    // Expected residual-add FLOPs: P(on) * seq_len * dim per gate.
    for (ag::Variable& res : layer.res_logits) {
      ag::Variable p_on = ag::IndexSelect(ag::SoftmaxLastDim(res), 1);
      total = ag::Add(
          total, ag::ScalarMul(p_on, static_cast<float>(res_flops)));
      max_total += static_cast<double>(res_flops);
    }
  }
  return ag::ScalarMul(total, static_cast<float>(1.0 / max_total));
}

Result<Architecture> SupernetEncoder::Derive(int64_t flops_budget,
                                             int64_t seq_len) const {
  // Per-layer candidate combos: (input, op, residual mask) with joint log
  // probability and FLOPs contribution.
  struct Combo {
    int64_t input;
    int64_t op;
    uint32_t res_mask;
    double log_prob;
    int64_t flops;
  };
  const int64_t res_flops = seq_len * dim_;
  std::vector<std::vector<Combo>> per_layer;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const LayerChoices& layer = layers_[i];
    const std::vector<double> p_in = SoftmaxValues(layer.input_logits.value());
    const std::vector<double> p_op = SoftmaxValues(layer.op_logits.value());
    std::vector<std::vector<double>> p_res;
    for (const ag::Variable& r : layer.res_logits) {
      p_res.push_back(SoftmaxValues(r.value()));
    }
    const uint32_t num_masks = 1u << p_res.size();
    std::vector<Combo> combos;
    for (size_t in = 0; in < p_in.size(); ++in) {
      for (size_t op = 0; op < p_op.size(); ++op) {
        const int64_t op_flops =
            options_.candidates[op].Flops(seq_len, dim_);
        for (uint32_t mask = 0; mask < num_masks; ++mask) {
          double log_prob = std::log(std::max(p_in[in], 1e-12)) +
                            std::log(std::max(p_op[op], 1e-12));
          int64_t flops = op_flops;
          for (size_t r = 0; r < p_res.size(); ++r) {
            const bool on = (mask >> r) & 1u;
            log_prob += std::log(std::max(p_res[r][on ? 1 : 0], 1e-12));
            if (on) flops += res_flops;
          }
          combos.push_back({static_cast<int64_t>(in),
                            static_cast<int64_t>(op), mask, log_prob, flops});
        }
      }
    }
    per_layer.push_back(std::move(combos));
  }

  // Fixed overhead of the attentive output sum.
  const int64_t overhead = static_cast<int64_t>(layers_.size()) *
                               (2 * seq_len * dim_) +
                           5 * static_cast<int64_t>(layers_.size());

  std::vector<const Combo*> chosen(layers_.size(), nullptr);
  if (flops_budget <= 0) {
    // Unconstrained: per-layer argmax of the joint probability.
    for (size_t i = 0; i < per_layer.size(); ++i) {
      const Combo* best = nullptr;
      for (const Combo& c : per_layer[i]) {
        if (best == nullptr || c.log_prob > best->log_prob) best = &c;
      }
      chosen[i] = best;
    }
  } else {
    // Knapsack DP over layers with bucketed FLOPs.
    const int64_t budget = flops_budget - overhead;
    if (budget <= 0) {
      return Status::InvalidArgument("FLOPs budget below fixed overhead");
    }
    constexpr int64_t kBuckets = 1024;
    const int64_t bucket_size = std::max<int64_t>(1, budget / kBuckets + 1);
    const int64_t num_buckets = budget / bucket_size + 1;
    const double kNegInf = -std::numeric_limits<double>::infinity();
    // dp[b] = best total log prob using <= b buckets of FLOPs.
    std::vector<std::vector<double>> dp(
        layers_.size() + 1,
        std::vector<double>(static_cast<size_t>(num_buckets), kNegInf));
    std::vector<std::vector<int32_t>> choice(
        layers_.size(),
        std::vector<int32_t>(static_cast<size_t>(num_buckets), -1));
    dp[0][0] = 0.0;
    for (size_t i = 0; i < per_layer.size(); ++i) {
      for (int64_t b = 0; b < num_buckets; ++b) {
        if (dp[i][static_cast<size_t>(b)] == kNegInf) continue;
        for (size_t c = 0; c < per_layer[i].size(); ++c) {
          const Combo& combo = per_layer[i][c];
          const int64_t cost =
              (combo.flops + bucket_size - 1) / bucket_size;
          const int64_t nb = b + cost;
          if (nb >= num_buckets) continue;
          const double value =
              dp[i][static_cast<size_t>(b)] + combo.log_prob;
          if (value > dp[i + 1][static_cast<size_t>(nb)]) {
            dp[i + 1][static_cast<size_t>(nb)] = value;
            choice[i][static_cast<size_t>(nb)] = static_cast<int32_t>(c);
          }
        }
      }
    }
    // Best final bucket.
    int64_t best_bucket = -1;
    double best_value = kNegInf;
    for (int64_t b = 0; b < num_buckets; ++b) {
      if (dp[layers_.size()][static_cast<size_t>(b)] > best_value) {
        best_value = dp[layers_.size()][static_cast<size_t>(b)];
        best_bucket = b;
      }
    }
    if (best_bucket < 0) {
      // Nothing fits; fall back to the minimum-FLOPs combo per layer.
      ALT_LOG(Warning) << "FLOPs budget " << flops_budget
                       << " infeasible; using minimum-FLOPs architecture";
      for (size_t i = 0; i < per_layer.size(); ++i) {
        const Combo* best = nullptr;
        for (const Combo& c : per_layer[i]) {
          if (best == nullptr || c.flops < best->flops ||
              (c.flops == best->flops && c.log_prob > best->log_prob)) {
            best = &c;
          }
        }
        chosen[i] = best;
      }
    } else {
      // Backtrack. The DP stores, for each layer i and bucket b, the combo
      // chosen to arrive at b; recover the path backwards.
      int64_t b = best_bucket;
      for (size_t i = per_layer.size(); i-- > 0;) {
        const int32_t c = choice[i][static_cast<size_t>(b)];
        ALT_CHECK_GE(c, 0);
        chosen[i] = &per_layer[i][static_cast<size_t>(c)];
        const int64_t cost =
            (chosen[i]->flops + bucket_size - 1) / bucket_size;
        b -= cost;
      }
    }
  }

  Architecture arch;
  arch.dim = dim_;
  for (size_t i = 0; i < chosen.size(); ++i) {
    const Combo* c = chosen[i];
    ALT_CHECK(c != nullptr);
    LayerSpec layer;
    layer.input = c->input;
    layer.op = options_.candidates[static_cast<size_t>(c->op)];
    for (size_t r = 0; r <= i; ++r) {
      layer.residuals.push_back(((c->res_mask >> r) & 1u) != 0);
    }
    arch.layers.push_back(std::move(layer));
  }
  ALT_RETURN_IF_ERROR(arch.Validate());
  return arch;
}

std::vector<std::pair<std::string, ag::Variable*>>
SupernetEncoder::LocalParameters() {
  std::vector<std::pair<std::string, ag::Variable*>> out;
  out.emplace_back("attn_logits", &attn_logits_);
  for (size_t i = 0; i < layers_.size(); ++i) {
    const std::string prefix = "arch_l" + std::to_string(i);
    out.emplace_back(prefix + "_input", &layers_[i].input_logits);
    out.emplace_back(prefix + "_op", &layers_[i].op_logits);
    for (size_t r = 0; r < layers_[i].res_logits.size(); ++r) {
      out.emplace_back(prefix + "_res" + std::to_string(r),
                       &layers_[i].res_logits[r]);
    }
  }
  return out;
}

std::vector<std::pair<std::string, nn::Module*>> SupernetEncoder::Children() {
  std::vector<std::pair<std::string, nn::Module*>> out;
  for (size_t i = 0; i < layers_.size(); ++i) {
    for (size_t o = 0; o < layers_[i].ops.size(); ++o) {
      out.emplace_back("l" + std::to_string(i) + "_op" + std::to_string(o),
                       layers_[i].ops[o].get());
    }
  }
  return out;
}

}  // namespace nas
}  // namespace alt
