#include "src/nas/nas_ops.h"

#include "src/autograd/ops.h"
#include "src/util/logging.h"

namespace alt {
namespace nas {

int64_t NasAttentionHeads(int64_t dim) { return dim % 3 == 0 ? 3 : 1; }

NasOpModule::NasOpModule(const OpSpec& spec, int64_t dim, Rng* rng)
    : spec_(spec) {
  switch (spec_.type) {
    case OpType::kConv:
      conv_ = std::make_unique<nn::Conv1DLayer>(dim, dim, spec_.kernel,
                                                /*dilation=*/1, rng);
      break;
    case OpType::kDilatedConv:
      conv_ = std::make_unique<nn::Conv1DLayer>(dim, dim, spec_.kernel,
                                                /*dilation=*/2, rng);
      break;
    case OpType::kAvgPool:
    case OpType::kMaxPool:
      break;  // stateless
    case OpType::kLstm:
      lstm_ = std::make_unique<nn::LstmLayer>(dim, dim, rng);
      break;
    case OpType::kAttention:
      attention_ = std::make_unique<nn::MultiHeadSelfAttention>(
          dim, NasAttentionHeads(dim), rng);
      break;
  }
}

ag::Variable NasOpModule::Forward(const ag::Variable& x) {
  switch (spec_.type) {
    case OpType::kConv:
    case OpType::kDilatedConv:
      return conv_->Forward(x);
    case OpType::kAvgPool:
      return ag::AvgPool1D(x, spec_.kernel);
    case OpType::kMaxPool:
      return ag::MaxPool1D(x, spec_.kernel);
    case OpType::kLstm:
      return lstm_->Forward(x);
    case OpType::kAttention:
      return attention_->Forward(x);
  }
  ALT_LOG(Fatal) << "unknown op type";
  return x;
}

std::vector<std::pair<std::string, nn::Module*>> NasOpModule::Children() {
  std::vector<std::pair<std::string, nn::Module*>> out;
  if (conv_ != nullptr) out.emplace_back("conv", conv_.get());
  if (lstm_ != nullptr) out.emplace_back("lstm", lstm_.get());
  if (attention_ != nullptr) out.emplace_back("attention", attention_.get());
  return out;
}

}  // namespace nas
}  // namespace alt
