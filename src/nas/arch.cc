#include "src/nas/arch.h"

#include <sstream>

#include "src/util/logging.h"

namespace alt {
namespace nas {

namespace {

/// Attention head count used consistently by FLOPs accounting and the
/// derived encoder: 3 heads when divisible (the paper's hidden dim 15),
/// otherwise 1.
int64_t AttentionHeads(int64_t dim) { return dim % 3 == 0 ? 3 : 1; }

}  // namespace

std::string OpSpec::ToString() const {
  switch (type) {
    case OpType::kConv:
      return "conv" + std::to_string(kernel);
    case OpType::kDilatedConv:
      return "dconv" + std::to_string(kernel);
    case OpType::kAvgPool:
      return "avgpool" + std::to_string(kernel);
    case OpType::kMaxPool:
      return "maxpool" + std::to_string(kernel);
    case OpType::kLstm:
      return "lstm";
    case OpType::kAttention:
      return "attn";
  }
  return "?";
}

Result<OpSpec> OpSpec::FromString(const std::string& name) {
  auto parse_kernel = [&](size_t prefix_len) -> Result<int64_t> {
    if (name.size() <= prefix_len) {
      return Status::InvalidArgument("missing kernel in op name: " + name);
    }
    int64_t k = 0;
    for (size_t i = prefix_len; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        return Status::InvalidArgument("bad kernel in op name: " + name);
      }
      k = k * 10 + (name[i] - '0');
    }
    return k;
  };
  if (name == "lstm") return OpSpec{OpType::kLstm, 0};
  if (name == "attn") return OpSpec{OpType::kAttention, 0};
  if (name.rfind("dconv", 0) == 0) {
    ALT_ASSIGN_OR_RETURN(int64_t k, parse_kernel(5));
    return OpSpec{OpType::kDilatedConv, k};
  }
  if (name.rfind("conv", 0) == 0) {
    ALT_ASSIGN_OR_RETURN(int64_t k, parse_kernel(4));
    return OpSpec{OpType::kConv, k};
  }
  if (name.rfind("avgpool", 0) == 0) {
    ALT_ASSIGN_OR_RETURN(int64_t k, parse_kernel(7));
    return OpSpec{OpType::kAvgPool, k};
  }
  if (name.rfind("maxpool", 0) == 0) {
    ALT_ASSIGN_OR_RETURN(int64_t k, parse_kernel(7));
    return OpSpec{OpType::kMaxPool, k};
  }
  return Status::InvalidArgument("unknown op name: " + name);
}

int64_t OpSpec::Flops(int64_t seq_len, int64_t dim) const {
  switch (type) {
    case OpType::kConv:
    case OpType::kDilatedConv:
      return seq_len * (2 * kernel * dim * dim + dim);
    case OpType::kAvgPool:
    case OpType::kMaxPool:
      return seq_len * kernel * dim;
    case OpType::kLstm:
      // Fused input + hidden projections into 4H gates plus elementwise.
      return seq_len * (2 * dim * 4 * dim + 2 * dim * 4 * dim + 10 * dim);
    case OpType::kAttention: {
      const int64_t heads = AttentionHeads(dim);
      const int64_t head_dim = dim / heads;
      const int64_t proj = 4 * (seq_len * 2 * dim * dim + seq_len * dim);
      const int64_t matmuls = heads * 4 * seq_len * seq_len * head_dim;
      const int64_t softmax = heads * 5 * seq_len * seq_len;
      return proj + matmuls + softmax;
    }
  }
  return 0;
}

std::vector<OpSpec> DefaultOpCandidates() {
  std::vector<OpSpec> ops;
  for (int64_t k : {1, 3, 5, 7}) ops.push_back({OpType::kConv, k});
  for (int64_t k : {3, 5, 7}) ops.push_back({OpType::kDilatedConv, k});
  ops.push_back({OpType::kAvgPool, 3});
  ops.push_back({OpType::kMaxPool, 3});
  ops.push_back({OpType::kLstm, 0});
  ops.push_back({OpType::kAttention, 0});
  return ops;
}

int64_t Architecture::Flops(int64_t seq_len) const {
  int64_t flops = 0;
  for (const LayerSpec& layer : layers) {
    flops += layer.op.Flops(seq_len, dim);
    for (bool active : layer.residuals) {
      if (active) flops += seq_len * dim;  // residual addition
    }
  }
  // Attentive sum over layer outputs: softmax over L plus L weighted adds.
  flops += num_layers() * (2 * seq_len * dim) + 5 * num_layers();
  return flops;
}

Status Architecture::Validate() const {
  if (dim <= 0) return Status::InvalidArgument("dim must be positive");
  if (layers.empty()) return Status::InvalidArgument("empty architecture");
  for (int64_t i = 0; i < num_layers(); ++i) {
    const LayerSpec& layer = layers[static_cast<size_t>(i)];
    if (layer.input < 0 || layer.input > i) {
      return Status::InvalidArgument("layer " + std::to_string(i) +
                                     " has invalid input index");
    }
    if (static_cast<int64_t>(layer.residuals.size()) != i + 1) {
      return Status::InvalidArgument("layer " + std::to_string(i) +
                                     " residual mask has wrong size");
    }
  }
  return Status::OK();
}

Json Architecture::ToJson() const {
  Json j;
  j["dim"] = dim;
  Json::Array layer_array;
  for (const LayerSpec& layer : layers) {
    Json l;
    l["input"] = layer.input;
    l["op"] = layer.op.ToString();
    Json::Array res;
    for (bool r : layer.residuals) res.push_back(r);
    l["residuals"] = std::move(res);
    layer_array.push_back(std::move(l));
  }
  j["layers"] = std::move(layer_array);
  return j;
}

Result<Architecture> Architecture::FromJson(const Json& json) {
  if (!json.is_object() || !json.contains("layers")) {
    return Status::InvalidArgument("architecture json must have layers");
  }
  Architecture arch;
  if (json.contains("dim")) arch.dim = json.at("dim").as_int();
  for (const Json& l : json.at("layers").as_array()) {
    LayerSpec layer;
    layer.input = l.at("input").as_int();
    ALT_ASSIGN_OR_RETURN(layer.op, OpSpec::FromString(l.at("op").as_string()));
    for (const Json& r : l.at("residuals").as_array()) {
      layer.residuals.push_back(r.as_bool());
    }
    arch.layers.push_back(std::move(layer));
  }
  ALT_RETURN_IF_ERROR(arch.Validate());
  return arch;
}

std::string Architecture::ToString() const {
  auto source_name = [](int64_t s) {
    return s == 0 ? std::string("input") : "layer" + std::to_string(s);
  };
  std::ostringstream os;
  os << "Architecture(dim=" << dim << ")\n";
  for (int64_t i = 0; i < num_layers(); ++i) {
    const LayerSpec& layer = layers[static_cast<size_t>(i)];
    os << "  layer" << (i + 1) << ": " << layer.op.ToString() << "("
       << source_name(layer.input) << ")";
    bool any = false;
    for (size_t r = 0; r < layer.residuals.size(); ++r) {
      if (layer.residuals[r]) {
        os << (any ? ", " : "  + residual[") << source_name(
            static_cast<int64_t>(r));
        any = true;
      }
    }
    if (any) os << "]";
    os << "\n";
  }
  os << "  output: attentive sum of layer outputs\n";
  return os.str();
}

}  // namespace nas
}  // namespace alt
