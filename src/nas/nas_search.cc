#include "src/nas/nas_search.h"

#include <algorithm>
#include <cmath>

#include "src/analysis/graph_audit.h"
#include "src/autograd/ops.h"
#include "src/nas/derived_encoder.h"
#include "src/obs/memory_tracker.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/opt/optimizer.h"
#include "src/resilience/checkpoint.h"
#include "src/util/logging.h"

namespace alt {
namespace nas {

namespace {

/// The Eq. 5 loss: CE(student, hard) + delta * CE(student, teacher_soft).
/// Teacher may be null (hard labels only).
ag::Variable DistillLoss(models::BaseModel* student,
                         models::BaseModel* teacher, const data::Batch& batch,
                         float delta, Rng* dropout_rng) {
  ag::Variable logits = student->Forward(batch, dropout_rng);
  ag::Variable hard = ag::Variable::Constant(batch.labels);
  ag::Variable loss = ag::BCEWithLogits(logits, hard);
  if (teacher != nullptr && delta > 0.0f) {
    std::vector<float> soft_probs = teacher->PredictProbs(batch);
    Tensor soft = Tensor::FromVector({batch.batch_size, 1}, soft_probs);
    loss = ag::Add(
        loss, ag::ScalarMul(
                  ag::BCEWithLogits(logits, ag::Variable::Constant(soft)),
                  delta));
  }
  return loss;
}

}  // namespace

Result<std::unique_ptr<models::BaseModel>> SearchLightModel(
    const models::ModelConfig& light_base, models::BaseModel* teacher,
    const data::ScenarioData& train_data, const NasSearchOptions& options,
    NasSearchReport* report) {
  if (train_data.num_samples() < 8) {
    return Status::InvalidArgument("too few samples for NAS search");
  }
  ALT_TRACE_SPAN(search_span, "nas/search");
  obs::ScopedMemoryTag memory_tag("nas");
  ALT_OBS_COUNTER_ADD("nas/nas_search/searches_total", 1);
  obs::Histogram* step_time =
      obs::MetricsRegistry::Global().histogram("nas/nas_search/step_time_ms");
  Rng rng(options.seed);
  Rng dropout_rng = rng.Fork();

  // 1. Build the supernet model (full Fig. 2 model with supernet encoder).
  models::ModelConfig supernet_config = light_base;
  supernet_config.encoder = models::EncoderKind::kNas;
  auto supernet = std::make_unique<SupernetEncoder>(
      supernet_config.hidden_dim, options.supernet, options.seed * 97 + 1,
      &rng);
  SupernetEncoder* supernet_ptr = supernet.get();
  auto model = std::make_unique<models::BaseModel>(
      supernet_config, std::move(supernet), &rng);

  // 2. Alternating bilevel optimization (weights on train split, arch on
  //    validation split, Eq. 4).
  Rng split_rng = rng.Fork();
  auto [w_train, w_val] =
      data::SplitTrainTest(train_data, options.val_fraction, &split_rng);
  if (w_train.num_samples() == 0 || w_val.num_samples() == 0) {
    return Status::InvalidArgument("train data too small to split for NAS");
  }

  std::vector<ag::Variable*> arch_params = supernet_ptr->ArchParameters();
  std::vector<ag::Variable*> weight_params;
  for (ag::Variable* p : model->Parameters()) {
    if (std::find(arch_params.begin(), arch_params.end(), p) ==
        arch_params.end()) {
      weight_params.push_back(p);
    }
  }
  opt::Adam weight_opt(weight_params, options.weight_lr);
  opt::Adam arch_opt(arch_params, options.arch_lr);

  model->SetTraining(true);
  Rng batch_rng = rng.Fork();
  int64_t step = 0;
  const int64_t total_steps = std::max<int64_t>(
      1, options.search_epochs *
             ((w_train.num_samples() + options.batch_size - 1) /
              options.batch_size));

  // Checkpoint/resume: the advancing state of the bilevel loop is the
  // supernet weights (arch logits included), both Adam moments, and the
  // three RNG streams the loop consumes (batch shuffling, dropout, Gumbel
  // sampling). The outer `rng` is not part of it: its remaining use — the
  // final model build — happens after forking and is epoch-independent.
  const bool checkpointing = !options.checkpoint_path.empty();
  const int64_t checkpoint_every =
      std::max<int64_t>(1, options.checkpoint_every_epochs);
  int64_t start_epoch = 0;
  if (checkpointing && options.resume) {
    Result<resilience::CheckpointReader> loaded =
        resilience::CheckpointReader::ReadFromFile(options.checkpoint_path);
    if (loaded.ok()) {
      const resilience::CheckpointReader& ckpt = loaded.value();
      if (!ckpt.meta().contains("kind") ||
          ckpt.meta().at("kind").as_string() != "nas_search") {
        return Status::InvalidArgument("not a nas_search checkpoint");
      }
      ALT_ASSIGN_OR_RETURN(std::string weights, ckpt.blob("weights"));
      ALT_RETURN_IF_ERROR(
          resilience::RestoreModuleWeights(model.get(), weights));
      ALT_ASSIGN_OR_RETURN(std::string w_opt, ckpt.blob("weight_opt"));
      ALT_RETURN_IF_ERROR(resilience::RestoreAdamState(&weight_opt, w_opt));
      ALT_ASSIGN_OR_RETURN(std::string a_opt, ckpt.blob("arch_opt"));
      ALT_RETURN_IF_ERROR(resilience::RestoreAdamState(&arch_opt, a_opt));
      ALT_ASSIGN_OR_RETURN(std::string batch_state, ckpt.blob("batch_rng"));
      ALT_ASSIGN_OR_RETURN(std::string dropout_state,
                           ckpt.blob("dropout_rng"));
      ALT_ASSIGN_OR_RETURN(std::string sample_state, ckpt.blob("sample_rng"));
      if (!batch_rng.LoadState(batch_state) ||
          !dropout_rng.LoadState(dropout_state) ||
          !supernet_ptr->sample_rng().LoadState(sample_state)) {
        return Status::InvalidArgument("corrupt RNG state in checkpoint");
      }
      start_epoch = ckpt.meta().at("next_epoch").as_int();
      step = ckpt.meta().at("step").as_int();
      ALT_LOG(Info) << "resumed NAS search from " << options.checkpoint_path
                    << " at epoch " << start_epoch;
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      // A missing checkpoint means a clean start; a corrupt one is an error.
      return loaded.status();
    }
  }

  for (int64_t epoch = start_epoch; epoch < options.search_epochs; ++epoch) {
    auto val_batches = data::ShuffledBatchIndices(
        w_val.num_samples(), options.batch_size, &batch_rng);
    size_t val_cursor = 0;
    for (const auto& train_idx : data::ShuffledBatchIndices(
             w_train.num_samples(), options.batch_size, &batch_rng)) {
      obs::ScopedTimerMs step_timer(step_time);
      // Anneal the Gumbel temperature from tau_start to tau_end.
      const double progress =
          static_cast<double>(step) / static_cast<double>(total_steps);
      supernet_ptr->set_tau(options.tau_start +
                            (options.tau_end - options.tau_start) * progress);
      ++step;

      // Weight step on the train split.
      data::Batch train_batch = MakeBatch(w_train, train_idx);
      model->ZeroGrad();
      ag::Variable train_loss = DistillLoss(
          model.get(), teacher, train_batch, options.distill_delta,
          &dropout_rng);
      if (options.audit_graph && step == 1) {
        // Structural checks only: Gumbel sampling legitimately leaves the
        // unsampled candidates' weights out of any single step's graph, so
        // parameter reachability is not a supernet invariant.
        analysis::GraphReport audit = analysis::AuditGraph(train_loss);
        ALT_LOG(Info) << "supernet graph audit:\n" << audit.ToString();
        if (!audit.clean()) {
          return Status::FailedPrecondition("supernet graph audit failed: " +
                                            audit.errors.front());
        }
      }
      train_loss.Backward();
      weight_opt.ClipGradNorm(5.0);
      weight_opt.Step();

      // Architecture step on the validation split (Eq. 4).
      data::Batch val_batch =
          MakeBatch(w_val, val_batches[val_cursor % val_batches.size()]);
      ++val_cursor;
      model->ZeroGrad();
      ag::Variable val_loss = DistillLoss(model.get(), teacher, val_batch,
                                          options.distill_delta, &dropout_rng);
      val_loss =
          ag::Add(val_loss,
                  ag::ScalarMul(
                      supernet_ptr->FlopsLoss(supernet_config.seq_len),
                      options.lambda_flops));
      val_loss.Backward();
      arch_opt.ClipGradNorm(5.0);
      arch_opt.Step();
    }

    if (checkpointing && ((epoch + 1) % checkpoint_every == 0 ||
                          epoch + 1 == options.search_epochs)) {
      const Status saved = [&]() -> Status {
        resilience::CheckpointBuilder builder;
        Json& meta = builder.mutable_meta();
        meta["kind"] = "nas_search";
        meta["next_epoch"] = epoch + 1;
        meta["step"] = step;
        ALT_ASSIGN_OR_RETURN(std::string weights,
                             resilience::ModuleWeightsBlob(model.get()));
        builder.AddBlob("weights", std::move(weights));
        ALT_ASSIGN_OR_RETURN(std::string w_opt,
                             resilience::AdamStateBlob(weight_opt));
        builder.AddBlob("weight_opt", std::move(w_opt));
        ALT_ASSIGN_OR_RETURN(std::string a_opt,
                             resilience::AdamStateBlob(arch_opt));
        builder.AddBlob("arch_opt", std::move(a_opt));
        builder.AddBlob("batch_rng", batch_rng.SaveState());
        builder.AddBlob("dropout_rng", dropout_rng.SaveState());
        builder.AddBlob("sample_rng",
                        supernet_ptr->sample_rng().SaveState());
        return builder.WriteToFile(options.checkpoint_path);
      }();
      // A failed save must not kill the search; the previous checkpoint
      // (if any) is still whole on disk thanks to the atomic write.
      if (!saved.ok()) {
        ALT_LOG(Warning) << "NAS checkpoint save failed (continuing): "
                         << saved.ToString();
      }
    }
  }
  model->SetTraining(false);

  // 3. Derive the max-joint-probability architecture under the budget.
  ALT_ASSIGN_OR_RETURN(Architecture arch, [&]() {
    ALT_TRACE_SPAN(derive_span, "nas/derive");
    return supernet_ptr->Derive(options.flops_budget, supernet_config.seq_len);
  }());
  // Sampled-architecture cost vs the Eq. 4 budget the search optimized for.
  ALT_OBS_GAUGE_SET("nas/nas_search/derived_flops",
                    static_cast<double>(arch.Flops(supernet_config.seq_len)));
  ALT_OBS_GAUGE_SET("nas/nas_search/flops_budget",
                    static_cast<double>(options.flops_budget));
  if (report != nullptr) {
    report->arch = arch;
    report->encoder_flops = arch.Flops(supernet_config.seq_len);
    report->supernet_val_auc = train::EvaluateAuc(model.get(), w_val);
  }

  // 4. Train a fresh model with the derived encoder on the full train data.
  models::ModelConfig final_config = light_base;
  final_config.encoder = models::EncoderKind::kNas;
  final_config.nas_arch = arch.ToJson();
  ALT_ASSIGN_OR_RETURN(std::unique_ptr<models::BaseModel> final_model,
                       BuildModel(final_config, &rng));
  if (options.audit_graph) {
    // Cross-check the Eq. 4 budget accounting against the real graph: record
    // the derived encoder's forward for one sample and compare the audited
    // FLOPs total with the budget model the search optimized against.
    ag::Variable probe = ag::Variable::Constant(
        Tensor::Zeros({1, final_config.seq_len, final_config.hidden_dim}));
    analysis::GraphReport audit = analysis::AuditGraph(
        final_model->behavior_encoder()->Encode(probe));
    if (!audit.clean()) {
      return Status::FailedPrecondition("derived encoder audit failed: " +
                                        audit.errors.front());
    }
    const int64_t budget_flops = arch.Flops(final_config.seq_len);
    const double rel_err =
        budget_flops == 0
            ? 0.0
            : std::abs(static_cast<double>(audit.total_flops - budget_flops)) /
                  static_cast<double>(budget_flops);
    if (rel_err > 0.01) {
      ALT_LOG(Warning) << "derived encoder FLOPs drift: graph="
                       << audit.total_flops << " budget=" << budget_flops
                       << " rel_err=" << rel_err;
    } else {
      ALT_LOG(Info) << "derived encoder FLOPs cross-check ok: graph="
                    << audit.total_flops << " budget=" << budget_flops;
    }
  }
  train::TrainOptions final_train = options.final_train;
  final_train.seed = options.seed * 131 + 7;
  final_train.audit_graph = options.audit_graph;
  {
    ALT_TRACE_SPAN(final_train_span, "nas/final_train");
    if (teacher != nullptr && options.distill_delta > 0.0f) {
      ALT_RETURN_IF_ERROR(
          TrainWithDistillation(final_model.get(), teacher, train_data,
                                options.distill_delta, final_train)
              .status());
    } else {
      ALT_RETURN_IF_ERROR(
          TrainModel(final_model.get(), train_data, final_train).status());
    }
  }
  return final_model;
}

Result<std::unique_ptr<models::BaseModel>> BuildModel(
    const models::ModelConfig& config, Rng* rng) {
  if (config.encoder != models::EncoderKind::kNas) {
    return models::BuildBaseModel(config, rng);
  }
  if (config.nas_arch.is_null()) {
    return Status::InvalidArgument("kNas config without nas_arch");
  }
  ALT_ASSIGN_OR_RETURN(Architecture arch,
                       Architecture::FromJson(config.nas_arch));
  if (arch.dim != config.hidden_dim) {
    return Status::InvalidArgument("nas_arch dim mismatch with hidden_dim");
  }
  auto encoder = std::make_unique<DerivedNasEncoder>(std::move(arch), rng);
  return std::make_unique<models::BaseModel>(config, std::move(encoder), rng);
}

Result<std::unique_ptr<models::BaseModel>> CloneModel(
    models::BaseModel* source, Rng* rng) {
  ALT_ASSIGN_OR_RETURN(std::unique_ptr<models::BaseModel> clone,
                       BuildModel(source->config(), rng));
  ALT_RETURN_IF_ERROR(clone->CopyParametersFrom(source));
  return clone;
}

}  // namespace nas
}  // namespace alt
