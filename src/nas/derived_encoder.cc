#include "src/nas/derived_encoder.h"

#include "src/autograd/ops.h"
#include "src/util/logging.h"

namespace alt {
namespace nas {

DerivedNasEncoder::DerivedNasEncoder(Architecture arch, Rng* rng)
    : arch_(std::move(arch)) {
  ALT_CHECK(arch_.Validate().ok()) << arch_.Validate().ToString();
  for (const LayerSpec& layer : arch_.layers) {
    ops_.push_back(std::make_unique<NasOpModule>(layer.op, arch_.dim, rng));
  }
  attn_logits_ =
      ag::Variable::Parameter(Tensor::Zeros({arch_.num_layers()}));
}

ag::Variable DerivedNasEncoder::Encode(const ag::Variable& embedded) {
  ALT_CHECK_EQ(embedded.value().size(2), arch_.dim);
  // outs[0] = original input; outs[i] = layer i's output (1-based).
  std::vector<ag::Variable> outs;
  outs.push_back(embedded);
  for (int64_t i = 0; i < arch_.num_layers(); ++i) {
    const LayerSpec& layer = arch_.layers[static_cast<size_t>(i)];
    ag::Variable h = ops_[static_cast<size_t>(i)]->Forward(
        outs[static_cast<size_t>(layer.input)]);
    for (size_t r = 0; r < layer.residuals.size(); ++r) {
      if (layer.residuals[r]) h = ag::Add(h, outs[r]);
    }
    outs.push_back(h);
  }
  // Attentive sum over layer outputs.
  ag::Variable weights = ag::SoftmaxLastDim(attn_logits_);
  ag::Variable result;
  for (int64_t i = 0; i < arch_.num_layers(); ++i) {
    ag::Variable term = ag::MulScalarVar(
        outs[static_cast<size_t>(i + 1)], ag::IndexSelect(weights, i));
    result = result.defined() ? ag::Add(result, term) : term;
  }
  return result;
}

std::vector<std::pair<std::string, nn::Module*>>
DerivedNasEncoder::Children() {
  std::vector<std::pair<std::string, nn::Module*>> out;
  for (size_t i = 0; i < ops_.size(); ++i) {
    out.emplace_back("op" + std::to_string(i), ops_[i].get());
  }
  return out;
}

}  // namespace nas
}  // namespace alt
