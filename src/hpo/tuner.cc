#include "src/hpo/tuner.h"

#include "src/hpo/cmaes.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/logging.h"

namespace alt {
namespace hpo {

void Tuner::Tell(const TrialConfig& config, double objective) {
  history_.push_back({config, objective});
  if (objective > best_.objective) {
    best_ = history_.back();
  }
}

// ---------------------------------------------------------------------------
// EvolutionaryTuner
// ---------------------------------------------------------------------------

EvolutionaryTuner::EvolutionaryTuner(SearchSpace space, uint64_t seed,
                                     size_t population_size,
                                     double mutation_sigma)
    : Tuner(std::move(space), seed),
      population_size_(population_size),
      mutation_sigma_(mutation_sigma) {
  ALT_CHECK_GE(population_size_, 2u);
}

TrialConfig EvolutionaryTuner::Ask() {
  if (history_.size() < population_size_) {
    return space_.Sample(&rng_);
  }
  // Current population = best `population_size_` observations.
  std::vector<const Observation*> population;
  population.reserve(history_.size());
  for (const Observation& obs : history_) population.push_back(&obs);
  std::sort(population.begin(), population.end(),
            [](const Observation* a, const Observation* b) {
              return a->objective > b->objective;
            });
  population.resize(population_size_);

  auto tournament = [&]() -> const Observation* {
    const Observation* a = population[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(population.size()) - 1))];
    const Observation* b = population[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(population.size()) - 1))];
    return a->objective >= b->objective ? a : b;
  };
  const std::vector<double> pa = space_.Encode(tournament()->config);
  const std::vector<double> pb = space_.Encode(tournament()->config);

  std::vector<double> child(pa.size());
  for (size_t i = 0; i < child.size(); ++i) {
    child[i] = rng_.Bernoulli(0.5) ? pa[i] : pb[i];       // uniform crossover
    child[i] += rng_.Normal(0.0, mutation_sigma_);        // mutation
    child[i] = std::clamp(child[i], 0.0, 1.0);
  }
  return space_.Decode(child);
}

// ---------------------------------------------------------------------------
// TpeTuner
// ---------------------------------------------------------------------------

TpeTuner::TpeTuner(SearchSpace space, uint64_t seed, double gamma,
                   size_t num_candidates, size_t warmup)
    : Tuner(std::move(space), seed),
      gamma_(gamma),
      num_candidates_(num_candidates),
      warmup_(warmup) {}

namespace {

/// Per-dimension Gaussian KDE log-density with bandwidth `h`.
double KdeLogDensity(const std::vector<std::vector<double>>& points,
                     const std::vector<double>& x, double h) {
  if (points.empty()) return 0.0;
  double log_total = -std::numeric_limits<double>::infinity();
  for (const auto& p : points) {
    double log_k = 0.0;
    for (size_t d = 0; d < x.size(); ++d) {
      const double z = (x[d] - p[d]) / h;
      log_k += -0.5 * z * z - std::log(h);
    }
    // log-sum-exp accumulation.
    if (log_k > log_total) std::swap(log_k, log_total);
    log_total += std::log1p(std::exp(log_k - log_total));
  }
  return log_total - std::log(static_cast<double>(points.size()));
}

}  // namespace

TrialConfig TpeTuner::Ask() {
  if (history_.size() < warmup_) return space_.Sample(&rng_);

  std::vector<const Observation*> sorted;
  for (const Observation& obs : history_) sorted.push_back(&obs);
  std::sort(sorted.begin(), sorted.end(),
            [](const Observation* a, const Observation* b) {
              return a->objective > b->objective;
            });
  const size_t n_good = std::max<size_t>(
      2, static_cast<size_t>(gamma_ * static_cast<double>(sorted.size())));
  std::vector<std::vector<double>> good;
  std::vector<std::vector<double>> bad;
  for (size_t i = 0; i < sorted.size(); ++i) {
    auto encoded = space_.Encode(sorted[i]->config);
    (i < n_good ? good : bad).push_back(std::move(encoded));
  }
  const double h = 0.15;

  // Candidates: perturbations of good points; keep the best density ratio.
  TrialConfig best_config;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < num_candidates_; ++c) {
    const std::vector<double>& anchor = good[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(good.size()) - 1))];
    std::vector<double> x(anchor.size());
    for (size_t d = 0; d < x.size(); ++d) {
      x[d] = std::clamp(anchor[d] + rng_.Normal(0.0, h), 0.0, 1.0);
    }
    const double score =
        KdeLogDensity(good, x, h) - KdeLogDensity(bad, x, h);
    if (score > best_score) {
      best_score = score;
      best_config = space_.Decode(x);
    }
  }
  return best_config;
}

// ---------------------------------------------------------------------------
// RacosTuner
// ---------------------------------------------------------------------------

RacosTuner::RacosTuner(SearchSpace space, uint64_t seed, size_t num_positive,
                       double epsilon, size_t warmup)
    : Tuner(std::move(space), seed),
      num_positive_(num_positive),
      epsilon_(epsilon),
      warmup_(warmup) {
  ALT_CHECK_GE(num_positive_, 1u);
}

TrialConfig RacosTuner::Ask() {
  if (history_.size() < warmup_ || rng_.Bernoulli(epsilon_)) {
    return space_.Sample(&rng_);  // global exploration
  }
  // Split history into positives (best num_positive_) and negatives.
  std::vector<const Observation*> sorted;
  for (const Observation& obs : history_) sorted.push_back(&obs);
  std::sort(sorted.begin(), sorted.end(),
            [](const Observation* a, const Observation* b) {
              return a->objective > b->objective;
            });
  const size_t n_pos = std::min(num_positive_, sorted.size());
  const std::vector<double> positive = space_.Encode(
      sorted[static_cast<size_t>(
                 rng_.UniformInt(0, static_cast<int64_t>(n_pos) - 1))]
          ->config);
  std::vector<std::vector<double>> negatives;
  for (size_t i = n_pos; i < sorted.size(); ++i) {
    negatives.push_back(space_.Encode(sorted[i]->config));
  }

  // Learn a randomized axis-aligned box around the positive that excludes
  // all negatives: while some negative lies inside, pick a random dimension
  // where it differs from the positive and shrink the box on that side.
  const size_t dim = positive.size();
  std::vector<double> lo(dim, 0.0);
  std::vector<double> hi(dim, 1.0);
  for (const auto& neg : negatives) {
    bool inside = true;
    for (size_t d = 0; d < dim; ++d) {
      if (neg[d] < lo[d] || neg[d] > hi[d]) {
        inside = false;
        break;
      }
    }
    if (!inside) continue;
    // Randomly pick dimensions until this negative is excluded.
    for (int attempts = 0; attempts < 64 && inside; ++attempts) {
      const size_t d = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(dim) - 1));
      if (neg[d] == positive[d]) continue;
      if (neg[d] < positive[d]) {
        const double cut = rng_.Uniform(neg[d], positive[d]);
        lo[d] = std::max(lo[d], cut);
      } else {
        const double cut = rng_.Uniform(positive[d], neg[d]);
        hi[d] = std::min(hi[d], cut);
      }
      inside = neg[d] >= lo[d] && neg[d] <= hi[d];
    }
  }

  std::vector<double> x(dim);
  for (size_t d = 0; d < dim; ++d) {
    x[d] = lo[d] < hi[d] ? rng_.Uniform(lo[d], hi[d]) : positive[d];
  }
  return space_.Decode(x);
}

// ---------------------------------------------------------------------------

Result<std::unique_ptr<Tuner>> MakeTuner(const std::string& algorithm,
                                         const SearchSpace& space,
                                         uint64_t seed) {
  if (algorithm == "random") {
    return std::unique_ptr<Tuner>(new RandomSearchTuner(space, seed));
  }
  if (algorithm == "evolution") {
    return std::unique_ptr<Tuner>(new EvolutionaryTuner(space, seed));
  }
  if (algorithm == "tpe") {
    return std::unique_ptr<Tuner>(new TpeTuner(space, seed));
  }
  if (algorithm == "racos") {
    return std::unique_ptr<Tuner>(new RacosTuner(space, seed));
  }
  if (algorithm == "cmaes") {
    return std::unique_ptr<Tuner>(new CmaEsTuner(space, seed));
  }
  return Status::InvalidArgument("unknown tuner algorithm: " + algorithm);
}

}  // namespace hpo
}  // namespace alt
