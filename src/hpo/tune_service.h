#ifndef ALT_SRC_HPO_TUNE_SERVICE_H_
#define ALT_SRC_HPO_TUNE_SERVICE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/hpo/search_space.h"
#include "src/hpo/tuner.h"
#include "src/util/status.h"

namespace alt {
namespace hpo {

/// Options of one tuning job, mirroring the AntTune server behavior the
/// paper describes (Fig. 8): distributed trial execution, per-trial and
/// per-job time limits, early stopping of futureless trials, and fault
/// tolerance for failing trials.
struct TuneJobOptions {
  int64_t max_trials = 24;
  /// Concurrent trial executions (the "distributed" axis, here a pool).
  int64_t parallelism = 2;
  /// Per-trial wall-clock limit in seconds; 0 disables. Cooperative:
  /// objectives observe it via TrialContext::ShouldStop().
  double trial_timeout_seconds = 0.0;
  /// Whole-job wall-clock limit in seconds; 0 disables. When it fires, no
  /// new trials are launched.
  double job_timeout_seconds = 0.0;
  /// Median-rule early stopping on intermediate metrics: a trial is stopped
  /// when its reported value at step s is below the median of all completed
  /// trials' values at the same step.
  bool enable_early_stopping = false;
  /// Minimum completed trials before early stopping activates.
  int64_t early_stopping_min_trials = 3;
  /// "random" | "evolution" | "tpe" | "racos" (AntTune's default).
  std::string algorithm = "racos";
  uint64_t seed = 1;
};

/// Handed to the objective so it can report intermediate metrics (enabling
/// early stopping) and observe cancellation/timeouts cooperatively.
class TrialContext {
 public:
  virtual ~TrialContext() = default;

  /// Reports the metric value at training step/epoch `step`. Returns a
  /// Cancelled status when the scheduler decided to stop this trial; the
  /// objective should return promptly (its result is still recorded).
  virtual Status ReportIntermediate(int64_t step, double value) = 0;

  /// True when the trial should stop (early-stopped or timed out).
  virtual bool ShouldStop() const = 0;
};

/// The user-supplied evaluation function. Returns the final objective value
/// (maximized) or an error status (the trial is marked failed; the job
/// continues — fault tolerance).
using Objective =
    std::function<Result<double>(const TrialConfig&, TrialContext*)>;

/// Per-trial outcome record.
struct TrialRecord {
  int64_t trial_id = 0;
  TrialConfig config;
  double objective = -std::numeric_limits<double>::infinity();
  bool failed = false;
  bool early_stopped = false;
  double seconds = 0.0;
  std::string error;
};

/// Job summary.
struct TuneReport {
  TrialConfig best_config;
  double best_objective = -std::numeric_limits<double>::infinity();
  std::vector<TrialRecord> trials;
  int64_t num_failed = 0;
  int64_t num_early_stopped = 0;
  double total_seconds = 0.0;
};

/// Runs a tuning job: asks the tuner for configurations, evaluates them on
/// a worker pool, feeds results back, and returns the best configuration.
Result<TuneReport> RunTuneJob(const SearchSpace& space, Objective objective,
                              const TuneJobOptions& options);

}  // namespace hpo
}  // namespace alt

#endif  // ALT_SRC_HPO_TUNE_SERVICE_H_
