#include "src/hpo/search_space.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/logging.h"

namespace alt {
namespace hpo {

double GetDouble(const TrialConfig& config, const std::string& name) {
  auto it = config.find(name);
  ALT_CHECK(it != config.end()) << "missing param " << name;
  ALT_CHECK(std::holds_alternative<double>(it->second))
      << name << " is not a double";
  return std::get<double>(it->second);
}

int64_t GetInt(const TrialConfig& config, const std::string& name) {
  auto it = config.find(name);
  ALT_CHECK(it != config.end()) << "missing param " << name;
  ALT_CHECK(std::holds_alternative<int64_t>(it->second))
      << name << " is not an int";
  return std::get<int64_t>(it->second);
}

const std::string& GetCategorical(const TrialConfig& config,
                                  const std::string& name) {
  auto it = config.find(name);
  ALT_CHECK(it != config.end()) << "missing param " << name;
  ALT_CHECK(std::holds_alternative<std::string>(it->second))
      << name << " is not categorical";
  return std::get<std::string>(it->second);
}

std::string ConfigToString(const TrialConfig& config) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, value] : config) {
    if (!first) os << ", ";
    first = false;
    os << name << "=";
    if (std::holds_alternative<double>(value)) {
      os << std::get<double>(value);
    } else if (std::holds_alternative<int64_t>(value)) {
      os << std::get<int64_t>(value);
    } else {
      os << std::get<std::string>(value);
    }
  }
  return os.str();
}

SearchSpace& SearchSpace::AddDouble(const std::string& name, double lo,
                                    double hi, bool log_scale) {
  ALT_CHECK_LT(lo, hi);
  if (log_scale) ALT_CHECK_GT(lo, 0.0);
  specs_.push_back({name, ParamType::kDouble, lo, hi, log_scale, {}});
  return *this;
}

SearchSpace& SearchSpace::AddInt(const std::string& name, int64_t lo,
                                 int64_t hi) {
  ALT_CHECK_LE(lo, hi);
  specs_.push_back({name, ParamType::kInt, static_cast<double>(lo),
                    static_cast<double>(hi), false, {}});
  return *this;
}

SearchSpace& SearchSpace::AddCategorical(const std::string& name,
                                         std::vector<std::string> categories) {
  ALT_CHECK(!categories.empty());
  ParamSpec spec;
  spec.name = name;
  spec.type = ParamType::kCategorical;
  spec.categories = std::move(categories);
  specs_.push_back(std::move(spec));
  return *this;
}

namespace {

double SampleDouble(const ParamSpec& spec, double unit) {
  if (spec.log_scale) {
    const double log_lo = std::log(spec.lo);
    const double log_hi = std::log(spec.hi);
    return std::exp(log_lo + unit * (log_hi - log_lo));
  }
  return spec.lo + unit * (spec.hi - spec.lo);
}

double EncodeDouble(const ParamSpec& spec, double value) {
  if (spec.log_scale) {
    const double log_lo = std::log(spec.lo);
    const double log_hi = std::log(spec.hi);
    return (std::log(value) - log_lo) / (log_hi - log_lo);
  }
  return (value - spec.lo) / (spec.hi - spec.lo);
}

}  // namespace

TrialConfig SearchSpace::Sample(Rng* rng) const {
  TrialConfig config;
  for (const ParamSpec& spec : specs_) {
    switch (spec.type) {
      case ParamType::kDouble:
        config[spec.name] = SampleDouble(spec, rng->Uniform());
        break;
      case ParamType::kInt:
        config[spec.name] = rng->UniformInt(static_cast<int64_t>(spec.lo),
                                            static_cast<int64_t>(spec.hi));
        break;
      case ParamType::kCategorical:
        config[spec.name] = spec.categories[static_cast<size_t>(
            rng->UniformInt(0,
                            static_cast<int64_t>(spec.categories.size()) - 1))];
        break;
    }
  }
  return config;
}

Status SearchSpace::Validate(const TrialConfig& config) const {
  if (config.size() != specs_.size()) {
    return Status::InvalidArgument("config has wrong number of params");
  }
  for (const ParamSpec& spec : specs_) {
    auto it = config.find(spec.name);
    if (it == config.end()) {
      return Status::InvalidArgument("missing param " + spec.name);
    }
    switch (spec.type) {
      case ParamType::kDouble: {
        if (!std::holds_alternative<double>(it->second)) {
          return Status::InvalidArgument(spec.name + " must be double");
        }
        const double v = std::get<double>(it->second);
        if (v < spec.lo || v > spec.hi) {
          return Status::OutOfRange(spec.name + " out of range");
        }
        break;
      }
      case ParamType::kInt: {
        if (!std::holds_alternative<int64_t>(it->second)) {
          return Status::InvalidArgument(spec.name + " must be int");
        }
        const int64_t v = std::get<int64_t>(it->second);
        if (v < static_cast<int64_t>(spec.lo) ||
            v > static_cast<int64_t>(spec.hi)) {
          return Status::OutOfRange(spec.name + " out of range");
        }
        break;
      }
      case ParamType::kCategorical: {
        if (!std::holds_alternative<std::string>(it->second)) {
          return Status::InvalidArgument(spec.name + " must be categorical");
        }
        const std::string& v = std::get<std::string>(it->second);
        if (std::find(spec.categories.begin(), spec.categories.end(), v) ==
            spec.categories.end()) {
          return Status::OutOfRange(spec.name + ": unknown category " + v);
        }
        break;
      }
    }
  }
  return Status::OK();
}

std::vector<double> SearchSpace::Encode(const TrialConfig& config) const {
  std::vector<double> x;
  x.reserve(specs_.size());
  for (const ParamSpec& spec : specs_) {
    switch (spec.type) {
      case ParamType::kDouble:
        x.push_back(EncodeDouble(spec, GetDouble(config, spec.name)));
        break;
      case ParamType::kInt: {
        const double range = spec.hi - spec.lo;
        x.push_back(range == 0.0
                        ? 0.5
                        : (static_cast<double>(GetInt(config, spec.name)) -
                           spec.lo) / range);
        break;
      }
      case ParamType::kCategorical: {
        const std::string& v = GetCategorical(config, spec.name);
        const auto it =
            std::find(spec.categories.begin(), spec.categories.end(), v);
        ALT_CHECK(it != spec.categories.end());
        const double idx =
            static_cast<double>(it - spec.categories.begin());
        const double n = static_cast<double>(spec.categories.size());
        x.push_back(n <= 1.0 ? 0.5 : idx / (n - 1.0));
        break;
      }
    }
  }
  return x;
}

TrialConfig SearchSpace::Decode(const std::vector<double>& x) const {
  ALT_CHECK_EQ(x.size(), specs_.size());
  TrialConfig config;
  for (size_t i = 0; i < specs_.size(); ++i) {
    const ParamSpec& spec = specs_[i];
    const double unit = std::clamp(x[i], 0.0, 1.0);
    switch (spec.type) {
      case ParamType::kDouble:
        config[spec.name] = SampleDouble(spec, unit);
        break;
      case ParamType::kInt: {
        const double v = spec.lo + unit * (spec.hi - spec.lo);
        config[spec.name] = static_cast<int64_t>(std::llround(v));
        break;
      }
      case ParamType::kCategorical: {
        const double n = static_cast<double>(spec.categories.size());
        const int64_t idx = std::min<int64_t>(
            static_cast<int64_t>(spec.categories.size()) - 1,
            static_cast<int64_t>(std::llround(unit * (n - 1.0))));
        config[spec.name] = spec.categories[static_cast<size_t>(idx)];
        break;
      }
    }
  }
  return config;
}

Json SearchSpace::ToJson() const {
  Json j;
  for (const ParamSpec& spec : specs_) {
    Json p;
    switch (spec.type) {
      case ParamType::kDouble:
        p["type"] = "double";
        p["lo"] = spec.lo;
        p["hi"] = spec.hi;
        p["log"] = spec.log_scale;
        break;
      case ParamType::kInt:
        p["type"] = "int";
        p["lo"] = spec.lo;
        p["hi"] = spec.hi;
        break;
      case ParamType::kCategorical: {
        p["type"] = "categorical";
        Json::Array cats;
        for (const std::string& c : spec.categories) cats.push_back(c);
        p["categories"] = std::move(cats);
        break;
      }
    }
    j[spec.name] = std::move(p);
  }
  return j;
}

Result<SearchSpace> SearchSpace::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("search space must be a JSON object");
  }
  SearchSpace space;
  for (const auto& [name, p] : json.as_object()) {
    if (!p.is_object() || !p.contains("type")) {
      return Status::InvalidArgument("param " + name + " missing type");
    }
    const std::string& type = p.at("type").as_string();
    if (type == "double") {
      if (!p.contains("lo") || !p.contains("hi")) {
        return Status::InvalidArgument(name + " needs lo/hi");
      }
      space.AddDouble(name, p.at("lo").as_number(), p.at("hi").as_number(),
                      p.contains("log") && p.at("log").as_bool());
    } else if (type == "int") {
      if (!p.contains("lo") || !p.contains("hi")) {
        return Status::InvalidArgument(name + " needs lo/hi");
      }
      space.AddInt(name, p.at("lo").as_int(), p.at("hi").as_int());
    } else if (type == "categorical") {
      if (!p.contains("categories") || !p.at("categories").is_array()) {
        return Status::InvalidArgument(name + " needs categories");
      }
      std::vector<std::string> cats;
      for (const Json& c : p.at("categories").as_array()) {
        if (!c.is_string()) {
          return Status::InvalidArgument(name + " categories must be strings");
        }
        cats.push_back(c.as_string());
      }
      space.AddCategorical(name, std::move(cats));
    } else {
      return Status::InvalidArgument("unknown param type " + type);
    }
  }
  return space;
}

}  // namespace hpo
}  // namespace alt
