#include "src/hpo/cmaes.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace alt {
namespace hpo {

CmaEsTuner::CmaEsTuner(SearchSpace space, uint64_t seed, size_t lambda)
    : Tuner(std::move(space), seed), dim_(space_.NumParams()) {
  ALT_CHECK_GE(dim_, 1u);
  const double n = static_cast<double>(dim_);
  lambda_ = lambda > 0 ? lambda
                       : static_cast<size_t>(4 + std::floor(3.0 * std::log(n)));
  mu_ = lambda_ / 2;
  ALT_CHECK_GE(mu_, 1u);

  // Standard log-rank recombination weights.
  weights_.resize(mu_);
  double weight_sum = 0.0;
  for (size_t i = 0; i < mu_; ++i) {
    weights_[i] = std::log(static_cast<double>(mu_) + 0.5) -
                  std::log(static_cast<double>(i) + 1.0);
    weight_sum += weights_[i];
  }
  double weight_sq_sum = 0.0;
  for (double& w : weights_) {
    w /= weight_sum;
    weight_sq_sum += w * w;
  }
  mu_eff_ = 1.0 / weight_sq_sum;

  cc_ = (4.0 + mu_eff_ / n) / (n + 4.0 + 2.0 * mu_eff_ / n);
  cs_ = (mu_eff_ + 2.0) / (n + mu_eff_ + 5.0);
  c1_ = 2.0 / ((n + 1.3) * (n + 1.3) + mu_eff_);
  cmu_ = std::min(1.0 - c1_, 2.0 * (mu_eff_ - 2.0 + 1.0 / mu_eff_) /
                                 ((n + 2.0) * (n + 2.0) + mu_eff_));
  // Separable variant: larger learning rates are admissible for the
  // diagonal model (Ros & Hansen, 2008).
  const double sep_scale = (n + 2.0) / 3.0;
  c1_ = std::min(1.0, c1_ * sep_scale);
  cmu_ = std::min(1.0 - c1_, cmu_ * sep_scale);
  damps_ = 1.0 +
           2.0 * std::max(0.0, std::sqrt((mu_eff_ - 1.0) / (n + 1.0)) - 1.0) +
           cs_;
  chi_n_ = std::sqrt(n) * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n));

  mean_.assign(dim_, 0.5);
  diag_c_.assign(dim_, 1.0);
  path_c_.assign(dim_, 0.0);
  path_s_.assign(dim_, 0.0);
}

void CmaEsTuner::SampleGeneration() {
  for (size_t k = 0; k < lambda_; ++k) {
    Candidate candidate;
    candidate.z.resize(dim_);
    candidate.x.resize(dim_);
    for (size_t d = 0; d < dim_; ++d) {
      candidate.z[d] = rng_.Normal();
      const double step = sigma_ * std::sqrt(diag_c_[d]) * candidate.z[d];
      candidate.x[d] = std::clamp(mean_[d] + step, 0.0, 1.0);
    }
    pending_ask_.push_back(std::move(candidate));
  }
}

TrialConfig CmaEsTuner::Ask() {
  if (pending_ask_.empty()) SampleGeneration();
  Candidate candidate = std::move(pending_ask_.back());
  pending_ask_.pop_back();
  TrialConfig config = space_.Decode(candidate.x);
  awaiting_tell_.push_back(std::move(candidate));
  return config;
}

void CmaEsTuner::Tell(const TrialConfig& config, double objective) {
  Tuner::Tell(config, objective);
  const std::vector<double> x = space_.Encode(config);
  // Match against an in-flight candidate by encoded position.
  size_t best_index = awaiting_tell_.size();
  double best_dist = 1e-6;
  for (size_t i = 0; i < awaiting_tell_.size(); ++i) {
    double dist = 0.0;
    for (size_t d = 0; d < dim_; ++d) {
      dist += std::abs(awaiting_tell_[i].x[d] - x[d]);
    }
    if (dist < best_dist) {
      best_dist = dist;
      best_index = i;
    }
  }
  Candidate candidate;
  if (best_index < awaiting_tell_.size()) {
    candidate = std::move(awaiting_tell_[best_index]);
    awaiting_tell_.erase(awaiting_tell_.begin() +
                         static_cast<long>(best_index));
  } else {
    // Foreign config (told without Ask): reconstruct z from the current
    // distribution.
    candidate.x = x;
    candidate.z.resize(dim_);
    for (size_t d = 0; d < dim_; ++d) {
      candidate.z[d] =
          (x[d] - mean_[d]) / (sigma_ * std::sqrt(diag_c_[d]));
    }
  }
  generation_results_.emplace_back(objective, std::move(candidate));
  if (generation_results_.size() >= lambda_) UpdateDistribution();
}

void CmaEsTuner::UpdateDistribution() {
  std::sort(generation_results_.begin(), generation_results_.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  const std::vector<double> old_mean = mean_;
  std::vector<double> mean_z(dim_, 0.0);
  for (size_t d = 0; d < dim_; ++d) {
    double m = 0.0;
    double mz = 0.0;
    for (size_t i = 0; i < mu_; ++i) {
      m += weights_[i] * generation_results_[i].second.x[d];
      mz += weights_[i] * generation_results_[i].second.z[d];
    }
    mean_[d] = m;
    mean_z[d] = mz;
  }

  // Step-size path (uses the standard-normal mean step).
  double ps_norm_sq = 0.0;
  for (size_t d = 0; d < dim_; ++d) {
    path_s_[d] = (1.0 - cs_) * path_s_[d] +
                 std::sqrt(cs_ * (2.0 - cs_) * mu_eff_) * mean_z[d];
    ps_norm_sq += path_s_[d] * path_s_[d];
  }
  const double ps_norm = std::sqrt(ps_norm_sq);
  const double n = static_cast<double>(dim_);
  const bool hsig =
      ps_norm / std::sqrt(1.0 - std::pow(1.0 - cs_,
                                         2.0 * (generation_ + 1))) /
          chi_n_ <
      1.4 + 2.0 / (n + 1.0);

  // Covariance path and diagonal covariance update.
  for (size_t d = 0; d < dim_; ++d) {
    const double y = (mean_[d] - old_mean[d]) / sigma_;
    path_c_[d] = (1.0 - cc_) * path_c_[d] +
                 (hsig ? std::sqrt(cc_ * (2.0 - cc_) * mu_eff_) * y : 0.0);
    double rank_mu = 0.0;
    for (size_t i = 0; i < mu_; ++i) {
      const double yi =
          (generation_results_[i].second.x[d] - old_mean[d]) / sigma_;
      rank_mu += weights_[i] * yi * yi;
    }
    diag_c_[d] = (1.0 - c1_ - cmu_) * diag_c_[d] +
                 c1_ * (path_c_[d] * path_c_[d] +
                        (hsig ? 0.0 : cc_ * (2.0 - cc_) * diag_c_[d])) +
                 cmu_ * rank_mu;
    diag_c_[d] = std::max(diag_c_[d], 1e-12);
  }

  // Step-size adaptation.
  sigma_ *= std::exp((cs_ / damps_) * (ps_norm / chi_n_ - 1.0));
  sigma_ = std::clamp(sigma_, 1e-8, 1.0);

  generation_results_.clear();
  ++generation_;
}

}  // namespace hpo
}  // namespace alt
