#ifndef ALT_SRC_HPO_SEARCH_SPACE_H_
#define ALT_SRC_HPO_SEARCH_SPACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "src/util/json.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace alt {
namespace hpo {

/// One hyperparameter's value inside a trial configuration.
using ParamValue = std::variant<double, int64_t, std::string>;

/// A full trial configuration: parameter name -> value.
using TrialConfig = std::map<std::string, ParamValue>;

/// Typed accessors (CHECK on type mismatch — a programmer error).
double GetDouble(const TrialConfig& config, const std::string& name);
int64_t GetInt(const TrialConfig& config, const std::string& name);
const std::string& GetCategorical(const TrialConfig& config,
                                  const std::string& name);

/// Renders "lr=0.001, layers=3" for logs.
std::string ConfigToString(const TrialConfig& config);

/// The type of one searchable hyperparameter.
enum class ParamType { kDouble, kInt, kCategorical };

/// Declaration of one searchable hyperparameter (Fig. 3 of the paper shows
/// such a configuration: learning rate, MLP dims, number of encoders, ...).
struct ParamSpec {
  std::string name;
  ParamType type = ParamType::kDouble;
  double lo = 0.0;
  double hi = 1.0;
  bool log_scale = false;
  std::vector<std::string> categories;
};

/// An ordered set of hyperparameters with sampling, validation, and a
/// normalized [0,1]^d encoding used by model-based tuners.
class SearchSpace {
 public:
  SearchSpace& AddDouble(const std::string& name, double lo, double hi,
                         bool log_scale = false);
  SearchSpace& AddInt(const std::string& name, int64_t lo, int64_t hi);
  SearchSpace& AddCategorical(const std::string& name,
                              std::vector<std::string> categories);

  size_t NumParams() const { return specs_.size(); }
  const std::vector<ParamSpec>& specs() const { return specs_; }

  /// Uniform (log-uniform where requested) random configuration.
  TrialConfig Sample(Rng* rng) const;

  /// Checks that `config` has exactly this space's parameters with in-range
  /// values.
  Status Validate(const TrialConfig& config) const;

  /// Maps a configuration to [0,1]^d (one coordinate per parameter;
  /// categoricals use the normalized category index).
  std::vector<double> Encode(const TrialConfig& config) const;

  /// Inverse of Encode; coordinates are clamped to [0,1].
  TrialConfig Decode(const std::vector<double>& x) const;

  /// (De)serialization of the space itself, e.g.
  /// {"lr": {"type":"double","lo":1e-4,"hi":1e-1,"log":true}, ...}.
  Json ToJson() const;
  static Result<SearchSpace> FromJson(const Json& json);

 private:
  std::vector<ParamSpec> specs_;
};

}  // namespace hpo
}  // namespace alt

#endif  // ALT_SRC_HPO_SEARCH_SPACE_H_
