#include "src/hpo/model_search.h"

#include <algorithm>

#include "src/models/base_model.h"
#include "src/util/logging.h"

namespace alt {
namespace hpo {

SearchSpace DefaultModelSearchSpace(const models::ModelConfig& base) {
  SearchSpace space;
  space.AddDouble("learning_rate", 3e-4, 1e-2, /*log_scale=*/true);
  space.AddInt("profile_hidden", 16, 64);
  space.AddInt("head_hidden", 8, 32);
  if (base.encoder != models::EncoderKind::kNone) {
    space.AddInt("encoder_layers", std::max<int64_t>(1, base.encoder_layers - 3),
                 base.encoder_layers);
  }
  return space;
}

models::ModelConfig ApplyTrialConfig(const models::ModelConfig& base,
                                     const TrialConfig& trial) {
  models::ModelConfig config = base;
  if (trial.count("learning_rate") > 0) {
    config.learning_rate =
        static_cast<float>(GetDouble(trial, "learning_rate"));
  }
  if (trial.count("profile_hidden") > 0) {
    config.profile_hidden = {GetInt(trial, "profile_hidden")};
  }
  if (trial.count("head_hidden") > 0) {
    config.head_hidden = {GetInt(trial, "head_hidden")};
  }
  if (trial.count("encoder_layers") > 0) {
    config.encoder_layers = GetInt(trial, "encoder_layers");
  }
  return config;
}

Result<ModelSearchReport> TuneModelConfig(const models::ModelConfig& base,
                                          const data::ScenarioData& dataset,
                                          const ModelSearchOptions& options) {
  Rng split_rng(options.seed);
  auto [train_part, val_part] =
      data::SplitTrainTest(dataset, options.validation_fraction, &split_rng);
  if (train_part.num_samples() == 0 || val_part.num_samples() == 0) {
    return Status::InvalidArgument("dataset too small for model search");
  }

  Objective objective =
      [&](const TrialConfig& trial, TrialContext* context) -> Result<double> {
    models::ModelConfig config = ApplyTrialConfig(base, trial);
    Rng model_rng(options.seed * 31 + 1);
    ALT_ASSIGN_OR_RETURN(auto model, models::BuildBaseModel(config, &model_rng));

    train::TrainOptions epoch_options = options.train;
    epoch_options.learning_rate = config.learning_rate;
    epoch_options.epochs = 1;
    double best_auc = 0.0;
    for (int64_t epoch = 0; epoch < options.train.epochs; ++epoch) {
      epoch_options.seed = options.seed * 1000 + static_cast<uint64_t>(epoch);
      ALT_RETURN_IF_ERROR(
          train::TrainModel(model.get(), train_part, epoch_options).status());
      const double auc = train::EvaluateAuc(model.get(), val_part);
      best_auc = std::max(best_auc, auc);
      const Status report = context->ReportIntermediate(epoch, auc);
      if (!report.ok()) break;  // Early stopped or timed out.
    }
    return best_auc;
  };

  SearchSpace space = DefaultModelSearchSpace(base);
  ALT_ASSIGN_OR_RETURN(TuneReport tune_report,
                       RunTuneJob(space, objective, options.tune));

  ModelSearchReport report;
  report.best_config = ApplyTrialConfig(base, tune_report.best_config);
  report.best_auc = tune_report.best_objective;
  report.tune_report = std::move(tune_report);
  return report;
}

}  // namespace hpo
}  // namespace alt
