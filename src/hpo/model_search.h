#ifndef ALT_SRC_HPO_MODEL_SEARCH_H_
#define ALT_SRC_HPO_MODEL_SEARCH_H_

#include "src/data/dataset.h"
#include "src/hpo/tune_service.h"
#include "src/models/model_config.h"
#include "src/train/trainer.h"

namespace alt {
namespace hpo {

/// Options for auto-tuning the pre-designed architecture (the left branch
/// of the paper's Fig. 4: expert structure + hyperparameter optimization).
struct ModelSearchOptions {
  TuneJobOptions tune;
  train::TrainOptions train;
  /// Held-out fraction used as the tuning objective (validation AUC).
  double validation_fraction = 0.25;
  uint64_t seed = 7;
};

/// The search space of Fig. 3: learning rate, profile-MLP width, prediction
/// head width, and the number of encoder layers (bounded by the preset's
/// depth).
SearchSpace DefaultModelSearchSpace(const models::ModelConfig& base);

/// Applies a trial's hyperparameters onto `base`.
models::ModelConfig ApplyTrialConfig(const models::ModelConfig& base,
                                     const TrialConfig& trial);

/// Result of a model search.
struct ModelSearchReport {
  models::ModelConfig best_config;
  double best_auc = 0.0;
  TuneReport tune_report;
};

/// Tunes `base` on `dataset`: each trial trains a candidate on the train
/// part and reports validation AUC (with per-epoch intermediate reports so
/// the service can early-stop futureless trials).
Result<ModelSearchReport> TuneModelConfig(const models::ModelConfig& base,
                                          const data::ScenarioData& dataset,
                                          const ModelSearchOptions& options);

}  // namespace hpo
}  // namespace alt

#endif  // ALT_SRC_HPO_MODEL_SEARCH_H_
