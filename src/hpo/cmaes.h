#ifndef ALT_SRC_HPO_CMAES_H_
#define ALT_SRC_HPO_CMAES_H_

#include <vector>

#include "src/hpo/tuner.h"

namespace alt {
namespace hpo {

/// Separable CMA-ES (Hansen et al.) over the normalized [0,1]^d encoding —
/// the evolutionary strategy the paper cites ([32]) — with a diagonal
/// covariance model, which keeps the update O(d) and is effective for the
/// low-dimensional hyperparameter spaces used here. Box constraints are
/// handled by clamping samples into [0,1].
///
/// Ask/tell protocol: a full population of `lambda` candidates is sampled
/// per generation; the distribution parameters (mean, step size, diagonal
/// covariance, evolution paths) update once the whole generation has been
/// told back. Out-of-order tells are supported.
class CmaEsTuner : public Tuner {
 public:
  CmaEsTuner(SearchSpace space, uint64_t seed, size_t lambda = 0);

  TrialConfig Ask() override;
  void Tell(const TrialConfig& config, double objective) override;
  const char* name() const override { return "cmaes"; }

  double sigma() const { return sigma_; }

 private:
  struct Candidate {
    std::vector<double> x;  // clamped sample
    std::vector<double> z;  // underlying standard-normal draw
  };

  void SampleGeneration();
  void UpdateDistribution();

  size_t dim_;
  size_t lambda_;  // population size
  size_t mu_;      // number of selected parents
  std::vector<double> weights_;
  double mu_eff_ = 0.0;
  // Strategy parameters.
  double cc_ = 0.0;
  double cs_ = 0.0;
  double c1_ = 0.0;
  double cmu_ = 0.0;
  double damps_ = 0.0;
  double chi_n_ = 0.0;

  // Distribution state.
  std::vector<double> mean_;
  std::vector<double> diag_c_;  // diagonal covariance
  std::vector<double> path_c_;
  std::vector<double> path_s_;
  double sigma_ = 0.3;
  int64_t generation_ = 0;

  // In-flight candidates awaiting Ask()/Tell().
  std::vector<Candidate> pending_ask_;
  std::vector<Candidate> awaiting_tell_;
  std::vector<std::pair<double, Candidate>> generation_results_;
};

}  // namespace hpo
}  // namespace alt

#endif  // ALT_SRC_HPO_CMAES_H_
