#include "src/hpo/tune_service.h"

#include <algorithm>
#include <memory>

#include "src/resilience/clock.h"
#include "src/resilience/fault_injection.h"
#include "src/util/logging.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"

namespace alt {
namespace hpo {

namespace {

/// Shared early-stopping state: per-step values of completed trials.
class MedianTracker {
 public:
  void RecordCompleted(const std::map<int64_t, double>& step_values) {
    MutexLock lock(mu_);
    ++completed_;
    for (const auto& [step, value] : step_values) {
      by_step_[step].push_back(value);
    }
  }

  /// True when `value` at `step` is strictly below the median of completed
  /// trials' values at the same step.
  bool BelowMedian(int64_t step, double value, int64_t min_trials) {
    MutexLock lock(mu_);
    if (completed_ < min_trials) return false;
    auto it = by_step_.find(step);
    if (it == by_step_.end() || it->second.empty()) return false;
    std::vector<double> values = it->second;
    std::nth_element(values.begin(), values.begin() + values.size() / 2,
                     values.end());
    const double median = values[values.size() / 2];
    return value < median;
  }

 private:
  Mutex mu_;
  int64_t completed_ ALT_GUARDED_BY(mu_) = 0;
  std::map<int64_t, std::vector<double>> by_step_ ALT_GUARDED_BY(mu_);
};

class TrialContextImpl : public TrialContext {
 public:
  TrialContextImpl(MedianTracker* tracker, const TuneJobOptions& options)
      : tracker_(tracker),
        options_(options),
        clock_(resilience::RealClock()),
        start_ms_(clock_->NowMs()) {}

  Status ReportIntermediate(int64_t step, double value) override {
    step_values_[step] = value;
    if (options_.enable_early_stopping &&
        tracker_->BelowMedian(step, value,
                              options_.early_stopping_min_trials)) {
      early_stopped_ = true;
    }
    if (ShouldStop()) {
      return Status::Cancelled(early_stopped_ ? "early stopped"
                                              : "trial timeout");
    }
    return Status::OK();
  }

  bool ShouldStop() const override {
    if (early_stopped_) return true;
    return options_.trial_timeout_seconds > 0.0 &&
           elapsed_seconds() > options_.trial_timeout_seconds;
  }

  bool early_stopped() const { return early_stopped_; }
  double elapsed_seconds() const {
    return (clock_->NowMs() - start_ms_) * 1e-3;
  }
  const std::map<int64_t, double>& step_values() const { return step_values_; }

 private:
  MedianTracker* tracker_;
  const TuneJobOptions& options_;
  resilience::Clock* clock_;
  double start_ms_;
  std::map<int64_t, double> step_values_;
  bool early_stopped_ = false;
};

}  // namespace

Result<TuneReport> RunTuneJob(const SearchSpace& space, Objective objective,
                              const TuneJobOptions& options) {
  if (space.NumParams() == 0) {
    return Status::InvalidArgument("empty search space");
  }
  if (options.max_trials <= 0 || options.parallelism <= 0) {
    return Status::InvalidArgument(
        "max_trials and parallelism must be positive");
  }
  ALT_ASSIGN_OR_RETURN(std::unique_ptr<Tuner> tuner,
                       MakeTuner(options.algorithm, space, options.seed));

  resilience::Clock* clock = resilience::RealClock();
  const double job_start_ms = clock->NowMs();
  MedianTracker tracker;
  Mutex mu;  // Guards tuner and report.
  TuneReport report;
  ThreadPool pool(static_cast<size_t>(options.parallelism));

  auto run_trial = [&](int64_t trial_id, TrialConfig config) {
    TrialContextImpl context(&tracker, options);
    // An injected trial fault takes the existing failed-trial path: the
    // record is marked failed and the sweep carries on without it.
    Result<double> result = [&]() -> Result<double> {
      ALT_FAULT_RETURN_IF("hpo/tune_service/trial");
      return objective(config, &context);
    }();

    TrialRecord record;
    record.trial_id = trial_id;
    record.config = config;
    record.seconds = context.elapsed_seconds();
    record.early_stopped = context.early_stopped();
    if (result.ok()) {
      record.objective = result.value();
    } else {
      record.failed = true;
      record.error = result.status().ToString();
    }
    tracker.RecordCompleted(context.step_values());

    MutexLock lock(mu);
    if (!record.failed) {
      tuner->Tell(config, record.objective);
      if (record.objective > report.best_objective) {
        report.best_objective = record.objective;
        report.best_config = config;
      }
    } else {
      ++report.num_failed;
    }
    if (record.early_stopped) ++report.num_early_stopped;
    report.trials.push_back(std::move(record));
  };

  std::vector<std::future<void>> futures;
  for (int64_t trial_id = 0; trial_id < options.max_trials; ++trial_id) {
    if (options.job_timeout_seconds > 0.0 &&
        (clock->NowMs() - job_start_ms) * 1e-3 > options.job_timeout_seconds) {
      ALT_LOG(Warning) << "tune job timeout after " << trial_id << " trials";
      break;
    }
    TrialConfig config;
    {
      MutexLock lock(mu);
      config = tuner->Ask();
    }
    const Status valid = space.Validate(config);
    if (!valid.ok()) {
      return Status::Internal("tuner proposed invalid config: " +
                              valid.ToString());
    }
    futures.push_back(
        pool.Submit([&run_trial, trial_id, config = std::move(config)]() {
          run_trial(trial_id, config);
        }));
    // Light backpressure: when the pool is saturated, wait for the oldest
    // outstanding trial so model-based tuners see results as they land.
    if (futures.size() >= static_cast<size_t>(options.parallelism)) {
      futures.front().get();
      futures.erase(futures.begin());
    }
  }
  for (auto& f : futures) f.get();

  report.total_seconds = (clock->NowMs() - job_start_ms) * 1e-3;
  if (report.trials.empty()) {
    return Status::DeadlineExceeded("no trials completed");
  }
  if (report.best_objective ==
      -std::numeric_limits<double>::infinity()) {
    return Status::Internal("all trials failed");
  }
  return report;
}

}  // namespace hpo
}  // namespace alt
