#ifndef ALT_SRC_HPO_TUNER_H_
#define ALT_SRC_HPO_TUNER_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/hpo/search_space.h"

namespace alt {
namespace hpo {

/// One finished observation handed back to a tuner.
struct Observation {
  TrialConfig config;
  double objective = 0.0;  // Tuners maximize.
};

/// Ask/tell interface shared by all hyperparameter-optimization algorithms.
/// Implementations must tolerate interleaved Ask()s (parallel trials) and
/// Tell()s in any order.
class Tuner {
 public:
  Tuner(SearchSpace space, uint64_t seed)
      : space_(std::move(space)), rng_(seed) {}
  virtual ~Tuner() = default;

  /// Proposes the next configuration to evaluate.
  virtual TrialConfig Ask() = 0;

  /// Reports a finished evaluation.
  virtual void Tell(const TrialConfig& config, double objective);

  virtual const char* name() const = 0;

  /// Best observation so far; empty config if none reported.
  const Observation& best() const { return best_; }
  const std::vector<Observation>& history() const { return history_; }
  const SearchSpace& space() const { return space_; }

 protected:
  SearchSpace space_;
  Rng rng_;
  std::vector<Observation> history_;
  Observation best_{{}, -std::numeric_limits<double>::infinity()};
};

/// Pure random search (Bergstra & Bengio, 2012) — the sanity baseline.
class RandomSearchTuner : public Tuner {
 public:
  using Tuner::Tuner;
  TrialConfig Ask() override { return space_.Sample(&rng_); }
  const char* name() const override { return "random"; }
};

/// A (mu+lambda)-style evolutionary tuner over the normalized encoding:
/// tournament selection, uniform crossover, Gaussian mutation.
class EvolutionaryTuner : public Tuner {
 public:
  EvolutionaryTuner(SearchSpace space, uint64_t seed,
                    size_t population_size = 8, double mutation_sigma = 0.15);
  TrialConfig Ask() override;
  const char* name() const override { return "evolution"; }

 private:
  size_t population_size_;
  double mutation_sigma_;
};

/// Tree-structured Parzen Estimator style tuner: models the top-gamma
/// observations with per-dimension kernel density estimates and samples
/// candidates maximizing the good/bad density ratio.
class TpeTuner : public Tuner {
 public:
  TpeTuner(SearchSpace space, uint64_t seed, double gamma = 0.25,
           size_t num_candidates = 24, size_t warmup = 8);
  TrialConfig Ask() override;
  const char* name() const override { return "tpe"; }

 private:
  double gamma_;
  size_t num_candidates_;
  size_t warmup_;
};

/// RACOS (Yu, Qian & Hu, AAAI'16), the classification-based derivative-free
/// optimizer that AntTune uses by default. Maintains the best-so-far
/// positive samples and learns a randomized axis-aligned box that separates
/// a positive from the negatives; new samples are drawn from the box with
/// probability 1 - epsilon (exploitation) and globally otherwise.
class RacosTuner : public Tuner {
 public:
  RacosTuner(SearchSpace space, uint64_t seed, size_t num_positive = 2,
             double epsilon = 0.15, size_t warmup = 6);
  TrialConfig Ask() override;
  const char* name() const override { return "racos"; }

 private:
  size_t num_positive_;
  double epsilon_;
  size_t warmup_;
};

/// Builds a tuner by algorithm name: "random", "evolution", "tpe",
/// "racos", "cmaes".
Result<std::unique_ptr<Tuner>> MakeTuner(const std::string& algorithm,
                                         const SearchSpace& space,
                                         uint64_t seed);

}  // namespace hpo
}  // namespace alt

#endif  // ALT_SRC_HPO_TUNER_H_
