#ifndef ALT_SRC_OPT_LR_SCHEDULE_H_
#define ALT_SRC_OPT_LR_SCHEDULE_H_

#include <cmath>
#include <cstdint>

#include "src/util/logging.h"

namespace alt {
namespace opt {

/// Learning-rate schedules, evaluated per step. Stateless value objects:
/// call LearningRate(step) and feed the result to Optimizer::set_lr.

/// Constant rate.
class ConstantSchedule {
 public:
  explicit ConstantSchedule(float lr) : lr_(lr) {}
  float LearningRate(int64_t /*step*/) const { return lr_; }

 private:
  float lr_;
};

/// Linear warmup to `peak` over `warmup_steps`, then constant.
class WarmupSchedule {
 public:
  WarmupSchedule(float peak, int64_t warmup_steps)
      : peak_(peak), warmup_steps_(warmup_steps) {
    ALT_CHECK_GE(warmup_steps_, 1);
  }
  float LearningRate(int64_t step) const {
    if (step >= warmup_steps_) return peak_;
    return peak_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }

 private:
  float peak_;
  int64_t warmup_steps_;
};

/// Step decay: lr * gamma^(step / step_size).
class StepDecaySchedule {
 public:
  StepDecaySchedule(float lr, int64_t step_size, float gamma)
      : lr_(lr), step_size_(step_size), gamma_(gamma) {
    ALT_CHECK_GE(step_size_, 1);
  }
  float LearningRate(int64_t step) const {
    return lr_ * std::pow(gamma_, static_cast<float>(step / step_size_));
  }

 private:
  float lr_;
  int64_t step_size_;
  float gamma_;
};

/// Cosine annealing from `peak` to `floor` over `total_steps`.
class CosineSchedule {
 public:
  CosineSchedule(float peak, int64_t total_steps, float floor = 0.0f)
      : peak_(peak), total_steps_(total_steps), floor_(floor) {
    ALT_CHECK_GE(total_steps_, 1);
  }
  float LearningRate(int64_t step) const {
    const float progress = std::min(
        1.0f, static_cast<float>(step) / static_cast<float>(total_steps_));
    return floor_ + 0.5f * (peak_ - floor_) *
                        (1.0f + std::cos(progress * 3.14159265358979f));
  }

 private:
  float peak_;
  int64_t total_steps_;
  float floor_;
};

}  // namespace opt
}  // namespace alt

#endif  // ALT_SRC_OPT_LR_SCHEDULE_H_
