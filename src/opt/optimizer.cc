#include "src/opt/optimizer.h"

#include <cmath>

#include "src/util/logging.h"

namespace alt {
namespace opt {

void Optimizer::ZeroGrad() {
  for (ag::Variable* p : params_) p->ZeroGrad();
}

double Optimizer::ClipGradNorm(double max_norm) {
  double total = 0.0;
  for (ag::Variable* p : params_) {
    if (p->has_grad()) total += p->grad().SquaredNorm();
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (ag::Variable* p : params_) {
      if (p->has_grad()) p->mutable_grad().ScaleInPlace(scale);
    }
  }
  return norm;
}

void Sgd::Step() {
  for (ag::Variable* p : params_) {
    if (!p->has_grad()) continue;
    p->mutable_value().Axpy(-lr_, p->grad());
  }
}

Adam::Adam(std::vector<ag::Variable*> params, float lr, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (ag::Variable* p : params_) {
    m_.emplace_back(p->value().shape());
    v_.emplace_back(p->value().shape());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable* p = params_[i];
    if (!p->has_grad()) continue;
    const Tensor& g = p->grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    Tensor& theta = p->mutable_value();
    for (int64_t j = 0; j < g.numel(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      theta[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

void AdamW::Step() {
  // Decoupled decay first, then the ordinary Adam update.
  for (ag::Variable* p : params_) {
    if (!p->has_grad()) continue;
    p->mutable_value().ScaleInPlace(1.0f - lr() * weight_decay_);
  }
  Adam::Step();
}

}  // namespace opt
}  // namespace alt
