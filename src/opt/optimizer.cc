#include "src/opt/optimizer.h"

#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>

#include "src/util/logging.h"

namespace alt {
namespace opt {

void Optimizer::ZeroGrad() {
  for (ag::Variable* p : params_) p->ZeroGrad();
}

double Optimizer::ClipGradNorm(double max_norm) {
  double total = 0.0;
  for (ag::Variable* p : params_) {
    if (p->has_grad()) total += p->grad().SquaredNorm();
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (ag::Variable* p : params_) {
      if (p->has_grad()) p->mutable_grad().ScaleInPlace(scale);
    }
  }
  return norm;
}

void Sgd::Step() {
  for (ag::Variable* p : params_) {
    if (!p->has_grad()) continue;
    p->mutable_value().Axpy(-lr_, p->grad());
  }
}

Adam::Adam(std::vector<ag::Variable*> params, float lr, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (ag::Variable* p : params_) {
    m_.emplace_back(p->value().shape());
    v_.emplace_back(p->value().shape());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable* p = params_[i];
    if (!p->has_grad()) continue;
    const Tensor& g = p->grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    Tensor& theta = p->mutable_value();
    for (int64_t j = 0; j < g.numel(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      theta[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

namespace {
constexpr char kAdamMagic[4] = {'A', 'L', 'T', 'O'};
constexpr uint32_t kAdamVersion = 1;
}  // namespace

Status Adam::SaveState(std::ostream* out) const {
  out->write(kAdamMagic, sizeof(kAdamMagic));
  const uint32_t version = kAdamVersion;
  out->write(reinterpret_cast<const char*>(&version), sizeof(version));
  out->write(reinterpret_cast<const char*>(&t_), sizeof(t_));
  const uint64_t nparams = m_.size();
  out->write(reinterpret_cast<const char*>(&nparams), sizeof(nparams));
  for (size_t i = 0; i < m_.size(); ++i) {
    const uint64_t numel = static_cast<uint64_t>(m_[i].numel());
    out->write(reinterpret_cast<const char*>(&numel), sizeof(numel));
    out->write(reinterpret_cast<const char*>(m_[i].data()),
               static_cast<std::streamsize>(numel * sizeof(float)));
    out->write(reinterpret_cast<const char*>(v_[i].data()),
               static_cast<std::streamsize>(numel * sizeof(float)));
  }
  if (!out->good()) return Status::IOError("Adam state write failed");
  return Status::OK();
}

Status Adam::LoadState(std::istream* in) {
  char magic[4];
  in->read(magic, sizeof(magic));
  if (!in->good() ||
      std::string(magic, 4) != std::string(kAdamMagic, 4)) {
    return Status::InvalidArgument("not an Adam state blob");
  }
  uint32_t version = 0;
  in->read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in->good() || version != kAdamVersion) {
    return Status::InvalidArgument("unsupported Adam state version");
  }
  int64_t t = 0;
  in->read(reinterpret_cast<char*>(&t), sizeof(t));
  uint64_t nparams = 0;
  in->read(reinterpret_cast<char*>(&nparams), sizeof(nparams));
  if (!in->good()) return Status::IOError("truncated Adam state header");
  if (nparams != m_.size()) {
    return Status::InvalidArgument(
        "Adam state parameter count mismatch: blob has " +
        std::to_string(nparams) + ", optimizer has " +
        std::to_string(m_.size()));
  }
  for (size_t i = 0; i < m_.size(); ++i) {
    uint64_t numel = 0;
    in->read(reinterpret_cast<char*>(&numel), sizeof(numel));
    if (!in->good() || numel != static_cast<uint64_t>(m_[i].numel())) {
      return Status::InvalidArgument(
          "Adam state size mismatch at parameter " + std::to_string(i));
    }
    in->read(reinterpret_cast<char*>(m_[i].data()),
             static_cast<std::streamsize>(numel * sizeof(float)));
    in->read(reinterpret_cast<char*>(v_[i].data()),
             static_cast<std::streamsize>(numel * sizeof(float)));
    if (!in->good()) return Status::IOError("truncated Adam state body");
  }
  t_ = t;
  return Status::OK();
}

void AdamW::Step() {
  // Decoupled decay first, then the ordinary Adam update.
  for (ag::Variable* p : params_) {
    if (!p->has_grad()) continue;
    p->mutable_value().ScaleInPlace(1.0f - lr() * weight_decay_);
  }
  Adam::Step();
}

}  // namespace opt
}  // namespace alt
