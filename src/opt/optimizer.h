#ifndef ALT_SRC_OPT_OPTIMIZER_H_
#define ALT_SRC_OPT_OPTIMIZER_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "src/autograd/variable.h"
#include "src/util/status.h"

namespace alt {
namespace opt {

/// Base class for gradient-based optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the currently-accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes every parameter gradient (call before each forward/backward).
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

  const std::vector<ag::Variable*>& params() const { return params_; }

 protected:
  std::vector<ag::Variable*> params_;
};

/// Plain SGD: theta <- theta - lr * grad. The update rule of the paper's
/// Eq. 1/2/3 fine-tuning and meta-update steps.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Variable*> params, float lr)
      : Optimizer(std::move(params)), lr_(lr) {}

  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
};

/// Adam (Kingma & Ba, 2015) — the paper trains every model with Adam,
/// lr = 0.001.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Variable*> params, float lr = 1e-3f,
       float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  /// Moment (de)serialization for checkpoint/resume. Format:
  ///   "ALTO" | u32 version | i64 t | u64 nparams |
  ///   per param: u64 numel | f32 m[] | f32 v[].
  /// LoadState requires the same parameter list (count and sizes) the
  /// optimizer was constructed with; a restored optimizer continues the
  /// exact update sequence of the saved run.
  Status SaveState(std::ostream* out) const;
  Status LoadState(std::istream* in);

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// AdamW (decoupled weight decay): like Adam, but decays parameters toward
/// zero directly rather than through the gradient.
class AdamW : public Adam {
 public:
  AdamW(std::vector<ag::Variable*> params, float lr = 1e-3f,
        float weight_decay = 1e-2f, float beta1 = 0.9f, float beta2 = 0.999f,
        float eps = 1e-8f)
      : Adam(std::move(params), lr, beta1, beta2, eps),
        weight_decay_(weight_decay) {}

  void Step() override;

  float weight_decay() const { return weight_decay_; }

 private:
  float weight_decay_;
};

}  // namespace opt
}  // namespace alt

#endif  // ALT_SRC_OPT_OPTIMIZER_H_
