#ifndef ALT_SRC_DATA_DATASET_H_
#define ALT_SRC_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace alt {
namespace data {

/// Columnar storage for one scenario's samples: a profile feature matrix, a
/// behavior-sequence id matrix, and binary labels. This mirrors the paper's
/// sample structure (Fig. 2): basic profile attributes plus a user behavior
/// sequence of event ids.
struct ScenarioData {
  int64_t scenario_id = 0;
  int64_t profile_dim = 0;
  int64_t seq_len = 0;

  /// [num_samples, profile_dim], row-major.
  Tensor profiles;
  /// Row-major [num_samples, seq_len] event ids.
  std::vector<int64_t> behaviors;
  /// Binary labels, one per sample.
  std::vector<float> labels;

  int64_t num_samples() const { return static_cast<int64_t>(labels.size()); }

  /// Fraction of positive labels.
  double PositiveRate() const;

  /// A new ScenarioData holding the given row indices (copies).
  ScenarioData Subset(const std::vector<size_t>& indices) const;
};

/// A mini-batch view materialized as dense tensors, ready for the model.
struct Batch {
  Tensor profiles;                 // [B, profile_dim]
  std::vector<int64_t> behaviors;  // row-major [B, seq_len]
  Tensor labels;                   // [B, 1]
  int64_t batch_size = 0;
  int64_t seq_len = 0;
};

/// Materializes rows `indices` of `scenario_data` as a Batch.
Batch MakeBatch(const ScenarioData& scenario_data,
                const std::vector<size_t>& indices);

/// Materializes the whole scenario as one batch (used for evaluation).
Batch MakeFullBatch(const ScenarioData& scenario_data);

/// Deterministically splits into (train, test) with `test_fraction` of rows
/// in the test part, after shuffling with `rng`.
std::pair<ScenarioData, ScenarioData> SplitTrainTest(
    const ScenarioData& scenario_data, double test_fraction, Rng* rng);

/// Splits into (support, query) for the meta-learning step (Sec. III-C).
std::pair<ScenarioData, ScenarioData> SplitSupportQuery(
    const ScenarioData& scenario_data, double query_fraction, Rng* rng);

/// Concatenates several scenarios into one pooled dataset (used to
/// initialize the scenario agnostic heavy model).
ScenarioData ConcatScenarios(const std::vector<ScenarioData>& scenarios);

/// Yields shuffled index batches of size `batch_size` covering all rows.
std::vector<std::vector<size_t>> ShuffledBatchIndices(int64_t num_samples,
                                                      int64_t batch_size,
                                                      Rng* rng);

}  // namespace data
}  // namespace alt

#endif  // ALT_SRC_DATA_DATASET_H_
