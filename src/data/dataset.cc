#include "src/data/dataset.h"

#include <algorithm>

#include "src/util/logging.h"

namespace alt {
namespace data {

double ScenarioData::PositiveRate() const {
  if (labels.empty()) return 0.0;
  double total = 0.0;
  for (float y : labels) total += y;
  return total / static_cast<double>(labels.size());
}

ScenarioData ScenarioData::Subset(const std::vector<size_t>& indices) const {
  ScenarioData out;
  out.scenario_id = scenario_id;
  out.profile_dim = profile_dim;
  out.seq_len = seq_len;
  const int64_t n = static_cast<int64_t>(indices.size());
  out.profiles = Tensor({n, profile_dim});
  out.behaviors.resize(static_cast<size_t>(n * seq_len));
  out.labels.resize(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    const size_t src = indices[static_cast<size_t>(r)];
    ALT_CHECK_LT(static_cast<int64_t>(src), num_samples());
    for (int64_t j = 0; j < profile_dim; ++j) {
      out.profiles.at(r, j) = profiles.at(static_cast<int64_t>(src), j);
    }
    for (int64_t t = 0; t < seq_len; ++t) {
      out.behaviors[static_cast<size_t>(r * seq_len + t)] =
          behaviors[src * static_cast<size_t>(seq_len) +
                    static_cast<size_t>(t)];
    }
    out.labels[static_cast<size_t>(r)] = labels[src];
  }
  return out;
}

Batch MakeBatch(const ScenarioData& scenario_data,
                const std::vector<size_t>& indices) {
  Batch batch;
  batch.batch_size = static_cast<int64_t>(indices.size());
  batch.seq_len = scenario_data.seq_len;
  batch.profiles = Tensor({batch.batch_size, scenario_data.profile_dim});
  batch.behaviors.resize(
      static_cast<size_t>(batch.batch_size * batch.seq_len));
  batch.labels = Tensor({batch.batch_size, 1});
  for (int64_t r = 0; r < batch.batch_size; ++r) {
    const size_t src = indices[static_cast<size_t>(r)];
    for (int64_t j = 0; j < scenario_data.profile_dim; ++j) {
      batch.profiles.at(r, j) =
          scenario_data.profiles.at(static_cast<int64_t>(src), j);
    }
    for (int64_t t = 0; t < batch.seq_len; ++t) {
      batch.behaviors[static_cast<size_t>(r * batch.seq_len + t)] =
          scenario_data
              .behaviors[src * static_cast<size_t>(batch.seq_len) +
                         static_cast<size_t>(t)];
    }
    batch.labels.at(r, 0) = scenario_data.labels[src];
  }
  return batch;
}

Batch MakeFullBatch(const ScenarioData& scenario_data) {
  std::vector<size_t> indices(
      static_cast<size_t>(scenario_data.num_samples()));
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  return MakeBatch(scenario_data, indices);
}

std::pair<ScenarioData, ScenarioData> SplitTrainTest(
    const ScenarioData& scenario_data, double test_fraction, Rng* rng) {
  ALT_CHECK_GE(test_fraction, 0.0);
  ALT_CHECK_LT(test_fraction, 1.0);
  std::vector<size_t> indices(
      static_cast<size_t>(scenario_data.num_samples()));
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng->Shuffle(&indices);
  const size_t test_count = static_cast<size_t>(
      test_fraction * static_cast<double>(indices.size()));
  std::vector<size_t> test_idx(indices.begin(),
                               indices.begin() + static_cast<long>(test_count));
  std::vector<size_t> train_idx(
      indices.begin() + static_cast<long>(test_count), indices.end());
  return {scenario_data.Subset(train_idx), scenario_data.Subset(test_idx)};
}

std::pair<ScenarioData, ScenarioData> SplitSupportQuery(
    const ScenarioData& scenario_data, double query_fraction, Rng* rng) {
  auto [support, query] =
      SplitTrainTest(scenario_data, query_fraction, rng);
  return {std::move(support), std::move(query)};
}

ScenarioData ConcatScenarios(const std::vector<ScenarioData>& scenarios) {
  ALT_CHECK(!scenarios.empty());
  ScenarioData out;
  out.scenario_id = -1;  // pooled
  out.profile_dim = scenarios[0].profile_dim;
  out.seq_len = scenarios[0].seq_len;
  int64_t total = 0;
  for (const ScenarioData& s : scenarios) {
    ALT_CHECK_EQ(s.profile_dim, out.profile_dim);
    ALT_CHECK_EQ(s.seq_len, out.seq_len);
    total += s.num_samples();
  }
  out.profiles = Tensor({total, out.profile_dim});
  out.behaviors.reserve(static_cast<size_t>(total * out.seq_len));
  out.labels.reserve(static_cast<size_t>(total));
  int64_t row = 0;
  for (const ScenarioData& s : scenarios) {
    for (int64_t r = 0; r < s.num_samples(); ++r, ++row) {
      for (int64_t j = 0; j < out.profile_dim; ++j) {
        out.profiles.at(row, j) = s.profiles.at(r, j);
      }
    }
    out.behaviors.insert(out.behaviors.end(), s.behaviors.begin(),
                         s.behaviors.end());
    out.labels.insert(out.labels.end(), s.labels.begin(), s.labels.end());
  }
  return out;
}

std::vector<std::vector<size_t>> ShuffledBatchIndices(int64_t num_samples,
                                                      int64_t batch_size,
                                                      Rng* rng) {
  ALT_CHECK_GT(batch_size, 0);
  std::vector<size_t> indices(static_cast<size_t>(num_samples));
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng->Shuffle(&indices);
  std::vector<std::vector<size_t>> batches;
  for (int64_t start = 0; start < num_samples; start += batch_size) {
    const int64_t end = std::min(num_samples, start + batch_size);
    batches.emplace_back(indices.begin() + start, indices.begin() + end);
  }
  return batches;
}

}  // namespace data
}  // namespace alt
