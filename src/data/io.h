#ifndef ALT_SRC_DATA_IO_H_
#define ALT_SRC_DATA_IO_H_

#include <iosfwd>
#include <string>

#include "src/data/dataset.h"
#include "src/util/status.h"

namespace alt {
namespace data {

/// Dataset import/export so downstream users can bring their own scenario
/// data instead of the synthetic generator.
///
/// CSV schema (header required):
///   label,p0,p1,...,p<P-1>,b0,b1,...,b<T-1>
/// where p* are float profile columns and b* integer behavior event ids.
/// Binary format: magic "ALTD" | version | scenario_id | P | T | N |
/// labels f32[N] | profiles f32[N*P] | behaviors i64[N*T].

/// Writes `scenario_data` as CSV.
Status WriteCsv(const ScenarioData& scenario_data, std::ostream* out);
Status WriteCsvFile(const ScenarioData& scenario_data,
                    const std::string& path);

/// Parses CSV with the schema above. Column counts are inferred from the
/// header; malformed rows produce InvalidArgument with the line number.
Result<ScenarioData> ReadCsv(std::istream* in, int64_t scenario_id = 0);
Result<ScenarioData> ReadCsvFile(const std::string& path,
                                 int64_t scenario_id = 0);

/// Binary round trip (fast path for large datasets).
Status WriteBinary(const ScenarioData& scenario_data, std::ostream* out);
Status WriteBinaryFile(const ScenarioData& scenario_data,
                       const std::string& path);
Result<ScenarioData> ReadBinary(std::istream* in);
Result<ScenarioData> ReadBinaryFile(const std::string& path);

}  // namespace data
}  // namespace alt

#endif  // ALT_SRC_DATA_IO_H_
