#include "src/data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace alt {
namespace data {

namespace {

double Sigmoid(double z) {
  return z >= 0.0 ? 1.0 / (1.0 + std::exp(-z))
                  : std::exp(z) / (1.0 + std::exp(z));
}

/// First index of `value` in [ids, ids+len), or -1.
int64_t FirstIndexOf(const int64_t* ids, int64_t len, int64_t value) {
  for (int64_t t = 0; t < len; ++t) {
    if (ids[t] == value) return t;
  }
  return -1;
}

}  // namespace

SyntheticGenerator::SyntheticGenerator(SyntheticConfig config)
    : config_(std::move(config)) {
  ALT_CHECK_GE(config_.num_scenarios, 1);
  ALT_CHECK_GE(config_.profile_dim, 1);
  ALT_CHECK_GE(config_.seq_len, 2);
  ALT_CHECK_GE(config_.vocab_size, 4);
  config_.scenario_sizes.resize(static_cast<size_t>(config_.num_scenarios),
                                500);

  // Shared concept, deterministic in the seed alone.
  Rng rng(config_.seed);
  shared_profile_weights_.resize(static_cast<size_t>(config_.profile_dim));
  for (float& w : shared_profile_weights_) {
    w = static_cast<float>(rng.Normal());
  }
  shared_event_values_.resize(static_cast<size_t>(config_.vocab_size));
  for (float& v : shared_event_values_) {
    v = static_cast<float>(rng.Normal());
  }
  shared_event_logits_.resize(static_cast<size_t>(config_.vocab_size));
  for (double& l : shared_event_logits_) l = rng.Normal(0.0, 0.8);

  // Ordered motif pairs (a before b raises the score; b before a lowers it).
  for (int64_t m = 0; m < config_.num_motifs; ++m) {
    int64_t a = rng.UniformInt(0, config_.vocab_size - 1);
    int64_t b = rng.UniformInt(0, config_.vocab_size - 1);
    while (b == a) b = rng.UniformInt(0, config_.vocab_size - 1);
    motifs_.emplace_back(a, b);
  }
}

SyntheticGenerator::ScenarioConcept SyntheticGenerator::ConceptFor(
    int64_t scenario_id) const {
  // Scenario concept depends only on (seed, scenario_id).
  Rng rng(config_.seed * 1000003ULL +
          static_cast<uint64_t>(scenario_id) * 7919ULL + 17ULL);
  ScenarioConcept sc;
  const float div = static_cast<float>(config_.divergence);
  sc.profile_weights = shared_profile_weights_;
  for (float& w : sc.profile_weights) {
    w += div * static_cast<float>(rng.Normal());
  }
  sc.event_values = shared_event_values_;
  for (float& v : sc.event_values) {
    v += div * static_cast<float>(rng.Normal());
  }
  sc.event_logits = shared_event_logits_;
  for (double& l : sc.event_logits) l += 0.5 * rng.Normal();
  sc.bias = static_cast<float>(rng.Normal(0.0, 0.3));
  return sc;
}

double SyntheticGenerator::TrueProbability(int64_t scenario_id,
                                           const float* profile,
                                           const int64_t* behavior) const {
  const ScenarioConcept sc = ConceptFor(scenario_id);
  const int64_t p_dim = config_.profile_dim;
  const int64_t t_len = config_.seq_len;

  double profile_term = 0.0;
  for (int64_t j = 0; j < p_dim; ++j) {
    profile_term += profile[j] * sc.profile_weights[static_cast<size_t>(j)];
  }
  profile_term /= std::sqrt(static_cast<double>(p_dim));

  // Recency-weighted event-value term.
  double value_term = 0.0;
  for (int64_t t = 0; t < t_len; ++t) {
    const double recency =
        0.5 + static_cast<double>(t) / static_cast<double>(t_len);
    value_term +=
        sc.event_values[static_cast<size_t>(behavior[t])] * recency;
  }
  value_term /= static_cast<double>(t_len);

  // Order-sensitive motif term: +1 if a occurs before b, -1 if after.
  double motif_term = 0.0;
  for (const auto& [a, b] : motifs_) {
    const int64_t pa = FirstIndexOf(behavior, t_len, a);
    const int64_t pb = FirstIndexOf(behavior, t_len, b);
    if (pa >= 0 && pb >= 0) motif_term += (pa < pb) ? 1.0 : -1.0;
  }
  motif_term /= static_cast<double>(motifs_.size());

  const double score =
      config_.profile_signal * profile_term +
      config_.seq_signal * (value_term + config_.motif_signal * motif_term) +
      sc.bias;
  return Sigmoid(config_.score_scale * score);
}

ScenarioData SyntheticGenerator::GenerateWithRng(int64_t scenario_id,
                                                 int64_t count,
                                                 Rng* rng) const {
  const ScenarioConcept sc = ConceptFor(scenario_id);
  const int64_t p_dim = config_.profile_dim;
  const int64_t t_len = config_.seq_len;

  // Event sampling distribution from scenario logits.
  std::vector<double> event_probs(static_cast<size_t>(config_.vocab_size));
  double max_logit = sc.event_logits[0];
  for (double l : sc.event_logits) max_logit = std::max(max_logit, l);
  double total = 0.0;
  for (size_t v = 0; v < event_probs.size(); ++v) {
    event_probs[v] = std::exp(sc.event_logits[v] - max_logit);
    total += event_probs[v];
  }
  for (double& p : event_probs) p /= total;

  ScenarioData out;
  out.scenario_id = scenario_id;
  out.profile_dim = p_dim;
  out.seq_len = t_len;
  out.profiles = Tensor({count, p_dim});
  out.behaviors.resize(static_cast<size_t>(count * t_len));
  out.labels.resize(static_cast<size_t>(count));

  // Small scenario-specific mean shift for the profile features.
  std::vector<float> mean_shift(static_cast<size_t>(p_dim));
  {
    Rng shift_rng(config_.seed * 65537ULL +
                  static_cast<uint64_t>(scenario_id) * 131ULL + 5ULL);
    for (float& m : mean_shift) {
      m = 0.2f * static_cast<float>(shift_rng.Normal());
    }
  }

  for (int64_t i = 0; i < count; ++i) {
    float* prow = out.profiles.data() + i * p_dim;
    for (int64_t j = 0; j < p_dim; ++j) {
      prow[j] = mean_shift[static_cast<size_t>(j)] +
                static_cast<float>(rng->Normal());
    }
    int64_t* brow = out.behaviors.data() + i * t_len;
    for (int64_t t = 0; t < t_len; ++t) {
      brow[t] = static_cast<int64_t>(rng->Categorical(event_probs));
    }
    const double p = TrueProbability(scenario_id, prow, brow);
    bool label = rng->Bernoulli(p);
    if (rng->Bernoulli(config_.label_noise)) label = !label;
    out.labels[static_cast<size_t>(i)] = label ? 1.0f : 0.0f;
  }
  return out;
}

ScenarioData SyntheticGenerator::GenerateScenario(int64_t scenario_id) const {
  ALT_CHECK_GE(scenario_id, 0);
  ALT_CHECK_LT(scenario_id, config_.num_scenarios);
  Rng rng(config_.seed * 48611ULL +
          static_cast<uint64_t>(scenario_id) * 2654435761ULL + 3ULL);
  return GenerateWithRng(
      scenario_id, config_.scenario_sizes[static_cast<size_t>(scenario_id)],
      &rng);
}

ScenarioData SyntheticGenerator::GenerateExtra(int64_t scenario_id,
                                               int64_t count,
                                               uint64_t stream) const {
  Rng rng(config_.seed * 92821ULL +
          static_cast<uint64_t>(scenario_id) * 15485863ULL + stream * 31ULL +
          11ULL);
  return GenerateWithRng(scenario_id, count, &rng);
}

std::vector<ScenarioData> SyntheticGenerator::GenerateAll() const {
  std::vector<ScenarioData> out;
  out.reserve(static_cast<size_t>(config_.num_scenarios));
  for (int64_t s = 0; s < config_.num_scenarios; ++s) {
    out.push_back(GenerateScenario(s));
  }
  return out;
}

const std::vector<int64_t>& DatasetASizes() {
  // Table I of the paper.
  static const std::vector<int64_t>* kSizes = new std::vector<int64_t>{
      1202739, 930438, 890908, 875692, 530441, 242858, 93892, 88084, 84466,
      69647,   62134,  61869,  61214,  51506,  47219,  46596, 28643, 19973};
  return *kSizes;
}

const std::vector<int64_t>& DatasetBSizes() {
  // Table II of the paper. The published table is partially garbled by OCR;
  // 30 sizes are recoverable and the final two small scenarios are
  // interpolated (documented in DESIGN.md).
  static const std::vector<int64_t>* kSizes = new std::vector<int64_t>{
      221003, 139043, 122863, 113160, 103506, 102792, 97333, 91394,
      79890,  60877,  60731,  54548,  45570,  43615,  32893, 30505,
      26861,  22340,  17256,  16294,  13108,  12143,  7677,  4825,
      4321,   3430,   2870,   1574,   976,    493,    2200,  1200};
  return *kSizes;
}

namespace {

std::vector<int64_t> ScaledSizes(const std::vector<int64_t>& sizes,
                                 double scale, int64_t min_size) {
  std::vector<int64_t> out;
  out.reserve(sizes.size());
  for (int64_t s : sizes) {
    out.push_back(std::max<int64_t>(
        min_size, static_cast<int64_t>(std::llround(s * scale))));
  }
  return out;
}

}  // namespace

SyntheticConfig DatasetAConfig(double scale, int64_t seq_len,
                               int64_t min_size) {
  SyntheticConfig config;
  config.num_scenarios = static_cast<int64_t>(DatasetASizes().size());
  config.profile_dim = 69;  // Table I description: 69 profile attributes.
  config.seq_len = seq_len;
  // A smaller vocabulary and a stronger sequence term keep the behavior
  // signal learnable at reduced sequence lengths: with vocab 30 a motif
  // event appears in a length-16 sequence with probability ~0.42, so the
  // order-sensitive term fires regularly (matches the paper's setting where
  // sequences of length 128 carry substantial signal, Table VII).
  config.vocab_size = 30;
  config.seq_signal = 2.0;
  config.motif_signal = 1.5;
  config.num_motifs = 6;
  config.scenario_sizes = ScaledSizes(DatasetASizes(), scale, min_size);
  config.seed = 20230403;
  return config;
}

SyntheticConfig DatasetBConfig(double scale, int64_t seq_len,
                               int64_t min_size) {
  SyntheticConfig config;
  config.num_scenarios = static_cast<int64_t>(DatasetBSizes().size());
  config.profile_dim = 104;  // 104 profile attributes per the paper.
  config.seq_len = seq_len;
  config.vocab_size = 30;
  config.seq_signal = 2.0;
  config.motif_signal = 1.5;
  config.num_motifs = 6;
  config.scenario_sizes = ScaledSizes(DatasetBSizes(), scale, min_size);
  config.divergence = 0.45;  // Advertising scenarios are more heterogeneous.
  config.seed = 20230404;
  return config;
}

}  // namespace data
}  // namespace alt
