#ifndef ALT_SRC_DATA_METRICS_H_
#define ALT_SRC_DATA_METRICS_H_

#include <vector>

namespace alt {
namespace data {

/// Area under the ROC curve via the Mann-Whitney U statistic (ties count
/// one half). Returns 0.5 when either class is absent — the uninformative
/// score — so degenerate scenario splits do not poison averages.
double Auc(const std::vector<float>& labels, const std::vector<float>& scores);

/// Mean binary cross-entropy of probabilities (clamped to [1e-7, 1-1e-7]).
double LogLoss(const std::vector<float>& labels,
               const std::vector<float>& probs);

/// Fraction of correct predictions at threshold 0.5.
double Accuracy(const std::vector<float>& labels,
                const std::vector<float>& probs);

/// Kolmogorov-Smirnov statistic of the score distributions of the two
/// classes — the standard risk-control separation metric. 0 when either
/// class is absent.
double KsStatistic(const std::vector<float>& labels,
                   const std::vector<float>& scores);

/// Area under the precision-recall curve (average precision). Returns the
/// positive rate when scores are uninformative; 0 when no positives.
double PrAuc(const std::vector<float>& labels,
             const std::vector<float>& scores);

}  // namespace data
}  // namespace alt

#endif  // ALT_SRC_DATA_METRICS_H_
