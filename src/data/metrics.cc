#include "src/data/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/logging.h"

namespace alt {
namespace data {

double Auc(const std::vector<float>& labels,
           const std::vector<float>& scores) {
  ALT_CHECK_EQ(labels.size(), scores.size());
  const size_t n = labels.size();
  size_t positives = 0;
  for (float y : labels) positives += (y > 0.5f) ? 1 : 0;
  const size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  // Rank-based computation handling ties via average ranks.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i) +
                                   static_cast<double>(j)) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  double rank_sum_pos = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k] > 0.5f) rank_sum_pos += ranks[k];
  }
  const double p = static_cast<double>(positives);
  const double q = static_cast<double>(negatives);
  return (rank_sum_pos - p * (p + 1.0) / 2.0) / (p * q);
}

double LogLoss(const std::vector<float>& labels,
               const std::vector<float>& probs) {
  ALT_CHECK_EQ(labels.size(), probs.size());
  ALT_CHECK(!labels.empty());
  double total = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double p =
        std::clamp(static_cast<double>(probs[i]), 1e-7, 1.0 - 1e-7);
    total += labels[i] > 0.5f ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / static_cast<double>(labels.size());
}

double Accuracy(const std::vector<float>& labels,
                const std::vector<float>& probs) {
  ALT_CHECK_EQ(labels.size(), probs.size());
  ALT_CHECK(!labels.empty());
  size_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const bool pred = probs[i] >= 0.5f;
    const bool truth = labels[i] > 0.5f;
    if (pred == truth) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double KsStatistic(const std::vector<float>& labels,
                   const std::vector<float>& scores) {
  ALT_CHECK_EQ(labels.size(), scores.size());
  const size_t n = labels.size();
  size_t positives = 0;
  for (float y : labels) positives += (y > 0.5f) ? 1 : 0;
  const size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.0;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  double cdf_pos = 0.0;
  double cdf_neg = 0.0;
  double ks = 0.0;
  size_t i = 0;
  while (i < n) {
    // Advance through all ties at this score before reading the gap.
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) {
      if (labels[order[j]] > 0.5f) {
        cdf_pos += 1.0 / static_cast<double>(positives);
      } else {
        cdf_neg += 1.0 / static_cast<double>(negatives);
      }
      ++j;
    }
    ks = std::max(ks, std::abs(cdf_pos - cdf_neg));
    i = j;
  }
  return ks;
}

double PrAuc(const std::vector<float>& labels,
             const std::vector<float>& scores) {
  ALT_CHECK_EQ(labels.size(), scores.size());
  const size_t n = labels.size();
  size_t positives = 0;
  for (float y : labels) positives += (y > 0.5f) ? 1 : 0;
  if (positives == 0) return 0.0;

  // Average precision: sum of precision at each positive, walking scores
  // from high to low (ties grouped).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  double ap = 0.0;
  size_t tp = 0;
  size_t seen = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    size_t tie_pos = 0;
    while (j < n && scores[order[j]] == scores[order[i]]) {
      if (labels[order[j]] > 0.5f) ++tie_pos;
      ++j;
    }
    // All ties share the precision computed at the end of the tie group.
    tp += tie_pos;
    seen = j;
    if (tie_pos > 0) {
      const double precision =
          static_cast<double>(tp) / static_cast<double>(seen);
      ap += precision * static_cast<double>(tie_pos);
    }
    i = j;
  }
  return ap / static_cast<double>(positives);
}

}  // namespace data
}  // namespace alt
