#include "src/data/io.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/resilience/fault_injection.h"
#include "src/util/logging.h"

namespace alt {
namespace data {

namespace {
constexpr char kMagic[4] = {'A', 'L', 'T', 'D'};
constexpr uint32_t kVersion = 1;
}  // namespace

Status WriteCsv(const ScenarioData& scenario_data, std::ostream* out) {
  // Header.
  *out << "label";
  for (int64_t j = 0; j < scenario_data.profile_dim; ++j) *out << ",p" << j;
  for (int64_t t = 0; t < scenario_data.seq_len; ++t) *out << ",b" << t;
  *out << "\n";
  char buf[48];
  for (int64_t i = 0; i < scenario_data.num_samples(); ++i) {
    *out << (scenario_data.labels[static_cast<size_t>(i)] > 0.5f ? 1 : 0);
    for (int64_t j = 0; j < scenario_data.profile_dim; ++j) {
      std::snprintf(buf, sizeof(buf), "%.9g", scenario_data.profiles.at(i, j));
      *out << ',' << buf;
    }
    for (int64_t t = 0; t < scenario_data.seq_len; ++t) {
      *out << ','
           << scenario_data.behaviors[static_cast<size_t>(
                  i * scenario_data.seq_len + t)];
    }
    *out << "\n";
  }
  if (!out->good()) return Status::IOError("csv write failed");
  return Status::OK();
}

Status WriteCsvFile(const ScenarioData& scenario_data,
                    const std::string& path) {
  ALT_FAULT_RETURN_IF("data/io/write_csv");
  std::ofstream out(path);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  return WriteCsv(scenario_data, &out);
}

Result<ScenarioData> ReadCsv(std::istream* in, int64_t scenario_id) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("empty csv");
  }
  // Parse header to infer dimensions.
  int64_t profile_dim = 0;
  int64_t seq_len = 0;
  {
    std::stringstream header(line);
    std::string column;
    bool first = true;
    while (std::getline(header, column, ',')) {
      if (first) {
        if (column != "label") {
          return Status::InvalidArgument("first column must be 'label'");
        }
        first = false;
      } else if (column.rfind('p', 0) == 0) {
        ++profile_dim;
      } else if (column.rfind('b', 0) == 0) {
        ++seq_len;
      } else {
        return Status::InvalidArgument("unknown column " + column);
      }
    }
  }
  if (profile_dim == 0 || seq_len == 0) {
    return Status::InvalidArgument("csv needs p* and b* columns");
  }

  std::vector<float> labels;
  std::vector<float> profile_values;
  std::vector<int64_t> behavior_values;
  int64_t line_number = 1;
  while (std::getline(*in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::stringstream row(line);
    std::string cell;
    const int64_t expected = 1 + profile_dim + seq_len;
    int64_t column = 0;
    while (std::getline(row, cell, ',')) {
      char* end = nullptr;
      if (column == 0) {
        const double v = std::strtod(cell.c_str(), &end);
        if (end == cell.c_str()) {
          return Status::InvalidArgument("bad label at line " +
                                         std::to_string(line_number));
        }
        labels.push_back(v > 0.5 ? 1.0f : 0.0f);
      } else if (column <= profile_dim) {
        const double v = std::strtod(cell.c_str(), &end);
        if (end == cell.c_str()) {
          return Status::InvalidArgument("bad profile value at line " +
                                         std::to_string(line_number));
        }
        profile_values.push_back(static_cast<float>(v));
      } else {
        const long long v = std::strtoll(cell.c_str(), &end, 10);
        if (end == cell.c_str() || v < 0) {
          return Status::InvalidArgument("bad behavior id at line " +
                                         std::to_string(line_number));
        }
        behavior_values.push_back(v);
      }
      ++column;
    }
    if (column != expected) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + " has " +
          std::to_string(column) + " columns, expected " +
          std::to_string(expected));
    }
  }
  ScenarioData out;
  out.scenario_id = scenario_id;
  out.profile_dim = profile_dim;
  out.seq_len = seq_len;
  out.labels = std::move(labels);
  out.profiles = Tensor::FromVector(
      {static_cast<int64_t>(out.labels.size()), profile_dim},
      std::move(profile_values));
  out.behaviors = std::move(behavior_values);
  return out;
}

Result<ScenarioData> ReadCsvFile(const std::string& path,
                                 int64_t scenario_id) {
  ALT_FAULT_RETURN_IF("data/io/read_csv");
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  return ReadCsv(&in, scenario_id);
}

Status WriteBinary(const ScenarioData& scenario_data, std::ostream* out) {
  out->write(kMagic, sizeof(kMagic));
  const uint32_t version = kVersion;
  out->write(reinterpret_cast<const char*>(&version), sizeof(version));
  const int64_t header[4] = {scenario_data.scenario_id,
                             scenario_data.profile_dim,
                             scenario_data.seq_len,
                             scenario_data.num_samples()};
  out->write(reinterpret_cast<const char*>(header), sizeof(header));
  out->write(reinterpret_cast<const char*>(scenario_data.labels.data()),
             static_cast<std::streamsize>(scenario_data.labels.size() *
                                          sizeof(float)));
  out->write(
      reinterpret_cast<const char*>(scenario_data.profiles.data()),
      static_cast<std::streamsize>(scenario_data.profiles.numel() *
                                   sizeof(float)));
  out->write(reinterpret_cast<const char*>(scenario_data.behaviors.data()),
             static_cast<std::streamsize>(scenario_data.behaviors.size() *
                                          sizeof(int64_t)));
  if (!out->good()) return Status::IOError("binary write failed");
  return Status::OK();
}

Status WriteBinaryFile(const ScenarioData& scenario_data,
                       const std::string& path) {
  ALT_FAULT_RETURN_IF("data/io/write_binary");
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  return WriteBinary(scenario_data, &out);
}

Result<ScenarioData> ReadBinary(std::istream* in) {
  char magic[4];
  in->read(magic, sizeof(magic));
  if (!in->good() || std::string(magic, 4) != std::string(kMagic, 4)) {
    return Status::InvalidArgument("not an ALT dataset file");
  }
  uint32_t version = 0;
  in->read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in->good() || version != kVersion) {
    return Status::InvalidArgument("unsupported dataset version");
  }
  int64_t header[4];
  in->read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in->good()) return Status::IOError("truncated header");
  const int64_t scenario_id = header[0];
  const int64_t profile_dim = header[1];
  const int64_t seq_len = header[2];
  const int64_t n = header[3];
  if (profile_dim <= 0 || seq_len <= 0 || n < 0 || n > (1ll << 40)) {
    return Status::InvalidArgument("implausible dataset dimensions");
  }
  ScenarioData out;
  out.scenario_id = scenario_id;
  out.profile_dim = profile_dim;
  out.seq_len = seq_len;
  out.labels.resize(static_cast<size_t>(n));
  in->read(reinterpret_cast<char*>(out.labels.data()),
           static_cast<std::streamsize>(out.labels.size() * sizeof(float)));
  out.profiles = Tensor({n, profile_dim});
  in->read(reinterpret_cast<char*>(out.profiles.data()),
           static_cast<std::streamsize>(out.profiles.numel() *
                                        sizeof(float)));
  out.behaviors.resize(static_cast<size_t>(n * seq_len));
  in->read(reinterpret_cast<char*>(out.behaviors.data()),
           static_cast<std::streamsize>(out.behaviors.size() *
                                        sizeof(int64_t)));
  if (!in->good()) return Status::IOError("truncated dataset body");
  return out;
}

Result<ScenarioData> ReadBinaryFile(const std::string& path) {
  ALT_FAULT_RETURN_IF("data/io/read_binary");
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  return ReadBinary(&in);
}

}  // namespace data
}  // namespace alt
