#ifndef ALT_SRC_DATA_SYNTHETIC_H_
#define ALT_SRC_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"

namespace alt {
namespace data {

/// Configuration of the synthetic long-tail workload generator.
///
/// The generator substitutes for the paper's proprietary datasets (risk
/// control / advertising). It produces a family of related scenarios that
/// share a global ground-truth concept with per-scenario perturbations, so
/// the experimental *shapes* of the paper hold by construction:
///  - scenarios share structure => meta-learning (MeH) transfers;
///  - behavior sequences carry both value and *order* signal => sequence
///    encoders beat profile-only models (Table VII);
///  - small scenarios benefit most from transfer (Tables III/IV).
struct SyntheticConfig {
  int64_t num_scenarios = 8;
  int64_t profile_dim = 16;
  int64_t seq_len = 16;
  int64_t vocab_size = 40;
  /// Per-scenario sample counts; resized to num_scenarios (default 500).
  std::vector<int64_t> scenario_sizes;

  /// How far each scenario's concept deviates from the shared concept.
  /// 0 = identical scenarios; large values destroy transfer.
  double divergence = 0.35;
  /// Probability of flipping a label (irreducible noise).
  double label_noise = 0.05;
  /// Relative weight of the profile and sequence parts of the true score.
  double profile_signal = 1.0;
  double seq_signal = 1.0;
  /// Weight of the order-sensitive motif term within the sequence part.
  double motif_signal = 1.0;
  /// Number of ordered event-pair motifs in the ground truth.
  int64_t num_motifs = 4;
  /// Logit scale; larger => cleaner labels => higher achievable AUC.
  double score_scale = 1.6;

  uint64_t seed = 42;
};

/// Generates scenario datasets from a shared ground-truth concept. Each
/// scenario is deterministic given (seed, scenario_id) and independent of
/// how many scenarios are generated.
class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(SyntheticConfig config);

  const SyntheticConfig& config() const { return config_; }

  /// Generates scenario `scenario_id`'s dataset (0-based).
  ScenarioData GenerateScenario(int64_t scenario_id) const;

  /// Generates `count` extra samples for a scenario from the same
  /// distribution with a distinct stream (used by the online simulator).
  ScenarioData GenerateExtra(int64_t scenario_id, int64_t count,
                             uint64_t stream) const;

  /// All scenarios in id order.
  std::vector<ScenarioData> GenerateAll() const;

  /// Ground-truth probability for a sample (exposed for tests and for the
  /// online CTR simulator).
  double TrueProbability(int64_t scenario_id, const float* profile,
                         const int64_t* behavior) const;

 private:
  struct ScenarioConcept {
    std::vector<float> profile_weights;   // [P]
    std::vector<float> event_values;      // [V]
    std::vector<double> event_logits;     // [V] sampling distribution
    float bias = 0.0f;
  };

  ScenarioConcept ConceptFor(int64_t scenario_id) const;
  ScenarioData GenerateWithRng(int64_t scenario_id, int64_t count,
                               Rng* rng) const;

  SyntheticConfig config_;
  // Shared ground truth (same for all scenarios).
  std::vector<float> shared_profile_weights_;
  std::vector<float> shared_event_values_;
  std::vector<double> shared_event_logits_;
  std::vector<std::pair<int64_t, int64_t>> motifs_;  // ordered (a, b) pairs
};

/// The paper's Dataset A (risk control, 18 scenarios, 69 profile attributes,
/// behavior length 128 — Table I), scaled by `scale` with a per-scenario
/// floor of `min_size`, and sequence length reduced to `seq_len` for CPU
/// runtime. Pass scale = 1 and seq_len = 128 for paper-sized data.
SyntheticConfig DatasetAConfig(double scale = 0.002, int64_t seq_len = 16,
                               int64_t min_size = 120);

/// The paper's Dataset B (advertising, 32 scenarios, 104 profile
/// attributes — Table II; the last two sizes are interpolated because the
/// published table is partially garbled).
SyntheticConfig DatasetBConfig(double scale = 0.004, int64_t seq_len = 16,
                               int64_t min_size = 100);

/// The paper's raw per-scenario sample counts.
const std::vector<int64_t>& DatasetASizes();
const std::vector<int64_t>& DatasetBSizes();

}  // namespace data
}  // namespace alt

#endif  // ALT_SRC_DATA_SYNTHETIC_H_
