#include "src/core/alt_system.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "src/serving/model_store.h"
#include "src/util/json.h"
#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace alt {
namespace core {

AltSystem::AltSystem(AltSystemOptions options)
    : options_(std::move(options)), client_(options_.serving) {
  // The NAS budget equals the predefined light model's encoder FLOPs.
  Rng rng(options_.seed);
  auto light = models::BuildBaseModel(options_.light_config, &rng);
  ALT_CHECK(light.ok()) << light.status().ToString();
  flops_budget_ =
      light.value()->behavior_encoder() != nullptr
          ? light.value()->behavior_encoder()->Flops(
                options_.light_config.seq_len)
          : 0;
  meta_ = std::make_unique<meta::MetaLearner>(
      options_.heavy_config, options_.meta,
      // The agnostic model may later adopt a NAS architecture, so cloning
      // goes through the NAS-aware builder.
      [](const models::ModelConfig& config, Rng* build_rng) {
        return nas::BuildModel(config, build_rng);
      });

  if (options_.telemetry_port >= 0) {
    obs::TelemetryServer::Options telemetry;
    telemetry.port = options_.telemetry_port;
    // /trace/slow and /slo read straight off the serving client's request
    // tracer and SLO tracker; both outlive the server (stopped first).
    telemetry.tracer = client_.tracer();
    telemetry.slo = client_.slo();
    // Liveness reflects shard lifecycle state: 503 only when some deployed
    // scenario has no live replica left. Degraded capacity (suspect / dead /
    // rejoining shards with every scenario still answerable) stays 200 and
    // is reported in the detail body alongside the breakers.
    telemetry.health_fn = [this]() {
      const serving::ServingClient::HealthReport health = client_.GetHealth();
      Json body = Json::Object{};
      body["healthy"] = health.healthy;
      body["degraded"] = health.degraded;
      Json shards = Json::Object{};
      for (const auto& [id, state] : health.shard_states) {
        shards[id] = state;
      }
      body["shards"] = std::move(shards);
      Json::Array unservable;
      for (const std::string& scenario : health.unservable_scenarios) {
        unservable.emplace_back(scenario);
      }
      body["unservable_scenarios"] = Json(std::move(unservable));
      Json breakers = Json::Object{};
      for (const auto& [scenario, state] : client_.BreakerStates()) {
        breakers[scenario] = resilience::BreakerStateName(state);
      }
      body["breakers"] = std::move(breakers);
      Json::Array burning;
      for (const std::string& scenario : client_.slo()->Burning()) {
        burning.emplace_back(scenario);
      }
      body["slo_burning"] = Json(std::move(burning));
      return body;
    };
    // Readiness: the scenario-agnostic model exists AND every deployed
    // scenario has a live replica to answer for it.
    telemetry.ready_fn = [this]() {
      const serving::ServingClient::HealthReport health = client_.GetHealth();
      Json body = Json::Object{};
      body["ready"] = initialized() && health.healthy;
      body["initialized"] = initialized();
      body["serving_healthy"] = health.healthy;
      return body;
    };
    auto started = obs::TelemetryServer::Start(std::move(telemetry));
    if (started.ok()) {
      telemetry_ = std::move(started.value());
    } else {
      ALT_LOG(Warning) << "telemetry server disabled: "
                       << started.status().ToString();
    }
  }
}

Status AltSystem::Initialize(
    const std::vector<data::ScenarioData>& initial_raw) {
  if (initial_raw.empty()) {
    return Status::InvalidArgument("need at least one initial scenario");
  }
  // Data preparation per scenario; pooled train parts initialize f0.
  std::vector<data::ScenarioData> train_parts;
  for (const data::ScenarioData& raw : initial_raw) {
    ALT_ASSIGN_OR_RETURN(feature::PreparedData prepared,
                         feature::PrepareScenarioData(raw, options_.prep));
    train_parts.push_back(std::move(prepared.train));
  }

  if (!options_.use_hpo_init) {
    return meta_->Initialize(train_parts);
  }

  // Fig. 4: compare the plain preset against the HPO-tuned preset on a
  // shared validation split, keep the better one.
  data::ScenarioData pooled = data::ConcatScenarios(train_parts);
  Rng split_rng(options_.seed * 13 + 5);
  auto [fit_part, val_part] = data::SplitTrainTest(
      pooled, options_.hpo.validation_fraction, &split_rng);

  Rng model_rng(options_.seed * 29 + 3);
  ALT_ASSIGN_OR_RETURN(auto plain,
                       models::BuildBaseModel(options_.heavy_config,
                                              &model_rng));
  train::TrainOptions init_train = options_.meta.init_train;
  init_train.learning_rate = options_.heavy_config.learning_rate;
  ALT_RETURN_IF_ERROR(
      train::TrainModel(plain.get(), fit_part, init_train).status());
  const double plain_auc = train::EvaluateAuc(plain.get(), val_part);

  ALT_ASSIGN_OR_RETURN(
      hpo::ModelSearchReport search,
      hpo::TuneModelConfig(options_.heavy_config, pooled, options_.hpo));
  ALT_LOG(Info) << "init candidates: preset AUC=" << plain_auc
                << ", HPO-tuned AUC=" << search.best_auc;

  if (search.best_auc > plain_auc) {
    ALT_ASSIGN_OR_RETURN(auto tuned, models::BuildBaseModel(
                                         search.best_config, &model_rng));
    train::TrainOptions tuned_train = options_.meta.init_train;
    tuned_train.learning_rate = search.best_config.learning_rate;
    ALT_RETURN_IF_ERROR(
        train::TrainModel(tuned.get(), pooled, tuned_train).status());
    return meta_->AdoptInitialModel(std::move(tuned));
  }
  // Re-train the preset on the full pooled data before adopting.
  ALT_RETURN_IF_ERROR(
      train::TrainModel(plain.get(), pooled, init_train).status());
  return meta_->AdoptInitialModel(std::move(plain));
}

Result<ScenarioArtifacts> AltSystem::OnScenarioArrival(
    const data::ScenarioData& raw) {
  if (!initialized()) {
    return Status::FailedPrecondition("AltSystem::Initialize first");
  }
  ALT_ASSIGN_OR_RETURN(feature::PreparedData prepared,
                       feature::PrepareScenarioData(raw, options_.prep));

  // Scenario specific heavy model (Eq. 1) with feedback to f0 (Eq. 2).
  ALT_ASSIGN_OR_RETURN(std::unique_ptr<models::BaseModel> heavy,
                       meta_->AdaptToScenario(prepared.train));

  // Scenario specific light model: budget-limited NAS + distillation.
  nas::NasSearchOptions nas_options = options_.nas;
  nas_options.flops_budget = flops_budget_;
  nas_options.seed =
      options_.seed * 389 + static_cast<uint64_t>(raw.scenario_id) * 7 + 1;
  if (!options_.distill) nas_options.distill_delta = 0.0f;
  nas::NasSearchReport nas_report;
  ALT_ASSIGN_OR_RETURN(
      std::unique_ptr<models::BaseModel> light,
      nas::SearchLightModel(options_.light_config, heavy.get(),
                            prepared.train, nas_options, &nas_report));

  ScenarioArtifacts artifacts;
  artifacts.scenario_id = raw.scenario_id;
  artifacts.deployment_name =
      "scenario_" + std::to_string(raw.scenario_id);
  artifacts.heavy_flops = heavy->FlopsPerSample();
  artifacts.light_flops = light->FlopsPerSample();
  artifacts.arch = nas_report.arch;
  if (prepared.test.num_samples() > 0) {
    artifacts.heavy_test_auc = train::EvaluateAuc(heavy.get(), prepared.test);
    artifacts.light_test_auc = train::EvaluateAuc(light.get(), prepared.test);
  }

  // Deploy the light model for online serving (with retry: a transient
  // deploy failure should not discard the scenario's NAS + training work).
  ALT_RETURN_IF_ERROR(
      DeployWithRetry(artifacts.deployment_name, std::move(light)));
  return artifacts;
}

Status AltSystem::DeployWithRetry(const std::string& scenario,
                                  std::unique_ptr<models::BaseModel> model) {
  serving::DeployOptions deploy;
  deploy.retry_transient = true;
  deploy.retry = options_.deploy_retry;
  return client_.Deploy(scenario, std::move(model), deploy);
}

Status AltSystem::StartResilientServing() {
  if (!initialized()) {
    return Status::FailedPrecondition("AltSystem::Initialize first");
  }
  serving::ServingResilienceOptions resilience = options_.serving.resilience;
  if (resilience.fallback_scenario.empty()) {
    resilience.fallback_scenario = "f0";
  }
  if (!client_.IsDeployed(resilience.fallback_scenario)) {
    // The fallback must be answerable by every shard locally: degraded
    // traffic cannot afford a cross-shard failover hop.
    ALT_ASSIGN_OR_RETURN(auto agnostic, meta_->CloneAgnostic());
    serving::DeployOptions deploy;
    deploy.retry_transient = true;
    deploy.retry = options_.deploy_retry;
    ALT_RETURN_IF_ERROR(client_.DeployEverywhere(
        resilience.fallback_scenario, std::move(agnostic), deploy));
  }
  client_.EnableResilience(resilience);
  options_.serving.resilience = resilience;
  return Status::OK();
}

Result<std::vector<ScenarioArtifacts>> AltSystem::OnScenariosArrival(
    const std::vector<data::ScenarioData>& raw_scenarios) {
  if (raw_scenarios.empty()) return std::vector<ScenarioArtifacts>{};
  const size_t workers = static_cast<size_t>(std::max<int64_t>(
      1, std::min<int64_t>(options_.parallel_scenarios,
                           static_cast<int64_t>(raw_scenarios.size()))));
  ThreadPool pool(workers);
  std::vector<std::future<Result<ScenarioArtifacts>>> futures;
  futures.reserve(raw_scenarios.size());
  for (const data::ScenarioData& raw : raw_scenarios) {
    futures.push_back(
        pool.Submit([this, &raw]() { return OnScenarioArrival(raw); }));
  }
  std::vector<ScenarioArtifacts> out;
  for (auto& f : futures) {
    Result<ScenarioArtifacts> result = f.get();
    ALT_RETURN_IF_ERROR(result.status());
    out.push_back(std::move(result).value());
  }
  return out;
}

Status AltSystem::SaveState(const std::string& directory) {
  if (!initialized()) {
    return Status::FailedPrecondition("nothing to save: not initialized");
  }
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) return Status::IOError("cannot create " + directory);

  // Agnostic heavy model.
  ALT_ASSIGN_OR_RETURN(auto agnostic, meta_->CloneAgnostic());
  ALT_RETURN_IF_ERROR(serving::SaveModelBundleToFile(
      agnostic.get(), directory + "/agnostic.altm"));

  // Deployed scenario models + manifest.
  Json manifest;
  manifest["version"] = 1;
  Json::Array deployments;
  for (const std::string& scenario : client_.Scenarios()) {
    const std::string file = scenario + ".altm";
    ALT_RETURN_IF_ERROR(
        client_.ExportBundle(scenario, directory + "/" + file));
    Json entry;
    entry["scenario"] = scenario;
    entry["file"] = file;
    deployments.push_back(std::move(entry));
  }
  manifest["deployments"] = std::move(deployments);
  std::ofstream out(directory + "/manifest.json");
  if (!out.is_open()) return Status::IOError("cannot write manifest");
  out << manifest.DumpPretty();
  if (!out.good()) return Status::IOError("manifest write failed");
  return Status::OK();
}

Status AltSystem::LoadState(const std::string& directory) {
  std::ifstream manifest_in(directory + "/manifest.json");
  if (!manifest_in.is_open()) {
    return Status::NotFound("no manifest in " + directory);
  }
  std::string text((std::istreambuf_iterator<char>(manifest_in)),
                   std::istreambuf_iterator<char>());
  ALT_ASSIGN_OR_RETURN(Json manifest, Json::Parse(text));

  ALT_ASSIGN_OR_RETURN(auto agnostic, serving::LoadModelBundleFromFile(
                                          directory + "/agnostic.altm"));
  ALT_RETURN_IF_ERROR(meta_->AdoptInitialModel(std::move(agnostic)));

  if (manifest.contains("deployments")) {
    for (const Json& entry : manifest.at("deployments").as_array()) {
      const std::string scenario = entry.at("scenario").as_string();
      ALT_ASSIGN_OR_RETURN(
          auto model, serving::LoadModelBundleFromFile(
                          directory + "/" + entry.at("file").as_string()));
      ALT_RETURN_IF_ERROR(client_.Deploy(scenario, std::move(model)));
    }
  }
  return Status::OK();
}

}  // namespace core
}  // namespace alt
