#ifndef ALT_SRC_CORE_ALT_SYSTEM_H_
#define ALT_SRC_CORE_ALT_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/feature/data_preparation.h"
#include "src/hpo/model_search.h"
#include "src/meta/meta_learner.h"
#include "src/nas/nas_search.h"
#include "src/obs/http_server.h"
#include "src/resilience/retry.h"
#include "src/serving/serving_client.h"

namespace alt {
namespace core {

/// Options of the whole ALT system (Fig. 7).
struct AltSystemOptions {
  /// Pre-designed heavy architecture (the expert structure of Fig. 2).
  models::ModelConfig heavy_config;
  /// Predefined light architecture; its encoder FLOPs define the NAS budget
  /// ("the upper bound of the FLOPs for the searched architectures is set
  /// to be the same as the light models").
  models::ModelConfig light_config;
  meta::MetaOptions meta;
  nas::NasSearchOptions nas;
  feature::DataPreparationConfig prep;
  /// Initialization strategy (Fig. 4): when enabled, the pre-designed
  /// architecture is auto-tuned with AntTune-style HPO and compared against
  /// the plain preset on a validation split; the better candidate becomes
  /// the scenario agnostic heavy model.
  bool use_hpo_init = false;
  hpo::ModelSearchOptions hpo;
  /// Maximum scenarios processed concurrently by OnScenariosArrival.
  int64_t parallel_scenarios = 2;
  /// Use distillation when building the light model (Eq. 5).
  bool distill = true;
  /// Backoff schedule for light-model deployment: transient deploy
  /// failures (e.g. injected serving/deploy faults) retry before the
  /// scenario pipeline surfaces an error.
  resilience::RetryOptions deploy_retry;
  /// Serving plane configuration (sharding topology, batching, resilience
  /// policy). The default is the classic single-shard layout;
  /// `serving.resilience` is what StartResilientServing() applies.
  serving::ServingClient::Options serving;
  /// Telemetry exposition server (obs::TelemetryServer) on 127.0.0.1.
  /// Negative: disabled (default). 0: an ephemeral port (see
  /// AltSystem::telemetry()->port()). Positive: that port. Started by the
  /// constructor; /healthz reports the shard lifecycle (503 only when some
  /// deployed scenario has no live replica; degraded-but-serving shards
  /// stay 200 with detail in the body), /readyz reports ready once
  /// Initialize() succeeded and the serving plane is healthy.
  int telemetry_port = -1;
  uint64_t seed = 123;
};

/// Artifacts produced for one scenario.
struct ScenarioArtifacts {
  int64_t scenario_id = 0;
  std::string deployment_name;
  double heavy_test_auc = 0.0;
  double light_test_auc = 0.0;
  int64_t heavy_flops = 0;
  int64_t light_flops = 0;
  nas::Architecture arch;
};

/// End-to-end orchestration of the ALT pipeline:
///   Initialize(): data preparation -> scenario agnostic heavy model
///     (optionally picking the better of plain preset vs HPO-tuned preset).
///   OnScenarioArrival(): data preparation -> scenario specific heavy model
///     (Eq. 1, with Eq. 2 feedback) -> budget-limited NAS + distillation ->
///     scenario specific light model -> deployment to the model server.
/// Multiple scenarios can be processed in parallel; the meta learner's
/// asynchronous feedback (Eq. 3) keeps the agnostic model consistent.
class AltSystem {
 public:
  explicit AltSystem(AltSystemOptions options);

  /// Builds the scenario agnostic heavy model from the initial scenarios'
  /// raw data.
  Status Initialize(const std::vector<data::ScenarioData>& initial_raw);

  bool initialized() const { return meta_->initialized(); }

  /// Full automatic pipeline for one arriving scenario (raw data in).
  Result<ScenarioArtifacts> OnScenarioArrival(
      const data::ScenarioData& raw);

  /// Processes several arriving scenarios in parallel.
  Result<std::vector<ScenarioArtifacts>> OnScenariosArrival(
      const std::vector<data::ScenarioData>& raw_scenarios);

  /// The serving plane: deploy/predict/batch-predict/undeploy/stats.
  serving::ServingClient* serving() { return &client_; }

  /// Turns on graceful degradation for the serving plane using
  /// `options().serving.resilience`. Ensures the scenario-agnostic heavy
  /// model f0 is deployed on every shard under
  /// `resilience.fallback_scenario` (default "f0") so degraded traffic is
  /// answered by f0 rather than a constant prior. Requires Initialize().
  Status StartResilientServing();

  /// Persists the system state (agnostic heavy model + every deployed light
  /// model + a manifest) into `directory`, creating it if needed.
  Status SaveState(const std::string& directory);

  /// Restores a previously saved state: the agnostic model is adopted and
  /// every bundled scenario model is re-deployed.
  Status LoadState(const std::string& directory);

  meta::MetaLearner* meta_learner() { return meta_.get(); }
  const AltSystemOptions& options() const { return options_; }

  /// The telemetry server when AltSystemOptions::telemetry_port >= 0 and
  /// startup succeeded; nullptr otherwise.
  obs::TelemetryServer* telemetry() { return telemetry_.get(); }

  /// Encoder FLOPs budget used for the NAS (from the predefined light
  /// architecture).
  int64_t LightEncoderFlopsBudget() const { return flops_budget_; }

 private:
  /// Deploys under the deploy_retry policy (DeployOptions::retry_transient:
  /// the model survives failed attempts, consumed only on success).
  Status DeployWithRetry(const std::string& scenario,
                         std::unique_ptr<models::BaseModel> model);

  // Thread safety: AltSystem owns no mutex of its own. options_,
  // flops_budget_ and the component pointers are written once during
  // construction; all concurrent state lives inside the internally
  // synchronized members (meta_, client_, telemetry_), and concurrent
  // scenario arrivals coordinate through their futures.
  AltSystemOptions options_;
  int64_t flops_budget_ = 0;
  std::unique_ptr<meta::MetaLearner> meta_;
  serving::ServingClient client_;
  std::unique_ptr<obs::TelemetryServer> telemetry_;
};

}  // namespace core
}  // namespace alt

#endif  // ALT_SRC_CORE_ALT_SYSTEM_H_
