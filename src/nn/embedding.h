#ifndef ALT_SRC_NN_EMBEDDING_H_
#define ALT_SRC_NN_EMBEDDING_H_

#include <string>
#include <utility>
#include <vector>

#include "src/autograd/ops.h"
#include "src/nn/init.h"
#include "src/nn/module.h"

namespace alt {
namespace nn {

/// Token embedding table: maps integer event ids to dense vectors.
class Embedding : public Module {
 public:
  Embedding(int64_t vocab_size, int64_t dim, Rng* rng)
      : vocab_size_(vocab_size),
        dim_(dim),
        weight_(ag::Variable::Parameter(NormalInit({vocab_size, dim}, rng))) {}

  /// ids: row-major [batch, seq_len] event ids -> [batch, seq_len, dim].
  ag::Variable Forward(const std::vector<int64_t>& ids, int64_t batch,
                       int64_t seq_len) {
    return ag::EmbeddingLookup(weight_, ids, batch, seq_len);
  }

  int64_t vocab_size() const { return vocab_size_; }
  int64_t dim() const { return dim_; }

  /// Lookup is typically counted as free; we count one FLOP per copied
  /// element to stay conservative.
  int64_t Flops(int64_t seq_len) const { return seq_len * dim_; }

 protected:
  std::vector<std::pair<std::string, ag::Variable*>> LocalParameters()
      override {
    return {{"weight", &weight_}};
  }

 private:
  int64_t vocab_size_;
  int64_t dim_;
  ag::Variable weight_;
};

/// Learned positional embeddings added to a [B, T, D] sequence (BERT-style).
class PositionalEmbedding : public Module {
 public:
  PositionalEmbedding(int64_t max_len, int64_t dim, Rng* rng)
      : max_len_(max_len),
        dim_(dim),
        weight_(ag::Variable::Parameter(NormalInit({max_len, dim}, rng))) {}

  /// x: [B, T, D] with T <= max_len.
  ag::Variable Forward(const ag::Variable& x);

  int64_t Flops(int64_t seq_len) const { return seq_len * dim_; }

 protected:
  std::vector<std::pair<std::string, ag::Variable*>> LocalParameters()
      override {
    return {{"weight", &weight_}};
  }

 private:
  int64_t max_len_;
  int64_t dim_;
  ag::Variable weight_;
};

}  // namespace nn
}  // namespace alt

#endif  // ALT_SRC_NN_EMBEDDING_H_
