#include "src/nn/linear.h"

#include "src/nn/init.h"
#include "src/util/logging.h"

namespace alt {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng,
               bool use_bias)
    : in_features_(in_features),
      out_features_(out_features),
      use_bias_(use_bias),
      weight_(ag::Variable::Parameter(
          XavierUniform(in_features, out_features, rng))) {
  if (use_bias_) {
    bias_ = ag::Variable::Parameter(Tensor::Zeros({out_features}));
  }
}

ag::Variable Linear::Forward(const ag::Variable& x) {
  const Tensor& xv = x.value();
  ALT_CHECK_EQ(xv.size(xv.ndim() - 1), in_features_);
  if (qweight_ != nullptr && !training_) return ForwardInt8(xv);
  ag::Variable out;
  if (xv.ndim() == 2) {
    out = ag::MatMul(x, weight_);
  } else {
    ALT_CHECK_EQ(xv.ndim(), 3);
    const int64_t batch = xv.size(0);
    const int64_t seq = xv.size(1);
    ag::Variable flat = ag::Reshape(x, {batch * seq, in_features_});
    out = ag::Reshape(ag::MatMul(flat, weight_), {batch, seq, out_features_});
  }
  if (use_bias_) out = ag::AddBias(out, bias_);
  return out;
}

ag::Variable Linear::ForwardInt8(const Tensor& xv) {
  // Keep a local ref so a concurrent QuantizeForServing cannot free the
  // matrix mid-GEMM.
  const std::shared_ptr<quant::QuantizedMatrix> qw = qweight_;
  const int64_t rows = xv.numel() / in_features_;
  Tensor out2({rows, out_features_});
  quant::Int8MatMul(xv.data(), rows, *qw, out2.data());
  ag::Variable out;
  if (xv.ndim() == 2) {
    out = ag::Variable::Constant(std::move(out2));
  } else {
    ALT_CHECK_EQ(xv.ndim(), 3);
    out = ag::Variable::Constant(
        out2.Reshape({xv.size(0), xv.size(1), out_features_}));
  }
  if (use_bias_) out = ag::AddBias(out, bias_);
  return out;
}

int64_t Linear::QuantizeForServing() {
  qweight_ = std::make_shared<quant::QuantizedMatrix>(
      quant::QuantizeWeight(weight_.value()));
  return 1;
}

int64_t Linear::Flops(int64_t rows) const {
  int64_t flops = rows * (2 * in_features_ * out_features_);
  if (use_bias_) flops += rows * out_features_;
  return flops;
}

std::vector<std::pair<std::string, ag::Variable*>> Linear::LocalParameters() {
  std::vector<std::pair<std::string, ag::Variable*>> out = {
      {"weight", &weight_}};
  if (use_bias_) out.emplace_back("bias", &bias_);
  return out;
}

}  // namespace nn
}  // namespace alt
