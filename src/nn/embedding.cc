#include "src/nn/embedding.h"

#include "src/util/logging.h"

namespace alt {
namespace nn {

ag::Variable PositionalEmbedding::Forward(const ag::Variable& x) {
  const Tensor& xv = x.value();
  ALT_CHECK_EQ(xv.ndim(), 3);
  ALT_CHECK_EQ(xv.size(2), dim_);
  const int64_t batch = xv.size(0);
  const int64_t seq = xv.size(1);
  ALT_CHECK_LE(seq, max_len_);
  // Replicate position ids per batch row; the embedding lookup's backward
  // accumulates the position gradient once per batch element, which is the
  // correct broadcast gradient.
  std::vector<int64_t> ids(static_cast<size_t>(batch * seq));
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      ids[static_cast<size_t>(b * seq + t)] = t;
    }
  }
  ag::Variable pos = ag::EmbeddingLookup(weight_, ids, batch, seq);
  return ag::Add(x, pos);
}

}  // namespace nn
}  // namespace alt
