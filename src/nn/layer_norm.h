#ifndef ALT_SRC_NN_LAYER_NORM_H_
#define ALT_SRC_NN_LAYER_NORM_H_

#include <string>
#include <utility>
#include <vector>

#include "src/autograd/ops.h"
#include "src/nn/module.h"

namespace alt {
namespace nn {

/// Layer normalization over the last dimension with learned affine params.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f)
      : dim_(dim),
        eps_(eps),
        gamma_(ag::Variable::Parameter(Tensor::Ones({dim}))),
        beta_(ag::Variable::Parameter(Tensor::Zeros({dim}))) {}

  ag::Variable Forward(const ag::Variable& x) {
    return ag::LayerNorm(x, gamma_, beta_, eps_);
  }

  int64_t dim() const { return dim_; }

  /// ~8 FLOPs per element (mean, var, normalize, affine).
  int64_t Flops(int64_t rows) const { return rows * dim_ * 8; }

 protected:
  std::vector<std::pair<std::string, ag::Variable*>> LocalParameters()
      override {
    return {{"gamma", &gamma_}, {"beta", &beta_}};
  }

 private:
  int64_t dim_;
  float eps_;
  ag::Variable gamma_;
  ag::Variable beta_;
};

}  // namespace nn
}  // namespace alt

#endif  // ALT_SRC_NN_LAYER_NORM_H_
