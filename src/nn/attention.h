#ifndef ALT_SRC_NN_ATTENTION_H_
#define ALT_SRC_NN_ATTENTION_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/nn/linear.h"
#include "src/nn/module.h"

namespace alt {
namespace nn {

/// Multi-head scaled-dot-product self-attention over [B, T, D].
/// `num_heads` must divide `dim`.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t dim, int64_t num_heads, Rng* rng);

  /// x: [B, T, D] -> [B, T, D].
  ag::Variable Forward(const ag::Variable& x);

  int64_t dim() const { return dim_; }
  int64_t num_heads() const { return num_heads_; }

  int64_t Flops(int64_t seq_len) const;

 protected:
  std::vector<std::pair<std::string, Module*>> Children() override;

 private:
  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  std::unique_ptr<Linear> wo_;
};

}  // namespace nn
}  // namespace alt

#endif  // ALT_SRC_NN_ATTENTION_H_
