#include "src/nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>

#include "src/util/logging.h"

namespace alt {
namespace nn {

namespace {

constexpr char kMagic[4] = {'A', 'L', 'T', 'W'};
constexpr uint32_t kVersion = 1;

void WriteU32(std::ostream* out, uint32_t v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ostream* out, uint64_t v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteI64(std::ostream* out, int64_t v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::istream* in, uint32_t* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  return in->good();
}
bool ReadU64(std::istream* in, uint64_t* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  return in->good();
}
bool ReadI64(std::istream* in, int64_t* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  return in->good();
}

}  // namespace

Status SaveWeights(Module* module, std::ostream* out) {
  auto params = module->NamedParameters();
  out->write(kMagic, sizeof(kMagic));
  WriteU32(out, kVersion);
  WriteU64(out, params.size());
  for (auto& [name, param] : params) {
    WriteU64(out, name.size());
    out->write(name.data(), static_cast<std::streamsize>(name.size()));
    const Tensor& t = param->value();
    WriteU64(out, static_cast<uint64_t>(t.ndim()));
    for (int64_t d : t.shape()) WriteI64(out, d);
    out->write(reinterpret_cast<const char*>(t.data()),
               static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  if (!out->good()) return Status::IOError("write failed");
  return Status::OK();
}

Status SaveWeightsToFile(Module* module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  return SaveWeights(module, &out);
}

Status LoadWeights(Module* module, std::istream* in) {
  char magic[4];
  in->read(magic, sizeof(magic));
  if (!in->good() || std::string(magic, 4) != std::string(kMagic, 4)) {
    return Status::InvalidArgument("bad magic");
  }
  uint32_t version = 0;
  if (!ReadU32(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported version");
  }
  uint64_t count = 0;
  if (!ReadU64(in, &count)) return Status::IOError("truncated header");

  auto params = module->NamedParameters();
  std::map<std::string, ag::Variable*> by_name;
  for (auto& [name, param] : params) by_name[name] = param;
  if (count != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: stream has " + std::to_string(count) +
        ", module has " + std::to_string(params.size()));
  }

  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadU64(in, &name_len) || name_len > 4096) {
      return Status::IOError("bad name length");
    }
    std::string name(name_len, '\0');
    in->read(name.data(), static_cast<std::streamsize>(name_len));
    uint64_t ndim = 0;
    if (!in->good() || !ReadU64(in, &ndim) || ndim > 8) {
      return Status::IOError("bad ndim");
    }
    std::vector<int64_t> shape(ndim);
    for (uint64_t d = 0; d < ndim; ++d) {
      if (!ReadI64(in, &shape[d])) return Status::IOError("truncated shape");
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("unknown parameter in stream: " + name);
    }
    if (it->second->value().shape() != shape) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
    Tensor& t = it->second->mutable_value();
    in->read(reinterpret_cast<char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!in->good()) return Status::IOError("truncated data for " + name);
  }
  return Status::OK();
}

Status LoadWeightsFromFile(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  return LoadWeights(module, &in);
}

}  // namespace nn
}  // namespace alt
