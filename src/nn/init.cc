#include "src/nn/init.h"

#include <cmath>

namespace alt {
namespace nn {

Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng) {
  return XavierUniformShaped({fan_in, fan_out}, fan_in, fan_out, rng);
}

Tensor XavierUniformShaped(std::vector<int64_t> shape, int64_t fan_in,
                           int64_t fan_out, Rng* rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandUniform(std::move(shape), rng, -limit, limit);
}

Tensor NormalInit(std::vector<int64_t> shape, Rng* rng, float stddev) {
  return Tensor::Randn(std::move(shape), rng, stddev);
}

}  // namespace nn
}  // namespace alt
