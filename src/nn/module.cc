#include "src/nn/module.h"

#include "src/util/logging.h"

namespace alt {
namespace nn {

std::vector<ag::Variable*> Module::Parameters() {
  std::vector<ag::Variable*> out;
  for (auto& [name, param] : NamedParameters()) out.push_back(param);
  return out;
}

std::vector<std::pair<std::string, ag::Variable*>> Module::NamedParameters(
    const std::string& prefix) {
  std::vector<std::pair<std::string, ag::Variable*>> out;
  for (auto& [name, param] : LocalParameters()) {
    out.emplace_back(prefix.empty() ? name : prefix + "." + name, param);
  }
  for (auto& [name, child] : Children()) {
    const std::string child_prefix =
        prefix.empty() ? name : prefix + "." + name;
    auto child_params = child->NamedParameters(child_prefix);
    out.insert(out.end(), child_params.begin(), child_params.end());
  }
  return out;
}

int64_t Module::NumParameters() {
  int64_t n = 0;
  for (ag::Variable* p : Parameters()) n += p->value().numel();
  return n;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : Children()) child->SetTraining(training);
}

int64_t Module::QuantizeForServing() {
  int64_t quantized = 0;
  for (auto& [name, child] : Children()) {
    quantized += child->QuantizeForServing();
  }
  return quantized;
}

void Module::ZeroGrad() {
  for (ag::Variable* p : Parameters()) p->ZeroGrad();
}

Status Module::CopyParametersFrom(Module* other) {
  auto dst = NamedParameters();
  auto src = other->NamedParameters();
  if (dst.size() != src.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: " + std::to_string(dst.size()) + " vs " +
        std::to_string(src.size()));
  }
  for (size_t i = 0; i < dst.size(); ++i) {
    if (dst[i].first != src[i].first) {
      return Status::InvalidArgument("parameter name mismatch: " +
                                     dst[i].first + " vs " + src[i].first);
    }
    if (!dst[i].second->value().SameShape(src[i].second->value())) {
      return Status::InvalidArgument("parameter shape mismatch at " +
                                     dst[i].first);
    }
    dst[i].second->mutable_value() = src[i].second->value();
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace alt
