#ifndef ALT_SRC_NN_LSTM_H_
#define ALT_SRC_NN_LSTM_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/autograd/ops.h"
#include "src/nn/module.h"

namespace alt {
namespace nn {

/// A single LSTM layer. Gates are computed from one fused [in+hidden, 4H]
/// projection per timestep; gate order is (input, forget, cell, output).
/// The forget-gate bias is initialized to 1.
class LstmLayer : public Module {
 public:
  LstmLayer(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  /// x: [B, T, input_dim] -> hidden states [B, T, hidden_dim].
  ag::Variable Forward(const ag::Variable& x);

  int64_t input_dim() const { return input_dim_; }
  int64_t hidden_dim() const { return hidden_dim_; }

  /// FLOPs for one sample of length `seq_len`.
  int64_t Flops(int64_t seq_len) const;

 protected:
  std::vector<std::pair<std::string, ag::Variable*>> LocalParameters()
      override;

 private:
  int64_t input_dim_;
  int64_t hidden_dim_;
  ag::Variable w_x_;  // [input_dim, 4H]
  ag::Variable w_h_;  // [hidden_dim, 4H]
  ag::Variable bias_; // [4H]
};

/// A stack of LSTM layers; this is the paper's "LSTM-based" behavior
/// encoder (6 layers for the heavy model, 3 for the light model, hidden 15).
class Lstm : public Module {
 public:
  Lstm(int64_t input_dim, int64_t hidden_dim, int64_t num_layers, Rng* rng);

  /// x: [B, T, input_dim] -> [B, T, hidden_dim].
  ag::Variable Forward(const ag::Variable& x);

  int64_t Flops(int64_t seq_len) const;
  int64_t hidden_dim() const { return hidden_dim_; }
  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }

 protected:
  std::vector<std::pair<std::string, Module*>> Children() override;

 private:
  int64_t hidden_dim_;
  std::vector<std::unique_ptr<LstmLayer>> layers_;
};

}  // namespace nn
}  // namespace alt

#endif  // ALT_SRC_NN_LSTM_H_
