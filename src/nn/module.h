#ifndef ALT_SRC_NN_MODULE_H_
#define ALT_SRC_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/autograd/variable.h"
#include "src/util/status.h"

namespace alt {
namespace nn {

/// Base class for neural-network building blocks. A Module owns trainable
/// parameters (as autograd leaf Variables) and may own child modules.
/// Parameters() flattens the tree for optimizers; NamedParameters() gives
/// stable hierarchical names for serialization and weight copying.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters in the subtree, depth-first.
  std::vector<ag::Variable*> Parameters();

  /// Parameters with hierarchical dotted names ("encoder.0.weight").
  std::vector<std::pair<std::string, ag::Variable*>> NamedParameters(
      const std::string& prefix = "");

  /// Total number of scalar parameters.
  int64_t NumParameters();

  /// Toggles training mode (affects dropout) for the whole subtree.
  virtual void SetTraining(bool training);
  bool training() const { return training_; }

  /// Post-training int8 quantization for serving (src/tensor/quant.h):
  /// recursively quantizes every quantizable layer in the subtree (today,
  /// Linear weights) and returns how many layers were quantized. Quantized
  /// layers take the int8 kernel only in eval mode; the fp32 weights stay
  /// intact, so switching back to training mode restores exact fp32
  /// behavior. Idempotent (re-quantizing replaces the int8 copies).
  virtual int64_t QuantizeForServing();

  /// Zeroes every parameter gradient.
  void ZeroGrad();

  /// Copies parameter values from `other`; the two modules must have the
  /// same architecture (same named parameter list and shapes).
  Status CopyParametersFrom(Module* other);

 protected:
  /// Parameters owned directly by this module (not by children).
  virtual std::vector<std::pair<std::string, ag::Variable*>>
  LocalParameters() {
    return {};
  }

  /// Direct children with names.
  virtual std::vector<std::pair<std::string, Module*>> Children() {
    return {};
  }

  bool training_ = true;
};

}  // namespace nn
}  // namespace alt

#endif  // ALT_SRC_NN_MODULE_H_
