#include "src/nn/attention.h"

#include <cmath>

#include "src/autograd/ops.h"
#include "src/util/logging.h"

namespace alt {
namespace nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t dim, int64_t num_heads,
                                               Rng* rng)
    : dim_(dim), num_heads_(num_heads), head_dim_(dim / num_heads) {
  ALT_CHECK_EQ(dim % num_heads, 0);
  wq_ = std::make_unique<Linear>(dim, dim, rng);
  wk_ = std::make_unique<Linear>(dim, dim, rng);
  wv_ = std::make_unique<Linear>(dim, dim, rng);
  wo_ = std::make_unique<Linear>(dim, dim, rng);
}

ag::Variable MultiHeadSelfAttention::Forward(const ag::Variable& x) {
  const Tensor& xv = x.value();
  ALT_CHECK_EQ(xv.ndim(), 3);
  ALT_CHECK_EQ(xv.size(2), dim_);

  ag::Variable q = wq_->Forward(x);  // [B, T, D]
  ag::Variable k = wk_->Forward(x);
  ag::Variable v = wv_->Forward(x);

  // Applying 1/sqrt(d) to q ([B, T, D]) instead of each head's score matrix
  // ([B, T, T] per head) computes the same scores with T*D multiplies in
  // place of H*T*T, and drops H score-sized graph nodes.
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  q = ag::ScalarMul(q, scale);
  std::vector<ag::Variable> head_outputs;
  head_outputs.reserve(static_cast<size_t>(num_heads_));
  for (int64_t h = 0; h < num_heads_; ++h) {
    ag::Variable qh = ag::SliceLastDim(q, h * head_dim_, head_dim_);
    ag::Variable kh = ag::SliceLastDim(k, h * head_dim_, head_dim_);
    ag::Variable vh = ag::SliceLastDim(v, h * head_dim_, head_dim_);
    // scores: [B, T, T]
    ag::Variable scores =
        ag::BatchedMatMul(qh, kh, /*trans_a=*/false, /*trans_b=*/true);
    ag::Variable attn = ag::SoftmaxLastDim(scores);
    // context: [B, T, head_dim]
    head_outputs.push_back(
        ag::BatchedMatMul(attn, vh, /*trans_a=*/false, /*trans_b=*/false));
  }
  ag::Variable concat = ag::ConcatLastDim(head_outputs);
  return wo_->Forward(concat);
}

int64_t MultiHeadSelfAttention::Flops(int64_t seq_len) const {
  // Four D x D projections over T rows plus per-head score and context
  // matmuls plus the softmax.
  const int64_t proj = 4 * wq_->Flops(seq_len);
  const int64_t scores = num_heads_ * 2 * seq_len * seq_len * head_dim_;
  const int64_t context = num_heads_ * 2 * seq_len * seq_len * head_dim_;
  const int64_t softmax = num_heads_ * 5 * seq_len * seq_len;
  return proj + scores + context + softmax;
}

std::vector<std::pair<std::string, Module*>>
MultiHeadSelfAttention::Children() {
  return {{"wq", wq_.get()},
          {"wk", wk_.get()},
          {"wv", wv_.get()},
          {"wo", wo_.get()}};
}

}  // namespace nn
}  // namespace alt
