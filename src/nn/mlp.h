#ifndef ALT_SRC_NN_MLP_H_
#define ALT_SRC_NN_MLP_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/nn/linear.h"
#include "src/nn/module.h"

namespace alt {
namespace nn {

/// Activation applied between MLP layers.
enum class Activation { kRelu, kTanh, kGelu, kSigmoid, kNone };

/// Applies the activation as an autograd op.
ag::Variable ApplyActivation(const ag::Variable& x, Activation act);

const char* ActivationName(Activation act);

/// A stack of Linear layers with activations between them (none after the
/// final layer) and optional dropout. `dims` includes input and output:
/// MLP({64, 32, 1}) is Linear(64,32) -> act -> Linear(32,1).
class Mlp : public Module {
 public:
  Mlp(std::vector<int64_t> dims, Activation activation, Rng* rng,
      float dropout = 0.0f);

  ag::Variable Forward(const ag::Variable& x, Rng* rng = nullptr);

  int64_t Flops(int64_t rows) const;

  const std::vector<int64_t>& dims() const { return dims_; }

 protected:
  std::vector<std::pair<std::string, ag::Variable*>> LocalParameters()
      override {
    return {};
  }
  std::vector<std::pair<std::string, Module*>> Children() override;

 private:
  std::vector<int64_t> dims_;
  Activation activation_;
  float dropout_;
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace nn
}  // namespace alt

#endif  // ALT_SRC_NN_MLP_H_
