#ifndef ALT_SRC_NN_TRANSFORMER_H_
#define ALT_SRC_NN_TRANSFORMER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/nn/attention.h"
#include "src/nn/layer_norm.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"

namespace alt {
namespace nn {

/// One post-LN transformer encoder block (BERT-style):
/// x -> LN(x + MHA(x)) -> LN(h + FFN(h)) with a GELU feed-forward.
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int64_t dim, int64_t num_heads, int64_t ff_dim,
                          Rng* rng);

  /// x: [B, T, D] -> [B, T, D].
  ag::Variable Forward(const ag::Variable& x);

  int64_t Flops(int64_t seq_len) const;

 protected:
  std::vector<std::pair<std::string, Module*>> Children() override;

 private:
  std::unique_ptr<MultiHeadSelfAttention> attention_;
  std::unique_ptr<LayerNorm> norm1_;
  std::unique_ptr<Linear> ff1_;
  std::unique_ptr<Linear> ff2_;
  std::unique_ptr<LayerNorm> norm2_;
};

/// A stack of transformer encoder blocks with learned positional embeddings.
/// This is the paper's "BERT-based" behavior encoder (6 layers for the heavy
/// model, 3 for the light model; 15 hidden, 32 intermediate units).
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int64_t dim, int64_t num_heads, int64_t ff_dim,
                     int64_t num_layers, Rng* rng);

  /// x: [B, T, D] -> [B, T, D].
  ag::Variable Forward(const ag::Variable& x);

  int64_t Flops(int64_t seq_len) const;
  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }

 protected:
  std::vector<std::pair<std::string, Module*>> Children() override;

 private:
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
};

}  // namespace nn
}  // namespace alt

#endif  // ALT_SRC_NN_TRANSFORMER_H_
