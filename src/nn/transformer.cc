#include "src/nn/transformer.h"

#include "src/autograd/ops.h"
#include "src/util/logging.h"

namespace alt {
namespace nn {

TransformerEncoderLayer::TransformerEncoderLayer(int64_t dim,
                                                 int64_t num_heads,
                                                 int64_t ff_dim, Rng* rng) {
  attention_ = std::make_unique<MultiHeadSelfAttention>(dim, num_heads, rng);
  norm1_ = std::make_unique<LayerNorm>(dim);
  ff1_ = std::make_unique<Linear>(dim, ff_dim, rng);
  ff2_ = std::make_unique<Linear>(ff_dim, dim, rng);
  norm2_ = std::make_unique<LayerNorm>(dim);
}

ag::Variable TransformerEncoderLayer::Forward(const ag::Variable& x) {
  ag::Variable attn = attention_->Forward(x);
  ag::Variable h = norm1_->Forward(ag::Add(x, attn));
  ag::Variable ff = ff2_->Forward(ag::Gelu(ff1_->Forward(h)));
  return norm2_->Forward(ag::Add(h, ff));
}

int64_t TransformerEncoderLayer::Flops(int64_t seq_len) const {
  return attention_->Flops(seq_len) + norm1_->Flops(seq_len) +
         ff1_->Flops(seq_len) + ff2_->Flops(seq_len) + norm2_->Flops(seq_len);
}

std::vector<std::pair<std::string, Module*>>
TransformerEncoderLayer::Children() {
  return {{"attention", attention_.get()},
          {"norm1", norm1_.get()},
          {"ff1", ff1_.get()},
          {"ff2", ff2_.get()},
          {"norm2", norm2_.get()}};
}

TransformerEncoder::TransformerEncoder(int64_t dim, int64_t num_heads,
                                       int64_t ff_dim, int64_t num_layers,
                                       Rng* rng) {
  ALT_CHECK_GE(num_layers, 1);
  for (int64_t i = 0; i < num_layers; ++i) {
    layers_.push_back(
        std::make_unique<TransformerEncoderLayer>(dim, num_heads, ff_dim,
                                                  rng));
  }
}

ag::Variable TransformerEncoder::Forward(const ag::Variable& x) {
  ag::Variable h = x;
  for (auto& layer : layers_) h = layer->Forward(h);
  return h;
}

int64_t TransformerEncoder::Flops(int64_t seq_len) const {
  int64_t flops = 0;
  for (const auto& layer : layers_) flops += layer->Flops(seq_len);
  return flops;
}

std::vector<std::pair<std::string, Module*>> TransformerEncoder::Children() {
  std::vector<std::pair<std::string, Module*>> out;
  for (size_t i = 0; i < layers_.size(); ++i) {
    out.emplace_back(std::to_string(i), layers_[i].get());
  }
  return out;
}

}  // namespace nn
}  // namespace alt
