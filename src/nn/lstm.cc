#include "src/nn/lstm.h"

#include "src/nn/init.h"
#include "src/util/logging.h"

namespace alt {
namespace nn {

LstmLayer::LstmLayer(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  w_x_ = ag::Variable::Parameter(
      XavierUniformShaped({input_dim, 4 * hidden_dim}, input_dim,
                          4 * hidden_dim, rng));
  w_h_ = ag::Variable::Parameter(
      XavierUniformShaped({hidden_dim, 4 * hidden_dim}, hidden_dim,
                          4 * hidden_dim, rng));
  Tensor b = Tensor::Zeros({4 * hidden_dim});
  // Forget gate bias = 1 stabilizes early training.
  for (int64_t j = hidden_dim; j < 2 * hidden_dim; ++j) b[j] = 1.0f;
  bias_ = ag::Variable::Parameter(std::move(b));
}

ag::Variable LstmLayer::Forward(const ag::Variable& x) {
  const Tensor& xv = x.value();
  ALT_CHECK_EQ(xv.ndim(), 3);
  ALT_CHECK_EQ(xv.size(2), input_dim_);
  const int64_t batch = xv.size(0);
  const int64_t seq = xv.size(1);
  const int64_t h = hidden_dim_;

  ag::Variable h_prev = ag::Variable::Constant(Tensor::Zeros({batch, h}));
  ag::Variable c_prev = ag::Variable::Constant(Tensor::Zeros({batch, h}));
  std::vector<ag::Variable> outputs;
  outputs.reserve(static_cast<size_t>(seq));
  for (int64_t t = 0; t < seq; ++t) {
    ag::Variable x_t = ag::SelectTime(x, t);  // [B, in]
    ag::Variable gates = ag::AddBias(
        ag::Add(ag::MatMul(x_t, w_x_), ag::MatMul(h_prev, w_h_)), bias_);
    ag::Variable i_g = ag::Sigmoid(ag::SliceLastDim(gates, 0, h));
    ag::Variable f_g = ag::Sigmoid(ag::SliceLastDim(gates, h, h));
    ag::Variable g_g = ag::Tanh(ag::SliceLastDim(gates, 2 * h, h));
    ag::Variable o_g = ag::Sigmoid(ag::SliceLastDim(gates, 3 * h, h));
    ag::Variable c_t =
        ag::Add(ag::Mul(f_g, c_prev), ag::Mul(i_g, g_g));
    ag::Variable h_t = ag::Mul(o_g, ag::Tanh(c_t));
    outputs.push_back(h_t);
    h_prev = h_t;
    c_prev = c_t;
  }
  return ag::StackTime(outputs);  // [B, T, H]
}

int64_t LstmLayer::Flops(int64_t seq_len) const {
  // Per timestep: two matmuls into 4H gates plus ~10 elementwise ops per
  // hidden unit (gate nonlinearities and cell updates).
  const int64_t per_step =
      2 * input_dim_ * 4 * hidden_dim_ + 2 * hidden_dim_ * 4 * hidden_dim_ +
      10 * hidden_dim_;
  return seq_len * per_step;
}

std::vector<std::pair<std::string, ag::Variable*>>
LstmLayer::LocalParameters() {
  return {{"w_x", &w_x_}, {"w_h", &w_h_}, {"bias", &bias_}};
}

Lstm::Lstm(int64_t input_dim, int64_t hidden_dim, int64_t num_layers,
           Rng* rng)
    : hidden_dim_(hidden_dim) {
  ALT_CHECK_GE(num_layers, 1);
  for (int64_t i = 0; i < num_layers; ++i) {
    layers_.push_back(std::make_unique<LstmLayer>(
        i == 0 ? input_dim : hidden_dim, hidden_dim, rng));
  }
}

ag::Variable Lstm::Forward(const ag::Variable& x) {
  ag::Variable h = x;
  for (auto& layer : layers_) h = layer->Forward(h);
  return h;
}

int64_t Lstm::Flops(int64_t seq_len) const {
  int64_t flops = 0;
  for (const auto& layer : layers_) flops += layer->Flops(seq_len);
  return flops;
}

std::vector<std::pair<std::string, Module*>> Lstm::Children() {
  std::vector<std::pair<std::string, Module*>> out;
  for (size_t i = 0; i < layers_.size(); ++i) {
    out.emplace_back(std::to_string(i), layers_[i].get());
  }
  return out;
}

}  // namespace nn
}  // namespace alt
