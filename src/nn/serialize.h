#ifndef ALT_SRC_NN_SERIALIZE_H_
#define ALT_SRC_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "src/nn/module.h"
#include "src/util/status.h"

namespace alt {
namespace nn {

/// Binary weight (de)serialization. Format:
///   magic "ALTW" | u32 version | u64 param count |
///   per param: u64 name_len | name | u64 ndim | i64 shape[] | f32 data[]
/// Deserialization is by-name with strict shape checks, so weights survive
/// refactors that keep the module structure.

/// Writes every named parameter of `module` to `out`.
Status SaveWeights(Module* module, std::ostream* out);
Status SaveWeightsToFile(Module* module, const std::string& path);

/// Loads weights into `module`. Fails if a parameter is missing from the
/// stream or shapes mismatch; extra parameters in the stream are an error.
Status LoadWeights(Module* module, std::istream* in);
Status LoadWeightsFromFile(Module* module, const std::string& path);

}  // namespace nn
}  // namespace alt

#endif  // ALT_SRC_NN_SERIALIZE_H_
