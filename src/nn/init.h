#ifndef ALT_SRC_NN_INIT_H_
#define ALT_SRC_NN_INIT_H_

#include <cstdint>

#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace alt {
namespace nn {

/// Glorot/Xavier uniform initialization for a [fan_in, fan_out] weight.
Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng);

/// Xavier-uniform for arbitrary shapes given explicit fans (used by conv
/// kernels where fan_in = K * Cin).
Tensor XavierUniformShaped(std::vector<int64_t> shape, int64_t fan_in,
                           int64_t fan_out, Rng* rng);

/// N(0, stddev) initialization, default stddev 0.02 (BERT-style).
Tensor NormalInit(std::vector<int64_t> shape, Rng* rng, float stddev = 0.02f);

}  // namespace nn
}  // namespace alt

#endif  // ALT_SRC_NN_INIT_H_
