#ifndef ALT_SRC_NN_LINEAR_H_
#define ALT_SRC_NN_LINEAR_H_

#include <string>
#include <utility>
#include <vector>

#include "src/autograd/ops.h"
#include "src/nn/module.h"

namespace alt {
namespace nn {

/// Fully-connected layer: y = x W + b. Accepts rank-2 [N, in] or rank-3
/// [B, T, in] inputs (rank-3 is flattened to rows internally).
class Linear : public Module {
 public:
  /// Xavier-uniform initialized weights; zero bias.
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool use_bias = true);

  ag::Variable Forward(const ag::Variable& x);

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  /// FLOPs for `rows` input rows (2 * in * out MACs + bias adds).
  int64_t Flops(int64_t rows) const;

 protected:
  std::vector<std::pair<std::string, ag::Variable*>> LocalParameters() override;

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool use_bias_;
  ag::Variable weight_;  // [in, out]
  ag::Variable bias_;    // [out]
};

}  // namespace nn
}  // namespace alt

#endif  // ALT_SRC_NN_LINEAR_H_
