#ifndef ALT_SRC_NN_LINEAR_H_
#define ALT_SRC_NN_LINEAR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/autograd/ops.h"
#include "src/nn/module.h"
#include "src/tensor/quant.h"

namespace alt {
namespace nn {

/// Fully-connected layer: y = x W + b. Accepts rank-2 [N, in] or rank-3
/// [B, T, in] inputs (rank-3 is flattened to rows internally).
///
/// After QuantizeForServing(), eval-mode Forward runs the int8 GEMM
/// (quant::Int8MatMul) against a quantized snapshot of the weight and
/// returns a constant (non-differentiable) activation; training-mode
/// Forward always uses the intact fp32 weight.
class Linear : public Module {
 public:
  /// Xavier-uniform initialized weights; zero bias.
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool use_bias = true);

  ag::Variable Forward(const ag::Variable& x);

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  /// Snapshots the fp32 weight into an int8 QuantizedMatrix; returns 1.
  int64_t QuantizeForServing() override;
  bool quantized() const { return qweight_ != nullptr; }

  /// FLOPs for `rows` input rows (2 * in * out MACs + bias adds).
  int64_t Flops(int64_t rows) const;

 protected:
  std::vector<std::pair<std::string, ag::Variable*>> LocalParameters() override;

 private:
  /// Eval-mode int8 path: dynamic activation quantization + int8 GEMM.
  ag::Variable ForwardInt8(const Tensor& xv);

  int64_t in_features_;
  int64_t out_features_;
  bool use_bias_;
  ag::Variable weight_;  // [in, out]
  ag::Variable bias_;    // [out]
  /// Int8 serving snapshot of weight_ ([out, in] transposed layout); null
  /// until QuantizeForServing(). Shared so concurrent eval forwards can
  /// hold it across a re-quantize.
  std::shared_ptr<quant::QuantizedMatrix> qweight_;
};

}  // namespace nn
}  // namespace alt

#endif  // ALT_SRC_NN_LINEAR_H_
