#include "src/nn/mlp.h"

#include "src/util/logging.h"

namespace alt {
namespace nn {

ag::Variable ApplyActivation(const ag::Variable& x, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return ag::Relu(x);
    case Activation::kTanh:
      return ag::Tanh(x);
    case Activation::kGelu:
      return ag::Gelu(x);
    case Activation::kSigmoid:
      return ag::Sigmoid(x);
    case Activation::kNone:
      return x;
  }
  ALT_LOG(Fatal) << "unknown activation";
  return x;
}

const char* ActivationName(Activation act) {
  switch (act) {
    case Activation::kRelu:
      return "relu";
    case Activation::kTanh:
      return "tanh";
    case Activation::kGelu:
      return "gelu";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kNone:
      return "none";
  }
  return "?";
}

Mlp::Mlp(std::vector<int64_t> dims, Activation activation, Rng* rng,
         float dropout)
    : dims_(std::move(dims)), activation_(activation), dropout_(dropout) {
  ALT_CHECK_GE(dims_.size(), 2u);
  for (size_t i = 0; i + 1 < dims_.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims_[i], dims_[i + 1], rng));
  }
}

ag::Variable Mlp::Forward(const ag::Variable& x, Rng* rng) {
  ag::Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) {
      h = ApplyActivation(h, activation_);
      if (dropout_ > 0.0f && rng != nullptr) {
        h = ag::Dropout(h, dropout_, rng, training());
      }
    }
  }
  return h;
}

int64_t Mlp::Flops(int64_t rows) const {
  int64_t flops = 0;
  for (const auto& layer : layers_) flops += layer->Flops(rows);
  // One FLOP per activation element.
  for (size_t i = 1; i + 1 < dims_.size(); ++i) flops += rows * dims_[i];
  return flops;
}

std::vector<std::pair<std::string, Module*>> Mlp::Children() {
  std::vector<std::pair<std::string, Module*>> out;
  for (size_t i = 0; i < layers_.size(); ++i) {
    out.emplace_back(std::to_string(i), layers_[i].get());
  }
  return out;
}

}  // namespace nn
}  // namespace alt
