#include "src/nn/conv.h"

#include "src/nn/init.h"
#include "src/util/logging.h"

namespace alt {
namespace nn {

Conv1DLayer::Conv1DLayer(int64_t in_channels, int64_t out_channels,
                         int64_t kernel_size, int64_t dilation, Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      dilation_(dilation) {
  ALT_CHECK_GE(kernel_size, 1);
  ALT_CHECK_GE(dilation, 1);
  weight_ = ag::Variable::Parameter(XavierUniformShaped(
      {out_channels, kernel_size, in_channels}, kernel_size * in_channels,
      out_channels, rng));
  bias_ = ag::Variable::Parameter(Tensor::Zeros({out_channels}));
}

ag::Variable Conv1DLayer::Forward(const ag::Variable& x) {
  const Tensor& xv = x.value();
  ALT_CHECK_EQ(xv.ndim(), 3);
  ALT_CHECK_EQ(xv.size(2), in_channels_);
  return ag::Conv1D(x, weight_, bias_, dilation_);
}

int64_t Conv1DLayer::Flops(int64_t seq_len) const {
  return seq_len * (2 * kernel_size_ * in_channels_ * out_channels_ +
                    out_channels_);
}

std::vector<std::pair<std::string, ag::Variable*>>
Conv1DLayer::LocalParameters() {
  return {{"weight", &weight_}, {"bias", &bias_}};
}

}  // namespace nn
}  // namespace alt
