#ifndef ALT_SRC_NN_CONV_H_
#define ALT_SRC_NN_CONV_H_

#include <string>
#include <utility>
#include <vector>

#include "src/autograd/ops.h"
#include "src/nn/module.h"

namespace alt {
namespace nn {

/// 1-D convolution layer over [B, T, Cin] with SAME padding and stride 1.
/// `dilation` > 1 yields a dilated convolution; kernel size 1 degenerates to
/// a pointwise linear layer (as noted in the paper's search space).
class Conv1DLayer : public Module {
 public:
  Conv1DLayer(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
              int64_t dilation, Rng* rng);

  /// x: [B, T, Cin] -> [B, T, Cout].
  ag::Variable Forward(const ag::Variable& x);

  int64_t kernel_size() const { return kernel_size_; }
  int64_t dilation() const { return dilation_; }

  /// FLOPs for one sample of length `seq_len` (boundary taps counted as if
  /// interior, matching the paper's simple FLOPs approximation).
  int64_t Flops(int64_t seq_len) const;

 protected:
  std::vector<std::pair<std::string, ag::Variable*>> LocalParameters()
      override;

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_size_;
  int64_t dilation_;
  ag::Variable weight_;  // [Cout, K, Cin]
  ag::Variable bias_;    // [Cout]
};

}  // namespace nn
}  // namespace alt

#endif  // ALT_SRC_NN_CONV_H_
