#ifndef ALT_SRC_SERVING_MODEL_SERVER_H_
#define ALT_SRC_SERVING_MODEL_SERVER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/base_model.h"
#include "src/obs/metrics.h"
#include "src/util/status.h"

namespace alt {
namespace serving {

/// Online latency distribution of one deployed model. Since ISSUE 3 this is
/// a thin read-view computed from the obs::MetricsRegistry histogram
/// `serving/model_server/latency_ms/<scenario>` — the registry is the
/// single source of truth; no serving-side latency buffers exist.
struct LatencyStats {  // alt_lint: allow(L007): read-view over obs::MetricsRegistry, not an ad-hoc store
  int64_t num_requests = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// The Model Serving module (Sec. IV-E): per-scenario model registry with
/// thread-safe prediction and per-scenario latency accounting. Deploys are
/// atomic swaps, so scenarios can be re-deployed while serving.
///
/// Observability: every Predict records into `registry()` (default: the
/// process-global obs::MetricsRegistry) under
/// `serving/model_server/latency_ms/<scenario>`. With ALT_OBS=off nothing
/// is recorded and GetLatencyStats reports zeros.
class ModelServer {
 public:
  /// `registry == nullptr` selects obs::MetricsRegistry::Global(). Tests
  /// pass a private registry for isolation; the registry must outlive the
  /// server.
  explicit ModelServer(obs::MetricsRegistry* registry = nullptr);

  /// Installs (or replaces) the serving model of `scenario`.
  Status Deploy(const std::string& scenario,
                std::unique_ptr<models::BaseModel> model);

  Status Undeploy(const std::string& scenario);
  bool IsDeployed(const std::string& scenario) const;
  std::vector<std::string> Scenarios() const;

  /// Scores a request batch with `scenario`'s model. Thread-safe; requests
  /// to the same scenario are serialized on that scenario's lock.
  Result<std::vector<float>> Predict(const std::string& scenario,
                                     const data::Batch& batch);

  /// Latency distribution of past Predict calls (per request, not per
  /// sample), computed from the metrics registry histogram.
  Result<LatencyStats> GetLatencyStats(const std::string& scenario) const;

  /// Inference FLOPs per sample of the deployed model.
  Result<int64_t> FlopsPerSample(const std::string& scenario) const;

  /// Writes the deployed model as a self-contained serving bundle.
  Status ExportBundle(const std::string& scenario,
                      const std::string& path) const;

  obs::MetricsRegistry* registry() const { return registry_; }

  /// Registry name of the per-scenario request latency histogram.
  static std::string LatencyMetricName(const std::string& scenario);

 private:
  struct Deployment {
    std::unique_ptr<models::BaseModel> model;
    std::mutex mu;
    obs::Histogram* latency_ms = nullptr;  // Owned by the registry.
  };

  /// Deployments are shared_ptrs so an in-flight Predict keeps its
  /// deployment alive across a concurrent Undeploy.
  obs::MetricsRegistry* registry_;
  mutable std::mutex registry_mu_;
  std::map<std::string, std::shared_ptr<Deployment>> deployments_;
};

}  // namespace serving
}  // namespace alt

#endif  // ALT_SRC_SERVING_MODEL_SERVER_H_
