#ifndef ALT_SRC_SERVING_MODEL_SERVER_H_
#define ALT_SRC_SERVING_MODEL_SERVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/base_model.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/resilience/circuit_breaker.h"
#include "src/resilience/retry.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace serving {

/// Online latency distribution of one deployed model. Since ISSUE 3 this is
/// a thin read-view computed from the obs::MetricsRegistry histogram
/// `serving/model_server/latency_ms/<scenario>` — the registry is the
/// single source of truth; no serving-side latency buffers exist.
struct LatencyStats {  // alt_lint: allow(L007): read-view over obs::MetricsRegistry, not an ad-hoc store
  int64_t num_requests = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Graceful-degradation policy for Predict. Off by default; enable with
/// ModelServer::ConfigureResilience (or, at the public API layer,
/// ServingClient::EnableResilience). With it on, each scenario gets a circuit
/// breaker over its Predict outcomes: while the breaker is open — or when a
/// call fails or overruns `predict_deadline_ms` — the answer comes from the
/// fallback path (the scenario-agnostic f0 deployment named by
/// `fallback_scenario`, else the constant `fallback_prior` score) instead
/// of propagating the error to the caller.
struct ServingResilienceOptions {
  resilience::CircuitBreakerOptions breaker;
  /// When > 0, a Predict slower than this counts as a breaker failure and
  /// the fallback answer is served in its place.
  double predict_deadline_ms = 0.0;
  /// Deployed scenario that serves degraded traffic (conventionally "f0",
  /// the meta-learner's scenario-agnostic snapshot). Empty: skip straight
  /// to the constant prior.
  std::string fallback_scenario;
  /// Score served when no fallback deployment is available.
  float fallback_prior = 0.5f;
  /// When non-empty, Predict on an unknown scenario degrades to this
  /// deployed scenario (counted in serving/unknown_scenario_fallbacks)
  /// instead of returning NotFound.
  std::string default_scenario;
};

/// Per-deploy configuration (plain Deploy == all defaults).
struct DeployOptions {
  /// Post-training int8 quantization of the model's Linear layers at
  /// deploy time (symmetric scheme, src/tensor/quant.h). The serving
  /// Predict path then runs the int8 GEMM; the fp32 weights stay intact
  /// inside the model. Counted in `serving/quantized_deploys`.
  bool quantize_int8 = false;
  /// Optional calibration batch, scored with the fp32 model right before
  /// quantization — its fp32 probabilities are the distillation soft
  /// labels the int8 model is compared against. The maximum
  /// |p_int8 - p_fp32| over the batch lands in the gauge
  /// `serving/quantization/max_prob_delta/<scenario>`, so the accuracy
  /// cost of every quantized deploy is measured, not assumed. Ignored
  /// unless quantize_int8 is set. Must outlive the Deploy call only.
  const data::Batch* calibration = nullptr;
  /// Hot scenario: the sharded serving plane (ServingClient/ShardCoordinator)
  /// deploys it to the larger `hot_replication` replica group so head
  /// traffic fans out over more workers. A plain ModelServer ignores it.
  bool hot = false;
  /// Retry transient deploy failures (e.g. injected serving/deploy faults)
  /// under `retry` before giving up. The model survives failed attempts and
  /// is consumed only on success or once the schedule is exhausted — this
  /// subsumes external retry wrappers around single deploy attempts.
  bool retry_transient = false;
  resilience::RetryOptions retry;
  /// Per-scenario SLO: latency target + availability objective. A plain
  /// ModelServer ignores it; ServingClient registers it with its SloTracker
  /// so the scenario's burn rate shows up on /slo and the alt_slo_* gauges.
  obs::SloObjective slo;
};

/// The Model Serving module (Sec. IV-E): per-scenario model registry with
/// thread-safe prediction and per-scenario latency accounting. Deploys are
/// atomic swaps, so scenarios can be re-deployed while serving.
///
/// Observability: every Predict records into `registry()` (default: the
/// process-global obs::MetricsRegistry) under
/// `serving/model_server/latency_ms/<scenario>`. With ALT_OBS=off nothing
/// is recorded and GetLatencyStats reports zeros.
class ModelServer {
 public:
  /// `registry == nullptr` selects obs::MetricsRegistry::Global(). Tests
  /// pass a private registry for isolation; the registry must outlive the
  /// server.
  explicit ModelServer(obs::MetricsRegistry* registry = nullptr);

  /// Installs (or replaces) the serving model of `scenario`. The one deploy
  /// entry point: retry behavior is selected via
  /// DeployOptions::retry_transient / DeployOptions::retry.
  Status Deploy(const std::string& scenario,
                std::unique_ptr<models::BaseModel> model,
                const DeployOptions& options = {});

  /// Enables graceful degradation for Predict. `clock == nullptr` selects
  /// resilience::RealClock(); tests inject a FakeClock to drive deadlines
  /// and breaker cooldowns. Internal wiring: ServingClient::Options /
  /// ServingClient::EnableResilience is the public way to configure
  /// resilience; the sharded plane calls this on every shard engine.
  void ConfigureResilience(ServingResilienceOptions options,
                           resilience::Clock* clock = nullptr);

  /// Breaker state of a scenario that has served resilient traffic;
  /// NotFound before its first Predict or with resilience off.
  Result<resilience::BreakerState> GetBreakerState(
      const std::string& scenario) const;

  /// Breaker states of every scenario that has served resilient traffic
  /// (empty with resilience off). Drives the telemetry /healthz probe.
  std::map<std::string, resilience::BreakerState> BreakerStates() const;

  Status Undeploy(const std::string& scenario);
  bool IsDeployed(const std::string& scenario) const;
  std::vector<std::string> Scenarios() const;

  /// Scores a request batch with `scenario`'s model. Thread-safe; requests
  /// to the same scenario are serialized on that scenario's lock.
  Result<std::vector<float>> Predict(const std::string& scenario,
                                     const data::Batch& batch);

  /// Latency distribution of past Predict calls (per request, not per
  /// sample), computed from the metrics registry histogram.
  Result<LatencyStats> GetLatencyStats(const std::string& scenario) const;

  /// Inference FLOPs per sample of the deployed model.
  Result<int64_t> FlopsPerSample(const std::string& scenario) const;

  /// Writes the deployed model as a self-contained serving bundle.
  Status ExportBundle(const std::string& scenario,
                      const std::string& path) const;

  obs::MetricsRegistry* registry() const { return registry_; }

  /// Registry name of the per-scenario request latency histogram.
  static std::string LatencyMetricName(const std::string& scenario);

 private:
  struct Deployment {
    Mutex mu;
    /// The serving model; swapped atomically by Deploy, serialized per
    /// scenario by PredictOn.
    std::unique_ptr<models::BaseModel> model ALT_GUARDED_BY(mu);
    obs::Histogram* latency_ms = nullptr;  // Owned by the registry.
  };

  std::shared_ptr<Deployment> FindDeployment(const std::string& scenario) const;
  /// One deploy attempt; consumes `*model` only on success (the retry-loop
  /// contract, now an implementation detail of Deploy's retry loop).
  Status DeployAttempt(const std::string& scenario,
                       std::unique_ptr<models::BaseModel>* model,
                       const DeployOptions& options);
  /// The primary (non-degraded) Predict path; hosts the serving/predict
  /// fault point.
  Result<std::vector<float>> PredictOn(
      const std::shared_ptr<Deployment>& deployment, const data::Batch& batch);
  /// Degraded answer for `scenario`: the fallback deployment's prediction
  /// when available, else a constant-prior vector. Always counts
  /// serving/fallbacks.
  Result<std::vector<float>> FallbackPredict(const std::string& scenario,
                                             const data::Batch& batch);
  /// Lazily creates the scenario's breaker (callers must not hold
  /// registry_mu_: breaker construction registers metrics, and the two
  /// locks must never nest).
  resilience::CircuitBreaker* BreakerFor(const std::string& scenario)
      ALT_EXCLUDES(registry_mu_, breakers_mu_);

  /// Deployments are shared_ptrs so an in-flight Predict keeps its
  /// deployment alive across a concurrent Undeploy.
  obs::MetricsRegistry* registry_;
  mutable Mutex registry_mu_;
  std::map<std::string, std::shared_ptr<Deployment>> deployments_
      ALT_GUARDED_BY(registry_mu_);

  // Resilience configuration (resilience_enabled_, resilience_, clock_ and
  // the counter handles below) is written once by ConfigureResilience before the
  // server takes resilient traffic, then read without locking on the
  // Predict path; it is deliberately not lock-guarded.
  bool resilience_enabled_ = false;
  ServingResilienceOptions resilience_;
  resilience::Clock* clock_ = nullptr;
  mutable Mutex breakers_mu_;
  std::map<std::string, std::unique_ptr<resilience::CircuitBreaker>> breakers_
      ALT_GUARDED_BY(breakers_mu_);
  obs::Counter* fallbacks_total_ = nullptr;         // Owned by the registry.
  obs::Counter* unknown_fallbacks_total_ = nullptr; // Owned by the registry.
  obs::Counter* deadline_exceeded_total_ = nullptr; // Owned by the registry.
};

}  // namespace serving
}  // namespace alt

#endif  // ALT_SRC_SERVING_MODEL_SERVER_H_
