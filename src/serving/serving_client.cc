#include "src/serving/serving_client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "src/serving/shard/hash_ring.h"
#include "src/util/logging.h"

namespace alt {
namespace serving {

namespace {

shard::CoordinatorOptions ToCoordinatorOptions(
    const ServingClient::Options& options) {
  shard::CoordinatorOptions out;
  out.num_shards = options.num_shards;
  out.vnodes_per_shard = options.vnodes_per_shard;
  out.replication = options.replication;
  out.hot_replication = options.hot_replication;
  out.shard_breaker = options.shard_breaker;
  out.max_queue_depth_per_shard = options.max_queue_depth_per_shard;
  out.shed_high_watermark = options.shed_high_watermark;
  out.shed_low_watermark = options.shed_low_watermark;
  out.rejoin_stages = options.rejoin_stages;
  out.rejoin_stage_pause_ms = options.rejoin_stage_pause_ms;
  out.clock = options.clock;
  return out;
}

obs::RequestTracer::Options ToTracerOptions(
    const ServingClient::Options& options, obs::MetricsRegistry* registry) {
  obs::RequestTracer::Options out = options.trace;
  if (out.registry == nullptr) out.registry = registry;
  return out;
}

obs::SloTracker::Options ToSloOptions(const ServingClient::Options& options,
                                      obs::MetricsRegistry* registry) {
  obs::SloTracker::Options out = options.slo;
  if (out.registry == nullptr) out.registry = registry;
  if (out.now_ms == nullptr && options.clock != nullptr) {
    // FakeClock-driven tests advance SLO burn windows through the same
    // injected clock that paces re-join and the supervisor.
    out.now_ms = [clock = options.clock] { return clock->NowMs(); };
  }
  return out;
}

}  // namespace

ServingClient::ServingClient(Options options, obs::MetricsRegistry* registry)
    : options_(std::move(options)),
      registry_(registry != nullptr ? registry
                                    : &obs::MetricsRegistry::Global()),
      tracer_(std::make_unique<obs::RequestTracer>(
          ToTracerOptions(options_, registry_))),
      slo_(std::make_unique<obs::SloTracker>(
          ToSloOptions(options_, registry_))),
      coordinator_(ToCoordinatorOptions(options_), registry_) {
  {
    MutexLock lock(batchers_mu_);
    for (const std::string& id : coordinator_.ShardIds()) {
      // Per-shard batchers keep micro-batch locality; the preferred-shard
      // flush path falls back to replicas when the shard dies.
      batchers_[id] = std::make_unique<BatchPredictor>(
          [this, id](const std::string& scenario, const data::Batch& batch,
                     const obs::RequestContext& ctx) {
            return coordinator_.PredictPreferring(id, scenario, batch, ctx);
          },
          options_.batching, registry_);
      WireBatcher(batchers_[id].get());
    }
  }
  if (options_.enable_resilience) {
    coordinator_.EnableResilience(options_.resilience, options_.clock);
  }
  if (options_.enable_supervisor) {
    shard::SupervisorOptions supervisor = options_.supervisor;
    if (supervisor.clock == nullptr) supervisor.clock = options_.clock;
    supervisor_ = std::make_unique<shard::ShardSupervisor>(
        &coordinator_, supervisor, registry_);
    supervisor_->Start();  // alt_lint: allow(L008): void ShardSupervisor::Start
  }
}

ServingClient::ServingClient() : ServingClient(Options()) {}

ServingClient::~ServingClient() = default;

Status ServingClient::Deploy(const std::string& scenario,
                             std::unique_ptr<models::BaseModel> model,
                             const DeployOptions& options) {
  ALT_RETURN_IF_ERROR(coordinator_.Deploy(scenario, std::move(model), options));
  slo_->SetObjective(scenario, options.slo);
  return Status::OK();
}

Status ServingClient::DeployEverywhere(const std::string& scenario,
                                       std::unique_ptr<models::BaseModel> model,
                                       const DeployOptions& options) {
  ALT_RETURN_IF_ERROR(
      coordinator_.DeployEverywhere(scenario, std::move(model), options));
  slo_->SetObjective(scenario, options.slo);
  return Status::OK();
}

Status ServingClient::Undeploy(const std::string& scenario) {
  return coordinator_.Undeploy(scenario);
}

bool ServingClient::IsDeployed(const std::string& scenario) const {
  return coordinator_.IsDeployed(scenario);
}

std::vector<std::string> ServingClient::Scenarios() const {
  return coordinator_.Scenarios();
}

Result<std::vector<float>> ServingClient::Predict(const std::string& scenario,
                                                  const data::Batch& batch) {
  const obs::RequestContext ctx = tracer_->StartRequest(scenario);
  Result<std::vector<float>> result = coordinator_.Predict(scenario, batch, ctx);
  const double total_ms = tracer_->CompleteRequest(ctx, result.status());
  RecordOutcome(scenario, total_ms, result.status());
  return result;
}

void ServingClient::EnsureBatcher(const std::string& shard_id) {
  MutexLock lock(batchers_mu_);
  auto it = batchers_.find(shard_id);
  if (it != batchers_.end()) return;
  batchers_[shard_id] = std::make_unique<BatchPredictor>(
      [this, shard_id](const std::string& scenario, const data::Batch& batch,
                       const obs::RequestContext& ctx) {
        return coordinator_.PredictPreferring(shard_id, scenario, batch, ctx);
      },
      options_.batching, registry_);
  WireBatcher(batchers_[shard_id].get());
}

void ServingClient::WireBatcher(BatchPredictor* batcher) {
  batcher->set_tracer(tracer_.get());
  batcher->set_completion_hook(
      [this](const std::string& scenario, double latency_ms,
             const Status& status) {
        RecordOutcome(scenario, latency_ms, status);
      });
}

BatchPredictor* ServingClient::BatcherFor(const std::string& scenario) {
  // Owner-shard affinity keeps one scenario's requests coalescing in one
  // queue; unknown scenarios hash deterministically so resilience-default
  // traffic still batches.
  std::vector<std::string> replicas = coordinator_.ReplicasOf(scenario);
  MutexLock lock(batchers_mu_);
  std::string id;
  if (!replicas.empty()) {
    id = replicas.front();
  } else {
    const uint64_t hash = shard::HashRing::KeyHash(scenario);
    id = "shard-" +
         std::to_string(hash % static_cast<uint64_t>(batchers_.size()));
  }
  auto it = batchers_.find(id);
  ALT_CHECK(it != batchers_.end());
  return it->second.get();
}

std::future<Result<float>> ServingClient::EnqueuePredict(
    const std::string& scenario, Tensor profile,
    std::vector<int64_t> behavior) {
  // The batcher's resolve path completes the trace and fires the completion
  // hook once the flushed prediction lands, so the enqueue only mints the
  // context here.
  const obs::RequestContext ctx = tracer_->StartRequest(scenario);
  return BatcherFor(scenario)->Enqueue(scenario, std::move(profile),
                                       std::move(behavior), ctx);
}

void ServingClient::DrainBatchQueues() const {
  // Snapshot under the lock, poll outside it: batchers are never destroyed
  // once created, so the pointers stay valid while we wait.
  std::vector<BatchPredictor*> batchers;
  {
    MutexLock lock(batchers_mu_);
    batchers.reserve(batchers_.size());
    for (const auto& [id, batcher] : batchers_) {
      batchers.push_back(batcher.get());
    }
  }
  for (BatchPredictor* batcher : batchers) {
    while (batcher->PendingRequests() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void ServingClient::EnableResilience(const ServingResilienceOptions& options,
                                     resilience::Clock* clock) {
  coordinator_.EnableResilience(options, clock);
}

std::map<std::string, resilience::BreakerState> ServingClient::BreakerStates()
    const {
  return coordinator_.BreakerStates();
}

ServingClient::Stats ServingClient::GetStats() const {
  Stats stats;
  stats.num_shards = options_.num_shards;
  stats.live_shards = coordinator_.NumLiveShards();
  stats.routing_imbalance = coordinator_.RoutingImbalance();
  for (const std::string& id : coordinator_.ShardIds()) {
    const shard::WorkerShard* worker = coordinator_.shard(id);
    if (worker != nullptr) stats.requests_served += worker->RequestsServed();
  }
  {
    MutexLock lock(batchers_mu_);
    for (const auto& [id, batcher] : batchers_) {
      stats.pending_batch_requests += batcher->PendingRequests();
    }
  }
  stats.traced_requests = tracer_->traced_requests();
  stats.slowest_request_ms = tracer_->slowest_ms();
  stats.scenarios_burning = static_cast<int>(slo_->Burning().size());
  return stats;
}

obs::Histogram* ServingClient::LatencyHistogramFor(
    const std::string& scenario) {
  MutexLock lock(latency_mu_);
  auto it = latency_hists_.find(scenario);
  if (it == latency_hists_.end()) {
    it = latency_hists_
             .emplace(scenario, registry_->histogram(
                                    "serving/request/latency_ms/" + scenario))
             .first;
  }
  return it->second;
}

void ServingClient::RecordOutcome(const std::string& scenario,
                                  double latency_ms, const Status& status) {
  if (registry_->enabled()) {
    LatencyHistogramFor(scenario)->Observe(latency_ms);
  }
  slo_->Record(scenario, latency_ms, status.ok());
}

Result<LatencyStats> ServingClient::GetLatencyStats(
    const std::string& scenario) const {
  return coordinator_.GetLatencyStats(scenario);
}

Result<int64_t> ServingClient::FlopsPerSample(
    const std::string& scenario) const {
  return coordinator_.FlopsPerSample(scenario);
}

Status ServingClient::ExportBundle(const std::string& scenario,
                                   const std::string& path) const {
  return coordinator_.ExportBundle(scenario, path);
}

std::vector<std::string> ServingClient::ShardIds() const {
  return coordinator_.ShardIds();
}

int ServingClient::NumLiveShards() const {
  return coordinator_.NumLiveShards();
}

Status ServingClient::KillShard(const std::string& shard_id) {
  return coordinator_.KillShard(shard_id);
}

Status ServingClient::RejoinShard(const std::string& shard_id) {
  ALT_RETURN_IF_ERROR(coordinator_.RejoinShard(shard_id));
  EnsureBatcher(shard_id);  // Original-topology shards already have one.
  return Status::OK();
}

Status ServingClient::AddShard(const std::string& shard_id) {
  // The batcher exists before the shard's vnodes can enter the ring, so a
  // concurrent EnqueuePredict routed at the newcomer always finds a queue.
  EnsureBatcher(shard_id);
  return coordinator_.AddShard(shard_id);
}

ServingClient::HealthReport ServingClient::GetHealth() const {
  HealthReport report;
  report.unservable_scenarios = coordinator_.UnservableScenarios();
  report.healthy = report.unservable_scenarios.empty();
  for (const std::string& id : coordinator_.ShardIds()) {
    const shard::WorkerShard* worker = coordinator_.shard(id);
    report.shard_states[id] =
        (worker != nullptr && worker->dead()) ? "dead" : "live";
  }
  // The supervisor's view is richer (suspect / rejoining); overlay it.
  if (supervisor_ != nullptr) {
    for (const auto& [id, health] : supervisor_->States()) {
      report.shard_states[id] = shard::ShardHealthName(health);
    }
  }
  for (const auto& [id, state] : report.shard_states) {
    if (state != "live") report.degraded = true;
  }
  return report;
}

}  // namespace serving
}  // namespace alt
