#include "src/serving/serving_client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "src/serving/shard/hash_ring.h"
#include "src/util/logging.h"

namespace alt {
namespace serving {

namespace {

shard::CoordinatorOptions ToCoordinatorOptions(
    const ServingClient::Options& options) {
  shard::CoordinatorOptions out;
  out.num_shards = options.num_shards;
  out.vnodes_per_shard = options.vnodes_per_shard;
  out.replication = options.replication;
  out.hot_replication = options.hot_replication;
  out.shard_breaker = options.shard_breaker;
  out.max_queue_depth_per_shard = options.max_queue_depth_per_shard;
  return out;
}

}  // namespace

ServingClient::ServingClient(Options options, obs::MetricsRegistry* registry)
    : options_(std::move(options)),
      registry_(registry != nullptr ? registry
                                    : &obs::MetricsRegistry::Global()),
      coordinator_(ToCoordinatorOptions(options_), registry_) {
  for (const std::string& id : coordinator_.ShardIds()) {
    // Per-shard batchers keep micro-batch locality; the preferred-shard
    // flush path falls back to replicas when the shard dies.
    batchers_[id] = std::make_unique<BatchPredictor>(
        [this, id](const std::string& scenario, const data::Batch& batch) {
          return coordinator_.PredictPreferring(id, scenario, batch);
        },
        options_.batching, registry_);
  }
  if (options_.enable_resilience) {
    coordinator_.EnableResilience(options_.resilience);
  }
}

ServingClient::ServingClient() : ServingClient(Options()) {}

ServingClient::~ServingClient() = default;

Status ServingClient::Deploy(const std::string& scenario,
                             std::unique_ptr<models::BaseModel> model,
                             const DeployOptions& options) {
  return coordinator_.Deploy(scenario, std::move(model), options);
}

Status ServingClient::DeployEverywhere(const std::string& scenario,
                                       std::unique_ptr<models::BaseModel> model,
                                       const DeployOptions& options) {
  return coordinator_.DeployEverywhere(scenario, std::move(model), options);
}

Status ServingClient::Undeploy(const std::string& scenario) {
  return coordinator_.Undeploy(scenario);
}

bool ServingClient::IsDeployed(const std::string& scenario) const {
  return coordinator_.IsDeployed(scenario);
}

std::vector<std::string> ServingClient::Scenarios() const {
  return coordinator_.Scenarios();
}

Result<std::vector<float>> ServingClient::Predict(const std::string& scenario,
                                                  const data::Batch& batch) {
  return coordinator_.Predict(scenario, batch);
}

BatchPredictor* ServingClient::BatcherFor(const std::string& scenario) {
  // Owner-shard affinity keeps one scenario's requests coalescing in one
  // queue; unknown scenarios hash deterministically so resilience-default
  // traffic still batches.
  std::vector<std::string> replicas = coordinator_.ReplicasOf(scenario);
  std::string id;
  if (!replicas.empty()) {
    id = replicas.front();
  } else {
    const uint64_t hash = shard::HashRing::KeyHash(scenario);
    id = "shard-" +
         std::to_string(hash % static_cast<uint64_t>(batchers_.size()));
  }
  auto it = batchers_.find(id);
  ALT_CHECK(it != batchers_.end());
  return it->second.get();
}

std::future<Result<float>> ServingClient::EnqueuePredict(
    const std::string& scenario, Tensor profile,
    std::vector<int64_t> behavior) {
  return BatcherFor(scenario)->Enqueue(scenario, std::move(profile),
                                       std::move(behavior));
}

void ServingClient::DrainBatchQueues() const {
  for (const auto& [id, batcher] : batchers_) {
    while (batcher->PendingRequests() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void ServingClient::EnableResilience(const ServingResilienceOptions& options,
                                     resilience::Clock* clock) {
  coordinator_.EnableResilience(options, clock);
}

std::map<std::string, resilience::BreakerState> ServingClient::BreakerStates()
    const {
  return coordinator_.BreakerStates();
}

ServingClient::Stats ServingClient::GetStats() const {
  Stats stats;
  stats.num_shards = options_.num_shards;
  stats.live_shards = coordinator_.NumLiveShards();
  stats.routing_imbalance = coordinator_.RoutingImbalance();
  for (const std::string& id : coordinator_.ShardIds()) {
    const shard::WorkerShard* worker = coordinator_.shard(id);
    if (worker != nullptr) stats.requests_served += worker->RequestsServed();
  }
  for (const auto& [id, batcher] : batchers_) {
    stats.pending_batch_requests += batcher->PendingRequests();
  }
  return stats;
}

Result<LatencyStats> ServingClient::GetLatencyStats(
    const std::string& scenario) const {
  return coordinator_.GetLatencyStats(scenario);
}

Result<int64_t> ServingClient::FlopsPerSample(
    const std::string& scenario) const {
  return coordinator_.FlopsPerSample(scenario);
}

Status ServingClient::ExportBundle(const std::string& scenario,
                                   const std::string& path) const {
  return coordinator_.ExportBundle(scenario, path);
}

std::vector<std::string> ServingClient::ShardIds() const {
  return coordinator_.ShardIds();
}

int ServingClient::NumLiveShards() const {
  return coordinator_.NumLiveShards();
}

Status ServingClient::KillShard(const std::string& shard_id) {
  return coordinator_.KillShard(shard_id);
}

}  // namespace serving
}  // namespace alt
