#include "src/serving/online_simulator.h"

#include <algorithm>
#include <numeric>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace alt {
namespace serving {

Result<CtrSeries> RunOnlineSimulation(const data::SyntheticGenerator& gen,
                                      int64_t scenario_id, ScoringFn policy,
                                      const OnlineSimOptions& options) {
  if (options.days <= 0 || options.users_per_day <= 0 || options.top_k <= 0) {
    return Status::InvalidArgument("days/users_per_day/top_k must be > 0");
  }
  if (options.top_k > options.users_per_day) {
    return Status::InvalidArgument("top_k must be <= users_per_day");
  }
  CtrSeries series;
  Rng click_rng(options.seed * 7907 + static_cast<uint64_t>(scenario_id));
  for (int64_t day = 0; day < options.days; ++day) {
    // The candidate stream depends only on (generator seed, scenario, day),
    // so every compared policy sees identical users.
    data::ScenarioData candidates = gen.GenerateExtra(
        scenario_id, options.users_per_day,
        /*stream=*/1000 + static_cast<uint64_t>(day));
    std::vector<float> scores = policy(candidates);
    if (static_cast<int64_t>(scores.size()) != candidates.num_samples()) {
      return Status::Internal("policy returned wrong number of scores");
    }
    // Show the top-k scored users.
    std::vector<size_t> order(scores.size());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<long>(options.top_k),
                      order.end(), [&](size_t a, size_t b) {
                        return scores[a] > scores[b];
                      });
    double clicks = 0.0;
    for (int64_t k = 0; k < options.top_k; ++k) {
      const size_t user = order[static_cast<size_t>(k)];
      const double ctr = gen.TrueProbability(
          scenario_id,
          candidates.profiles.data() +
              static_cast<int64_t>(user) * candidates.profile_dim,
          candidates.behaviors.data() +
              static_cast<int64_t>(user) * candidates.seq_len);
      if (options.sample_clicks) {
        clicks += click_rng.Bernoulli(ctr) ? 1.0 : 0.0;
      } else {
        clicks += ctr;  // Expected clicks.
      }
    }
    series.daily_ctr.push_back(clicks / static_cast<double>(options.top_k));
  }
  double total = 0.0;
  for (double c : series.daily_ctr) total += c;
  series.mean_ctr = total / static_cast<double>(series.daily_ctr.size());
  return series;
}

}  // namespace serving
}  // namespace alt
