#ifndef ALT_SRC_SERVING_ONLINE_SIMULATOR_H_
#define ALT_SRC_SERVING_ONLINE_SIMULATOR_H_

#include <functional>
#include <vector>

#include "src/data/synthetic.h"
#include "src/util/status.h"

namespace alt {
namespace serving {

/// Options of the online recommendation simulation used to reproduce the
/// paper's Fig. 11 (7-day CTR A/B test over 34 scenarios).
struct OnlineSimOptions {
  int64_t days = 7;
  /// Candidate users reaching each scenario per day.
  int64_t users_per_day = 200;
  /// Impressions per day: the policy's top-k scored users are "shown".
  int64_t top_k = 40;
  /// When true, clicks are Bernoulli draws from the ground-truth CTR;
  /// when false (default), the expected CTR is reported — lower variance,
  /// same ordering of policies.
  bool sample_clicks = false;
  uint64_t seed = 11;
};

/// A policy scores a day's candidate set; higher = more likely to click.
using ScoringFn =
    std::function<std::vector<float>(const data::ScenarioData& candidates)>;

/// Daily CTR series of one policy on one scenario.
struct CtrSeries {
  std::vector<double> daily_ctr;
  double mean_ctr = 0.0;
};

/// Simulates `options.days` days: each day the same candidate stream (a
/// deterministic function of generator seed, scenario, and day — identical
/// across policies for a fair A/B comparison) is scored by `policy`, the
/// top-k users are shown, and CTR is computed from the generator's
/// ground-truth click probabilities.
Result<CtrSeries> RunOnlineSimulation(const data::SyntheticGenerator& gen,
                                      int64_t scenario_id, ScoringFn policy,
                                      const OnlineSimOptions& options);

}  // namespace serving
}  // namespace alt

#endif  // ALT_SRC_SERVING_ONLINE_SIMULATOR_H_
