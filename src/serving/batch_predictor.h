#ifndef ALT_SRC_SERVING_BATCH_PREDICTOR_H_
#define ALT_SRC_SERVING_BATCH_PREDICTOR_H_

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/data/dataset.h"
#include "src/obs/metrics.h"
#include "src/obs/request_trace.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace serving {

/// Asynchronous request front-end for a serving backend: single-user
/// requests are queued and coalesced into micro-batches before hitting the
/// model — the standard throughput optimization for online inference
/// services. The backend is an injected PredictFn — the sharded plane wires
/// one BatchPredictor per shard whose fn routes through the coordinator
/// (with failover).
///
/// A dedicated dispatcher thread drains the queue; a batch is flushed when
/// it reaches `max_batch_size` or when the oldest queued request has waited
/// `max_delay_ms`. Results are delivered through futures.
///
/// Observability: the predictor reports through `registry()` (default: the
/// owning server's registry) —
///   serving/batch_predictor/queue_depth           gauge: queued + in-flight
///                                                 requests; decremented as
///                                                 each request resolves, on
///                                                 success AND failure paths
///   serving/batch_predictor/batches_dispatched    counter
///   serving/batch_predictor/batch_size            histogram
///   serving/batch_predictor/queue_high_watermark  histogram: deepest queue
///                                                 seen since the previous
///                                                 flush, observed per flush
///   serving/batch_predictor/flush_drain_ms        histogram: wall time of
///                                                 one Flush (merge + predict
///                                                 + resolve)
///   serving/batch_predictor/request_latency_ms    histogram (enqueue→reply)
///   serving/shard_unavailable                     counter: requests failed
///                                                 because the backend shard
///                                                 vanished mid-flight
///                                                 (Status kUnavailable)
///   serving/requests_shed                         counter: requests rejected
///                                                 at admission — every live
///                                                 replica was past its queue
///                                                 watermark (Status
///                                                 kResourceExhausted); retry
///                                                 later, nothing was lost
/// QueueDepth()/BatchesDispatched() are thin views over these metrics, so
/// they read as zero when observability is disabled (ALT_OBS=off);
/// PendingRequests() is an obs-independent per-instance count (the shared
/// registry aggregates the gauge across all predictors).
class BatchPredictor {
 public:
  struct Options {
    int64_t max_batch_size = 16;
    double max_delay_ms = 2.0;
  };

  /// The serving backend: scores a merged micro-batch for one scenario.
  /// Must be thread-safe (called from the dispatcher thread). `ctx` is the
  /// representative request context of the flush (unsampled when no request
  /// in the batch is sampled) — backends propagate it so the flush's
  /// downstream decomposition lands on that request's trace.
  using PredictFn = std::function<Result<std::vector<float>>(
      const std::string& scenario, const data::Batch& batch,
      const obs::RequestContext& ctx)>;

  /// Completion hook: called once per resolved request with its end-to-end
  /// latency (enqueue to resolve) and final status, before the caller's
  /// future is unblocked. The sharded plane feeds per-scenario latency
  /// histograms and the SLO tracker through this.
  using CompletionFn = std::function<void(
      const std::string& scenario, double latency_ms, const Status& status)>;

  /// Validating factory: rejects a null `predict`, `max_batch_size <= 0`,
  /// and negative `max_delay_ms` with InvalidArgument.
  static Result<std::unique_ptr<BatchPredictor>> Create(
      PredictFn predict, Options options,
      obs::MetricsRegistry* registry = nullptr);

  /// `predict` outlives this object (it is copied; anything it captures
  /// must stay alive). Invalid options are programmer errors here
  /// (ALT_CHECK); use Create() for recoverable validation.
  /// `registry == nullptr` selects the process-global registry.
  BatchPredictor(PredictFn predict, Options options,
                 obs::MetricsRegistry* registry = nullptr);
  ~BatchPredictor();

  BatchPredictor(const BatchPredictor&) = delete;
  BatchPredictor& operator=(const BatchPredictor&) = delete;

  /// Enqueues one sample for `scenario`; the future resolves to the score
  /// (or an error status, e.g. scenario not deployed).
  std::future<Result<float>> Enqueue(
      const std::string& scenario, Tensor profile,
      std::vector<int64_t> behavior,
      const obs::RequestContext& ctx = obs::RequestContext())
      ALT_EXCLUDES(mu_);

  /// Control-plane wiring, set before traffic (not synchronized with the
  /// dispatcher): the tracer completes sampled requests as they resolve
  /// (batch_wait attribution + slow-trace ring); the completion hook sees
  /// every request.
  void set_tracer(obs::RequestTracer* tracer) { tracer_ = tracer; }
  void set_completion_hook(CompletionFn hook) {
    on_complete_ = std::move(hook);
  }

  /// Requests enqueued but not yet resolved — queued plus in-flight
  /// (registry gauge view).
  size_t QueueDepth() const;

  /// Total number of model invocations (micro-batches) so far (registry
  /// counter view).
  int64_t BatchesDispatched() const;

  /// Requests enqueued on THIS predictor and not yet resolved. Unlike
  /// QueueDepth() it neither aggregates across predictors sharing a
  /// registry nor reads zero under ALT_OBS=off — the load signal for
  /// balancing and drain loops.
  int64_t PendingRequests() const {
    return pending_.load(std::memory_order_relaxed);
  }

  obs::MetricsRegistry* registry() const { return registry_; }

 private:
  struct Request {
    std::string scenario;
    Tensor profile;                 // [1, P]
    std::vector<int64_t> behavior;  // [T]
    std::promise<Result<float>> promise;
    std::chrono::steady_clock::time_point enqueue_time;
    obs::RequestContext ctx;        // Sampled requests only; default inert.
  };

  void DispatcherLoop() ALT_EXCLUDES(mu_);
  void Flush(std::vector<Request> batch);
  void Resolve(Request* request, Result<float> result);

  PredictFn predict_;
  Options options_;
  obs::MetricsRegistry* registry_;
  obs::RequestTracer* tracer_ = nullptr;  // Optional; set before traffic.
  CompletionFn on_complete_;              // Optional; set before traffic.
  std::atomic<int64_t> pending_{0};
  obs::Gauge* queue_depth_;            // Owned by the registry.
  obs::Counter* shard_unavailable_;    // Owned by the registry.
  obs::Counter* requests_shed_;        // Owned by the registry.
  obs::Counter* batches_dispatched_;   // Owned by the registry.
  obs::Histogram* batch_size_;         // Owned by the registry.
  obs::Histogram* queue_high_watermark_;  // Owned by the registry.
  obs::Histogram* flush_drain_ms_;     // Owned by the registry.
  obs::Histogram* request_latency_;    // Owned by the registry.
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Request> queue_ ALT_GUARDED_BY(mu_);
  // Deepest queue_ since the last flush.
  int64_t high_watermark_ ALT_GUARDED_BY(mu_) = 0;
  bool shutdown_ ALT_GUARDED_BY(mu_) = false;
  std::thread dispatcher_;
};

}  // namespace serving
}  // namespace alt

#endif  // ALT_SRC_SERVING_BATCH_PREDICTOR_H_
