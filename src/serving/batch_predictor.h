#ifndef ALT_SRC_SERVING_BATCH_PREDICTOR_H_
#define ALT_SRC_SERVING_BATCH_PREDICTOR_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/data/dataset.h"
#include "src/serving/model_server.h"

namespace alt {
namespace serving {

/// Asynchronous request front-end for a ModelServer: single-user requests
/// are queued and coalesced into micro-batches before hitting the model —
/// the standard throughput optimization for online inference services.
///
/// A dedicated dispatcher thread drains the queue; a batch is flushed when
/// it reaches `max_batch_size` or when the oldest queued request has waited
/// `max_delay_ms`. Results are delivered through futures.
class BatchPredictor {
 public:
  struct Options {
    int64_t max_batch_size = 16;
    double max_delay_ms = 2.0;
  };

  /// `server` must outlive this object.
  BatchPredictor(ModelServer* server, Options options);
  ~BatchPredictor();

  BatchPredictor(const BatchPredictor&) = delete;
  BatchPredictor& operator=(const BatchPredictor&) = delete;

  /// Enqueues one sample for `scenario`; the future resolves to the score
  /// (or an error status, e.g. scenario not deployed).
  std::future<Result<float>> Enqueue(const std::string& scenario,
                                     Tensor profile,
                                     std::vector<int64_t> behavior);

  /// Requests queued but not yet dispatched.
  size_t QueueDepth() const;

  /// Total number of model invocations (micro-batches) so far.
  int64_t BatchesDispatched() const;

 private:
  struct Request {
    std::string scenario;
    Tensor profile;                 // [1, P]
    std::vector<int64_t> behavior;  // [T]
    std::promise<Result<float>> promise;
    std::chrono::steady_clock::time_point enqueue_time;
  };

  void DispatcherLoop();
  void Flush(std::vector<Request> batch);

  ModelServer* server_;
  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool shutdown_ = false;
  int64_t batches_dispatched_ = 0;
  std::thread dispatcher_;
};

}  // namespace serving
}  // namespace alt

#endif  // ALT_SRC_SERVING_BATCH_PREDICTOR_H_
