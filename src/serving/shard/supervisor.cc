#include "src/serving/shard/supervisor.h"

#include <vector>

#include "src/resilience/fault_injection.h"
#include "src/util/logging.h"

namespace alt {
namespace serving {
namespace shard {

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kLive:
      return "live";
    case ShardHealth::kSuspect:
      return "suspect";
    case ShardHealth::kDead:
      return "dead";
    case ShardHealth::kRejoining:
      return "rejoining";
  }
  return "unknown";
}

ShardSupervisor::ShardSupervisor(ShardCoordinator* coordinator,
                                 SupervisorOptions options,
                                 obs::MetricsRegistry* registry)
    : coordinator_(coordinator),
      options_(options),
      registry_(registry != nullptr ? registry : coordinator->registry()),
      clock_(options.clock != nullptr ? options.clock
                                      : resilience::RealClock()),
      probe_failures_(
          registry_->counter("serving/supervisor/probe_failures")),
      evictions_(registry_->counter("serving/supervisor/evictions")),
      rejoins_(registry_->counter("serving/supervisor/rejoins")) {
  ALT_CHECK(coordinator_ != nullptr);
  if (options_.dead_after_failures < 1) options_.dead_after_failures = 1;
}

ShardSupervisor::~ShardSupervisor() { Stop(); }

void ShardSupervisor::Start() {
  MutexLock lock(mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  prober_ = std::thread([this] { ProbeLoop(); });
}

void ShardSupervisor::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  prober_.join();
  MutexLock lock(mu_);
  running_ = false;
}

bool ShardSupervisor::running() const {
  MutexLock lock(mu_);
  return running_;
}

void ShardSupervisor::ProbeLoop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stop_requested_) return;
    }
    ProbeOnce();
    {
      MutexLock lock(mu_);
      if (stop_requested_) return;
    }
    clock_->SleepMs(options_.probe_interval_ms);
  }
}

Status ShardSupervisor::ProbeShard(const std::string& shard_id) {
  // Chaos hook: arming `serving/shard/probe` makes probes flap without the
  // shard being unhealthy — the Suspect grace period absorbs exactly this.
  ALT_FAULT_RETURN_IF("serving/shard/probe");
  const WorkerShard* worker = coordinator_->shard(shard_id);
  if (worker == nullptr) {
    return Status::NotFound("unknown shard " + shard_id);
  }
  if (worker->dead()) {
    return Status::Unavailable("shard " + shard_id + " is dead");
  }
  return Status::OK();
}

void ShardSupervisor::SetHealthLocked(const std::string& shard_id,
                                      Entry* entry, ShardHealth next) {
  entry->health = next;
  registry_->gauge("serving/supervisor/state/" + shard_id)
      ->Set(static_cast<double>(next));
}

void ShardSupervisor::ProbeOnce() {
  // One round at a time: the background thread and explicit ProbeOnce
  // callers never interleave half-advanced state machines.
  MutexLock round(probe_mu_);
  const std::vector<std::string> ids = coordinator_->ShardIds();
  for (const std::string& id : ids) {
    ShardHealth health;
    double dead_since_ms;
    {
      MutexLock lock(mu_);
      Entry& entry = entries_[id];  // New shards start Live.
      health = entry.health;
      dead_since_ms = entry.dead_since_ms;
    }
    switch (health) {
      case ShardHealth::kLive:
      case ShardHealth::kSuspect: {
        const Status probe = ProbeShard(id);
        bool evict = false;
        {
          MutexLock lock(mu_);
          Entry& entry = entries_[id];
          if (probe.ok()) {
            // A Suspect shard that answers its probe returns to Live with
            // its slate clean — a flap never tears down a healthy shard.
            entry.consecutive_failures = 0;
            SetHealthLocked(id, &entry, ShardHealth::kLive);
          } else {
            probe_failures_->Add(1);
            ++entry.consecutive_failures;
            if (entry.consecutive_failures >= options_.dead_after_failures) {
              SetHealthLocked(id, &entry, ShardHealth::kDead);
              entry.dead_since_ms = clock_->NowMs();
              evict = true;
            } else {
              SetHealthLocked(id, &entry, ShardHealth::kSuspect);
            }
          }
        }
        if (evict) {
          evictions_->Add(1);
          const Status status = coordinator_->EvictShard(id);
          if (!status.ok()) {
            ALT_LOG(Warning) << "supervisor eviction of " << id
                             << " failed: " << status.ToString();
          }
        }
        break;
      }
      case ShardHealth::kDead: {
        if (!options_.auto_rejoin) break;
        if (clock_->NowMs() - dead_since_ms < options_.rejoin_cooldown_ms) {
          break;
        }
        {
          MutexLock lock(mu_);
          SetHealthLocked(id, &entries_[id], ShardHealth::kRejoining);
        }
        const Status status = coordinator_->RejoinShard(id);
        MutexLock lock(mu_);
        Entry& entry = entries_[id];
        if (status.ok()) {
          entry.consecutive_failures = 0;
          SetHealthLocked(id, &entry, ShardHealth::kLive);
          rejoins_->Add(1);
        } else {
          ALT_LOG(Warning) << "supervisor re-join of " << id
                           << " failed: " << status.ToString();
          SetHealthLocked(id, &entry, ShardHealth::kDead);
          entry.dead_since_ms = clock_->NowMs();  // Fresh cooldown.
        }
        break;
      }
      case ShardHealth::kRejoining:
        // Only observable from States() while a re-join is in flight;
        // rounds are serialized, so nothing to advance here.
        break;
    }
  }
}

std::map<std::string, ShardHealth> ShardSupervisor::States() const {
  std::map<std::string, ShardHealth> out;
  MutexLock lock(mu_);
  for (const auto& [id, entry] : entries_) out[id] = entry.health;
  return out;
}

}  // namespace shard
}  // namespace serving
}  // namespace alt
