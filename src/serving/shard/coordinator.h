#ifndef ALT_SRC_SERVING_SHARD_COORDINATOR_H_
#define ALT_SRC_SERVING_SHARD_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/base_model.h"
#include "src/obs/metrics.h"
#include "src/resilience/circuit_breaker.h"
#include "src/serving/model_server.h"
#include "src/serving/shard/hash_ring.h"
#include "src/serving/shard/shard.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace serving {
namespace shard {

struct CoordinatorOptions {
  /// Worker shards (each a ModelServer on its own thread). Ids are
  /// "shard-0".."shard-(n-1)".
  int num_shards = 4;
  /// Virtual nodes per shard on the consistent-hash ring.
  int vnodes_per_shard = 128;
  /// Replicas per scenario (1 = owner only).
  int replication = 1;
  /// Replicas for scenarios deployed with DeployOptions::hot — head
  /// scenarios whose traffic justifies wider fan-out.
  int hot_replication = 2;
  /// Shard-health breakers: predict outcomes against each shard feed a
  /// resilience::CircuitBreaker; an open breaker (or a dead shard) triggers
  /// the rebalance path. The serving default is deliberately twitchier than
  /// the library default — a dead shard fails every request, so three
  /// consecutive failures is already a strong signal.
  static resilience::CircuitBreakerOptions DefaultShardBreaker() {
    resilience::CircuitBreakerOptions breaker;
    breaker.failure_threshold = 3;
    breaker.open_cooldown_ms = 1000.0;
    breaker.close_successes = 2;
    return breaker;
  }
  resilience::CircuitBreakerOptions shard_breaker = DefaultShardBreaker();
  /// SubmitPredict backpressure per shard; 0 = unbounded.
  int64_t max_queue_depth_per_shard = 0;
  /// Soft load-shedding watermarks per shard, with hysteresis: once a
  /// shard's queue reaches `shed_high_watermark`, non-critical submissions
  /// are rejected with kResourceExhausted until the queue drains to
  /// `shed_low_watermark`. Hot / everywhere-deployed scenarios bypass the
  /// soft watermark (only the hard cap applies), so cold traffic sheds
  /// first. `shed_high_watermark <= 0` disables soft shedding.
  int64_t shed_high_watermark = 0;
  int64_t shed_low_watermark = 0;
  /// Staged re-join: a re-admitted shard's virtual nodes enter the ring in
  /// this many equal batches, so each stage moves at most ~(2/N)/stages of
  /// the key space and in-flight traffic keeps failing over normally.
  int rejoin_stages = 4;
  /// Clock-paced pause between re-join stages (0 = back-to-back). Uses the
  /// injected `clock`, so FakeClock tests replay exact drain schedules.
  double rejoin_stage_pause_ms = 0.0;
  /// Time source for re-join pacing; nullptr selects the real clock.
  resilience::Clock* clock = nullptr;
};

/// Control plane of the sharded serving plane. Owns N WorkerShards, the
/// consistent-hash ring that maps scenario ids to shards, and the scenario
/// table (version, replica group, cached fp32 bundle) that makes
/// rebalancing possible.
///
/// Deploy is a broadcast: the model is serialized once, the original lands
/// on the owner shard and bundle-clones on the other replicas, all gated by
/// a monotonically increasing per-scenario version so a rebalance re-deploy
/// can never clobber a newer model (no torn reads: each request is served
/// whole by one replica, and each replica swaps atomically).
///
/// Predict balances over the scenario's live replicas with
/// power-of-two-choices on shard queue depth, records per-shard breaker
/// outcomes, and fails over to the remaining replicas on shard errors. A
/// dead shard (Kill, or breaker forced open by consecutive failures)
/// triggers HandleShardDeath: the shard leaves the ring and its scenarios
/// re-deploy from cached bundles onto their new ring owners — only keys the
/// ring moved, which is the consistent-hash minimal-disruption guarantee.
///
/// Locking: `control_mu_` serializes control-plane operations
/// (Deploy/Undeploy/rebalance) and is never held while scoring; `state_mu_`
/// guards brief ring/table reads on the data plane. Order: control_mu_
/// before state_mu_; bundle (de)serialization and engine deploys run
/// outside state_mu_ so routing stays readable during a rebalance.
///
/// Obs (shared registry):
///   serving/rebalance_events                    counter
///   serving/coordinator/rejoins                 counter: warm re-admissions
///   serving/coordinator/failovers               counter: replica fail-overs
///   serving/coordinator/no_replica_available    counter: exhausted groups
///   serving/admission/shed                      counter: requests rejected
///                                               with kResourceExhausted
///   serving/admission/accepted                  counter: requests served
///                                               after admission
///   serving/coordinator/routing_imbalance       gauge: max/mean owner share
///   serving/coordinator/broadcast_ms            histogram: deploy fan-out
///   (plus per-shard queue depth / request counters from WorkerShard and
///   breaker state gauges from resilience/circuit_breaker/state/shard:<id>)
class ShardCoordinator {
 public:
  explicit ShardCoordinator(CoordinatorOptions options = {},
                            obs::MetricsRegistry* registry = nullptr);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Broadcasts `model` to the scenario's replica group (ring owner first).
  /// DeployOptions::hot widens the group to hot_replication;
  /// DeployOptions::retry_transient retries each replica's deploy attempt.
  Status Deploy(const std::string& scenario,
                std::unique_ptr<models::BaseModel> model,
                const DeployOptions& options = {});

  /// Deploys to every live shard (and to newcomers on rebalance) — for the
  /// resilience fallback/default scenarios that any shard must be able to
  /// answer locally.
  Status DeployEverywhere(const std::string& scenario,
                          std::unique_ptr<models::BaseModel> model,
                          const DeployOptions& options = {});

  Status Undeploy(const std::string& scenario);
  bool IsDeployed(const std::string& scenario) const;
  std::vector<std::string> Scenarios() const;

  /// Routes to the scenario's replica group (power-of-two-choices over
  /// queue depth), failing over on shard errors. With resilience enabled an
  /// unknown scenario still routes by ring hash so the shard engine's
  /// default-scenario degradation applies.
  ///
  /// A sampled `ctx` gets its wall time attributed along the way: `route`
  /// for replica ranking, `failover` for failed attempts (including any
  /// rebalance they trigger), `shed_requeue` for attempts rejected with
  /// kResourceExhausted; the successful attempt's time lands as
  /// queue_wait + compute on the shard side.
  Result<std::vector<float>> Predict(
      const std::string& scenario, const data::Batch& batch,
      const obs::RequestContext& ctx = obs::RequestContext());

  /// Predict with shard affinity: tries `preferred_shard` first (the
  /// BatchPredictor keeps per-shard queues to preserve batching locality),
  /// failing over to the normal replica path when it is gone.
  Result<std::vector<float>> PredictPreferring(
      const std::string& preferred_shard, const std::string& scenario,
      const data::Batch& batch,
      const obs::RequestContext& ctx = obs::RequestContext());

  /// Configures graceful degradation on every shard engine. The caller is
  /// responsible for deploying `options.fallback_scenario` /
  /// `options.default_scenario` via DeployEverywhere.
  void EnableResilience(const ServingResilienceOptions& options,
                        resilience::Clock* clock = nullptr);

  /// Chaos hook: kills the worker (its queue drains with Unavailable and
  /// in-flight callers fail over). The rebalance itself triggers on the
  /// next predicts against the dead shard, exactly as a real crash would.
  Status KillShard(const std::string& shard_id);

  /// Proactively evicts a shard from the ring (kill + rebalance) without
  /// waiting for data-plane traffic to trip its breaker — the
  /// ShardSupervisor's teardown path once probes declare a shard dead.
  /// Idempotent; NotFound for unknown ids.
  Status EvictShard(const std::string& shard_id);

  /// Warm re-join of a previously killed/evicted shard: revives the worker
  /// (clearing stale serving state), resets its health breaker, re-deploys
  /// every scenario the fully-admitted ring will assign to it from the
  /// cached bundles at current versions, and only then re-adds its virtual
  /// nodes in `rejoin_stages` staged batches — routing shifts at most ~2/N
  /// of the key space across the whole re-join, replica tables are
  /// recomputed per stage, and no key ever routes to a shard that does not
  /// already hold its model. NotFound for unknown ids; FailedPrecondition
  /// when the shard is still live.
  Status RejoinShard(const std::string& shard_id);

  /// Elastic scale-up: creates a brand-new WorkerShard (with the plane's
  /// queue/admission configuration and resilience policy) and admits it
  /// through the same warm staged protocol as RejoinShard. AlreadyExists
  /// when the id is taken.
  Status AddShard(const std::string& shard_id);

  /// Deployed scenarios with no live replica left — requests to these fail
  /// until a re-join or re-deploy; the telemetry /healthz 503 signal.
  std::vector<std::string> UnservableScenarios() const;

  std::vector<std::string> ShardIds() const;
  int NumLiveShards() const;
  const WorkerShard* shard(const std::string& shard_id) const;
  WorkerShard* shard(const std::string& shard_id);

  /// The scenario's current replica group (empty when unknown).
  std::vector<std::string> ReplicasOf(const std::string& scenario) const;
  /// The scenario's broadcast version; 0 when unknown.
  uint64_t VersionOf(const std::string& scenario) const;

  /// Shard-health breakers ("shard:<id>") plus the worst per-scenario
  /// engine breaker state across shards — the telemetry /healthz view.
  std::map<std::string, resilience::BreakerState> BreakerStates() const;

  /// max/mean share of ring ownership over live shards (1.0 = perfectly
  /// uniform), sampled over the deployed scenarios; also published to the
  /// routing_imbalance gauge.
  double RoutingImbalance() const;

  Result<LatencyStats> GetLatencyStats(const std::string& scenario) const;
  Result<int64_t> FlopsPerSample(const std::string& scenario) const;
  Status ExportBundle(const std::string& scenario,
                      const std::string& path) const;

  obs::MetricsRegistry* registry() const { return registry_; }
  const CoordinatorOptions& options() const { return options_; }

 private:
  struct ScenarioEntry {
    uint64_t version = 0;
    /// Serialized fp32 bundle; rebalance re-deploys clone from this.
    std::string bundle;
    /// Deploy options minus the calibration pointer (dangling after the
    /// original call; re-deploys re-quantize without re-calibrating).
    DeployOptions options;
    bool everywhere = false;
    std::vector<std::string> replicas;
  };

  /// Routing decision for one scenario: the candidate replica ids in
  /// failover order plus the admission class its traffic submits with.
  struct RouteDecision {
    std::vector<std::string> candidates;
    Admission admission = Admission::kNormal;
  };

  WorkerShard* LiveShard(const std::string& shard_id) const
      ALT_EXCLUDES(state_mu_);
  /// The worker registered under `shard_id` (dead or alive); nullptr when
  /// unknown. Takes state_mu_ briefly: the shard maps grow at runtime via
  /// AddShard.
  WorkerShard* FindShard(const std::string& shard_id) const
      ALT_EXCLUDES(state_mu_);
  resilience::CircuitBreaker* BreakerOf(const std::string& shard_id) const
      ALT_EXCLUDES(state_mu_);
  /// The scenario's candidate replica ids in failover order: the
  /// least-loaded of two sampled candidates first (power-of-two-choices on
  /// queue depth). Dead shards stay in the list so the predict loop can
  /// detect them and trigger the rebalance. Hot / everywhere scenarios are
  /// marked kCritical so shards shed them last.
  RouteDecision RankedReplicas(const std::string& scenario)
      ALT_EXCLUDES(state_mu_);
  /// Removes a failed shard from the ring and re-deploys its scenarios onto
  /// their new owners. Idempotent; serialized by control_mu_.
  void HandleShardDeath(const std::string& shard_id)
      ALT_EXCLUDES(control_mu_, state_mu_);
  void HandleShardDeathLocked(const std::string& shard_id)
      ALT_REQUIRES(control_mu_) ALT_EXCLUDES(state_mu_);
  /// The shared warm-admission protocol of RejoinShard/AddShard: breaker
  /// reset, pre-deploy of the final assignment from cached bundles, then
  /// staged vnode admission with per-stage replica-table recompute.
  Status AdmitShardLocked(WorkerShard* worker)
      ALT_REQUIRES(control_mu_) ALT_EXCLUDES(state_mu_);
  /// Applies the plane's per-shard configuration (queue cap, shed
  /// watermarks) to a worker.
  void ConfigureWorker(WorkerShard* worker) const;
  /// Deploys `original` (owner) + bundle clones (other targets) and commits
  /// the entry into the table on success. `deploy_options` is the caller's
  /// options (still carrying the calibration pointer); `entry->options` is
  /// the calibration-free copy cached for rebalances.
  Status BroadcastLocked(const std::string& scenario, ScenarioEntry* entry,
                         std::unique_ptr<models::BaseModel> original,
                         const DeployOptions& deploy_options,
                         const std::vector<std::string>& targets)
      ALT_REQUIRES(control_mu_) ALT_EXCLUDES(state_mu_);
  double ImbalanceLocked() const ALT_REQUIRES(state_mu_);
  void PublishImbalanceLocked() const ALT_REQUIRES(state_mu_);

  CoordinatorOptions options_;
  obs::MetricsRegistry* registry_;
  resilience::Clock* clock_;

  mutable Mutex control_mu_;
  mutable Mutex state_mu_;
  /// Shards are never destroyed before the coordinator — a dead shard stays
  /// allocated (parked) so in-flight submits resolve safely, and a re-join
  /// revives it in place. The containers themselves grow at runtime
  /// (AddShard), so the maps are guarded; the pointed-to objects are stable
  /// and safe to use outside the lock.
  std::vector<std::unique_ptr<WorkerShard>> shards_ ALT_GUARDED_BY(state_mu_);
  std::map<std::string, WorkerShard*> shards_by_id_ ALT_GUARDED_BY(state_mu_);
  /// Shard-health breakers, one per shard.
  std::map<std::string, std::unique_ptr<resilience::CircuitBreaker>> breakers_
      ALT_GUARDED_BY(state_mu_);
  HashRing ring_ ALT_GUARDED_BY(state_mu_);
  std::map<std::string, ScenarioEntry> table_ ALT_GUARDED_BY(state_mu_);
  bool resilience_enabled_ ALT_GUARDED_BY(state_mu_) = false;
  ServingResilienceOptions resilience_ ALT_GUARDED_BY(state_mu_);
  resilience::Clock* resilience_clock_ ALT_GUARDED_BY(state_mu_) = nullptr;

  std::atomic<uint64_t> pick_counter_{0};

  obs::Counter* rebalance_events_ = nullptr;       // Owned by the registry.
  obs::Counter* rejoins_ = nullptr;                // Owned by the registry.
  obs::Counter* failovers_ = nullptr;              // Owned by the registry.
  obs::Counter* no_replica_available_ = nullptr;   // Owned by the registry.
  obs::Counter* admission_shed_ = nullptr;         // Owned by the registry.
  obs::Counter* admission_accepted_ = nullptr;     // Owned by the registry.
  obs::Gauge* routing_imbalance_ = nullptr;        // Owned by the registry.
  obs::Histogram* broadcast_ms_ = nullptr;         // Owned by the registry.
};

}  // namespace shard
}  // namespace serving
}  // namespace alt

#endif  // ALT_SRC_SERVING_SHARD_COORDINATOR_H_
