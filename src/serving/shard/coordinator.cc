#include "src/serving/shard/coordinator.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/serving/model_store.h"
#include "src/util/logging.h"

namespace alt {
namespace serving {
namespace shard {

namespace {

/// splitmix64: spreads the pick counter into well-distributed sample
/// indices for power-of-two-choices (cheap, deterministic, lock-free).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

ShardCoordinator::ShardCoordinator(CoordinatorOptions options,
                                   obs::MetricsRegistry* registry)
    : options_(options),
      registry_(registry != nullptr ? registry
                                    : &obs::MetricsRegistry::Global()),
      clock_(options.clock != nullptr ? options.clock
                                      : resilience::RealClock()),
      ring_(options.vnodes_per_shard),
      rebalance_events_(registry_->counter("serving/rebalance_events")),
      rejoins_(registry_->counter("serving/coordinator/rejoins")),
      failovers_(registry_->counter("serving/coordinator/failovers")),
      no_replica_available_(
          registry_->counter("serving/coordinator/no_replica_available")),
      admission_shed_(registry_->counter("serving/admission/shed")),
      admission_accepted_(registry_->counter("serving/admission/accepted")),
      routing_imbalance_(
          registry_->gauge("serving/coordinator/routing_imbalance")),
      broadcast_ms_(registry_->histogram("serving/coordinator/broadcast_ms")) {
  ALT_CHECK_GE(options_.num_shards, 1);
  if (options_.replication < 1) options_.replication = 1;
  if (options_.hot_replication < options_.replication) {
    options_.hot_replication = options_.replication;
  }
  if (options_.rejoin_stages < 1) options_.rejoin_stages = 1;
  if (options_.shed_low_watermark > options_.shed_high_watermark) {
    options_.shed_low_watermark = options_.shed_high_watermark;
  }
  MutexLock state(state_mu_);
  for (int i = 0; i < options_.num_shards; ++i) {
    const std::string id = "shard-" + std::to_string(i);
    auto worker = std::make_unique<WorkerShard>(id, registry_);
    ConfigureWorker(worker.get());
    shards_by_id_[id] = worker.get();
    shards_.push_back(std::move(worker));
    breakers_[id] = std::make_unique<resilience::CircuitBreaker>(
        "shard:" + id, options_.shard_breaker, /*clock=*/nullptr, registry_);
    ring_.AddShard(id);  // alt_lint: allow(L008): void HashRing::AddShard
  }
  PublishImbalanceLocked();
}

ShardCoordinator::~ShardCoordinator() = default;

void ShardCoordinator::ConfigureWorker(WorkerShard* worker) const {
  worker->set_max_queue_depth(options_.max_queue_depth_per_shard);
  worker->set_shed_watermarks(options_.shed_high_watermark,
                              options_.shed_low_watermark);
}

WorkerShard* ShardCoordinator::FindShard(const std::string& shard_id) const {
  MutexLock state(state_mu_);
  auto it = shards_by_id_.find(shard_id);
  return it == shards_by_id_.end() ? nullptr : it->second;
}

WorkerShard* ShardCoordinator::LiveShard(const std::string& shard_id) const {
  WorkerShard* worker = FindShard(shard_id);
  return (worker == nullptr || worker->dead()) ? nullptr : worker;
}

resilience::CircuitBreaker* ShardCoordinator::BreakerOf(
    const std::string& shard_id) const {
  MutexLock state(state_mu_);
  auto it = breakers_.find(shard_id);
  return it == breakers_.end() ? nullptr : it->second.get();
}

Status ShardCoordinator::Deploy(const std::string& scenario,
                                std::unique_ptr<models::BaseModel> model,
                                const DeployOptions& options) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  MutexLock control(control_mu_);
  ScenarioEntry entry;
  entry.options = options;
  entry.options.calibration = nullptr;  // Dangling after this call.
  {
    std::ostringstream out;
    ALT_RETURN_IF_ERROR(SaveModelBundle(model.get(), &out));
    entry.bundle = out.str();
  }
  std::vector<std::string> targets;
  {
    MutexLock state(state_mu_);
    auto it = table_.find(scenario);
    entry.version = (it != table_.end() ? it->second.version : 0) + 1;
    const int want =
        options.hot ? options_.hot_replication : options_.replication;
    targets = ring_.RouteReplicas(scenario, want);
  }
  if (targets.empty()) {
    return Status::Unavailable("no live shards to deploy " + scenario);
  }
  return BroadcastLocked(scenario, &entry, std::move(model), options, targets);
}

Status ShardCoordinator::DeployEverywhere(
    const std::string& scenario, std::unique_ptr<models::BaseModel> model,
    const DeployOptions& options) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  MutexLock control(control_mu_);
  ScenarioEntry entry;
  entry.options = options;
  entry.options.calibration = nullptr;
  entry.everywhere = true;
  {
    std::ostringstream out;
    ALT_RETURN_IF_ERROR(SaveModelBundle(model.get(), &out));
    entry.bundle = out.str();
  }
  std::vector<std::string> targets;
  {
    MutexLock state(state_mu_);
    auto it = table_.find(scenario);
    entry.version = (it != table_.end() ? it->second.version : 0) + 1;
    targets = ring_.Shards();
  }
  if (targets.empty()) {
    return Status::Unavailable("no live shards to deploy " + scenario);
  }
  return BroadcastLocked(scenario, &entry, std::move(model), options, targets);
}

Status ShardCoordinator::BroadcastLocked(
    const std::string& scenario, ScenarioEntry* entry,
    std::unique_ptr<models::BaseModel> original,
    const DeployOptions& deploy_options,
    const std::vector<std::string>& targets) {
  obs::ScopedTimerMs timer(broadcast_ms_);
  Status first_error;
  std::vector<std::string> deployed;
  for (size_t i = 0; i < targets.size(); ++i) {
    WorkerShard* target = FindShard(targets[i]);
    if (target == nullptr) continue;
    std::unique_ptr<models::BaseModel> model;
    if (i == 0) {
      model = std::move(original);
    } else {
      // Replica fan-out: clone from the bundle serialized once above —
      // serialize-once, deserialize-per-replica is the broadcast protocol.
      std::istringstream in(entry->bundle);
      Result<std::unique_ptr<models::BaseModel>> loaded = LoadModelBundle(&in);
      if (!loaded.ok()) {
        if (first_error.ok()) first_error = loaded.status();
        continue;
      }
      model = std::move(loaded).value();
    }
    Status status = target->Deploy(scenario, std::move(model),
                                   deploy_options, entry->version);
    if (status.ok()) {
      deployed.push_back(targets[i]);
    } else if (first_error.ok()) {
      first_error = status;
    }
  }
  if (!first_error.ok()) {
    // Partial broadcast: replicas that swapped keep the new model at this
    // version, but the authoritative table stays at the previous version —
    // the next successful Deploy (same version number again) supersedes.
    return first_error;
  }
  if (deployed.empty()) {
    return Status::Unavailable("no shard accepted deploy of " + scenario);
  }
  entry->replicas = std::move(deployed);
  MutexLock state(state_mu_);
  table_[scenario] = std::move(*entry);
  PublishImbalanceLocked();
  return Status::OK();
}

Status ShardCoordinator::Undeploy(const std::string& scenario) {
  MutexLock control(control_mu_);
  std::vector<std::string> targets;
  {
    MutexLock state(state_mu_);
    auto it = table_.find(scenario);
    if (it == table_.end()) {
      return Status::NotFound("scenario " + scenario + " not deployed");
    }
    if (it->second.everywhere) {
      for (const auto& [id, worker] : shards_by_id_) targets.push_back(id);
    } else {
      targets = it->second.replicas;
    }
    table_.erase(it);
    PublishImbalanceLocked();
  }
  for (const std::string& id : targets) {
    WorkerShard* worker = FindShard(id);
    if (worker == nullptr) continue;
    // A replica that never finished its deploy reports NotFound; that is
    // the desired end state, not an error.
    Status status = worker->Undeploy(scenario);
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      ALT_LOG(Warning) << "undeploy of " << scenario << " on " << id
                       << " failed: " << status.ToString();
    }
  }
  return Status::OK();
}

bool ShardCoordinator::IsDeployed(const std::string& scenario) const {
  MutexLock state(state_mu_);
  return table_.count(scenario) > 0;
}

std::vector<std::string> ShardCoordinator::Scenarios() const {
  MutexLock state(state_mu_);
  std::vector<std::string> out;
  out.reserve(table_.size());
  for (const auto& [scenario, entry] : table_) out.push_back(scenario);
  return out;
}

ShardCoordinator::RouteDecision ShardCoordinator::RankedReplicas(
    const std::string& scenario) {
  RouteDecision decision;
  std::vector<std::string>& candidates = decision.candidates;
  {
    MutexLock state(state_mu_);
    auto it = table_.find(scenario);
    if (it != table_.end()) {
      candidates =
          it->second.everywhere ? ring_.Shards() : it->second.replicas;
      // Hot and everywhere-deployed scenarios (the resilience fallback /
      // default paths among them) are the last traffic a loaded shard
      // should drop: they bypass the soft shed watermark.
      if (it->second.everywhere || it->second.options.hot) {
        decision.admission = Admission::kCritical;
      }
    } else if (resilience_enabled_ && !resilience_.default_scenario.empty()) {
      // Unknown scenario under resilience: route by ring hash anyway so the
      // shard engine's default-scenario degradation answers.
      candidates = ring_.RouteReplicas(scenario, options_.replication);
    }
    if (candidates.size() >= 2) {
      const uint64_t ticket =
          pick_counter_.fetch_add(1, std::memory_order_relaxed);
      const size_t n = candidates.size();
      size_t a = static_cast<size_t>(Mix64(ticket) % n);
      size_t b =
          static_cast<size_t>(Mix64(ticket ^ 0x5851f42d4c957f2dull) % n);
      if (a == b) b = (b + 1) % n;
      const WorkerShard* sa = shards_by_id_.at(candidates[a]);
      const WorkerShard* sb = shards_by_id_.at(candidates[b]);
      const size_t best = sa->QueueDepth() <= sb->QueueDepth() ? a : b;
      std::swap(candidates[0], candidates[best]);
    }
  }
  return decision;
}

Result<std::vector<float>> ShardCoordinator::Predict(
    const std::string& scenario, const data::Batch& batch,
    const obs::RequestContext& ctx) {
  return PredictPreferring("", scenario, batch, ctx);
}

Result<std::vector<float>> ShardCoordinator::PredictPreferring(
    const std::string& preferred_shard, const std::string& scenario,
    const data::Batch& batch, const obs::RequestContext& ctx) {
  // Request-linked span for sampled requests; rctx parents the per-shard
  // dispatch spans under it so Perfetto shows one causal lane per request.
  obs::TraceSpan request_span("serving/coordinator/predict", ctx);
  const obs::RequestContext rctx = request_span.context();
  Status last = Status::NotFound("scenario " + scenario + " not deployed");
  // Each extra round is only taken after a rebalance (a shard left the
  // ring), so num_shards rounds bound the loop while guaranteeing a request
  // that keeps finding dead shards still reaches the re-routed replicas —
  // the zero-lost-requests contract of the scale bench.
  for (int round = 0; round <= options_.num_shards; ++round) {
    RouteDecision decision;
    {
      obs::SegmentTimer route_timer(rctx, obs::segment::kRoute);
      decision = RankedReplicas(scenario);
    }
    std::vector<std::string>& candidates = decision.candidates;
    if (!preferred_shard.empty()) {
      // Shard affinity (BatchPredictor locality): only honored while the
      // preferred shard is still in the replica group — after a rebalance
      // it may no longer hold the model.
      auto it = std::find(candidates.begin(), candidates.end(),
                          preferred_shard);
      if (it != candidates.end()) std::swap(candidates.front(), *it);
    }
    if (candidates.empty()) break;
    bool rebalanced = false;
    for (const std::string& id : candidates) {
      // Meters this attempt; failed attempts are claimed as failover /
      // shed_requeue below, the successful one is left for the shard to
      // attribute as queue_wait + compute (the timer then discards it).
      obs::SegmentTimer attempt(rctx);
      WorkerShard* worker = FindShard(id);
      if (worker == nullptr) continue;
      if (worker->dead()) {
        HandleShardDeath(id);
        rebalanced = true;
        last = Status::Unavailable("shard " + id + " is dead");
        attempt.RecordAs(obs::segment::kFailover);
        continue;
      }
      resilience::CircuitBreaker* breaker = BreakerOf(id);
      if (breaker != nullptr && !breaker->AllowRequest()) {
        last = Status::Unavailable("shard " + id + " breaker open");
        attempt.RecordAs(obs::segment::kFailover);
        continue;
      }
      Result<std::vector<float>> result =
          worker->SubmitPredict(scenario, batch, decision.admission, rctx)
              .get();
      if (result.ok()) {
        if (breaker != nullptr) breaker->RecordSuccess();
        admission_accepted_->Add(1);
        return result;
      }
      const Status status = result.status();
      if (status.code() == StatusCode::kNotFound) {
        // Deploy-state error, identical on every replica — not a shard
        // health signal, and failing over would only repeat it.
        return result;
      }
      if (status.code() == StatusCode::kResourceExhausted) {
        // Admission shed: the shard is alive but over capacity. Another
        // replica may still have headroom, so keep trying the group — but
        // this is load, not failure: no breaker damage, no rebalance.
        last = status;
        attempt.RecordAs(obs::segment::kShedRequeue);
        continue;
      }
      if (breaker != nullptr) breaker->RecordFailure();
      failovers_->Add(1);
      last = status;
      if (worker->dead() ||
          (breaker != nullptr &&
           breaker->state() == resilience::BreakerState::kOpen)) {
        HandleShardDeath(id);
        rebalanced = true;
      }
      attempt.RecordAs(obs::segment::kFailover);
    }
    // Without a rebalance the candidate set cannot change; with one, the
    // next round re-routes against the shrunken ring.
    if (!rebalanced) break;
  }
  if (last.code() == StatusCode::kResourceExhausted) {
    // Every live replica shed the request: reject it loudly (the caller
    // sees kResourceExhausted, never a silent drop) and count it.
    admission_shed_->Add(1);
  } else if (last.code() != StatusCode::kNotFound) {
    no_replica_available_->Add(1);
  }
  return last;
}

void ShardCoordinator::EnableResilience(
    const ServingResilienceOptions& options, resilience::Clock* clock) {
  MutexLock control(control_mu_);
  std::vector<WorkerShard*> workers;
  {
    MutexLock state(state_mu_);
    workers.reserve(shards_.size());
    for (auto& worker : shards_) workers.push_back(worker.get());
  }
  for (WorkerShard* worker : workers) {
    worker->engine()->ConfigureResilience(options, clock);
  }
  MutexLock state(state_mu_);
  resilience_ = options;
  resilience_enabled_ = true;
  resilience_clock_ = clock;
}

Status ShardCoordinator::KillShard(const std::string& shard_id) {
  WorkerShard* worker = FindShard(shard_id);
  if (worker == nullptr) {
    return Status::NotFound("unknown shard " + shard_id);
  }
  worker->Kill();
  return Status::OK();
}

Status ShardCoordinator::EvictShard(const std::string& shard_id) {
  if (FindShard(shard_id) == nullptr) {
    return Status::NotFound("unknown shard " + shard_id);
  }
  // HandleShardDeath kills the worker and is idempotent, so a supervisor
  // eviction and a data-plane-triggered rebalance can race harmlessly.
  HandleShardDeath(shard_id);
  return Status::OK();
}

void ShardCoordinator::HandleShardDeath(const std::string& shard_id) {
  MutexLock control(control_mu_);
  HandleShardDeathLocked(shard_id);
}

void ShardCoordinator::HandleShardDeathLocked(const std::string& shard_id) {
  struct Affected {
    std::string scenario;
    ScenarioEntry snapshot;
    std::vector<std::string> new_replicas;
    std::vector<std::string> add_targets;
  };
  std::vector<Affected> affected;
  {
    MutexLock state(state_mu_);
    if (!ring_.HasShard(shard_id)) return;  // Already rebalanced away.
    ring_.RemoveShard(shard_id);
    for (const auto& [scenario, entry] : table_) {
      if (!entry.everywhere && !Contains(entry.replicas, shard_id)) continue;
      Affected item;
      item.scenario = scenario;
      item.snapshot.version = entry.version;
      item.snapshot.options = entry.options;
      item.snapshot.everywhere = entry.everywhere;
      if (entry.everywhere) {
        // Every remaining shard already holds it; just shrink the group.
        item.new_replicas = ring_.Shards();
      } else {
        const int want = entry.options.hot ? options_.hot_replication
                                           : options_.replication;
        item.new_replicas = ring_.RouteReplicas(scenario, want);
        for (const std::string& id : item.new_replicas) {
          if (!Contains(entry.replicas, id)) item.add_targets.push_back(id);
        }
        if (!item.add_targets.empty()) item.snapshot.bundle = entry.bundle;
      }
      affected.push_back(std::move(item));
    }
  }
  rebalance_events_->Add(1);
  // The shard is leaving the ring (until a supervisor-driven RejoinShard
  // re-admits it), so park its worker even when the trigger was an open
  // breaker rather than an explicit Kill: queued requests drain with
  // Unavailable and fail over.
  WorkerShard* victim = FindShard(shard_id);
  if (victim != nullptr) victim->Kill();
  // Re-deploys run outside state_mu_ so routing stays readable; control_mu_
  // keeps the table stable meanwhile.
  for (Affected& item : affected) {
    for (const std::string& target : item.add_targets) {
      WorkerShard* worker = LiveShard(target);
      if (worker == nullptr) continue;
      std::istringstream in(item.snapshot.bundle);
      Result<std::unique_ptr<models::BaseModel>> loaded = LoadModelBundle(&in);
      Status status = loaded.ok()
                          ? worker->Deploy(item.scenario,
                                           std::move(loaded).value(),
                                           item.snapshot.options,
                                           item.snapshot.version)
                          : loaded.status();
      if (!status.ok()) {
        ALT_LOG(Warning) << "rebalance re-deploy of " << item.scenario
                         << " onto " << target
                         << " failed: " << status.ToString();
      }
    }
  }
  MutexLock state(state_mu_);
  for (Affected& item : affected) {
    auto it = table_.find(item.scenario);
    // Version check: a Deploy cannot have raced (control_mu_ is held), but
    // an Undeploy-then-Deploy sequence is impossible for the same reason;
    // the guard is belt-and-braces against future concurrent writers.
    if (it != table_.end() && it->second.version == item.snapshot.version) {
      it->second.replicas = std::move(item.new_replicas);
    }
  }
  PublishImbalanceLocked();
}

Status ShardCoordinator::RejoinShard(const std::string& shard_id) {
  MutexLock control(control_mu_);
  WorkerShard* worker = FindShard(shard_id);
  if (worker == nullptr) {
    return Status::NotFound("unknown shard " + shard_id);
  }
  if (!worker->dead()) {
    return Status::FailedPrecondition("shard " + shard_id +
                                      " is live; nothing to rejoin");
  }
  {
    // A killed shard whose death no traffic ever observed may still be on
    // the ring; evict it first so the admission below starts from a clean
    // slate (and its scenarios have live replicas to fail over to).
    bool on_ring;
    {
      MutexLock state(state_mu_);
      on_ring = ring_.HasShard(shard_id);
    }
    if (on_ring) HandleShardDeathLocked(shard_id);
  }
  ALT_RETURN_IF_ERROR(worker->Revive());
  ConfigureWorker(worker);
  return AdmitShardLocked(worker);
}

Status ShardCoordinator::AddShard(const std::string& shard_id) {
  MutexLock control(control_mu_);
  if (FindShard(shard_id) != nullptr) {
    return Status::AlreadyExists("shard " + shard_id + " already exists");
  }
  auto owned = std::make_unique<WorkerShard>(shard_id, registry_);
  WorkerShard* worker = owned.get();
  ConfigureWorker(worker);
  bool configure_resilience = false;
  ServingResilienceOptions resilience;
  resilience::Clock* resilience_clock = nullptr;
  {
    MutexLock state(state_mu_);
    shards_by_id_[shard_id] = worker;
    shards_.push_back(std::move(owned));
    breakers_[shard_id] = std::make_unique<resilience::CircuitBreaker>(
        "shard:" + shard_id, options_.shard_breaker, /*clock=*/nullptr,
        registry_);
    configure_resilience = resilience_enabled_;
    resilience = resilience_;
    resilience_clock = resilience_clock_;
  }
  if (configure_resilience) {
    worker->engine()->ConfigureResilience(resilience, resilience_clock);
  }
  return AdmitShardLocked(worker);
}

Status ShardCoordinator::AdmitShardLocked(WorkerShard* worker) {
  const std::string& id = worker->id();
  resilience::CircuitBreaker* breaker = BreakerOf(id);
  // The shard must not inherit the failure streak that evicted it.
  if (breaker != nullptr) breaker->Reset();
  // Final assignment: every scenario the fully-admitted ring will place on
  // this shard (plus all everywhere deployments). Computed on a ring COPY —
  // the live ring is untouched until the models are in place.
  struct Assigned {
    std::string scenario;
    std::string bundle;
    DeployOptions options;
    uint64_t version = 0;
  };
  std::vector<Assigned> assigned;
  {
    MutexLock state(state_mu_);
    HashRing future_ring = ring_;
    future_ring.AddShard(id);  // alt_lint: allow(L008): void HashRing::AddShard
    for (const auto& [scenario, entry] : table_) {
      bool wanted = entry.everywhere;
      if (!wanted) {
        const int want = entry.options.hot ? options_.hot_replication
                                           : options_.replication;
        wanted = Contains(future_ring.RouteReplicas(scenario, want), id);
      }
      if (!wanted) continue;
      Assigned item;
      item.scenario = scenario;
      item.bundle = entry.bundle;
      item.options = entry.options;
      item.version = entry.version;
      assigned.push_back(std::move(item));
    }
  }
  // Warm pre-deploy from the cached bundles at current versions, BEFORE any
  // ring mutation: a key never routes to this shard until the model it
  // needs is already swapped in. Any failure aborts the admission with the
  // ring unchanged (models already deployed are harmless — unrouted).
  for (const Assigned& item : assigned) {
    std::istringstream in(item.bundle);
    Result<std::unique_ptr<models::BaseModel>> loaded = LoadModelBundle(&in);
    if (!loaded.ok()) return loaded.status();
    ALT_RETURN_IF_ERROR(worker->Deploy(item.scenario,
                                       std::move(loaded).value(),
                                       item.options, item.version));
  }
  // Staged vnode admission: vnode indices are stable, so ownership grows
  // monotonically stage over stage and each stage moves only the keys
  // adjacent to its new points. Per stage, every replica group is
  // recomputed from the ring; membership can only change by this shard
  // entering a group (possibly displacing its last member), and this shard
  // already holds every model its final groups need — so the table never
  // names a replica without the model.
  const int stages = options_.rejoin_stages;
  const int full = options_.vnodes_per_shard;
  for (int stage = 1; stage <= stages; ++stage) {
    const int target = stage == stages ? full : full * stage / stages;
    {
      MutexLock state(state_mu_);
      ring_.AddShardVnodes(id, target);
      for (auto& [scenario, entry] : table_) {
        if (entry.everywhere) continue;
        const int want = entry.options.hot ? options_.hot_replication
                                           : options_.replication;
        entry.replicas = ring_.RouteReplicas(scenario, want);
      }
      PublishImbalanceLocked();
    }
    // Drain pause between stages: in-flight traffic settles onto the new
    // routing before the next batch of keys moves.
    if (stage < stages && options_.rejoin_stage_pause_ms > 0.0) {
      clock_->SleepMs(options_.rejoin_stage_pause_ms);
    }
  }
  rejoins_->Add(1);
  return Status::OK();
}

std::vector<std::string> ShardCoordinator::UnservableScenarios() const {
  std::vector<std::string> out;
  MutexLock state(state_mu_);
  for (const auto& [scenario, entry] : table_) {
    bool live = false;
    if (entry.everywhere) {
      for (const auto& [id, worker] : shards_by_id_) {
        if (ring_.HasShard(id) && !worker->dead()) {
          live = true;
          break;
        }
      }
    } else {
      for (const std::string& id : entry.replicas) {
        auto it = shards_by_id_.find(id);
        if (it != shards_by_id_.end() && !it->second->dead()) {
          live = true;
          break;
        }
      }
    }
    if (!live) out.push_back(scenario);
  }
  return out;
}

std::vector<std::string> ShardCoordinator::ShardIds() const {
  MutexLock state(state_mu_);
  std::vector<std::string> out;
  out.reserve(shards_by_id_.size());
  for (const auto& [id, worker] : shards_by_id_) out.push_back(id);
  return out;
}

int ShardCoordinator::NumLiveShards() const {
  MutexLock state(state_mu_);
  int live = 0;
  for (const auto& worker : shards_) {
    if (!worker->dead()) ++live;
  }
  return live;
}

const WorkerShard* ShardCoordinator::shard(const std::string& shard_id) const {
  return FindShard(shard_id);
}

WorkerShard* ShardCoordinator::shard(const std::string& shard_id) {
  return FindShard(shard_id);
}

std::vector<std::string> ShardCoordinator::ReplicasOf(
    const std::string& scenario) const {
  MutexLock state(state_mu_);
  auto it = table_.find(scenario);
  if (it == table_.end()) return {};
  return it->second.everywhere ? ring_.Shards() : it->second.replicas;
}

uint64_t ShardCoordinator::VersionOf(const std::string& scenario) const {
  MutexLock state(state_mu_);
  auto it = table_.find(scenario);
  return it == table_.end() ? 0 : it->second.version;
}

std::map<std::string, resilience::BreakerState>
ShardCoordinator::BreakerStates() const {
  std::map<std::string, resilience::CircuitBreaker*> breakers;
  std::vector<WorkerShard*> workers;
  {
    MutexLock state(state_mu_);
    for (const auto& [id, breaker] : breakers_) {
      breakers[id] = breaker.get();
    }
    workers.reserve(shards_.size());
    for (const auto& worker : shards_) workers.push_back(worker.get());
  }
  std::map<std::string, resilience::BreakerState> out;
  for (const auto& [id, breaker] : breakers) {
    out["shard:" + id] = breaker->state();
  }
  for (WorkerShard* worker : workers) {
    for (const auto& [scenario, state] : worker->engine()->BreakerStates()) {
      auto it = out.find(scenario);
      // Worst state wins across shards (kOpen > kHalfOpen > kClosed).
      if (it == out.end() ||
          static_cast<int>(state) > static_cast<int>(it->second)) {
        out[scenario] = state;
      }
    }
  }
  return out;
}

double ShardCoordinator::ImbalanceLocked() const {
  if (ring_.NumShards() == 0) return 1.0;
  std::map<std::string, int64_t> owned;
  for (const std::string& id : ring_.Shards()) owned[id] = 0;
  int64_t total = 0;
  for (const auto& [scenario, entry] : table_) {
    if (entry.everywhere || entry.replicas.empty()) continue;
    auto it = owned.find(entry.replicas.front());
    if (it == owned.end()) continue;
    ++it->second;
    ++total;
  }
  if (total == 0) return 1.0;
  int64_t max_owned = 0;
  for (const auto& [id, count] : owned) {
    max_owned = std::max(max_owned, count);
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(owned.size());
  return static_cast<double>(max_owned) / mean;
}

void ShardCoordinator::PublishImbalanceLocked() const {
  routing_imbalance_->Set(ImbalanceLocked());
}

double ShardCoordinator::RoutingImbalance() const {
  MutexLock state(state_mu_);
  PublishImbalanceLocked();
  return ImbalanceLocked();
}

Result<LatencyStats> ShardCoordinator::GetLatencyStats(
    const std::string& scenario) const {
  {
    MutexLock state(state_mu_);
    if (table_.count(scenario) == 0) {
      return Status::NotFound("scenario " + scenario + " not deployed");
    }
  }
  // All shard engines share the coordinator registry, so the per-scenario
  // histogram already aggregates latencies across the whole fleet.
  const obs::HistogramSummary summary = registry_->histogram_summary(
      ModelServer::LatencyMetricName(scenario));
  LatencyStats stats;
  stats.num_requests = summary.count;
  stats.mean_ms = summary.mean;
  stats.p50_ms = summary.p50;
  stats.p95_ms = summary.p95;
  stats.p99_ms = summary.p99;
  stats.max_ms = summary.max;
  return stats;
}

Result<int64_t> ShardCoordinator::FlopsPerSample(
    const std::string& scenario) const {
  for (const std::string& id : ReplicasOf(scenario)) {
    const WorkerShard* worker = LiveShard(id);
    if (worker == nullptr) continue;
    Result<int64_t> flops = worker->engine()->FlopsPerSample(scenario);
    if (flops.ok()) return flops;
  }
  return Status::NotFound("scenario " + scenario +
                          " has no live replica with a model");
}

Status ShardCoordinator::ExportBundle(const std::string& scenario,
                                      const std::string& path) const {
  std::string bundle;
  {
    MutexLock state(state_mu_);
    auto it = table_.find(scenario);
    if (it == table_.end()) {
      return Status::NotFound("scenario " + scenario + " not deployed");
    }
    bundle = it->second.bundle;
  }
  // The cached broadcast bundle is byte-identical to SaveModelBundleToFile
  // output (same serializer), so exporting is a plain write.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  out.write(bundle.data(), static_cast<std::streamsize>(bundle.size()));
  out.flush();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace shard
}  // namespace serving
}  // namespace alt
