#ifndef ALT_SRC_SERVING_SHARD_SHARD_H_
#define ALT_SRC_SERVING_SHARD_SHARD_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/base_model.h"
#include "src/obs/metrics.h"
#include "src/obs/request_trace.h"
#include "src/serving/model_server.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace serving {
namespace shard {

/// Admission class of one SubmitPredict. The coordinator maps scenario
/// placement to priority: hot / everywhere-deployed scenarios submit as
/// kCritical and bypass the soft shed watermark (the hard queue cap still
/// applies); everything else is kNormal and sheds first under pressure.
enum class Admission { kNormal = 0, kCritical = 1 };

/// One worker of the sharded serving plane: a ModelServer engine owned by a
/// dedicated serving thread. The coordinator talks to a shard through two
/// planes:
///   - control plane: Deploy/Undeploy, version-gated so a stale broadcast
///     (a rebalance racing a newer Deploy) can never overwrite a newer
///     model — the swap itself is the engine's per-scenario atomic swap, so
///     readers see the old model or the new one, never a torn mix;
///   - data plane: SubmitPredict enqueues onto the shard's queue; the worker
///     thread scores batches in arrival order on its own engine.
///
/// Kill() simulates shard failure for chaos tests and the scale bench: the
/// queue drains with Status::Unavailable (callers fail over to replicas —
/// no request is silently lost) and every later submit fails fast. Revive()
/// undoes a Kill for warm re-join: the worker thread (which parks rather
/// than exit on Kill) resumes, with all serving state cleared so the
/// coordinator can re-deploy current versions from its cached bundles.
///
/// Admission control: beyond the hard `max_queue_depth` cap, the shard
/// sheds load between a high/low watermark pair with hysteresis — once the
/// queue reaches the high watermark, kNormal submissions are rejected with
/// Status::ResourceExhausted (never enqueued, never silently dropped) until
/// the queue drains to the low watermark. kCritical submissions (hot or
/// everywhere-deployed scenarios, decided by the coordinator) bypass the
/// soft watermark and are only bounded by the hard cap, so cold traffic is
/// shed before head traffic.
///
/// Obs (shared registry, instance-labelled by shard id):
///   serving/shard/queue_depth/<id>   gauge: requests queued + in flight
///   serving/shard/requests/<id>      counter: requests served by the engine
///   serving/shard/pressure/<id>      gauge: queue depth / high watermark
class WorkerShard {
 public:
  /// `registry == nullptr` selects the process-global registry. All shards
  /// of one coordinator share a registry, so per-scenario latency
  /// histograms aggregate across the fleet for free.
  WorkerShard(std::string id, obs::MetricsRegistry* registry = nullptr);
  ~WorkerShard();

  WorkerShard(const WorkerShard&) = delete;
  WorkerShard& operator=(const WorkerShard&) = delete;

  const std::string& id() const { return id_; }

  /// Version-gated deploy onto this shard's engine. `version` must be >= the
  /// scenario's current version on this shard (equal re-deploys are
  /// idempotent rebalance copies); a stale version is rejected with
  /// FailedPrecondition and a dead shard with Unavailable.
  Status Deploy(const std::string& scenario,
                std::unique_ptr<models::BaseModel> model,
                const DeployOptions& options, uint64_t version);

  Status Undeploy(const std::string& scenario);

  /// The scenario's deployed version on this shard; 0 when never deployed.
  uint64_t DeployedVersion(const std::string& scenario) const;

  /// Enqueues a predict for the worker thread. `batch` must stay alive until
  /// the future resolves (the coordinator blocks on it). A dead shard
  /// resolves immediately with Status::Unavailable; an over-watermark queue
  /// (soft shed, kNormal only) or a full queue (`max_queue_depth` > 0)
  /// resolves immediately with Status::ResourceExhausted — rejected at
  /// admission, never enqueued.
  ///
  /// A sampled `ctx` rides the task across the dispatcher queue: the worker
  /// thread attributes queue_wait + compute segments to the request (on
  /// success — a failed attempt's wall time is the coordinator's to claim as
  /// failover) and records a request-linked dispatch span.
  std::future<Result<std::vector<float>>> SubmitPredict(
      const std::string& scenario, const data::Batch& batch,
      Admission admission = Admission::kNormal,
      const obs::RequestContext& ctx = obs::RequestContext());

  /// Marks the shard dead: pending queue entries resolve with Unavailable,
  /// later submits fail fast, the worker thread parks. Idempotent.
  void Kill();
  bool dead() const { return dead_.load(std::memory_order_acquire); }

  /// Undoes Kill() for warm re-join: clears every deployment and version
  /// (the coordinator re-deploys current versions from its cached bundles)
  /// and re-opens admission. FailedPrecondition unless the shard is dead.
  Status Revive();

  /// Soft shed watermarks with hysteresis: shedding starts when the queue
  /// reaches `high` and stops once it drains to `low`. `high` <= 0 disables
  /// soft shedding. Relaxed atomics: the coordinator's control plane may
  /// retune them (e.g. on warm re-join) while submits are in flight; a
  /// submit racing the store sheds under either the old or new watermark.
  void set_shed_watermarks(int64_t high, int64_t low) {
    shed_high_watermark_.store(high, std::memory_order_relaxed);
    shed_low_watermark_.store(low, std::memory_order_relaxed);
  }

  /// True while the shard is between watermarks shedding kNormal load.
  bool shedding() const { return shedding_.load(std::memory_order_relaxed); }

  /// Test hook: while paused the worker thread stops dequeuing, so tests
  /// can build exact queue depths; admission behaves as in production.
  /// Kill() and destruction still drain normally.
  void PauseDispatchForTesting(bool paused);

  /// Requests queued or in flight — the load signal the coordinator's
  /// power-of-two-choices balancer compares.
  int64_t QueueDepth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  int64_t RequestsServed() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Backpressure limit for SubmitPredict; 0 (default) = unbounded.
  /// Relaxed atomic for the same control-plane-vs-submit race as the
  /// watermarks.
  void set_max_queue_depth(int64_t depth) {
    max_queue_depth_.store(depth, std::memory_order_relaxed);
  }

  /// The shard-local engine. Exposed for control-plane wiring only
  /// (ConfigureResilience, breaker states, bundle export) — predictions go
  /// through SubmitPredict so they run on the shard's thread.
  ModelServer* engine() { return &engine_; }
  const ModelServer* engine() const { return &engine_; }

 private:
  struct Task {
    std::string scenario;
    const data::Batch* batch = nullptr;
    std::promise<Result<std::vector<float>>> promise;
    obs::RequestContext ctx;    // Sampled requests only; default = inert.
    double enqueue_us = 0.0;    // MonotonicMicros at enqueue, when sampled.
  };

  void WorkerLoop();

  /// Advances the hysteresis state machine for a queue at `depth` and
  /// returns whether kNormal admissions are currently shed. Also refreshes
  /// the pressure gauge. Lock-free; racing updates settle on the next call.
  bool UpdateShedState(int64_t depth);

  const std::string id_;
  obs::MetricsRegistry* registry_;
  ModelServer engine_;

  std::atomic<bool> dead_{false};
  std::atomic<bool> shedding_{false};
  std::atomic<int64_t> queue_depth_{0};
  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> max_queue_depth_{0};
  std::atomic<int64_t> shed_high_watermark_{0};
  std::atomic<int64_t> shed_low_watermark_{0};
  obs::Gauge* queue_depth_gauge_ = nullptr;  // Owned by the registry.
  obs::Gauge* pressure_gauge_ = nullptr;     // Owned by the registry.
  obs::Counter* requests_total_ = nullptr;   // Owned by the registry.

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Task> queue_ ALT_GUARDED_BY(mu_);
  bool stopping_ ALT_GUARDED_BY(mu_) = false;
  bool paused_ ALT_GUARDED_BY(mu_) = false;

  mutable Mutex versions_mu_;
  std::map<std::string, uint64_t> versions_ ALT_GUARDED_BY(versions_mu_);

  std::thread worker_;  // Last member: joins in ~WorkerShard after state.
};

}  // namespace shard
}  // namespace serving
}  // namespace alt

#endif  // ALT_SRC_SERVING_SHARD_SHARD_H_
