#ifndef ALT_SRC_SERVING_SHARD_SHARD_H_
#define ALT_SRC_SERVING_SHARD_SHARD_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/base_model.h"
#include "src/obs/metrics.h"
#include "src/serving/model_server.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace serving {
namespace shard {

/// One worker of the sharded serving plane: a ModelServer engine owned by a
/// dedicated serving thread. The coordinator talks to a shard through two
/// planes:
///   - control plane: Deploy/Undeploy, version-gated so a stale broadcast
///     (a rebalance racing a newer Deploy) can never overwrite a newer
///     model — the swap itself is the engine's per-scenario atomic swap, so
///     readers see the old model or the new one, never a torn mix;
///   - data plane: SubmitPredict enqueues onto the shard's queue; the worker
///     thread scores batches in arrival order on its own engine.
///
/// Kill() simulates shard failure for chaos tests and the scale bench: the
/// queue drains with Status::Unavailable (callers fail over to replicas —
/// no request is silently lost) and every later submit fails fast.
///
/// Obs (shared registry, instance-labelled by shard id):
///   serving/shard/queue_depth/<id>   gauge: requests queued + in flight
///   serving/shard/requests/<id>      counter: requests served by the engine
class WorkerShard {
 public:
  /// `registry == nullptr` selects the process-global registry. All shards
  /// of one coordinator share a registry, so per-scenario latency
  /// histograms aggregate across the fleet for free.
  WorkerShard(std::string id, obs::MetricsRegistry* registry = nullptr);
  ~WorkerShard();

  WorkerShard(const WorkerShard&) = delete;
  WorkerShard& operator=(const WorkerShard&) = delete;

  const std::string& id() const { return id_; }

  /// Version-gated deploy onto this shard's engine. `version` must be >= the
  /// scenario's current version on this shard (equal re-deploys are
  /// idempotent rebalance copies); a stale version is rejected with
  /// FailedPrecondition and a dead shard with Unavailable.
  Status Deploy(const std::string& scenario,
                std::unique_ptr<models::BaseModel> model,
                const DeployOptions& options, uint64_t version);

  Status Undeploy(const std::string& scenario);

  /// The scenario's deployed version on this shard; 0 when never deployed.
  uint64_t DeployedVersion(const std::string& scenario) const;

  /// Enqueues a predict for the worker thread. `batch` must stay alive until
  /// the future resolves (the coordinator blocks on it). A dead shard — or a
  /// full queue, when `max_queue_depth` > 0 — resolves immediately with
  /// Status::Unavailable.
  std::future<Result<std::vector<float>>> SubmitPredict(
      const std::string& scenario, const data::Batch& batch);

  /// Marks the shard dead: pending queue entries resolve with Unavailable,
  /// later submits fail fast, the worker thread parks. Idempotent.
  void Kill();
  bool dead() const { return dead_.load(std::memory_order_acquire); }

  /// Requests queued or in flight — the load signal the coordinator's
  /// power-of-two-choices balancer compares.
  int64_t QueueDepth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  int64_t RequestsServed() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Backpressure limit for SubmitPredict; 0 (default) = unbounded.
  void set_max_queue_depth(int64_t depth) { max_queue_depth_ = depth; }

  /// The shard-local engine. Exposed for control-plane wiring only
  /// (ConfigureResilience, breaker states, bundle export) — predictions go
  /// through SubmitPredict so they run on the shard's thread.
  ModelServer* engine() { return &engine_; }
  const ModelServer* engine() const { return &engine_; }

 private:
  struct Task {
    std::string scenario;
    const data::Batch* batch = nullptr;
    std::promise<Result<std::vector<float>>> promise;
  };

  void WorkerLoop();

  const std::string id_;
  obs::MetricsRegistry* registry_;
  ModelServer engine_;

  std::atomic<bool> dead_{false};
  std::atomic<int64_t> queue_depth_{0};
  std::atomic<int64_t> requests_served_{0};
  int64_t max_queue_depth_ = 0;
  obs::Gauge* queue_depth_gauge_ = nullptr;  // Owned by the registry.
  obs::Counter* requests_total_ = nullptr;   // Owned by the registry.

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Task> queue_ ALT_GUARDED_BY(mu_);
  bool stopping_ ALT_GUARDED_BY(mu_) = false;

  mutable Mutex versions_mu_;
  std::map<std::string, uint64_t> versions_ ALT_GUARDED_BY(versions_mu_);

  std::thread worker_;  // Last member: joins in ~WorkerShard after state.
};

}  // namespace shard
}  // namespace serving
}  // namespace alt

#endif  // ALT_SRC_SERVING_SHARD_SHARD_H_
