#include "src/serving/shard/hash_ring.h"

#include <algorithm>

#include "src/util/logging.h"

namespace alt {
namespace serving {
namespace shard {

HashRing::HashRing(int vnodes_per_shard)
    : vnodes_per_shard_(vnodes_per_shard) {
  ALT_CHECK_GE(vnodes_per_shard, 1);
}

uint64_t HashRing::KeyHash(const std::string& key) {
  // FNV-1a, 64-bit. Fixed constants: routing must be identical across runs
  // and builds (deterministic routing is a tested contract).
  uint64_t h = 14695981039346656037ull;
  for (const char c : key) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  // Raw FNV output clusters for short, similar keys (shard-N#vnode#M), which
  // skews the ring badly; a splitmix64-style finalizer restores avalanche so
  // vnode points spread evenly — still fixed constants, still deterministic.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

void HashRing::AddShard(const std::string& shard_id) {
  if (shards_.count(shard_id) > 0) return;
  AddShardVnodes(shard_id, vnodes_per_shard_);
}

void HashRing::AddShardVnodes(const std::string& shard_id, int vnodes) {
  vnodes = std::min(vnodes, vnodes_per_shard_);
  auto current = shards_.find(shard_id);
  const int from = current == shards_.end() ? 0 : current->second;
  if (vnodes <= from) return;
  for (int v = from; v < vnodes; ++v) {
    const uint64_t point =
        KeyHash(shard_id + "#vnode#" + std::to_string(v));
    // A hash collision between vnodes of different shards is resolved by
    // the lexicographically smaller shard id, deterministically.
    auto it = ring_.find(point);
    if (it == ring_.end()) {
      ring_.emplace(point, shard_id);
    } else if (shard_id < it->second) {
      it->second = shard_id;
    }
  }
  shards_[shard_id] = vnodes;
}

void HashRing::RemoveShard(const std::string& shard_id) {
  if (shards_.erase(shard_id) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == shard_id ? ring_.erase(it) : std::next(it);
  }
}

int HashRing::VnodesOf(const std::string& shard_id) const {
  auto it = shards_.find(shard_id);
  return it == shards_.end() ? 0 : it->second;
}

bool HashRing::HasShard(const std::string& shard_id) const {
  return shards_.count(shard_id) > 0;
}

std::vector<std::string> HashRing::Shards() const {
  std::vector<std::string> out;
  out.reserve(shards_.size());
  for (const auto& [id, vnodes] : shards_) out.push_back(id);
  return out;
}

Result<std::string> HashRing::Route(const std::string& key) const {
  if (ring_.empty()) {
    return Status::FailedPrecondition("hash ring has no shards");
  }
  auto it = ring_.lower_bound(KeyHash(key));
  if (it == ring_.end()) it = ring_.begin();  // Wrap around.
  return it->second;
}

std::vector<std::string> HashRing::RouteReplicas(const std::string& key,
                                                 int replicas) const {
  std::vector<std::string> out;
  if (ring_.empty() || replicas <= 0) return out;
  const size_t want = std::min<size_t>(static_cast<size_t>(replicas),
                                       shards_.size());
  auto it = ring_.lower_bound(KeyHash(key));
  if (it == ring_.end()) it = ring_.begin();
  while (out.size() < want) {
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
  return out;
}

}  // namespace shard
}  // namespace serving
}  // namespace alt
