#ifndef ALT_SRC_SERVING_SHARD_HASH_RING_H_
#define ALT_SRC_SERVING_SHARD_HASH_RING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace alt {
namespace serving {
namespace shard {

/// Consistent-hash ring with virtual nodes: the routing core of the sharded
/// serving plane. Every shard contributes `vnodes_per_shard` points on a
/// 64-bit ring; a scenario id routes to the owner of the first point at or
/// after its hash (wrapping). Properties the tests pin down:
///   - determinism: the hash is a fixed FNV-1a, so routing is identical
///     across runs, processes, and shard insertion orders;
///   - uniformity: at 128 vnodes the per-shard key share stays within
///     ±15% of 1/N;
///   - minimal disruption: adding/removing one shard moves only the keys
///     adjacent to its vnodes (≲ 1/N, bounded by 2/N in the tests); every
///     other scenario keeps its owner, so a rebalance re-deploys only the
///     failed shard's scenarios.
///
/// Not internally synchronized: the ShardCoordinator mutates the ring only
/// under its control-plane lock and hands out routing decisions by value.
class HashRing {
 public:
  explicit HashRing(int vnodes_per_shard = 128);

  /// Stable 64-bit hash of `key` (FNV-1a with a splitmix64-style avalanche
  /// finalizer) — exposed so tests can pin the routing function itself.
  static uint64_t KeyHash(const std::string& key);

  /// Adds `shard_id`'s virtual nodes. Adding an existing shard is a no-op.
  void AddShard(const std::string& shard_id);

  /// Grows `shard_id`'s presence on the ring to `vnodes` virtual nodes
  /// (clamped to [0, vnodes_per_shard]). Vnode indices are stable — growing
  /// from k to k' adds exactly the points for indices [k, k') — so a staged
  /// re-join admits a shard in batches, each batch moving only the keys
  /// adjacent to the new points. Shrinking is not supported: `vnodes` at or
  /// below the current count is a no-op.
  void AddShardVnodes(const std::string& shard_id, int vnodes);

  /// Removes every virtual node of `shard_id`. Unknown ids are a no-op.
  void RemoveShard(const std::string& shard_id);

  /// How many virtual nodes `shard_id` currently has (0 if absent).
  int VnodesOf(const std::string& shard_id) const;

  int vnodes_per_shard() const { return vnodes_per_shard_; }

  bool HasShard(const std::string& shard_id) const;
  size_t NumShards() const { return shards_.size(); }
  std::vector<std::string> Shards() const;

  /// The owning shard of `key`; FailedPrecondition on an empty ring.
  Result<std::string> Route(const std::string& key) const;

  /// The first `replicas` distinct shards clockwise from `key`'s hash — the
  /// scenario's replica group. Fewer than `replicas` shards on the ring
  /// returns all of them (still deterministic order, owner first).
  std::vector<std::string> RouteReplicas(const std::string& key,
                                         int replicas) const;

 private:
  int vnodes_per_shard_;
  /// vnode hash -> shard id. std::map keeps the ring ordered, so routing is
  /// a lower_bound and insertion order never matters.
  std::map<uint64_t, std::string> ring_;
  std::map<std::string, int> shards_;  // shard id -> vnode count.
};

}  // namespace shard
}  // namespace serving
}  // namespace alt

#endif  // ALT_SRC_SERVING_SHARD_HASH_RING_H_
