#ifndef ALT_SRC_SERVING_SHARD_SUPERVISOR_H_
#define ALT_SRC_SERVING_SHARD_SUPERVISOR_H_

#include <map>
#include <string>
#include <thread>

#include "src/obs/metrics.h"
#include "src/resilience/clock.h"
#include "src/serving/shard/coordinator.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace serving {
namespace shard {

/// Health state the supervisor tracks per shard. The lifecycle is
///
///   Live -> Suspect -> Dead -> Rejoining -> Live
///    ^________|                   |
///        (probe recovers)         '-> Dead (failed re-join; retried)
///
/// Live:      probes succeed.
/// Suspect:   at least one probe failed, fewer than `dead_after_failures`
///            consecutively — the shard keeps serving; a single flapped
///            probe never tears down a healthy shard.
/// Dead:      `dead_after_failures` consecutive probe failures — the shard
///            is evicted from the ring (kill + rebalance onto replicas).
/// Rejoining: after `rejoin_cooldown_ms` in Dead, the supervisor attempts a
///            warm re-join (ShardCoordinator::RejoinShard); success returns
///            the shard to Live, failure back to Dead for another cooldown.
enum class ShardHealth { kLive = 0, kSuspect = 1, kDead = 2, kRejoining = 3 };

const char* ShardHealthName(ShardHealth health);

struct SupervisorOptions {
  /// Probe cadence of the background thread started by Start(). Tests that
  /// drive ProbeOnce() by hand never sleep.
  double probe_interval_ms = 100.0;
  /// Consecutive probe failures before a Suspect shard is declared Dead and
  /// evicted. 1 would tear down on the first flap; keep it >= 2 wherever a
  /// probe can fail transiently.
  int dead_after_failures = 3;
  /// How long a Dead shard rests before the supervisor attempts its warm
  /// re-join, measured on the injected clock.
  double rejoin_cooldown_ms = 1000.0;
  /// Attempt automatic re-joins at all. Off, Dead shards stay down until
  /// someone calls ShardCoordinator::RejoinShard explicitly.
  bool auto_rejoin = true;
  /// Time source for cooldowns and the probe loop; nullptr = real clock.
  /// With a FakeClock, tests replay exact probe/cooldown schedules.
  resilience::Clock* clock = nullptr;
};

/// Health-probed shard membership: the control loop that turns the sharded
/// plane from fail-once into self-healing. Every probe round asks each
/// worker whether it is alive (through the `serving/shard/probe` fault
/// point, so chaos tests can flap probes deterministically) and advances
/// the per-shard state machine above, calling ShardCoordinator::EvictShard
/// on death and ShardCoordinator::RejoinShard after the cooldown.
///
/// Driving: Start() spawns a probing thread on `probe_interval_ms` (real
/// deployments); ProbeOnce() runs a single round synchronously (FakeClock
/// tests). Both may be mixed — rounds are serialized on an internal mutex.
///
/// Obs (shared registry):
///   serving/supervisor/state/<id>    gauge: 0 live, 1 suspect, 2 dead,
///                                    3 rejoining
///   serving/supervisor/probe_failures  counter
///   serving/supervisor/evictions       counter: Suspect -> Dead teardowns
///   serving/supervisor/rejoins         counter: successful re-joins
class ShardSupervisor {
 public:
  /// `coordinator` must outlive the supervisor. `registry == nullptr`
  /// selects the coordinator's registry.
  explicit ShardSupervisor(ShardCoordinator* coordinator,
                           SupervisorOptions options = {},
                           obs::MetricsRegistry* registry = nullptr);
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Starts the background probe thread (idempotent).
  void Start();
  /// Stops the background probe thread (idempotent; the destructor calls
  /// it). In-flight probe rounds finish first.
  void Stop();
  bool running() const;

  /// Runs one synchronous probe round over every shard the coordinator
  /// knows. The unit tests' entry point: with a FakeClock injected, the
  /// exact eviction/re-join schedule is a pure function of the probe calls.
  void ProbeOnce();

  /// Current health of every supervised shard. Shards discovered this call
  /// (e.g. after ShardCoordinator::AddShard) report kLive.
  std::map<std::string, ShardHealth> States() const;

  const SupervisorOptions& options() const { return options_; }

 private:
  struct Entry {
    ShardHealth health = ShardHealth::kLive;
    int consecutive_failures = 0;
    /// Clock time the shard entered Dead; re-join waits out the cooldown.
    double dead_since_ms = 0.0;
  };

  /// One shard's probe: OK when its worker is registered and not dead.
  /// Routed through the `serving/shard/probe` fault point.
  Status ProbeShard(const std::string& shard_id);
  void SetHealthLocked(const std::string& shard_id, Entry* entry,
                       ShardHealth next) ALT_REQUIRES(mu_);
  void ProbeLoop();

  ShardCoordinator* coordinator_;
  SupervisorOptions options_;
  obs::MetricsRegistry* registry_;
  resilience::Clock* clock_;

  obs::Counter* probe_failures_ = nullptr;  // Owned by the registry.
  obs::Counter* evictions_ = nullptr;       // Owned by the registry.
  obs::Counter* rejoins_ = nullptr;         // Owned by the registry.

  /// Serializes probe rounds (background thread vs ProbeOnce callers).
  mutable Mutex probe_mu_;
  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ ALT_GUARDED_BY(mu_);
  bool stop_requested_ ALT_GUARDED_BY(mu_) = false;
  bool running_ ALT_GUARDED_BY(mu_) = false;

  std::thread prober_;  // Joined by Stop().
};

}  // namespace shard
}  // namespace serving
}  // namespace alt

#endif  // ALT_SRC_SERVING_SHARD_SUPERVISOR_H_
