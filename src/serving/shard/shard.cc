#include "src/serving/shard/shard.h"

#include <utility>

namespace alt {
namespace serving {
namespace shard {

WorkerShard::WorkerShard(std::string id, obs::MetricsRegistry* registry)
    : id_(std::move(id)),
      registry_(registry != nullptr ? registry
                                    : &obs::MetricsRegistry::Global()),
      engine_(registry_),
      queue_depth_gauge_(
          registry_->gauge("serving/shard/queue_depth/" + id_)),
      pressure_gauge_(registry_->gauge("serving/shard/pressure/" + id_)),
      requests_total_(registry_->counter("serving/shard/requests/" + id_)),
      worker_([this] { WorkerLoop(); }) {}

WorkerShard::~WorkerShard() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  worker_.join();
  // Anything still queued (submits racing destruction) resolves as
  // Unavailable rather than a broken promise.
  MutexLock lock(mu_);
  for (Task& task : queue_) {
    task.promise.set_value(
        Status::Unavailable("shard " + id_ + " shutting down"));
  }
  queue_.clear();
}

Status WorkerShard::Deploy(const std::string& scenario,
                           std::unique_ptr<models::BaseModel> model,
                           const DeployOptions& options, uint64_t version) {
  if (dead()) {
    return Status::Unavailable("shard " + id_ + " is dead");
  }
  {
    MutexLock lock(versions_mu_);
    auto it = versions_.find(scenario);
    if (it != versions_.end() && version < it->second) {
      return Status::FailedPrecondition(
          "stale deploy of " + scenario + " v" + std::to_string(version) +
          " on shard " + id_ + " (have v" + std::to_string(it->second) + ")");
    }
  }
  ALT_RETURN_IF_ERROR(engine_.Deploy(scenario, std::move(model), options));
  MutexLock lock(versions_mu_);
  uint64_t& current = versions_[scenario];
  // Re-check under the lock: a concurrent newer deploy may have landed
  // between the gate above and the engine swap; versions only move forward.
  if (version > current) current = version;
  return Status::OK();
}

Status WorkerShard::Undeploy(const std::string& scenario) {
  {
    MutexLock lock(versions_mu_);
    versions_.erase(scenario);
  }
  return engine_.Undeploy(scenario);
}

uint64_t WorkerShard::DeployedVersion(const std::string& scenario) const {
  MutexLock lock(versions_mu_);
  auto it = versions_.find(scenario);
  return it == versions_.end() ? 0 : it->second;
}

bool WorkerShard::UpdateShedState(int64_t depth) {
  const int64_t high = shed_high_watermark_.load(std::memory_order_relaxed);
  const int64_t low = shed_low_watermark_.load(std::memory_order_relaxed);
  if (high <= 0) {
    pressure_gauge_->Set(0.0);
    return false;
  }
  pressure_gauge_->Set(static_cast<double>(depth) /
                       static_cast<double>(high));
  bool shedding = shedding_.load(std::memory_order_relaxed);
  if (!shedding && depth >= high) {
    shedding = true;
    shedding_.store(true, std::memory_order_relaxed);
  } else if (shedding && depth <= low) {
    shedding = false;
    shedding_.store(false, std::memory_order_relaxed);
  }
  return shedding;
}

std::future<Result<std::vector<float>>> WorkerShard::SubmitPredict(
    const std::string& scenario, const data::Batch& batch,
    Admission admission, const obs::RequestContext& ctx) {
  Task task;
  task.scenario = scenario;
  task.batch = &batch;
  if (ctx.sampled()) {
    task.ctx = ctx;
    task.enqueue_us = obs::MonotonicMicros();
  }
  std::future<Result<std::vector<float>>> future = task.promise.get_future();
  if (dead()) {
    task.promise.set_value(Status::Unavailable("shard " + id_ + " is dead"));
    return future;
  }
  const int64_t depth = queue_depth_.load(std::memory_order_relaxed);
  const int64_t max_depth = max_queue_depth_.load(std::memory_order_relaxed);
  if (max_depth > 0 && depth >= max_depth) {
    task.promise.set_value(Status::ResourceExhausted(
        "shard " + id_ + " queue full (depth " + std::to_string(depth) +
        " >= cap " + std::to_string(max_depth) + ")"));
    return future;
  }
  // Soft shed: evaluate the hysteresis state machine on every submit so
  // recovery is observed, but only kNormal traffic is actually rejected.
  if (UpdateShedState(depth) && admission != Admission::kCritical) {
    task.promise.set_value(Status::ResourceExhausted(
        "shard " + id_ + " shedding load (depth " + std::to_string(depth) +
        " >= high watermark " +
        std::to_string(
            shed_high_watermark_.load(std::memory_order_relaxed)) +
        ")"));
    return future;
  }
  {
    MutexLock lock(mu_);
    if (stopping_) {
      task.promise.set_value(
          Status::Unavailable("shard " + id_ + " shutting down"));
      return future;
    }
    queue_.push_back(std::move(task));
  }
  queue_depth_gauge_->Set(
      static_cast<double>(queue_depth_.fetch_add(1) + 1));
  cv_.NotifyOne();
  return future;
}

void WorkerShard::Kill() {
  std::deque<Task> orphaned;
  {
    MutexLock lock(mu_);
    dead_.store(true, std::memory_order_release);
    orphaned.swap(queue_);
  }
  cv_.NotifyAll();
  for (Task& task : orphaned) {
    task.promise.set_value(Status::Unavailable("shard " + id_ + " is dead"));
    const int64_t depth = queue_depth_.fetch_sub(1) - 1;
    queue_depth_gauge_->Set(static_cast<double>(depth));
    UpdateShedState(depth);
  }
}

Status WorkerShard::Revive() {
  if (!dead()) {
    return Status::FailedPrecondition("shard " + id_ + " is not dead");
  }
  // Drop all stale serving state: the coordinator re-deploys every assigned
  // scenario from its cached bundles at current versions, and anything the
  // engine held from before the failure could conflict with scenarios
  // re-created at restarted versions while this shard was out.
  for (const std::string& scenario : engine_.Scenarios()) {
    ALT_RETURN_IF_ERROR(engine_.Undeploy(scenario));
  }
  {
    MutexLock lock(versions_mu_);
    versions_.clear();
  }
  shedding_.store(false, std::memory_order_relaxed);
  dead_.store(false, std::memory_order_release);
  return Status::OK();
}

void WorkerShard::PauseDispatchForTesting(bool paused) {
  {
    MutexLock lock(mu_);
    paused_ = paused;
  }
  cv_.NotifyAll();
}

void WorkerShard::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(mu_);
      while ((queue_.empty() || paused_) && !stopping_) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (dead()) {
      task.promise.set_value(
          Status::Unavailable("shard " + id_ + " is dead"));
    } else if (task.ctx.sampled()) {
      const double dequeue_us = obs::MonotonicMicros();
      Result<std::vector<float>> result = [&] {
        obs::TraceSpan dispatch_span("serving/shard/dispatch", task.ctx);
        return engine_.Predict(task.scenario, *task.batch);
      }();
      // Attribute queue_wait + compute only on success: a failed attempt's
      // wall time belongs to the coordinator's failover/shed segments, so
      // segments never double-count against the end-to-end latency.
      if (result.ok()) {
        task.ctx.trace->AddSegment(obs::segment::kQueueWait,
                                   (dequeue_us - task.enqueue_us) / 1e3);
        task.ctx.trace->AddSegment(
            obs::segment::kCompute,
            (obs::MonotonicMicros() - dequeue_us) / 1e3);
      }
      task.promise.set_value(std::move(result));
      requests_total_->Add(1);
      requests_served_.fetch_add(1, std::memory_order_relaxed);
    } else {
      task.promise.set_value(engine_.Predict(task.scenario, *task.batch));
      requests_total_->Add(1);
      requests_served_.fetch_add(1, std::memory_order_relaxed);
    }
    const int64_t depth = queue_depth_.fetch_sub(1) - 1;
    queue_depth_gauge_->Set(static_cast<double>(depth));
    UpdateShedState(depth);
  }
}

}  // namespace shard
}  // namespace serving
}  // namespace alt
