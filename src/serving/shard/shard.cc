#include "src/serving/shard/shard.h"

#include <utility>

namespace alt {
namespace serving {
namespace shard {

WorkerShard::WorkerShard(std::string id, obs::MetricsRegistry* registry)
    : id_(std::move(id)),
      registry_(registry != nullptr ? registry
                                    : &obs::MetricsRegistry::Global()),
      engine_(registry_),
      queue_depth_gauge_(
          registry_->gauge("serving/shard/queue_depth/" + id_)),
      requests_total_(registry_->counter("serving/shard/requests/" + id_)),
      worker_([this] { WorkerLoop(); }) {}

WorkerShard::~WorkerShard() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  worker_.join();
  // Anything still queued (submits racing destruction) resolves as
  // Unavailable rather than a broken promise.
  MutexLock lock(mu_);
  for (Task& task : queue_) {
    task.promise.set_value(
        Status::Unavailable("shard " + id_ + " shutting down"));
  }
  queue_.clear();
}

Status WorkerShard::Deploy(const std::string& scenario,
                           std::unique_ptr<models::BaseModel> model,
                           const DeployOptions& options, uint64_t version) {
  if (dead()) {
    return Status::Unavailable("shard " + id_ + " is dead");
  }
  {
    MutexLock lock(versions_mu_);
    auto it = versions_.find(scenario);
    if (it != versions_.end() && version < it->second) {
      return Status::FailedPrecondition(
          "stale deploy of " + scenario + " v" + std::to_string(version) +
          " on shard " + id_ + " (have v" + std::to_string(it->second) + ")");
    }
  }
  ALT_RETURN_IF_ERROR(engine_.Deploy(scenario, std::move(model), options));
  MutexLock lock(versions_mu_);
  uint64_t& current = versions_[scenario];
  // Re-check under the lock: a concurrent newer deploy may have landed
  // between the gate above and the engine swap; versions only move forward.
  if (version > current) current = version;
  return Status::OK();
}

Status WorkerShard::Undeploy(const std::string& scenario) {
  {
    MutexLock lock(versions_mu_);
    versions_.erase(scenario);
  }
  return engine_.Undeploy(scenario);
}

uint64_t WorkerShard::DeployedVersion(const std::string& scenario) const {
  MutexLock lock(versions_mu_);
  auto it = versions_.find(scenario);
  return it == versions_.end() ? 0 : it->second;
}

std::future<Result<std::vector<float>>> WorkerShard::SubmitPredict(
    const std::string& scenario, const data::Batch& batch) {
  Task task;
  task.scenario = scenario;
  task.batch = &batch;
  std::future<Result<std::vector<float>>> future = task.promise.get_future();
  if (dead()) {
    task.promise.set_value(Status::Unavailable("shard " + id_ + " is dead"));
    return future;
  }
  if (max_queue_depth_ > 0 &&
      queue_depth_.load(std::memory_order_relaxed) >= max_queue_depth_) {
    task.promise.set_value(
        Status::Unavailable("shard " + id_ + " queue full"));
    return future;
  }
  {
    MutexLock lock(mu_);
    if (stopping_) {
      task.promise.set_value(
          Status::Unavailable("shard " + id_ + " shutting down"));
      return future;
    }
    queue_.push_back(std::move(task));
  }
  queue_depth_gauge_->Set(
      static_cast<double>(queue_depth_.fetch_add(1) + 1));
  cv_.NotifyOne();
  return future;
}

void WorkerShard::Kill() {
  std::deque<Task> orphaned;
  {
    MutexLock lock(mu_);
    dead_.store(true, std::memory_order_release);
    orphaned.swap(queue_);
  }
  cv_.NotifyAll();
  for (Task& task : orphaned) {
    task.promise.set_value(Status::Unavailable("shard " + id_ + " is dead"));
    queue_depth_gauge_->Set(
        static_cast<double>(queue_depth_.fetch_sub(1) - 1));
  }
}

void WorkerShard::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (dead()) {
      task.promise.set_value(
          Status::Unavailable("shard " + id_ + " is dead"));
    } else {
      task.promise.set_value(engine_.Predict(task.scenario, *task.batch));
      requests_total_->Add(1);
      requests_served_.fetch_add(1, std::memory_order_relaxed);
    }
    queue_depth_gauge_->Set(
        static_cast<double>(queue_depth_.fetch_sub(1) - 1));
  }
}

}  // namespace shard
}  // namespace serving
}  // namespace alt
