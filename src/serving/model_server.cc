#include "src/serving/model_server.h"

#include "src/obs/trace.h"
#include "src/serving/model_store.h"

namespace alt {
namespace serving {

ModelServer::ModelServer(obs::MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry
                                    : &obs::MetricsRegistry::Global()) {}

std::string ModelServer::LatencyMetricName(const std::string& scenario) {
  return "serving/model_server/latency_ms/" + scenario;
}

Status ModelServer::Deploy(const std::string& scenario,
                           std::unique_ptr<models::BaseModel> model) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  model->SetTraining(false);
  std::shared_ptr<Deployment> deployment;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = deployments_.find(scenario);
    if (it == deployments_.end()) {
      deployment = std::make_shared<Deployment>();
      deployment->latency_ms =
          registry_->histogram(LatencyMetricName(scenario));
      deployments_[scenario] = deployment;
    } else {
      deployment = it->second;
    }
  }
  std::lock_guard<std::mutex> model_lock(deployment->mu);
  deployment->model = std::move(model);
  return Status::OK();
}

Status ModelServer::Undeploy(const std::string& scenario) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (deployments_.erase(scenario) == 0) {
    return Status::NotFound("scenario " + scenario);
  }
  return Status::OK();
}

bool ModelServer::IsDeployed(const std::string& scenario) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return deployments_.count(scenario) > 0;
}

std::vector<std::string> ModelServer::Scenarios() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::vector<std::string> out;
  for (const auto& [name, deployment] : deployments_) out.push_back(name);
  return out;
}

Result<std::vector<float>> ModelServer::Predict(const std::string& scenario,
                                                const data::Batch& batch) {
  std::shared_ptr<Deployment> deployment;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = deployments_.find(scenario);
    if (it == deployments_.end()) {
      return Status::NotFound("scenario " + scenario + " not deployed");
    }
    deployment = it->second;
  }
  // Per-deployment lock: the model's forward pass mutates training-mode
  // state, so concurrent requests to one scenario serialize here.
  std::lock_guard<std::mutex> model_lock(deployment->mu);
  if (deployment->model == nullptr) {
    return Status::NotFound("scenario " + scenario + " has no model");
  }
  ALT_TRACE_SPAN(span, "serving/model_server/predict");
  obs::ScopedTimerMs timer(deployment->latency_ms);
  return deployment->model->PredictProbs(batch);
}

Result<LatencyStats> ModelServer::GetLatencyStats(
    const std::string& scenario) const {
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (deployments_.find(scenario) == deployments_.end()) {
      return Status::NotFound("scenario " + scenario);
    }
  }
  const obs::HistogramSummary summary =
      registry_->histogram_summary(LatencyMetricName(scenario));
  LatencyStats stats;
  stats.num_requests = summary.count;
  stats.mean_ms = summary.mean;
  stats.p50_ms = summary.p50;
  stats.p95_ms = summary.p95;
  stats.p99_ms = summary.p99;
  stats.max_ms = summary.max;
  return stats;
}

Result<int64_t> ModelServer::FlopsPerSample(
    const std::string& scenario) const {
  std::shared_ptr<Deployment> deployment;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = deployments_.find(scenario);
    if (it == deployments_.end()) {
      return Status::NotFound("scenario " + scenario);
    }
    deployment = it->second;
  }
  std::lock_guard<std::mutex> model_lock(deployment->mu);
  if (deployment->model == nullptr) {
    return Status::NotFound("scenario " + scenario + " has no model");
  }
  return deployment->model->FlopsPerSample();
}

Status ModelServer::ExportBundle(const std::string& scenario,
                                 const std::string& path) const {
  std::shared_ptr<Deployment> deployment;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = deployments_.find(scenario);
    if (it == deployments_.end()) {
      return Status::NotFound("scenario " + scenario);
    }
    deployment = it->second;
  }
  std::lock_guard<std::mutex> model_lock(deployment->mu);
  if (deployment->model == nullptr) {
    return Status::NotFound("scenario " + scenario + " has no model");
  }
  return SaveModelBundleToFile(deployment->model.get(), path);
}

}  // namespace serving
}  // namespace alt
