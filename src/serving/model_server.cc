#include "src/serving/model_server.h"

#include <algorithm>

#include "src/serving/model_store.h"
#include "src/util/stopwatch.h"

namespace alt {
namespace serving {

Status ModelServer::Deploy(const std::string& scenario,
                           std::unique_ptr<models::BaseModel> model) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  model->SetTraining(false);
  std::shared_ptr<Deployment> deployment;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = deployments_.find(scenario);
    if (it == deployments_.end()) {
      deployment = std::make_shared<Deployment>();
      deployments_[scenario] = deployment;
    } else {
      deployment = it->second;
    }
  }
  std::lock_guard<std::mutex> model_lock(deployment->mu);
  deployment->model = std::move(model);
  return Status::OK();
}

Status ModelServer::Undeploy(const std::string& scenario) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (deployments_.erase(scenario) == 0) {
    return Status::NotFound("scenario " + scenario);
  }
  return Status::OK();
}

bool ModelServer::IsDeployed(const std::string& scenario) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return deployments_.count(scenario) > 0;
}

std::vector<std::string> ModelServer::Scenarios() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::vector<std::string> out;
  for (const auto& [name, deployment] : deployments_) out.push_back(name);
  return out;
}

Result<std::vector<float>> ModelServer::Predict(const std::string& scenario,
                                                const data::Batch& batch) {
  std::shared_ptr<Deployment> deployment;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = deployments_.find(scenario);
    if (it == deployments_.end()) {
      return Status::NotFound("scenario " + scenario + " not deployed");
    }
    deployment = it->second;
  }
  // Per-deployment lock: the model's forward pass mutates training-mode
  // state, so concurrent requests to one scenario serialize here.
  std::lock_guard<std::mutex> model_lock(deployment->mu);
  if (deployment->model == nullptr) {
    return Status::NotFound("scenario " + scenario + " has no model");
  }
  Stopwatch watch;
  std::vector<float> probs = deployment->model->PredictProbs(batch);
  deployment->latencies_ms.push_back(watch.ElapsedMillis());
  return probs;
}

Result<LatencyStats> ModelServer::GetLatencyStats(
    const std::string& scenario) const {
  std::shared_ptr<Deployment> deployment;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = deployments_.find(scenario);
    if (it == deployments_.end()) {
      return Status::NotFound("scenario " + scenario);
    }
    deployment = it->second;
  }
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> model_lock(deployment->mu);
    latencies = deployment->latencies_ms;
  }
  LatencyStats stats;
  stats.num_requests = static_cast<int64_t>(latencies.size());
  if (latencies.empty()) return stats;
  std::sort(latencies.begin(), latencies.end());
  double total = 0.0;
  for (double l : latencies) total += l;
  stats.mean_ms = total / static_cast<double>(latencies.size());
  auto percentile = [&](double p) {
    const size_t idx = std::min(
        latencies.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latencies.size())));
    return latencies[idx];
  };
  stats.p50_ms = percentile(0.50);
  stats.p95_ms = percentile(0.95);
  stats.p99_ms = percentile(0.99);
  stats.max_ms = latencies.back();
  return stats;
}

Result<int64_t> ModelServer::FlopsPerSample(
    const std::string& scenario) const {
  std::shared_ptr<Deployment> deployment;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = deployments_.find(scenario);
    if (it == deployments_.end()) {
      return Status::NotFound("scenario " + scenario);
    }
    deployment = it->second;
  }
  std::lock_guard<std::mutex> model_lock(deployment->mu);
  if (deployment->model == nullptr) {
    return Status::NotFound("scenario " + scenario + " has no model");
  }
  return deployment->model->FlopsPerSample();
}

Status ModelServer::ExportBundle(const std::string& scenario,
                                 const std::string& path) const {
  std::shared_ptr<Deployment> deployment;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = deployments_.find(scenario);
    if (it == deployments_.end()) {
      return Status::NotFound("scenario " + scenario);
    }
    deployment = it->second;
  }
  std::lock_guard<std::mutex> model_lock(deployment->mu);
  if (deployment->model == nullptr) {
    return Status::NotFound("scenario " + scenario + " has no model");
  }
  return SaveModelBundleToFile(deployment->model.get(), path);
}

}  // namespace serving
}  // namespace alt
