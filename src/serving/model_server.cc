#include "src/serving/model_server.h"

#include <algorithm>
#include <cmath>

#include "src/obs/memory_tracker.h"
#include "src/obs/trace.h"
#include "src/resilience/fault_injection.h"
#include "src/serving/model_store.h"

namespace alt {
namespace serving {

ModelServer::ModelServer(obs::MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry
                                    : &obs::MetricsRegistry::Global()) {}

std::string ModelServer::LatencyMetricName(const std::string& scenario) {
  return "serving/model_server/latency_ms/" + scenario;
}

Status ModelServer::Deploy(const std::string& scenario,
                           std::unique_ptr<models::BaseModel> model,
                           const DeployOptions& options) {
  if (!options.retry_transient) return DeployAttempt(scenario, &model, options);
  resilience::RetryPolicy policy(options.retry);
  return policy.Run("serving deploy " + scenario, [this, &scenario, &model,
                                                   &options]() {
    // DeployAttempt consumes the model only on success, so every retry
    // attempt still has it.
    return DeployAttempt(scenario, &model, options);
  });
}

Status ModelServer::DeployAttempt(const std::string& scenario,
                                  std::unique_ptr<models::BaseModel>* model,
                                  const DeployOptions& options) {
  if (model == nullptr || *model == nullptr) {
    return Status::InvalidArgument("null model");
  }
  ALT_FAULT_RETURN_IF("serving/deploy");
  (*model)->SetTraining(false);
  if (options.quantize_int8) {
    // Score the calibration batch with the fp32 weights first: those probs
    // are the distillation soft labels the quantized model is checked
    // against.
    std::vector<float> soft_labels;
    if (options.calibration != nullptr) {
      soft_labels = (*model)->PredictProbs(*options.calibration);
    }
    (*model)->QuantizeForServing();
    registry_->counter("serving/quantized_deploys")->Add();
    if (options.calibration != nullptr) {
      const std::vector<float> int8_probs =
          (*model)->PredictProbs(*options.calibration);
      double max_delta = 0.0;
      for (size_t i = 0; i < soft_labels.size(); ++i) {
        max_delta = std::max(
            max_delta, std::fabs(static_cast<double>(int8_probs[i]) -
                                 static_cast<double>(soft_labels[i])));
      }
      registry_
          ->gauge("serving/quantization/max_prob_delta/" + scenario)
          ->Set(max_delta);
    }
  }
  std::shared_ptr<Deployment> deployment;
  {
    MutexLock lock(registry_mu_);
    auto it = deployments_.find(scenario);
    if (it == deployments_.end()) {
      deployment = std::make_shared<Deployment>();
      deployment->latency_ms =
          registry_->histogram(LatencyMetricName(scenario));
      deployments_[scenario] = deployment;
    } else {
      deployment = it->second;
    }
  }
  MutexLock model_lock(deployment->mu);
  deployment->model = std::move(*model);
  return Status::OK();
}

void ModelServer::ConfigureResilience(ServingResilienceOptions options,
                                      resilience::Clock* clock) {
  MutexLock lock(breakers_mu_);
  resilience_ = std::move(options);
  clock_ = clock != nullptr ? clock : resilience::RealClock();
  fallbacks_total_ = registry_->counter("serving/fallbacks");
  unknown_fallbacks_total_ =
      registry_->counter("serving/unknown_scenario_fallbacks");
  deadline_exceeded_total_ =
      registry_->counter("serving/predict_deadline_exceeded");
  breakers_.clear();
  resilience_enabled_ = true;
}

Result<resilience::BreakerState> ModelServer::GetBreakerState(
    const std::string& scenario) const {
  MutexLock lock(breakers_mu_);
  auto it = breakers_.find(scenario);
  if (it == breakers_.end()) {
    return Status::NotFound("no breaker for scenario " + scenario);
  }
  return it->second->state();
}

std::map<std::string, resilience::BreakerState> ModelServer::BreakerStates()
    const {
  MutexLock lock(breakers_mu_);
  std::map<std::string, resilience::BreakerState> states;
  for (const auto& [scenario, breaker] : breakers_) {
    states.emplace(scenario, breaker->state());
  }
  return states;
}

resilience::CircuitBreaker* ModelServer::BreakerFor(
    const std::string& scenario) {
  MutexLock lock(breakers_mu_);
  auto it = breakers_.find(scenario);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(scenario, std::make_unique<resilience::CircuitBreaker>(
                                    "serving/" + scenario, resilience_.breaker,
                                    clock_, registry_))
             .first;
  }
  return it->second.get();
}

Status ModelServer::Undeploy(const std::string& scenario) {
  MutexLock lock(registry_mu_);
  if (deployments_.erase(scenario) == 0) {
    return Status::NotFound("scenario " + scenario);
  }
  return Status::OK();
}

bool ModelServer::IsDeployed(const std::string& scenario) const {
  MutexLock lock(registry_mu_);
  return deployments_.count(scenario) > 0;
}

std::vector<std::string> ModelServer::Scenarios() const {
  MutexLock lock(registry_mu_);
  std::vector<std::string> out;
  for (const auto& [name, deployment] : deployments_) out.push_back(name);
  return out;
}

std::shared_ptr<ModelServer::Deployment> ModelServer::FindDeployment(
    const std::string& scenario) const {
  MutexLock lock(registry_mu_);
  auto it = deployments_.find(scenario);
  return it == deployments_.end() ? nullptr : it->second;
}

Result<std::vector<float>> ModelServer::PredictOn(
    const std::shared_ptr<Deployment>& deployment, const data::Batch& batch) {
  // Per-deployment lock: the model's forward pass mutates training-mode
  // state, so concurrent requests to one scenario serialize here.
  MutexLock model_lock(deployment->mu);
  if (deployment->model == nullptr) {
    return Status::NotFound("deployment has no model");
  }
  ALT_FAULT_RETURN_IF("serving/predict");
  ALT_TRACE_SPAN(span, "serving/model_server/predict");
  obs::ScopedMemoryTag memory_tag("serving");
  obs::ScopedTimerMs timer(deployment->latency_ms);
  return deployment->model->PredictProbs(batch);
}

Result<std::vector<float>> ModelServer::FallbackPredict(
    const std::string& scenario, const data::Batch& batch) {
  fallbacks_total_->Add(1);
  if (!resilience_.fallback_scenario.empty() &&
      resilience_.fallback_scenario != scenario) {
    std::shared_ptr<Deployment> fallback =
        FindDeployment(resilience_.fallback_scenario);
    if (fallback != nullptr) {
      Result<std::vector<float>> result = PredictOn(fallback, batch);
      if (result.ok()) return result;
      // The heavy model failed too (possibly an injected fault); degrade
      // one more step to the constant prior rather than surface an error.
    }
  }
  return std::vector<float>(static_cast<size_t>(batch.batch_size),
                            resilience_.fallback_prior);
}

Result<std::vector<float>> ModelServer::Predict(const std::string& scenario,
                                                const data::Batch& batch) {
  std::shared_ptr<Deployment> deployment = FindDeployment(scenario);
  std::string target = scenario;
  if (deployment == nullptr && resilience_enabled_ &&
      !resilience_.default_scenario.empty() &&
      scenario != resilience_.default_scenario) {
    deployment = FindDeployment(resilience_.default_scenario);
    if (deployment != nullptr) {
      unknown_fallbacks_total_->Add(1);
      target = resilience_.default_scenario;
    }
  }
  if (deployment == nullptr) {
    return Status::NotFound("scenario " + scenario + " not deployed");
  }
  if (!resilience_enabled_) return PredictOn(deployment, batch);

  resilience::CircuitBreaker* breaker = BreakerFor(target);
  if (!breaker->AllowRequest()) return FallbackPredict(target, batch);
  const double start_ms = clock_->NowMs();
  Result<std::vector<float>> result = PredictOn(deployment, batch);
  const double elapsed_ms = clock_->NowMs() - start_ms;
  bool healthy = result.ok();
  if (healthy && resilience_.predict_deadline_ms > 0.0 &&
      elapsed_ms > resilience_.predict_deadline_ms) {
    deadline_exceeded_total_->Add(1);
    healthy = false;
  }
  if (healthy) {
    breaker->RecordSuccess();
    return result;
  }
  breaker->RecordFailure();
  return FallbackPredict(target, batch);
}

Result<LatencyStats> ModelServer::GetLatencyStats(
    const std::string& scenario) const {
  {
    MutexLock lock(registry_mu_);
    if (deployments_.find(scenario) == deployments_.end()) {
      return Status::NotFound("scenario " + scenario);
    }
  }
  const obs::HistogramSummary summary =
      registry_->histogram_summary(LatencyMetricName(scenario));
  LatencyStats stats;
  stats.num_requests = summary.count;
  stats.mean_ms = summary.mean;
  stats.p50_ms = summary.p50;
  stats.p95_ms = summary.p95;
  stats.p99_ms = summary.p99;
  stats.max_ms = summary.max;
  return stats;
}

Result<int64_t> ModelServer::FlopsPerSample(
    const std::string& scenario) const {
  std::shared_ptr<Deployment> deployment;
  {
    MutexLock lock(registry_mu_);
    auto it = deployments_.find(scenario);
    if (it == deployments_.end()) {
      return Status::NotFound("scenario " + scenario);
    }
    deployment = it->second;
  }
  MutexLock model_lock(deployment->mu);
  if (deployment->model == nullptr) {
    return Status::NotFound("scenario " + scenario + " has no model");
  }
  return deployment->model->FlopsPerSample();
}

Status ModelServer::ExportBundle(const std::string& scenario,
                                 const std::string& path) const {
  std::shared_ptr<Deployment> deployment;
  {
    MutexLock lock(registry_mu_);
    auto it = deployments_.find(scenario);
    if (it == deployments_.end()) {
      return Status::NotFound("scenario " + scenario);
    }
    deployment = it->second;
  }
  MutexLock model_lock(deployment->mu);
  if (deployment->model == nullptr) {
    return Status::NotFound("scenario " + scenario + " has no model");
  }
  return SaveModelBundleToFile(deployment->model.get(), path);
}

}  // namespace serving
}  // namespace alt
