#include "src/serving/model_store.h"

#include <cstdint>
#include <fstream>

#include "src/nas/nas_search.h"
#include "src/nn/serialize.h"
#include "src/resilience/fault_injection.h"
#include "src/util/atomic_file.h"
#include "src/util/json.h"

namespace alt {
namespace serving {

namespace {
constexpr char kMagic[4] = {'A', 'L', 'T', 'M'};
constexpr uint32_t kVersion = 1;
}  // namespace

Status SaveModelBundle(models::BaseModel* model, std::ostream* out) {
  const std::string config = model->config().ToJson().Dump();
  out->write(kMagic, sizeof(kMagic));
  const uint32_t version = kVersion;
  out->write(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t json_len = config.size();
  out->write(reinterpret_cast<const char*>(&json_len), sizeof(json_len));
  out->write(config.data(), static_cast<std::streamsize>(config.size()));
  if (!out->good()) return Status::IOError("bundle header write failed");
  return nn::SaveWeights(model, out);
}

Status SaveModelBundleToFile(models::BaseModel* model,
                             const std::string& path) {
  ALT_FAULT_RETURN_IF("serving/model_store/save");
  // Temp-file + rename so a crash or short write mid-save never leaves a
  // torn bundle at `path`: readers see the old bundle or the new one.
  return AtomicWriteFile(path, [model](std::ostream* out) {
    return SaveModelBundle(model, out);
  });
}

Result<std::unique_ptr<models::BaseModel>> LoadModelBundle(std::istream* in) {
  char magic[4];
  in->read(magic, sizeof(magic));
  if (!in->good() || std::string(magic, 4) != std::string(kMagic, 4)) {
    return Status::InvalidArgument("not a model bundle");
  }
  uint32_t version = 0;
  in->read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in->good() || version != kVersion) {
    return Status::InvalidArgument("unsupported bundle version");
  }
  uint64_t json_len = 0;
  in->read(reinterpret_cast<char*>(&json_len), sizeof(json_len));
  if (!in->good() || json_len > (64u << 20)) {
    return Status::IOError("bad config length");
  }
  std::string config_text(json_len, '\0');
  in->read(config_text.data(), static_cast<std::streamsize>(json_len));
  if (!in->good()) return Status::IOError("truncated config");

  ALT_ASSIGN_OR_RETURN(Json config_json, Json::Parse(config_text));
  ALT_ASSIGN_OR_RETURN(models::ModelConfig config,
                       models::ModelConfig::FromJson(config_json));
  Rng rng(1);  // Weights are overwritten below; init values are irrelevant.
  ALT_ASSIGN_OR_RETURN(std::unique_ptr<models::BaseModel> model,
                       nas::BuildModel(config, &rng));
  ALT_RETURN_IF_ERROR(nn::LoadWeights(model.get(), in));
  return model;
}

Result<std::unique_ptr<models::BaseModel>> LoadModelBundleFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  return LoadModelBundle(&in);
}

}  // namespace serving
}  // namespace alt
