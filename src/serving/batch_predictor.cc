#include "src/serving/batch_predictor.h"

#include <algorithm>
#include <utility>

#include "src/obs/trace.h"
#include "src/resilience/fault_injection.h"
#include "src/util/logging.h"

namespace alt {
namespace serving {

namespace {

std::vector<double> BatchSizeBounds(int64_t max_batch_size) {
  // Powers of two up to (at least) the configured maximum batch size.
  std::vector<double> bounds;
  for (double b = 1.0; b < static_cast<double>(max_batch_size); b *= 2.0) {
    bounds.push_back(b);
  }
  bounds.push_back(static_cast<double>(max_batch_size));
  return bounds;
}

}  // namespace

Result<std::unique_ptr<BatchPredictor>> BatchPredictor::Create(
    PredictFn predict, Options options, obs::MetricsRegistry* registry) {
  if (predict == nullptr) {
    return Status::InvalidArgument("BatchPredictor: null predict fn");
  }
  if (options.max_batch_size <= 0) {
    return Status::InvalidArgument(
        "BatchPredictor: max_batch_size must be >= 1, got " +
        std::to_string(options.max_batch_size));
  }
  if (options.max_delay_ms < 0.0) {
    return Status::InvalidArgument(
        "BatchPredictor: max_delay_ms must be >= 0, got " +
        std::to_string(options.max_delay_ms));
  }
  return std::make_unique<BatchPredictor>(std::move(predict), options,
                                          registry);
}

BatchPredictor::BatchPredictor(PredictFn predict, Options options,
                               obs::MetricsRegistry* registry)
    : predict_(std::move(predict)), options_(options) {
  ALT_CHECK(predict_ != nullptr);
  ALT_CHECK_GE(options_.max_batch_size, 1);
  ALT_CHECK(options_.max_delay_ms >= 0.0);
  registry_ =
      registry != nullptr ? registry : &obs::MetricsRegistry::Global();
  queue_depth_ = registry_->gauge("serving/batch_predictor/queue_depth");
  shard_unavailable_ = registry_->counter("serving/shard_unavailable");
  requests_shed_ = registry_->counter("serving/requests_shed");
  batches_dispatched_ =
      registry_->counter("serving/batch_predictor/batches_dispatched");
  batch_size_ = registry_->histogram("serving/batch_predictor/batch_size",
                                     BatchSizeBounds(options_.max_batch_size));
  queue_high_watermark_ =
      registry_->histogram("serving/batch_predictor/queue_high_watermark",
                           BatchSizeBounds(4 * options_.max_batch_size));
  flush_drain_ms_ =
      registry_->histogram("serving/batch_predictor/flush_drain_ms");
  request_latency_ =
      registry_->histogram("serving/batch_predictor/request_latency_ms");
  dispatcher_ = std::thread([this]() { DispatcherLoop(); });
}

BatchPredictor::~BatchPredictor() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  dispatcher_.join();
}

std::future<Result<float>> BatchPredictor::Enqueue(
    const std::string& scenario, Tensor profile,
    std::vector<int64_t> behavior, const obs::RequestContext& ctx) {
  Request request;
  request.scenario = scenario;
  request.profile = std::move(profile);
  request.behavior = std::move(behavior);
  request.ctx = ctx;
  // Control-flow timestamp (batching deadline), not telemetry.
  request.enqueue_time = std::chrono::steady_clock::now();  // alt_lint: allow(L006): batching deadline, not telemetry
  std::future<Result<float>> future = request.promise.get_future();
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(request));
    high_watermark_ = std::max(high_watermark_,
                               static_cast<int64_t>(queue_.size()));
    // Queued + in-flight; the matching decrement happens in Resolve so a
    // failed flush releases the gauge exactly like a successful one.
    queue_depth_->Add(1.0);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.NotifyOne();
  return future;
}

size_t BatchPredictor::QueueDepth() const {
  return static_cast<size_t>(queue_depth_->value());
}

int64_t BatchPredictor::BatchesDispatched() const {
  return batches_dispatched_->value();
}

void BatchPredictor::DispatcherLoop() {
  const auto max_delay =
      std::chrono::duration<double, std::milli>(options_.max_delay_ms);
  for (;;) {
    std::vector<Request> batch;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (shutdown_ && queue_.empty()) return;
      // Wait (bounded) for more requests to coalesce. Explicit while loops
      // instead of predicate lambdas: see src/util/mutex.h.
      if (!shutdown_ &&
          static_cast<int64_t>(queue_.size()) < options_.max_batch_size) {
        const auto deadline = queue_.front().enqueue_time +
                              std::chrono::duration_cast<
                                  std::chrono::steady_clock::duration>(
                                  max_delay);
        while (!shutdown_ &&
               static_cast<int64_t>(queue_.size()) < options_.max_batch_size) {
          if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
        }
      }
      // Pull a same-scenario run from the queue front (batches must share a
      // model).
      const std::string scenario = queue_.front().scenario;
      while (!queue_.empty() &&
             static_cast<int64_t>(batch.size()) < options_.max_batch_size &&
             queue_.front().scenario == scenario) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_high_watermark_->Observe(static_cast<double>(high_watermark_));
      high_watermark_ = static_cast<int64_t>(queue_.size());
      batches_dispatched_->Add(1);
    }
    batch_size_->Observe(static_cast<double>(batch.size()));
    obs::ScopedTimerMs drain_timer(flush_drain_ms_);
    Flush(std::move(batch));
  }
}

void BatchPredictor::Resolve(Request* request, Result<float> result) {
  // Request latency covers the full queue→reply path; measured from the
  // control-flow enqueue timestamp so no extra clock read is needed on the
  // hot enqueue path.
  double latency_ms = 0.0;
  if (request_latency_->enabled() || on_complete_ != nullptr) {
    latency_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - request->enqueue_time)  // alt_lint: allow(L006): pairs with the enqueue timestamp
            .count();
    request_latency_->Observe(latency_ms);
  }
  // Sampled requests complete their trace here: segment histograms + the
  // slow-trace ring see the request before its caller is unblocked.
  if (tracer_ != nullptr && request->ctx.sampled()) {
    tracer_->CompleteRequest(request->ctx, result.status());
  }
  // Every terminal path for a request funnels through here — success,
  // Predict failure, injected flush fault, shape rejection — so the gauge
  // can never leak on errors. Shard death (kUnavailable: the backend
  // vanished mid-flush) and load shedding (kResourceExhausted: every live
  // replica was over its watermark, retry later) are counted distinctly.
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kUnavailable) {
      shard_unavailable_->Add(1);
    } else if (result.status().code() == StatusCode::kResourceExhausted) {
      requests_shed_->Add(1);
    }
  }
  queue_depth_->Add(-1.0);
  pending_.fetch_sub(1, std::memory_order_relaxed);
  if (on_complete_ != nullptr) {
    on_complete_(request->scenario, latency_ms, result.status());
  }
  request->promise.set_value(std::move(result));
}

void BatchPredictor::Flush(std::vector<Request> batch) {
  ALT_CHECK(!batch.empty());
  ALT_TRACE_SPAN(span, "serving/batch_predictor/flush");
  const int64_t profile_dim = batch[0].profile.numel();
  const int64_t seq_len = static_cast<int64_t>(batch[0].behavior.size());

  // Validate homogeneous shapes; reject stragglers individually.
  data::Batch merged;
  merged.batch_size = 0;
  merged.seq_len = seq_len;
  std::vector<size_t> accepted;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].profile.numel() != profile_dim ||
        static_cast<int64_t>(batch[i].behavior.size()) != seq_len) {
      Resolve(&batch[i],
              Status::InvalidArgument("inconsistent request shape"));
      continue;
    }
    accepted.push_back(i);
  }
  if (accepted.empty()) return;

  // Attribute coalescing delay to every sampled accepted request, and elect
  // the first sampled one as the flush's representative: its context rides
  // the backend call, so the flush's downstream decomposition (route,
  // queue_wait, compute, failover, ...) lands on its trace. The other
  // sampled co-batched requests account the whole backend call as compute
  // below — either way segments sum to the request's end-to-end latency.
  obs::RequestContext rep;
  for (size_t i : accepted) {
    Request& request = batch[i];
    if (!request.ctx.sampled()) continue;
    const double wait_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - request.enqueue_time)  // alt_lint: allow(L006): pairs with the enqueue timestamp
            .count();
    request.ctx.trace->AddSegment(obs::segment::kBatchWait, wait_ms);
    if (!rep.sampled()) rep = request.ctx;
  }

  merged.batch_size = static_cast<int64_t>(accepted.size());
  merged.profiles = Tensor({merged.batch_size, profile_dim});
  merged.behaviors.resize(static_cast<size_t>(merged.batch_size * seq_len));
  merged.labels = Tensor({merged.batch_size, 1});
  for (int64_t r = 0; r < merged.batch_size; ++r) {
    const Request& request = batch[accepted[static_cast<size_t>(r)]];
    for (int64_t j = 0; j < profile_dim; ++j) {
      merged.profiles.at(r, j) = request.profile[j];
    }
    for (int64_t t = 0; t < seq_len; ++t) {
      merged.behaviors[static_cast<size_t>(r * seq_len + t)] =
          request.behavior[static_cast<size_t>(t)];
    }
  }

  // An injected flush fault fails the whole merged batch the same way a
  // failed Predict does: every accepted request resolves with the error.
  const double predict_start_us = rep.sampled() ? obs::MonotonicMicros() : 0.0;
  Result<std::vector<float>> scores = [&]() -> Result<std::vector<float>> {
    ALT_FAULT_RETURN_IF("serving/batch_predictor/flush");
    obs::TraceSpan predict_span("serving/batch_predictor/flush_predict", rep);
    return predict_(batch[accepted[0]].scenario, merged,
                    predict_span.context());
  }();
  if (rep.sampled()) {
    const double predict_ms =
        (obs::MonotonicMicros() - predict_start_us) / 1e3;
    // Non-representative sampled passengers: the shared backend call is
    // their compute time (they have no per-attempt visibility of their own).
    for (size_t i : accepted) {
      Request& request = batch[i];
      if (request.ctx.sampled() && request.ctx.trace != rep.trace) {
        request.ctx.trace->AddSegment(obs::segment::kCompute, predict_ms);
      }
    }
  }
  for (int64_t r = 0; r < merged.batch_size; ++r) {
    Request& request = batch[accepted[static_cast<size_t>(r)]];
    if (scores.ok()) {
      Resolve(&request, scores.value()[static_cast<size_t>(r)]);
    } else {
      Resolve(&request, scores.status());
    }
  }
}

}  // namespace serving
}  // namespace alt
