#include "src/serving/batch_predictor.h"

#include <algorithm>

#include "src/util/logging.h"

namespace alt {
namespace serving {

BatchPredictor::BatchPredictor(ModelServer* server, Options options)
    : server_(server), options_(options) {
  ALT_CHECK(server != nullptr);
  ALT_CHECK_GE(options_.max_batch_size, 1);
  dispatcher_ = std::thread([this]() { DispatcherLoop(); });
}

BatchPredictor::~BatchPredictor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
}

std::future<Result<float>> BatchPredictor::Enqueue(
    const std::string& scenario, Tensor profile,
    std::vector<int64_t> behavior) {
  Request request;
  request.scenario = scenario;
  request.profile = std::move(profile);
  request.behavior = std::move(behavior);
  request.enqueue_time = std::chrono::steady_clock::now();
  std::future<Result<float>> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(request));
  }
  cv_.notify_one();
  return future;
}

size_t BatchPredictor::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int64_t BatchPredictor::BatchesDispatched() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_dispatched_;
}

void BatchPredictor::DispatcherLoop() {
  const auto max_delay =
      std::chrono::duration<double, std::milli>(options_.max_delay_ms);
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      // Wait (bounded) for more requests to coalesce.
      if (!shutdown_ &&
          static_cast<int64_t>(queue_.size()) < options_.max_batch_size) {
        const auto deadline = queue_.front().enqueue_time +
                              std::chrono::duration_cast<
                                  std::chrono::steady_clock::duration>(
                                  max_delay);
        cv_.wait_until(lock, deadline, [this]() {
          return shutdown_ ||
                 static_cast<int64_t>(queue_.size()) >=
                     options_.max_batch_size;
        });
      }
      // Pull a same-scenario run from the queue front (batches must share a
      // model).
      const std::string scenario = queue_.front().scenario;
      while (!queue_.empty() &&
             static_cast<int64_t>(batch.size()) < options_.max_batch_size &&
             queue_.front().scenario == scenario) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++batches_dispatched_;
    }
    Flush(std::move(batch));
  }
}

void BatchPredictor::Flush(std::vector<Request> batch) {
  ALT_CHECK(!batch.empty());
  const int64_t n = static_cast<int64_t>(batch.size());
  const int64_t profile_dim = batch[0].profile.numel();
  const int64_t seq_len = static_cast<int64_t>(batch[0].behavior.size());

  // Validate homogeneous shapes; reject stragglers individually.
  data::Batch merged;
  merged.batch_size = 0;
  merged.seq_len = seq_len;
  std::vector<size_t> accepted;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].profile.numel() != profile_dim ||
        static_cast<int64_t>(batch[i].behavior.size()) != seq_len) {
      batch[i].promise.set_value(
          Status::InvalidArgument("inconsistent request shape"));
      continue;
    }
    accepted.push_back(i);
  }
  if (accepted.empty()) return;

  merged.batch_size = static_cast<int64_t>(accepted.size());
  merged.profiles = Tensor({merged.batch_size, profile_dim});
  merged.behaviors.resize(static_cast<size_t>(merged.batch_size * seq_len));
  merged.labels = Tensor({merged.batch_size, 1});
  for (int64_t r = 0; r < merged.batch_size; ++r) {
    const Request& request = batch[accepted[static_cast<size_t>(r)]];
    for (int64_t j = 0; j < profile_dim; ++j) {
      merged.profiles.at(r, j) = request.profile[j];
    }
    for (int64_t t = 0; t < seq_len; ++t) {
      merged.behaviors[static_cast<size_t>(r * seq_len + t)] =
          request.behavior[static_cast<size_t>(t)];
    }
  }

  Result<std::vector<float>> scores =
      server_->Predict(batch[accepted[0]].scenario, merged);
  for (int64_t r = 0; r < merged.batch_size; ++r) {
    Request& request = batch[accepted[static_cast<size_t>(r)]];
    if (scores.ok()) {
      request.promise.set_value(scores.value()[static_cast<size_t>(r)]);
    } else {
      request.promise.set_value(scores.status());
    }
  }
  (void)n;
}

}  // namespace serving
}  // namespace alt
