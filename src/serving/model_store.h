#ifndef ALT_SRC_SERVING_MODEL_STORE_H_
#define ALT_SRC_SERVING_MODEL_STORE_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "src/models/base_model.h"
#include "src/util/status.h"

namespace alt {
namespace serving {

/// Model bundles carry everything needed to rebuild a model at serving
/// time: the JSON config (including a NAS architecture when present) plus
/// the binary weights. Format:
///   magic "ALTM" | u32 version | u64 json_len | config json | ALTW weights.

Status SaveModelBundle(models::BaseModel* model, std::ostream* out);
Status SaveModelBundleToFile(models::BaseModel* model,
                             const std::string& path);

/// Rebuilds the model from a bundle (any encoder kind, including kNas).
Result<std::unique_ptr<models::BaseModel>> LoadModelBundle(std::istream* in);
Result<std::unique_ptr<models::BaseModel>> LoadModelBundleFromFile(
    const std::string& path);

}  // namespace serving
}  // namespace alt

#endif  // ALT_SRC_SERVING_MODEL_STORE_H_
