#ifndef ALT_SRC_SERVING_SERVING_CLIENT_H_
#define ALT_SRC_SERVING_SERVING_CLIENT_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/base_model.h"
#include "src/obs/metrics.h"
#include "src/obs/request_trace.h"
#include "src/obs/slo.h"
#include "src/resilience/circuit_breaker.h"
#include "src/serving/batch_predictor.h"
#include "src/serving/model_server.h"
#include "src/serving/shard/coordinator.h"
#include "src/serving/shard/supervisor.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace serving {

/// The public serving API: one facade over the sharded serving plane for
/// deploy, predict, batch-predict, undeploy, elasticity, and stats.
/// Subsumes direct ModelServer / BatchPredictor use (their deprecated shims
/// were removed after one release, per the PR 8 schedule).
///
/// Topology: `Options::num_shards` WorkerShards (each a ModelServer on its
/// own thread) behind a ShardCoordinator — consistent-hash routing with
/// virtual nodes, replica groups (power-of-two-choices balancing, wider
/// groups for DeployOptions::hot scenarios), breaker-driven rebalancing on
/// shard failure, and version-gated deploy broadcast. `num_shards = 1`
/// (the default) reproduces the classic single-server layout through the
/// same API.
///
/// Batch path: one BatchPredictor per shard, each flushing through the
/// coordinator with that shard preferred — micro-batching locality is kept
/// while a vanished shard's queued requests fail over to replicas instead
/// of being lost; only when no replica remains do they fail with
/// Status kUnavailable (counted in serving/shard_unavailable).
class ServingClient {
 public:
  struct Options {
    /// Worker shards. 1 = classic single-server serving.
    int num_shards = 1;
    /// Virtual nodes per shard on the consistent-hash ring.
    int vnodes_per_shard = 128;
    /// Replicas per scenario; hot scenarios get `hot_replication`.
    int replication = 1;
    int hot_replication = 2;
    /// Shard-health breakers watched by the coordinator; an open breaker
    /// (or a dead shard) triggers the rebalance.
    resilience::CircuitBreakerOptions shard_breaker =
        shard::CoordinatorOptions::DefaultShardBreaker();
    /// SubmitPredict backpressure per shard; 0 = unbounded.
    int64_t max_queue_depth_per_shard = 0;
    /// Soft load-shedding watermarks per shard (hysteresis): a shard whose
    /// queue reaches the high watermark rejects non-critical requests with
    /// kResourceExhausted until it drains to the low watermark. Hot /
    /// everywhere-deployed scenarios shed last (only the hard cap applies
    /// to them). high <= 0 disables soft shedding.
    int64_t shed_high_watermark = 0;
    int64_t shed_low_watermark = 0;
    /// Warm re-join pacing: a re-admitted shard's virtual nodes enter the
    /// ring in this many staged batches, optionally pausing between stages
    /// so in-flight traffic settles onto the new routing.
    int rejoin_stages = 4;
    double rejoin_stage_pause_ms = 0.0;
    /// Health-probed membership: construct (and start) a ShardSupervisor
    /// driving the Live -> Suspect -> Dead -> Rejoining lifecycle, with
    /// `supervisor` holding the probe cadence / eviction / cooldown knobs.
    /// Tests that need exact schedules usually keep this off and drive a
    /// standalone ShardSupervisor::ProbeOnce() on a FakeClock instead.
    bool enable_supervisor = false;
    shard::SupervisorOptions supervisor;
    /// Clock for re-join pacing (and the supervisor, unless its own clock
    /// is set); nullptr = real clock.
    resilience::Clock* clock = nullptr;
    /// Micro-batching knobs of the EnqueuePredict path.
    BatchPredictor::Options batching;
    /// Graceful degradation (breakers + fallback predictions) on every
    /// shard engine, enabled at construction. EnableResilience() turns it
    /// on later (e.g. with a test clock). This is where the old
    /// ServingResilienceOptions plumbing now lives.
    bool enable_resilience = false;
    ServingResilienceOptions resilience;
    /// Request-scoped tracing: every Predict/EnqueuePredict ticks the
    /// tracer; sampled requests (rate from ALT_TRACE_SAMPLE unless
    /// trace.sample_rate >= 0) get per-segment latency attribution and a
    /// slot in the slow-trace ring (/trace/slow). A null trace.registry /
    /// trace.recorder inherits the client's registry / global recorder.
    obs::RequestTracer::Options trace;
    /// Per-scenario SLO burn-rate tracking. A null slo.registry inherits
    /// the client's registry; a null slo.now_ms wraps Options::clock when
    /// one is set (FakeClock tests drive the burn windows), else the
    /// steady clock.
    obs::SloTracker::Options slo;
  };

  /// Aggregate serving-plane stats (per-scenario latency distributions come
  /// from GetLatencyStats).
  struct Stats {
    int num_shards = 0;
    int live_shards = 0;
    /// max/mean scenario-ownership share across live shards (1.0 = even).
    double routing_imbalance = 1.0;
    int64_t requests_served = 0;
    /// Batch-path requests enqueued but not yet resolved.
    int64_t pending_batch_requests = 0;
    /// Sampled requests completed by the request tracer.
    int64_t traced_requests = 0;
    /// Slowest completed traced request retained in the slow-trace ring.
    double slowest_request_ms = 0.0;
    /// Scenarios whose short-window SLO burn rate currently exceeds 1.
    int scenarios_burning = 0;
  };

  /// `registry == nullptr` selects the process-global registry; all shards
  /// and batchers share it, so per-scenario metrics aggregate fleet-wide.
  explicit ServingClient(Options options,
                         obs::MetricsRegistry* registry = nullptr);
  /// Default topology: one shard, global registry. (A separate constructor
  /// because a `= {}` default argument cannot name the nested Options
  /// before its member initializers are parsed.)
  ServingClient();
  ~ServingClient();

  ServingClient(const ServingClient&) = delete;
  ServingClient& operator=(const ServingClient&) = delete;

  /// Deploys `model` to the scenario's replica group (broadcast, version
  /// gated). DeployOptions selects quantization, hot replication, and
  /// transient-failure retries.
  Status Deploy(const std::string& scenario,
                std::unique_ptr<models::BaseModel> model,
                const DeployOptions& options = {});

  /// Deploys to every shard — for the resilience fallback/default
  /// scenarios any shard must answer locally.
  Status DeployEverywhere(const std::string& scenario,
                          std::unique_ptr<models::BaseModel> model,
                          const DeployOptions& options = {});

  Status Undeploy(const std::string& scenario);
  bool IsDeployed(const std::string& scenario) const;
  std::vector<std::string> Scenarios() const;

  /// Synchronous batch predict: routed to the scenario's replica group with
  /// load balancing and failover. Starts a request trace (sampled at the
  /// tracer's rate) and records the outcome against the scenario's latency
  /// histogram and SLO.
  Result<std::vector<float>> Predict(const std::string& scenario,
                                     const data::Batch& batch);

  /// Asynchronous single-request predict: coalesced into micro-batches on
  /// the scenario's owner shard, flushed through the coordinator.
  std::future<Result<float>> EnqueuePredict(const std::string& scenario,
                                            Tensor profile,
                                            std::vector<int64_t> behavior);

  /// Blocks until every enqueued batch request has resolved.
  void DrainBatchQueues() const;

  /// Enables graceful degradation on every shard engine and deploys
  /// nothing — pair with DeployEverywhere for the fallback scenario.
  /// `clock == nullptr` selects the real clock.
  void EnableResilience(const ServingResilienceOptions& options,
                        resilience::Clock* clock = nullptr);

  /// Shard-health breakers ("shard:<id>") plus worst per-scenario engine
  /// breaker — drives the telemetry /healthz probe.
  std::map<std::string, resilience::BreakerState> BreakerStates() const;

  Stats GetStats() const;
  Result<LatencyStats> GetLatencyStats(const std::string& scenario) const;
  Result<int64_t> FlopsPerSample(const std::string& scenario) const;
  Status ExportBundle(const std::string& scenario,
                      const std::string& path) const;

  std::vector<std::string> ShardIds() const;
  int NumLiveShards() const;
  /// Chaos hook: kills a shard; traffic fails over and the coordinator
  /// rebalances on the next requests against it.
  Status KillShard(const std::string& shard_id);

  /// Warm re-join of a killed/evicted shard: models re-deploy from the
  /// coordinator's cached bundles before its virtual nodes re-enter the
  /// ring in staged batches. See ShardCoordinator::RejoinShard.
  Status RejoinShard(const std::string& shard_id);

  /// Elastic scale-up: adds a brand-new shard through the same warm staged
  /// admission, and gives it a batching front-end.
  Status AddShard(const std::string& shard_id);

  /// Shard-state health report, the /healthz / /readyz source of truth.
  struct HealthReport {
    /// False only when a deployed scenario has no live replica left —
    /// requests to it fail until a re-join/re-deploy. Maps to HTTP 503.
    bool healthy = true;
    /// True while any shard is not live (suspect / dead / rejoining):
    /// serving capacity is degraded but every scenario still answers.
    bool degraded = false;
    /// Shard id -> lifecycle state name ("live", "suspect", "dead",
    /// "rejoining"). Supervisor states when one runs, else live/dead.
    std::map<std::string, std::string> shard_states;
    std::vector<std::string> unservable_scenarios;
  };
  HealthReport GetHealth() const;

  /// The underlying control plane — white-box access for tests and tools.
  shard::ShardCoordinator* coordinator() { return &coordinator_; }
  const shard::ShardCoordinator* coordinator() const { return &coordinator_; }

  /// The health-probe loop; nullptr unless Options::enable_supervisor.
  shard::ShardSupervisor* supervisor() { return supervisor_.get(); }

  /// Request tracer (sampling, slow-trace ring) — the /trace/slow source.
  obs::RequestTracer* tracer() const { return tracer_.get(); }
  /// Per-scenario SLO burn tracker — the /slo and alt_slo_* source.
  obs::SloTracker* slo() const { return slo_.get(); }

  obs::MetricsRegistry* registry() const { return registry_; }
  const Options& options() const { return options_; }

 private:
  BatchPredictor* BatcherFor(const std::string& scenario)
      ALT_EXCLUDES(batchers_mu_);
  /// Creates the shard's batcher if absent (runtime AddShard path).
  void EnsureBatcher(const std::string& shard_id) ALT_EXCLUDES(batchers_mu_);
  /// Points a freshly created batcher at the tracer + completion hook.
  void WireBatcher(BatchPredictor* batcher);
  /// Per-scenario request-latency histogram
  /// (`serving/request_latency_ms/<scenario>` → the exporter renders it as
  /// alt_serving_request_latency_ms{id="<scenario>"}), cached per scenario.
  obs::Histogram* LatencyHistogramFor(const std::string& scenario)
      ALT_EXCLUDES(latency_mu_);
  /// Terminal accounting for every request (direct or batched): scenario
  /// latency histogram + SLO outcome.
  void RecordOutcome(const std::string& scenario, double latency_ms,
                     const Status& status);

  Options options_;
  obs::MetricsRegistry* registry_;
  /// Declared before the coordinator/batchers: batcher dispatcher threads
  /// call into the tracer and SLO tracker until they join, so these must be
  /// destroyed after them.
  std::unique_ptr<obs::RequestTracer> tracer_;
  std::unique_ptr<obs::SloTracker> slo_;
  mutable Mutex latency_mu_;
  std::map<std::string, obs::Histogram*> latency_hists_
      ALT_GUARDED_BY(latency_mu_);
  shard::ShardCoordinator coordinator_;
  /// One batcher per shard id; declared after the coordinator so their
  /// dispatcher threads shut down first. Guarded: AddShard grows the map
  /// at runtime.
  mutable Mutex batchers_mu_;
  std::map<std::string, std::unique_ptr<BatchPredictor>> batchers_
      ALT_GUARDED_BY(batchers_mu_);
  /// Declared last so its probe thread stops before anything it watches.
  std::unique_ptr<shard::ShardSupervisor> supervisor_;
};

}  // namespace serving
}  // namespace alt

#endif  // ALT_SRC_SERVING_SERVING_CLIENT_H_
