#ifndef ALT_SRC_AUTOGRAD_OPS_H_
#define ALT_SRC_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "src/autograd/variable.h"
#include "src/util/rng.h"

namespace alt {
namespace ag {

/// Differentiable operations over Variables. Every op records the graph and
/// supplies an exact gradient; all gradients are verified against finite
/// differences in tests/autograd_grad_check_test.cc.

// ---------------------------------------------------------------------------
// Elementwise arithmetic (operands must have identical shapes)
// ---------------------------------------------------------------------------
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Neg(const Variable& x);
/// x * c for a compile-time-known scalar c.
Variable ScalarMul(const Variable& x, float c);
/// x + c elementwise.
Variable ScalarAdd(const Variable& x, float c);
/// x broadcast-added with a rank-1 bias over the last dimension.
Variable AddBias(const Variable& x, const Variable& bias);
/// x scaled by a [1]-shaped Variable (gradient flows into both).
Variable MulScalarVar(const Variable& x, const Variable& s);
/// Stops gradient: same value, no parents. Implements detached(.) in Eq. 8.
Variable Detach(const Variable& x);
/// Picks element i of a rank-1 variable as a [1]-shaped Variable.
Variable IndexSelect(const Variable& v, int64_t index);

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------
/// a[m,k] @ b[k,n] -> [m,n].
Variable MatMul(const Variable& a, const Variable& b);
/// Per-batch matmul over leading dim with optional transposes:
/// a[B,*,*] @ b[B,*,*] -> [B,m,n].
Variable BatchedMatMul(const Variable& a, const Variable& b, bool trans_a,
                       bool trans_b);

// ---------------------------------------------------------------------------
// Shape ops
// ---------------------------------------------------------------------------
Variable Reshape(const Variable& x, std::vector<int64_t> shape);
/// x[..., start:start+len] over the last dimension.
Variable SliceLastDim(const Variable& x, int64_t start, int64_t len);
/// Concatenation along the last dimension; leading dims must match.
Variable ConcatLastDim(const std::vector<Variable>& xs);
/// x[B,T,C] -> x[:, t, :] of shape [B,C].
Variable SelectTime(const Variable& x, int64_t t);
/// L tensors of [B,C] -> [B,L,C].
Variable StackTime(const std::vector<Variable>& xs);

// ---------------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------------
Variable Sigmoid(const Variable& x);
Variable Tanh(const Variable& x);
Variable Relu(const Variable& x);
/// Exact GELU: x * Phi(x).
Variable Gelu(const Variable& x);
Variable Exp(const Variable& x);
/// Natural log; inputs must be positive.
Variable Log(const Variable& x);
/// Softmax over the last dimension (any rank).
Variable SoftmaxLastDim(const Variable& x);

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------
/// Sum of all entries -> [1].
Variable SumAll(const Variable& x);
/// Mean of all entries -> [1].
Variable MeanAll(const Variable& x);
/// Mean over the time axis: [B,T,C] -> [B,C].
Variable MeanTime(const Variable& x);

// ---------------------------------------------------------------------------
// Neural-network primitives
// ---------------------------------------------------------------------------
/// Embedding lookup: weight[V,E], ids (length B*T, row-major [B,T])
/// -> [B,T,E]. Out-of-range ids are checked.
Variable EmbeddingLookup(const Variable& weight,
                         const std::vector<int64_t>& ids, int64_t batch,
                         int64_t seq_len);
/// 1-D convolution, SAME padding, stride 1. x[B,T,Cin], w[Cout,K,Cin],
/// optional bias[Cout] (pass undefined Variable to skip), dilation >= 1.
Variable Conv1D(const Variable& x, const Variable& w, const Variable& bias,
                int64_t dilation);
Variable AvgPool1D(const Variable& x, int64_t k);
Variable MaxPool1D(const Variable& x, int64_t k);
/// Layer normalization over the last dimension with affine params.
Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps = 1e-5f);
/// Inverted dropout. Identity when !training or p == 0.
Variable Dropout(const Variable& x, float p, Rng* rng, bool training);

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------
/// Mean binary cross-entropy on logits; numerically stable. `targets` may be
/// soft labels in [0,1] (used for distillation, Eq. 5). Shapes must match.
Variable BCEWithLogits(const Variable& logits, const Variable& targets);

}  // namespace ag
}  // namespace alt

#endif  // ALT_SRC_AUTOGRAD_OPS_H_
