#include "src/autograd/variable.h"

#include <unordered_set>

#include "src/util/logging.h"

namespace alt {
namespace ag {

Variable Variable::Parameter(Tensor value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  return Variable(std::move(node));
}

Variable Variable::Constant(Tensor value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  return Variable(std::move(node));
}

Variable MakeOpNode(Tensor value, std::vector<std::shared_ptr<Node>> parents,
                    std::function<void(Node*)> backward_fn,
                    const char* op_name, int64_t flops) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->op_name = op_name;
  node->flops = flops == kFlopsElementwise ? node->value.numel() : flops;
  node->parents = std::move(parents);
  for (const auto& p : node->parents) {
    if (p->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  if (node->requires_grad) {
    node->backward_fn = std::move(backward_fn);
  }
  return Variable(std::move(node));
}

void Variable::Backward() const {
  ALT_CHECK(defined());
  ALT_CHECK_EQ(node_->value.numel(), 1)
      << "Backward() must start from a scalar";
  if (!node_->requires_grad) return;

  // Iterative post-order DFS to get a topological order (parents before
  // children in `order`; we then traverse in reverse).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      Node* parent = frame.node->parents[frame.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  node_->EnsureGrad();
  node_->grad.Fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn) {
      node->backward_fn(node);
    }
  }
}

}  // namespace ag
}  // namespace alt
