#ifndef ALT_SRC_AUTOGRAD_VARIABLE_H_
#define ALT_SRC_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/logging.h"

namespace alt {
namespace ag {

/// A node in the dynamically-built computation graph. Users interact with
/// Variable; Node is the shared state behind it.
struct Node {
  Tensor value;
  Tensor grad;  // Allocated lazily by EnsureGrad(); same shape as value.
  bool requires_grad = false;
  bool grad_allocated = false;
  /// Static string naming the recording op ("matmul", "conv1d", ...); empty
  /// for leaves. Consumed by analysis::AuditGraph.
  const char* op_name = "";
  /// Forward-pass FLOPs of this op for the recorded shapes, following the
  /// same accounting conventions as nas::OpSpec::Flops (2 FLOPs per
  /// multiply-add; data movement is free). 0 for leaves and pure-layout ops.
  int64_t flops = 0;
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates this node's grad into its parents' grads. Null for leaves.
  std::function<void(Node*)> backward_fn;

  /// Allocates (zeroed) grad storage if not present.
  void EnsureGrad() {
    if (!grad_allocated) {
      grad = Tensor(value.shape());
      grad_allocated = true;
    }
  }
};

/// A handle to a computation-graph node. Copies share the node. Building ops
/// on Variables records the graph; calling Backward() on a scalar Variable
/// runs reverse-mode differentiation, accumulating into leaf gradients.
class Variable {
 public:
  /// An undefined variable; defined() is false.
  Variable() = default;
  explicit Variable(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  /// A trainable leaf (requires_grad = true).
  static Variable Parameter(Tensor value);
  /// A non-trainable leaf (inputs, labels, fixed constants).
  static Variable Constant(Tensor value);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const {
    ALT_DCHECK(node_ != nullptr) << "value() on undefined Variable";
    return node_->value;
  }
  /// Mutable access for optimizers; never call mid-graph.
  Tensor& mutable_value() {
    ALT_DCHECK(node_ != nullptr) << "mutable_value() on undefined Variable";
    return node_->value;
  }
  /// The accumulated gradient. Requires grad storage (after Backward()).
  const Tensor& grad() const {
    ALT_DCHECK(node_ != nullptr) << "grad() on undefined Variable";
    return node_->grad;
  }
  Tensor& mutable_grad() {
    ALT_DCHECK(node_ != nullptr) << "mutable_grad() on undefined Variable";
    node_->EnsureGrad();
    return node_->grad;
  }
  bool requires_grad() const {
    ALT_DCHECK(node_ != nullptr) << "requires_grad() on undefined Variable";
    return node_->requires_grad;
  }
  bool has_grad() const {
    ALT_DCHECK(node_ != nullptr) << "has_grad() on undefined Variable";
    return node_->grad_allocated;
  }

  /// Zeroes (and allocates) the gradient buffer.
  void ZeroGrad() {
    ALT_DCHECK(node_ != nullptr) << "ZeroGrad() on undefined Variable";
    node_->EnsureGrad();
    node_->grad.SetZero();
  }

  /// Reverse-mode sweep from this scalar ([1]-shaped) variable. Gradients
  /// accumulate into every reachable leaf with requires_grad.
  void Backward() const;

  const std::shared_ptr<Node>& node() const { return node_; }

 private:
  std::shared_ptr<Node> node_;
};

/// Creates an op node: `value` is the forward result, `parents` its inputs,
/// `backward_fn` the gradient rule. requires_grad is inherited from parents.
/// `op_name` must be a static string naming the op; `flops` is the op's
/// forward cost for the recorded shapes (kFlopsElementwise = one FLOP per
/// output element, the default for elementwise ops).
inline constexpr int64_t kFlopsElementwise = -1;
Variable MakeOpNode(Tensor value, std::vector<std::shared_ptr<Node>> parents,
                    std::function<void(Node*)> backward_fn,
                    const char* op_name = "op",
                    int64_t flops = kFlopsElementwise);

}  // namespace ag
}  // namespace alt

#endif  // ALT_SRC_AUTOGRAD_VARIABLE_H_
