#ifndef ALT_SRC_AUTOGRAD_VARIABLE_H_
#define ALT_SRC_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/tensor/tensor.h"

namespace alt {
namespace ag {

/// A node in the dynamically-built computation graph. Users interact with
/// Variable; Node is the shared state behind it.
struct Node {
  Tensor value;
  Tensor grad;  // Allocated lazily by EnsureGrad(); same shape as value.
  bool requires_grad = false;
  bool grad_allocated = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates this node's grad into its parents' grads. Null for leaves.
  std::function<void(Node*)> backward_fn;

  /// Allocates (zeroed) grad storage if not present.
  void EnsureGrad() {
    if (!grad_allocated) {
      grad = Tensor(value.shape());
      grad_allocated = true;
    }
  }
};

/// A handle to a computation-graph node. Copies share the node. Building ops
/// on Variables records the graph; calling Backward() on a scalar Variable
/// runs reverse-mode differentiation, accumulating into leaf gradients.
class Variable {
 public:
  /// An undefined variable; defined() is false.
  Variable() = default;
  explicit Variable(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  /// A trainable leaf (requires_grad = true).
  static Variable Parameter(Tensor value);
  /// A non-trainable leaf (inputs, labels, fixed constants).
  static Variable Constant(Tensor value);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  /// Mutable access for optimizers; never call mid-graph.
  Tensor& mutable_value() { return node_->value; }
  /// The accumulated gradient. Requires grad storage (after Backward()).
  const Tensor& grad() const { return node_->grad; }
  Tensor& mutable_grad() {
    node_->EnsureGrad();
    return node_->grad;
  }
  bool requires_grad() const { return node_->requires_grad; }
  bool has_grad() const { return node_->grad_allocated; }

  /// Zeroes (and allocates) the gradient buffer.
  void ZeroGrad() {
    node_->EnsureGrad();
    node_->grad.SetZero();
  }

  /// Reverse-mode sweep from this scalar ([1]-shaped) variable. Gradients
  /// accumulate into every reachable leaf with requires_grad.
  void Backward() const;

  const std::shared_ptr<Node>& node() const { return node_; }

 private:
  std::shared_ptr<Node> node_;
};

/// Creates an op node: `value` is the forward result, `parents` its inputs,
/// `backward_fn` the gradient rule. requires_grad is inherited from parents.
Variable MakeOpNode(Tensor value, std::vector<std::shared_ptr<Node>> parents,
                    std::function<void(Node*)> backward_fn);

}  // namespace ag
}  // namespace alt

#endif  // ALT_SRC_AUTOGRAD_VARIABLE_H_
