#include "src/autograd/ops.h"

#include <cmath>

#include "src/tensor/kernels.h"
#include "src/util/logging.h"
#include "src/util/parallel_for.h"

namespace alt {
namespace ag {

namespace {

constexpr float kInvSqrt2 = 0.7071067811865476f;
constexpr float kInvSqrt2Pi = 0.3989422804014327f;

/// Estimated scalar ops per element for the elementwise / per-row hot paths
/// below; ParallelForWork turns these into fixed-size chunks, so threading
/// kicks in only above ~32K ops and results stay identical for any thread
/// count (every chunk writes a disjoint slice).
constexpr int64_t kMapWork = 4;
constexpr int64_t kTranscendentalWork = 16;

void CheckSameShape(const Variable& a, const Variable& b) {
  ALT_CHECK(a.value().SameShape(b.value()))
      << ShapeToString(a.value().shape()) << " vs "
      << ShapeToString(b.value().shape());
}

/// Elementwise unary op helper: out = f(x), dx += dOut * dfdx(x, out).
template <typename FwdFn, typename GradFn>
Variable UnaryElementwise(const Variable& x, const char* name, FwdFn fwd,
                          GradFn dfdx) {
  Tensor out(x.value().shape());
  const Tensor& xv = x.value();
  ParallelForWork(xv.numel(), kTranscendentalWork,
                  [&](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i) out[i] = fwd(xv[i]);
                  });
  auto xn = x.node();
  return MakeOpNode(
      std::move(out), {xn},
      [xn, dfdx](Node* self) {
        if (!xn->requires_grad) return;
        xn->EnsureGrad();
        ParallelForWork(self->value.numel(), kTranscendentalWork,
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) {
                            xn->grad[i] +=
                                self->grad[i] * dfdx(xn->value[i],
                                                     self->value[i]);
                          }
                        });
      },
      name);
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  CheckSameShape(a, b);
  Tensor out = a.value();
  out.AddInPlace(b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpNode(std::move(out), {an, bn},
                    [an, bn](Node* self) {
                      for (auto& p : {an, bn}) {
                        if (p->requires_grad) {
                          p->EnsureGrad();
                          p->grad.AddInPlace(self->grad);
                        }
                      }
                    },
                    "add");
}

Variable Sub(const Variable& a, const Variable& b) {
  CheckSameShape(a, b);
  Tensor out = a.value();
  out.Axpy(-1.0f, b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpNode(std::move(out), {an, bn},
                    [an, bn](Node* self) {
                      if (an->requires_grad) {
                        an->EnsureGrad();
                        an->grad.AddInPlace(self->grad);
                      }
                      if (bn->requires_grad) {
                        bn->EnsureGrad();
                        bn->grad.Axpy(-1.0f, self->grad);
                      }
                    },
                    "sub");
}

Variable Mul(const Variable& a, const Variable& b) {
  CheckSameShape(a, b);
  Tensor out(a.value().shape());
  ParallelForWork(out.numel(), kMapWork, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) out[i] = a.value()[i] * b.value()[i];
  });
  auto an = a.node();
  auto bn = b.node();
  return MakeOpNode(std::move(out), {an, bn},
                    [an, bn](Node* self) {
                      if (an->requires_grad) {
                        an->EnsureGrad();
                        ParallelForWork(
                            self->grad.numel(), kMapWork,
                            [&](int64_t lo, int64_t hi) {
                              for (int64_t i = lo; i < hi; ++i) {
                                an->grad[i] += self->grad[i] * bn->value[i];
                              }
                            });
                      }
                      if (bn->requires_grad) {
                        bn->EnsureGrad();
                        ParallelForWork(
                            self->grad.numel(), kMapWork,
                            [&](int64_t lo, int64_t hi) {
                              for (int64_t i = lo; i < hi; ++i) {
                                bn->grad[i] += self->grad[i] * an->value[i];
                              }
                            });
                      }
                    },
                    "mul");
}

Variable Neg(const Variable& x) { return ScalarMul(x, -1.0f); }

Variable ScalarMul(const Variable& x, float c) {
  Tensor out = x.value();
  out.ScaleInPlace(c);
  auto xn = x.node();
  return MakeOpNode(std::move(out), {xn},
                    [xn, c](Node* self) {
                      if (!xn->requires_grad) return;
                      xn->EnsureGrad();
                      xn->grad.Axpy(c, self->grad);
                    },
                    "scalar_mul");
}

Variable ScalarAdd(const Variable& x, float c) {
  Tensor out = x.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] += c;
  auto xn = x.node();
  return MakeOpNode(std::move(out), {xn},
                    [xn](Node* self) {
                      if (!xn->requires_grad) return;
                      xn->EnsureGrad();
                      xn->grad.AddInPlace(self->grad);
                    },
                    "scalar_add");
}

Variable AddBias(const Variable& x, const Variable& bias) {
  ALT_CHECK_EQ(bias.value().ndim(), 1);
  const int64_t f = bias.value().size(0);
  ALT_CHECK_EQ(x.value().size(x.value().ndim() - 1), f);
  Tensor out = x.value();
  const int64_t rows = out.numel() / f;
  for (int64_t r = 0; r < rows; ++r) {
    float* row = out.data() + r * f;
    for (int64_t j = 0; j < f; ++j) row[j] += bias.value()[j];
  }
  auto xn = x.node();
  auto bn = bias.node();
  return MakeOpNode(std::move(out), {xn, bn},
                    [xn, bn, f](Node* self) {
                      if (xn->requires_grad) {
                        xn->EnsureGrad();
                        xn->grad.AddInPlace(self->grad);
                      }
                      if (bn->requires_grad) {
                        bn->EnsureGrad();
                        const int64_t rows = self->grad.numel() / f;
                        for (int64_t r = 0; r < rows; ++r) {
                          const float* row = self->grad.data() + r * f;
                          for (int64_t j = 0; j < f; ++j) {
                            bn->grad[j] += row[j];
                          }
                        }
                      }
                    },
                    "add_bias");
}

Variable MulScalarVar(const Variable& x, const Variable& s) {
  ALT_CHECK_EQ(s.value().numel(), 1);
  const float sv = s.value()[0];
  Tensor out = x.value();
  out.ScaleInPlace(sv);
  auto xn = x.node();
  auto sn = s.node();
  return MakeOpNode(
      std::move(out), {xn, sn},
      [xn, sn](Node* self) {
        const float sv = sn->value[0];
        if (xn->requires_grad) {
          xn->EnsureGrad();
          xn->grad.Axpy(sv, self->grad);
        }
        if (sn->requires_grad) {
          sn->EnsureGrad();
          double acc = 0.0;
          for (int64_t i = 0; i < self->grad.numel(); ++i) {
            acc += static_cast<double>(self->grad[i]) * xn->value[i];
          }
          sn->grad[0] += static_cast<float>(acc);
        }
      },
      "mul_scalar_var");
}

Variable Detach(const Variable& x) { return Variable::Constant(x.value()); }

Variable IndexSelect(const Variable& v, int64_t index) {
  ALT_CHECK_EQ(v.value().ndim(), 1);
  ALT_CHECK_GE(index, 0);
  ALT_CHECK_LT(index, v.value().numel());
  Tensor out = Tensor::Scalar(v.value()[index]);
  auto vn = v.node();
  return MakeOpNode(std::move(out), {vn},
                    [vn, index](Node* self) {
                      if (!vn->requires_grad) return;
                      vn->EnsureGrad();
                      vn->grad[index] += self->grad[0];
                    },
                    "index_select", /*flops=*/0);
}

Variable MatMul(const Variable& a, const Variable& b) {
  ALT_CHECK_EQ(a.value().ndim(), 2);
  ALT_CHECK_EQ(b.value().ndim(), 2);
  ALT_CHECK_EQ(a.value().size(1), b.value().size(0));
  Tensor out({a.value().size(0), b.value().size(1)});
  alt::MatMul(a.value(), b.value(), &out);
  const int64_t mm_flops =
      2 * a.value().size(0) * a.value().size(1) * b.value().size(1);
  auto an = a.node();
  auto bn = b.node();
  return MakeOpNode(
      std::move(out), {an, bn},
      [an, bn](Node* self) {
        // dA += dC * B^T ; dB += A^T * dC.
        if (an->requires_grad) {
          an->EnsureGrad();
          MatMulTransBAcc(self->grad, bn->value, &an->grad);
        }
        if (bn->requires_grad) {
          bn->EnsureGrad();
          MatMulTransAAcc(an->value, self->grad, &bn->grad);
        }
      },
      "matmul", mm_flops);
}

Variable BatchedMatMul(const Variable& a, const Variable& b, bool trans_a,
                       bool trans_b) {
  ALT_CHECK_EQ(a.value().ndim(), 3);
  ALT_CHECK_EQ(b.value().ndim(), 3);
  const int64_t batch = a.value().size(0);
  const int64_t m = trans_a ? a.value().size(2) : a.value().size(1);
  const int64_t k = trans_a ? a.value().size(1) : a.value().size(2);
  const int64_t n = trans_b ? b.value().size(1) : b.value().size(2);
  Tensor out({batch, m, n});
  alt::BatchedMatMul(a.value(), trans_a, b.value(), trans_b, &out,
                     /*accumulate=*/false);
  const int64_t bmm_flops = 2 * batch * m * k * n;
  auto an = a.node();
  auto bn = b.node();
  return MakeOpNode(
      std::move(out), {an, bn}, [an, bn, trans_a, trans_b](Node* self) {
        // For C = opA(A) opB(B):
        //   no transposes: dA += dC B^T,  dB += A^T dC
        //   trans_a:       dA += B dC^T,  dB += A dC
        //   trans_b:       dA += dC B,    dB += dC^T A
        //   both:          dA += B^T dC^T, dB += dC^T A^T
        if (an->requires_grad) {
          an->EnsureGrad();
          if (!trans_a && !trans_b) {
            alt::BatchedMatMul(self->grad, false, bn->value, true, &an->grad,
                               true);
          } else if (trans_a && !trans_b) {
            alt::BatchedMatMul(bn->value, false, self->grad, true, &an->grad,
                               true);
          } else if (!trans_a && trans_b) {
            alt::BatchedMatMul(self->grad, false, bn->value, false, &an->grad,
                               true);
          } else {
            alt::BatchedMatMul(bn->value, true, self->grad, true, &an->grad,
                               true);
          }
        }
        if (bn->requires_grad) {
          bn->EnsureGrad();
          if (!trans_a && !trans_b) {
            alt::BatchedMatMul(an->value, true, self->grad, false, &bn->grad,
                               true);
          } else if (trans_a && !trans_b) {
            alt::BatchedMatMul(an->value, false, self->grad, false, &bn->grad,
                               true);
          } else if (!trans_a && trans_b) {
            alt::BatchedMatMul(self->grad, true, an->value, false, &bn->grad,
                               true);
          } else {
            alt::BatchedMatMul(self->grad, true, an->value, true, &bn->grad,
                               true);
          }
        }
      },
      "batched_matmul", bmm_flops);
}

Variable Reshape(const Variable& x, std::vector<int64_t> shape) {
  Tensor out = x.value().Reshape(shape);
  auto xn = x.node();
  return MakeOpNode(std::move(out), {xn},
                    [xn](Node* self) {
                      if (!xn->requires_grad) return;
                      xn->EnsureGrad();
                      // Grad has the reshaped shape; layout is identical.
                      for (int64_t i = 0; i < self->grad.numel(); ++i) {
                        xn->grad[i] += self->grad[i];
                      }
                    },
                    "reshape", /*flops=*/0);
}

Variable SliceLastDim(const Variable& x, int64_t start, int64_t len) {
  const Tensor& xv = x.value();
  const int64_t f = xv.size(xv.ndim() - 1);
  ALT_CHECK_GE(start, 0);
  ALT_CHECK_LE(start + len, f);
  std::vector<int64_t> out_shape = xv.shape();
  out_shape.back() = len;
  Tensor out(out_shape);
  const int64_t rows = xv.numel() / f;
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = xv.data() + r * f + start;
    float* dst = out.data() + r * len;
    for (int64_t j = 0; j < len; ++j) dst[j] = src[j];
  }
  auto xn = x.node();
  return MakeOpNode(std::move(out), {xn},
                    [xn, start, len, f](Node* self) {
                      if (!xn->requires_grad) return;
                      xn->EnsureGrad();
                      const int64_t rows = self->grad.numel() / len;
                      for (int64_t r = 0; r < rows; ++r) {
                        const float* src = self->grad.data() + r * len;
                        float* dst = xn->grad.data() + r * f + start;
                        for (int64_t j = 0; j < len; ++j) dst[j] += src[j];
                      }
                    },
                    "slice_last_dim", /*flops=*/0);
}

Variable ConcatLastDim(const std::vector<Variable>& xs) {
  ALT_CHECK(!xs.empty());
  const Tensor& first = xs[0].value();
  std::vector<int64_t> lens;
  int64_t total = 0;
  for (const Variable& x : xs) {
    const Tensor& v = x.value();
    ALT_CHECK_EQ(v.ndim(), first.ndim());
    for (int64_t d = 0; d + 1 < v.ndim(); ++d) {
      ALT_CHECK_EQ(v.size(d), first.size(d));
    }
    lens.push_back(v.size(v.ndim() - 1));
    total += lens.back();
  }
  std::vector<int64_t> out_shape = first.shape();
  out_shape.back() = total;
  Tensor out(out_shape);
  const int64_t rows = out.numel() / total;
  int64_t offset = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const Tensor& v = xs[i].value();
    const int64_t len = lens[i];
    for (int64_t r = 0; r < rows; ++r) {
      const float* src = v.data() + r * len;
      float* dst = out.data() + r * total + offset;
      for (int64_t j = 0; j < len; ++j) dst[j] = src[j];
    }
    offset += len;
  }
  std::vector<std::shared_ptr<Node>> parents;
  parents.reserve(xs.size());
  for (const Variable& x : xs) parents.push_back(x.node());
  return MakeOpNode(
      std::move(out), std::move(parents), [lens, total](Node* self) {
        const int64_t rows = self->grad.numel() / total;
        int64_t offset = 0;
        for (size_t i = 0; i < self->parents.size(); ++i) {
          Node* p = self->parents[i].get();
          const int64_t len = lens[i];
          if (p->requires_grad) {
            p->EnsureGrad();
            for (int64_t r = 0; r < rows; ++r) {
              const float* src = self->grad.data() + r * total + offset;
              float* dst = p->grad.data() + r * len;
              for (int64_t j = 0; j < len; ++j) dst[j] += src[j];
            }
          }
          offset += len;
        }
      },
      "concat_last_dim", /*flops=*/0);
}

Variable SelectTime(const Variable& x, int64_t t) {
  const Tensor& xv = x.value();
  ALT_CHECK_EQ(xv.ndim(), 3);
  const int64_t batch = xv.size(0);
  const int64_t seq = xv.size(1);
  const int64_t c = xv.size(2);
  ALT_CHECK_GE(t, 0);
  ALT_CHECK_LT(t, seq);
  Tensor out({batch, c});
  for (int64_t b = 0; b < batch; ++b) {
    const float* src = xv.data() + (b * seq + t) * c;
    float* dst = out.data() + b * c;
    for (int64_t j = 0; j < c; ++j) dst[j] = src[j];
  }
  auto xn = x.node();
  return MakeOpNode(std::move(out), {xn},
                    [xn, t, seq, c](Node* self) {
                      if (!xn->requires_grad) return;
                      xn->EnsureGrad();
                      const int64_t batch = self->grad.size(0);
                      for (int64_t b = 0; b < batch; ++b) {
                        const float* src = self->grad.data() + b * c;
                        float* dst = xn->grad.data() + (b * seq + t) * c;
                        for (int64_t j = 0; j < c; ++j) dst[j] += src[j];
                      }
                    },
                    "select_time", /*flops=*/0);
}

Variable StackTime(const std::vector<Variable>& xs) {
  ALT_CHECK(!xs.empty());
  const Tensor& first = xs[0].value();
  ALT_CHECK_EQ(first.ndim(), 2);
  const int64_t batch = first.size(0);
  const int64_t c = first.size(1);
  const int64_t seq = static_cast<int64_t>(xs.size());
  Tensor out({batch, seq, c});
  for (int64_t t = 0; t < seq; ++t) {
    const Tensor& v = xs[static_cast<size_t>(t)].value();
    ALT_CHECK(v.SameShape(first));
    for (int64_t b = 0; b < batch; ++b) {
      const float* src = v.data() + b * c;
      float* dst = out.data() + (b * seq + t) * c;
      for (int64_t j = 0; j < c; ++j) dst[j] = src[j];
    }
  }
  std::vector<std::shared_ptr<Node>> parents;
  parents.reserve(xs.size());
  for (const Variable& x : xs) parents.push_back(x.node());
  return MakeOpNode(
      std::move(out), std::move(parents), [batch, seq, c](Node* self) {
        for (int64_t t = 0; t < seq; ++t) {
          Node* p = self->parents[static_cast<size_t>(t)].get();
          if (!p->requires_grad) continue;
          p->EnsureGrad();
          for (int64_t b = 0; b < batch; ++b) {
            const float* src = self->grad.data() + (b * seq + t) * c;
            float* dst = p->grad.data() + b * c;
            for (int64_t j = 0; j < c; ++j) dst[j] += src[j];
          }
        }
      },
      "stack_time", /*flops=*/0);
}

Variable Sigmoid(const Variable& x) {
  return UnaryElementwise(
      x, "sigmoid",
      [](float v) {
        return v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                         : std::exp(v) / (1.0f + std::exp(v));
      },
      [](float /*xv*/, float yv) { return yv * (1.0f - yv); });
}

Variable Tanh(const Variable& x) {
  return UnaryElementwise(
      x, "tanh", [](float v) { return std::tanh(v); },
      [](float /*xv*/, float yv) { return 1.0f - yv * yv; });
}

Variable Relu(const Variable& x) {
  // Forward goes through the dispatched VecRelu kernel (max against zero is
  // exact, so SIMD and scalar agree bit-for-bit); backward keeps the
  // generic masked pass.
  const Tensor& xv = x.value();
  Tensor out(xv.shape());
  VecRelu(xv.data(), out.data(), xv.numel());
  auto xn = x.node();
  return MakeOpNode(
      std::move(out), {xn},
      [xn](Node* self) {
        if (!xn->requires_grad) return;
        xn->EnsureGrad();
        ParallelForWork(self->value.numel(), kMapWork,
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) {
                            xn->grad[i] += self->grad[i] *
                                           (xn->value[i] > 0.0f ? 1.0f : 0.0f);
                          }
                        });
      },
      "relu");
}

Variable Gelu(const Variable& x) {
  return UnaryElementwise(
      x, "gelu",
      [](float v) {
        return 0.5f * v * (1.0f + std::erf(v * kInvSqrt2));
      },
      [](float xv, float /*yv*/) {
        const float phi = kInvSqrt2Pi * std::exp(-0.5f * xv * xv);
        const float cdf = 0.5f * (1.0f + std::erf(xv * kInvSqrt2));
        return cdf + xv * phi;
      });
}

Variable Exp(const Variable& x) {
  return UnaryElementwise(
      x, "exp", [](float v) { return std::exp(v); },
      [](float /*xv*/, float yv) { return yv; });
}

Variable Log(const Variable& x) {
  return UnaryElementwise(
      x, "log",
      [](float v) {
        ALT_CHECK_GT(v, 0.0f);
        return std::log(v);
      },
      [](float xv, float /*yv*/) { return 1.0f / xv; });
}

Variable SoftmaxLastDim(const Variable& x) {
  const Tensor& xv = x.value();
  const int64_t f = xv.size(xv.ndim() - 1);
  const int64_t rows = xv.numel() / f;
  Tensor out(xv.shape());
  // Rows are independent; parallel chunks over rows write disjoint slices.
  ParallelForWork(rows, f * kTranscendentalWork, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* src = xv.data() + r * f;
      float* dst = out.data() + r * f;
      // Max, sum, and scale go through the dispatched row kernels
      // (src/tensor/kernels.h); exp stays scalar — there is no vector
      // libm here and the transcendental dominates this loop anyway. The
      // kernels' scalar fallbacks reproduce the original sequential
      // double-accumulation numerics exactly.
      const float max_v = RowMax(src, f);
      for (int64_t j = 0; j < f; ++j) dst[j] = std::exp(src[j] - max_v);
      const double total = RowSumDouble(dst, f);
      RowScale(static_cast<float>(1.0 / total), dst, f);
    }
  });
  // 5 FLOPs per element (max, sub, exp, sum, div) — matches the softmax
  // accounting of nas::Architecture::Flops.
  const int64_t sm_flops = 5 * xv.numel();
  auto xn = x.node();
  return MakeOpNode(
      std::move(out), {xn},
      [xn, f](Node* self) {
        if (!xn->requires_grad) return;
        xn->EnsureGrad();
        const int64_t rows = self->grad.numel() / f;
        ParallelForWork(rows, f * kMapWork, [&](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            const float* y = self->value.data() + r * f;
            const float* dy = self->grad.data() + r * f;
            float* dx = xn->grad.data() + r * f;
            double dot = 0.0;
            for (int64_t j = 0; j < f; ++j) {
              dot += static_cast<double>(dy[j]) * y[j];
            }
            for (int64_t j = 0; j < f; ++j) {
              dx[j] += (dy[j] - static_cast<float>(dot)) * y[j];
            }
          }
        });
      },
      "softmax", sm_flops);
}

Variable SumAll(const Variable& x) {
  Tensor out = Tensor::Scalar(x.value().SumAll());
  const int64_t red_flops = x.value().numel();
  auto xn = x.node();
  return MakeOpNode(std::move(out), {xn},
                    [xn](Node* self) {
                      if (!xn->requires_grad) return;
                      xn->EnsureGrad();
                      const float g = self->grad[0];
                      for (int64_t i = 0; i < xn->grad.numel(); ++i) {
                        xn->grad[i] += g;
                      }
                    },
                    "sum_all", red_flops);
}

Variable MeanAll(const Variable& x) {
  const float inv = 1.0f / static_cast<float>(x.value().numel());
  Tensor out = Tensor::Scalar(x.value().SumAll() * inv);
  const int64_t red_flops = x.value().numel() + 1;
  auto xn = x.node();
  return MakeOpNode(std::move(out), {xn},
                    [xn, inv](Node* self) {
                      if (!xn->requires_grad) return;
                      xn->EnsureGrad();
                      const float g = self->grad[0] * inv;
                      for (int64_t i = 0; i < xn->grad.numel(); ++i) {
                        xn->grad[i] += g;
                      }
                    },
                    "mean_all", red_flops);
}

Variable MeanTime(const Variable& x) {
  const Tensor& xv = x.value();
  ALT_CHECK_EQ(xv.ndim(), 3);
  const int64_t batch = xv.size(0);
  const int64_t seq = xv.size(1);
  const int64_t c = xv.size(2);
  Tensor out({batch, c});
  const float inv = 1.0f / static_cast<float>(seq);
  for (int64_t b = 0; b < batch; ++b) {
    float* dst = out.data() + b * c;
    for (int64_t t = 0; t < seq; ++t) {
      const float* src = xv.data() + (b * seq + t) * c;
      for (int64_t j = 0; j < c; ++j) dst[j] += src[j];
    }
    for (int64_t j = 0; j < c; ++j) dst[j] *= inv;
  }
  const int64_t red_flops = xv.numel() + batch * c;
  auto xn = x.node();
  return MakeOpNode(
      std::move(out), {xn},
      [xn, seq, c, inv](Node* self) {
        if (!xn->requires_grad) return;
        xn->EnsureGrad();
        const int64_t batch = self->grad.size(0);
        for (int64_t b = 0; b < batch; ++b) {
          const float* src = self->grad.data() + b * c;
          for (int64_t t = 0; t < seq; ++t) {
            float* dst = xn->grad.data() + (b * seq + t) * c;
            for (int64_t j = 0; j < c; ++j) dst[j] += src[j] * inv;
          }
        }
      },
      "mean_time", red_flops);
}

Variable EmbeddingLookup(const Variable& weight,
                         const std::vector<int64_t>& ids, int64_t batch,
                         int64_t seq_len) {
  const Tensor& w = weight.value();
  ALT_CHECK_EQ(w.ndim(), 2);
  ALT_CHECK_EQ(static_cast<int64_t>(ids.size()), batch * seq_len);
  const int64_t vocab = w.size(0);
  const int64_t dim = w.size(1);
  Tensor out({batch, seq_len, dim});
  for (int64_t i = 0; i < batch * seq_len; ++i) {
    const int64_t id = ids[static_cast<size_t>(i)];
    ALT_CHECK_GE(id, 0);
    ALT_CHECK_LT(id, vocab);
    const float* src = w.data() + id * dim;
    float* dst = out.data() + i * dim;
    for (int64_t j = 0; j < dim; ++j) dst[j] = src[j];
  }
  auto wn = weight.node();
  return MakeOpNode(
      std::move(out), {wn},
      [wn, ids, dim](Node* self) {
        if (!wn->requires_grad) return;
        wn->EnsureGrad();
        const int64_t n = static_cast<int64_t>(ids.size());
        for (int64_t i = 0; i < n; ++i) {
          const float* src = self->grad.data() + i * dim;
          float* dst = wn->grad.data() + ids[static_cast<size_t>(i)] * dim;
          for (int64_t j = 0; j < dim; ++j) dst[j] += src[j];
        }
      },
      "embedding_lookup", /*flops=*/0);
}

Variable Conv1D(const Variable& x, const Variable& w, const Variable& bias,
                int64_t dilation) {
  const Tensor& xv = x.value();
  const Tensor& wv = w.value();
  Tensor out({xv.size(0), xv.size(1), wv.size(0)});
  const Tensor* bias_ptr = bias.defined() ? &bias.value() : nullptr;
  alt::Conv1D(xv, wv, bias_ptr, dilation, &out);
  // out[B,T,Cout]: 2*K*Cin FLOPs per output element plus the bias add;
  // matches nas::OpSpec::Flops for conv candidates.
  const int64_t conv_flops =
      out.numel() * 2 * wv.size(1) * wv.size(2) +
      (bias_ptr != nullptr ? out.numel() : 0);
  auto xn = x.node();
  auto wn = w.node();
  std::vector<std::shared_ptr<Node>> parents = {xn, wn};
  std::shared_ptr<Node> bn = bias.defined() ? bias.node() : nullptr;
  if (bn != nullptr) parents.push_back(bn);
  return MakeOpNode(
      std::move(out), std::move(parents), [xn, wn, bn, dilation](Node* self) {
        Tensor* gx = nullptr;
        Tensor* gw = nullptr;
        Tensor* gb = nullptr;
        if (xn->requires_grad) {
          xn->EnsureGrad();
          gx = &xn->grad;
        }
        if (wn->requires_grad) {
          wn->EnsureGrad();
          gw = &wn->grad;
        }
        if (bn != nullptr && bn->requires_grad) {
          bn->EnsureGrad();
          gb = &bn->grad;
        }
        Conv1DBackward(xn->value, wn->value, self->grad, dilation, gx, gw, gb);
      },
      "conv1d", conv_flops);
}

Variable AvgPool1D(const Variable& x, int64_t k) {
  const Tensor& xv = x.value();
  Tensor out(xv.shape());
  alt::AvgPool1D(xv, k, &out);
  auto xn = x.node();
  return MakeOpNode(std::move(out), {xn},
                    [xn, k](Node* self) {
                      if (!xn->requires_grad) return;
                      xn->EnsureGrad();
                      AvgPool1DBackward(self->grad, k, &xn->grad);
                    },
                    "avg_pool1d", xv.numel() * k);
}

Variable MaxPool1D(const Variable& x, int64_t k) {
  const Tensor& xv = x.value();
  Tensor out(xv.shape());
  auto argmax = std::make_shared<std::vector<int64_t>>();
  alt::MaxPool1D(xv, k, &out, argmax.get());
  auto xn = x.node();
  return MakeOpNode(std::move(out), {xn},
                    [xn, argmax](Node* self) {
                      if (!xn->requires_grad) return;
                      xn->EnsureGrad();
                      MaxPool1DBackward(self->grad, *argmax, &xn->grad);
                    },
                    "max_pool1d", xv.numel() * k);
}

Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps) {
  const Tensor& xv = x.value();
  const int64_t f = xv.size(xv.ndim() - 1);
  ALT_CHECK_EQ(gamma.value().numel(), f);
  ALT_CHECK_EQ(beta.value().numel(), f);
  const int64_t rows = xv.numel() / f;

  Tensor out(xv.shape());
  // Cache per-row inverse stddev and normalized values for backward.
  auto inv_std = std::make_shared<std::vector<float>>(
      static_cast<size_t>(rows));
  auto xhat = std::make_shared<Tensor>(xv.shape());
  ParallelForWork(rows, f * 10, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* src = xv.data() + r * f;
      // Statistics and the normalize+affine pass go through the dispatched
      // row kernels; their scalar fallbacks reproduce the original
      // sequential double accumulation exactly.
      double mean, var;
      RowMeanVar(src, f, &mean, &var);
      const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
      (*inv_std)[static_cast<size_t>(r)] = istd;
      RowNormalizeAffine(src, static_cast<float>(mean), istd,
                         gamma.value().data(), beta.value().data(),
                         xhat->data() + r * f, out.data() + r * f, f);
    }
  });
  // Mean, variance, normalize, affine: ~8 FLOPs per element.
  const int64_t ln_flops = 8 * xv.numel();
  auto xn = x.node();
  auto gn = gamma.node();
  auto bn = beta.node();
  return MakeOpNode(
      std::move(out), {xn, gn, bn}, [xn, gn, bn, f, inv_std, xhat](Node* self) {
        const int64_t rows = self->grad.numel() / f;
        if (gn->requires_grad) gn->EnsureGrad();
        if (bn->requires_grad) bn->EnsureGrad();
        if (xn->requires_grad) xn->EnsureGrad();
        // dgamma/dbeta reduce over rows into shared accumulators, so that
        // pass stays serial; dx writes disjoint rows and runs in parallel.
        if (gn->requires_grad || bn->requires_grad) {
          for (int64_t r = 0; r < rows; ++r) {
            const float* dy = self->grad.data() + r * f;
            const float* xh = xhat->data() + r * f;
            for (int64_t j = 0; j < f; ++j) {
              if (gn->requires_grad) gn->grad[j] += dy[j] * xh[j];
              if (bn->requires_grad) bn->grad[j] += dy[j];
            }
          }
        }
        if (xn->requires_grad) {
          ParallelForWork(rows, f * 10, [&](int64_t lo, int64_t hi) {
            for (int64_t r = lo; r < hi; ++r) {
              const float* dy = self->grad.data() + r * f;
              const float* xh = xhat->data() + r * f;
              // dxhat = dy * gamma;
              // dx = istd * (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat)).
              double mean_dxhat = 0.0;
              double mean_dxhat_xhat = 0.0;
              for (int64_t j = 0; j < f; ++j) {
                const double dxh = static_cast<double>(dy[j]) * gn->value[j];
                mean_dxhat += dxh;
                mean_dxhat_xhat += dxh * xh[j];
              }
              mean_dxhat /= static_cast<double>(f);
              mean_dxhat_xhat /= static_cast<double>(f);
              const float istd = (*inv_std)[static_cast<size_t>(r)];
              float* dx = xn->grad.data() + r * f;
              for (int64_t j = 0; j < f; ++j) {
                const double dxh = static_cast<double>(dy[j]) * gn->value[j];
                dx[j] += static_cast<float>(
                    istd * (dxh - mean_dxhat - xh[j] * mean_dxhat_xhat));
              }
            }
          });
        }
      },
      "layer_norm", ln_flops);
}

Variable Dropout(const Variable& x, float p, Rng* rng, bool training) {
  if (!training || p <= 0.0f) return x;
  ALT_CHECK_LT(p, 1.0f);
  const float scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<std::vector<float>>(
      static_cast<size_t>(x.value().numel()));
  Tensor out = x.value();
  for (int64_t i = 0; i < out.numel(); ++i) {
    const float m = rng->Bernoulli(p) ? 0.0f : scale;
    (*mask)[static_cast<size_t>(i)] = m;
    out[i] *= m;
  }
  auto xn = x.node();
  return MakeOpNode(std::move(out), {xn},
                    [xn, mask](Node* self) {
                      if (!xn->requires_grad) return;
                      xn->EnsureGrad();
                      for (int64_t i = 0; i < self->grad.numel(); ++i) {
                        xn->grad[i] +=
                            self->grad[i] * (*mask)[static_cast<size_t>(i)];
                      }
                    },
                    "dropout");
}

Variable BCEWithLogits(const Variable& logits, const Variable& targets) {
  CheckSameShape(logits, targets);
  const Tensor& z = logits.value();
  const Tensor& y = targets.value();
  const int64_t n = z.numel();
  ALT_CHECK_GT(n, 0);
  // loss_i = max(z,0) - z*y + log(1 + exp(-|z|)).
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float zi = z[i];
    total += std::max(zi, 0.0f) - zi * y[i] +
             std::log1p(std::exp(-std::abs(zi)));
  }
  Tensor out = Tensor::Scalar(static_cast<float>(total / n));
  // max, mul, sub, abs, exp, log1p, add, final mean: ~8 FLOPs per element.
  const int64_t bce_flops = 8 * n;
  auto zn = logits.node();
  auto yn = targets.node();
  return MakeOpNode(
      std::move(out), {zn, yn},
      [zn, yn, n](Node* self) {
    const float g = self->grad[0] / static_cast<float>(n);
    if (zn->requires_grad) {
      zn->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        const float zi = zn->value[i];
        const float sig = zi >= 0.0f ? 1.0f / (1.0f + std::exp(-zi))
                                     : std::exp(zi) / (1.0f + std::exp(zi));
        zn->grad[i] += g * (sig - yn->value[i]);
      }
    }
    if (yn->requires_grad) {
      yn->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        yn->grad[i] += g * (-zn->value[i]);
      }
    }
      },
      "bce_with_logits", bce_flops);
}

}  // namespace ag
}  // namespace alt
