#ifndef ALT_SRC_RESILIENCE_CLOCK_H_
#define ALT_SRC_RESILIENCE_CLOCK_H_

#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace resilience {

/// Time source injected into the resilience primitives (RetryPolicy,
/// CircuitBreaker, deadline checks) so their timing behavior is testable:
/// production code uses RealClock(), tests a FakeClock whose time only moves
/// when the test says so — a full backoff schedule then runs in
/// microseconds and asserts exact sleep durations.
///
/// This is control-flow time (deadlines, cooldowns, backoff), not
/// telemetry; wall-time measurement for reporting stays on the obs layer
/// (obs::ScopedTimerMs / TraceSpan).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic milliseconds since an arbitrary epoch.
  virtual double NowMs() = 0;

  /// Blocks the calling thread for `ms` milliseconds (no-op for ms <= 0).
  virtual void SleepMs(double ms) = 0;
};

/// The process-wide monotonic clock (std::chrono::steady_clock).
Clock* RealClock();

/// Manually-advanced clock for tests. SleepMs does not block: it records
/// the request and advances time, so retry/backoff tests run instantly and
/// can assert the exact schedule.
class FakeClock : public Clock {
 public:
  double NowMs() override {
    MutexLock lock(mu_);
    const double now = now_ms_;
    now_ms_ += auto_advance_ms_;
    return now;
  }

  void SleepMs(double ms) override {
    if (ms <= 0.0) return;
    MutexLock lock(mu_);
    sleeps_ms_.push_back(ms);
    now_ms_ += ms;
  }

  void Advance(double ms) {
    MutexLock lock(mu_);
    now_ms_ += ms;
  }

  /// Every NowMs() call additionally advances time by `ms` — simulates work
  /// taking a fixed duration between consecutive clock reads (deadline
  /// tests).
  void set_auto_advance_ms(double ms) {
    MutexLock lock(mu_);
    auto_advance_ms_ = ms;
  }

  std::vector<double> sleeps_ms() const {
    MutexLock lock(mu_);
    return sleeps_ms_;
  }

 private:
  mutable Mutex mu_;
  double now_ms_ ALT_GUARDED_BY(mu_) = 0.0;
  double auto_advance_ms_ ALT_GUARDED_BY(mu_) = 0.0;
  std::vector<double> sleeps_ms_ ALT_GUARDED_BY(mu_);
};

}  // namespace resilience
}  // namespace alt

#endif  // ALT_SRC_RESILIENCE_CLOCK_H_
