#ifndef ALT_SRC_RESILIENCE_CIRCUIT_BREAKER_H_
#define ALT_SRC_RESILIENCE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <string>

#include "src/obs/metrics.h"
#include "src/resilience/clock.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace resilience {

/// Breaker lifecycle: kClosed (normal traffic) -> kOpen (failing fast)
/// after `failure_threshold` consecutive failures -> kHalfOpen (probing)
/// once `open_cooldown_ms` elapsed -> kClosed after `close_successes`
/// consecutive probe successes, or straight back to kOpen on any probe
/// failure.
enum class BreakerState { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

const char* BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker open.
  int64_t failure_threshold = 5;
  /// How long the breaker fails fast before letting probes through.
  double open_cooldown_ms = 1000.0;
  /// Consecutive half-open successes required to close again.
  int64_t close_successes = 2;
};

/// Thread-safe consecutive-failure circuit breaker. Callers ask
/// AllowRequest() before the protected operation and report the outcome
/// with RecordSuccess()/RecordFailure(); when AllowRequest() returns false
/// the caller should serve its fallback instead of touching the failing
/// dependency.
///
/// Time flows through the injected Clock (cooldown), so state transitions
/// are unit-testable with a FakeClock.
///
/// Obs wiring (under `resilience/circuit_breaker/`, instance-labelled by
/// `name`):
///   state/<name>   gauge: 0 closed, 1 half-open, 2 open
///   opens/<name>   counter: closed/half-open -> open transitions
class CircuitBreaker {
 public:
  /// `clock == nullptr` selects RealClock(); `registry == nullptr` selects
  /// the process-global obs registry.
  CircuitBreaker(std::string name, CircuitBreakerOptions options,
                 Clock* clock = nullptr,
                 obs::MetricsRegistry* registry = nullptr);

  /// True when a request may proceed. An open breaker whose cooldown has
  /// elapsed transitions to half-open and admits the probe.
  bool AllowRequest();

  void RecordSuccess();
  void RecordFailure();

  /// Forces the breaker back to kClosed with all counters cleared, as if
  /// freshly constructed. For supervised re-admission (a shard re-joining
  /// the serving plane must not inherit the failure history that evicted
  /// it); not for use on the request path.
  void Reset();

  BreakerState state() const;
  const std::string& name() const { return name_; }

 private:
  /// Sets state + gauge; callers hold mu_.
  void TransitionLocked(BreakerState next) ALT_REQUIRES(mu_);

  const std::string name_;
  const CircuitBreakerOptions options_;
  Clock* clock_;
  obs::Gauge* state_gauge_;    // Owned by the registry.
  obs::Counter* opens_total_;  // Owned by the registry.

  mutable Mutex mu_;
  BreakerState state_ ALT_GUARDED_BY(mu_) = BreakerState::kClosed;
  int64_t consecutive_failures_ ALT_GUARDED_BY(mu_) = 0;
  int64_t half_open_successes_ ALT_GUARDED_BY(mu_) = 0;
  double opened_at_ms_ ALT_GUARDED_BY(mu_) = 0.0;
};

}  // namespace resilience
}  // namespace alt

#endif  // ALT_SRC_RESILIENCE_CIRCUIT_BREAKER_H_
