#include "src/resilience/checkpoint.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "src/nn/serialize.h"
#include "src/obs/memory_tracker.h"
#include "src/util/atomic_file.h"

namespace alt {
namespace resilience {

namespace {
constexpr char kMagic[4] = {'A', 'L', 'T', 'C'};
constexpr uint32_t kVersion = 1;
constexpr uint64_t kMaxSectionBytes = 1ull << 34;  // 16 GiB sanity bound.

void WriteU64(std::ostream* out, uint64_t v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::istream* in, uint64_t* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  return in->good();
}
}  // namespace

void CheckpointBuilder::AddBlob(const std::string& name, std::string bytes) {
  blobs_[name] = std::move(bytes);
}

Status CheckpointBuilder::WriteToFile(const std::string& path) const {
  return AtomicWriteFile(path, [this](std::ostream* out) {
    out->write(kMagic, sizeof(kMagic));
    const uint32_t version = kVersion;
    out->write(reinterpret_cast<const char*>(&version), sizeof(version));
    // Stamp tensor-memory accounting at write time so every checkpoint
    // records the footprint of the run that produced it.
    Json meta = meta_;
    if (obs::MemoryTracker::Global().enabled()) {
      meta["memory"] = obs::MemoryTracker::Global().ToJson();
    }
    const std::string meta_text = meta.Dump();
    WriteU64(out, meta_text.size());
    out->write(meta_text.data(),
               static_cast<std::streamsize>(meta_text.size()));
    WriteU64(out, blobs_.size());
    for (const auto& [name, bytes] : blobs_) {
      WriteU64(out, name.size());
      out->write(name.data(), static_cast<std::streamsize>(name.size()));
      WriteU64(out, bytes.size());
      out->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    if (!out->good()) return Status::IOError("checkpoint write failed");
    return Status::OK();
  });
}

Result<CheckpointReader> CheckpointReader::ReadFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("no checkpoint at " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::string(magic, 4) != std::string(kMagic, 4)) {
    return Status::InvalidArgument(path + " is not an ALT checkpoint");
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in.good() || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  uint64_t meta_len = 0;
  if (!ReadU64(&in, &meta_len) || meta_len > kMaxSectionBytes) {
    return Status::IOError("bad checkpoint meta length");
  }
  std::string meta_text(meta_len, '\0');
  in.read(meta_text.data(), static_cast<std::streamsize>(meta_len));
  if (!in.good()) return Status::IOError("truncated checkpoint meta");

  CheckpointReader reader;
  ALT_ASSIGN_OR_RETURN(reader.meta_, Json::Parse(meta_text));

  uint64_t num_blobs = 0;
  if (!ReadU64(&in, &num_blobs) || num_blobs > 4096) {
    return Status::IOError("bad checkpoint blob count");
  }
  for (uint64_t i = 0; i < num_blobs; ++i) {
    uint64_t name_len = 0;
    if (!ReadU64(&in, &name_len) || name_len > 4096) {
      return Status::IOError("bad checkpoint blob name");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    uint64_t size = 0;
    if (!in.good() || !ReadU64(&in, &size) || size > kMaxSectionBytes) {
      return Status::IOError("bad checkpoint blob size");
    }
    std::string bytes(size, '\0');
    in.read(bytes.data(), static_cast<std::streamsize>(size));
    if (!in.good()) {
      return Status::IOError("truncated checkpoint blob " + name);
    }
    reader.blobs_[std::move(name)] = std::move(bytes);
  }
  return reader;
}

Result<std::string> CheckpointReader::blob(const std::string& name) const {
  auto it = blobs_.find(name);
  if (it == blobs_.end()) {
    return Status::NotFound("checkpoint has no blob " + name);
  }
  return it->second;
}

Result<std::string> ModuleWeightsBlob(nn::Module* module) {
  std::ostringstream out;
  ALT_RETURN_IF_ERROR(nn::SaveWeights(module, &out));
  return out.str();
}

Status RestoreModuleWeights(nn::Module* module, const std::string& blob) {
  std::istringstream in(blob);
  return nn::LoadWeights(module, &in);
}

Result<std::string> AdamStateBlob(const opt::Adam& adam) {
  std::ostringstream out;
  ALT_RETURN_IF_ERROR(adam.SaveState(&out));
  return out.str();
}

Status RestoreAdamState(opt::Adam* adam, const std::string& blob) {
  std::istringstream in(blob);
  return adam->LoadState(&in);
}

}  // namespace resilience
}  // namespace alt
