#ifndef ALT_SRC_RESILIENCE_CHECKPOINT_H_
#define ALT_SRC_RESILIENCE_CHECKPOINT_H_

#include <map>
#include <string>

#include "src/nn/module.h"
#include "src/opt/optimizer.h"
#include "src/util/json.h"
#include "src/util/status.h"

namespace alt {
namespace resilience {

/// Checkpoint files for long runs (training epochs, NAS search) -------------
///
/// A checkpoint is a JSON meta header (progress counters: epoch, step, loss
/// trackers) plus named binary blobs (model weights in the ALTW format,
/// optimizer moments, RNG engine states). File layout:
///   magic "ALTC" | u32 version | u64 meta_len | meta json |
///   u64 num_blobs | per blob: u64 name_len | name | u64 size | bytes.
///
/// Writes are atomic (util::AtomicWriteFile): a reader — including a
/// resumed run after a mid-write kill — sees either the previous complete
/// checkpoint or the new one, never a torn file. Owners overwrite one path
/// periodically; the file is self-describing via its meta `kind` field.

class CheckpointBuilder {
 public:
  /// Progress header; `kind` identifies the owner (e.g. "trainer").
  void set_meta(Json meta) { meta_ = std::move(meta); }
  Json& mutable_meta() { return meta_; }

  /// Registers a binary section. Re-adding a name replaces it.
  void AddBlob(const std::string& name, std::string bytes);

  /// Atomically writes the checkpoint to `path`.
  Status WriteToFile(const std::string& path) const;

 private:
  Json meta_;
  std::map<std::string, std::string> blobs_;
};

class CheckpointReader {
 public:
  static Result<CheckpointReader> ReadFromFile(const std::string& path);

  const Json& meta() const { return meta_; }
  bool has_blob(const std::string& name) const {
    return blobs_.count(name) > 0;
  }
  /// NotFound when the blob is missing.
  Result<std::string> blob(const std::string& name) const;

 private:
  Json meta_;
  std::map<std::string, std::string> blobs_;
};

/// Blob helpers shared by the Trainer / NasSearch checkpoints ----------------

/// Model weights in the nn::SaveWeights (ALTW) format.
Result<std::string> ModuleWeightsBlob(nn::Module* module);
Status RestoreModuleWeights(nn::Module* module, const std::string& blob);

/// Adam moments (Adam::SaveState format). The optimizer must hold the same
/// parameter list it was saved with.
Result<std::string> AdamStateBlob(const opt::Adam& adam);
Status RestoreAdamState(opt::Adam* adam, const std::string& blob);

}  // namespace resilience
}  // namespace alt

#endif  // ALT_SRC_RESILIENCE_CHECKPOINT_H_
