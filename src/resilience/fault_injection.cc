#include "src/resilience/fault_injection.h"

#include <cstdlib>

#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace alt {
namespace resilience {

namespace {

/// splitmix64 — cheap, well-distributed mixer for the firing decision.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashPoint(const char* point) {
  // FNV-1a over the point name.
  uint64_t h = 1469598103934665603ull;
  for (const char* p = point; *p != '\0'; ++p) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p));
    h *= 1099511628211ull;
  }
  return h;
}

/// Uniform double in [0, 1) from (seed, point, call index).
double FireDraw(uint64_t seed, const char* point, int64_t call_index) {
  const uint64_t h =
      Mix64(seed ^ Mix64(HashPoint(point) ^
                         Mix64(static_cast<uint64_t>(call_index))));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = []() {
    auto* instance = new FaultInjector();
    if (const char* seed_env = std::getenv("ALT_FAULTS_SEED")) {
      instance->SetSeed(std::strtoull(seed_env, nullptr, 10));
    }
    if (const char* spec = std::getenv("ALT_FAULTS")) {
      const Status armed = instance->ArmFromSpec(spec);
      if (!armed.ok()) {
        ALT_LOG(Warning) << "ignoring malformed ALT_FAULTS: "
                         << armed.ToString();
      } else if (instance->armed()) {
        ALT_LOG(Warning) << "fault injection armed from ALT_FAULTS=" << spec;
      }
    }
    return instance;
  }();
  return *injector;
}

void FaultInjector::Arm(const std::string& point_prefix, FaultRule rule) {
  MutexLock lock(mu_);
  rules_[point_prefix] = std::move(rule);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point_prefix) {
  MutexLock lock(mu_);
  rules_.erase(point_prefix);
  armed_.store(!rules_.empty(), std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  MutexLock lock(mu_);
  rules_.clear();
  points_.clear();
  total_injected_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::SetSeed(uint64_t seed) {
  MutexLock lock(mu_);
  seed_ = seed;
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      return Status::InvalidArgument("bad ALT_FAULTS entry: " + entry);
    }
    const std::string prefix = entry.substr(0, eq);
    const std::string trigger = entry.substr(eq + 1);
    char* parse_end = nullptr;
    const double value = std::strtod(trigger.c_str(), &parse_end);
    if (parse_end == trigger.c_str() || *parse_end != '\0' || value <= 0.0) {
      return Status::InvalidArgument("bad ALT_FAULTS trigger: " + entry);
    }
    FaultRule rule;
    if (trigger.find('.') != std::string::npos || value <= 1.0) {
      if (value > 1.0) {
        return Status::InvalidArgument("probability > 1 in: " + entry);
      }
      rule.probability = value;
    } else {
      rule.every_nth = static_cast<int64_t>(value);
    }
    Arm(prefix, rule);
  }
  return Status::OK();
}

Status FaultInjector::Check(const char* point) {
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  FaultRule rule;
  bool matched = false;
  int64_t call_index = 0;
  {
    MutexLock lock(mu_);
    const std::string name(point);
    // Longest armed prefix wins; std::map orders prefixes lexicographically,
    // so walk all rules (the set is tiny — a handful of chaos entries).
    size_t best_len = 0;
    for (const auto& [prefix, armed_rule] : rules_) {
      if (name.rfind(prefix, 0) == 0 && prefix.size() >= best_len) {
        best_len = prefix.size();
        rule = armed_rule;
        matched = true;
      }
    }
    if (!matched) return Status::OK();
    PointState& state = points_[name];
    call_index = ++state.calls;
    const bool fire =
        rule.every_nth > 0
            ? (call_index % rule.every_nth == 0)
            : (FireDraw(seed_, point, call_index) < rule.probability);
    if (!fire) return Status::OK();
    ++state.injected;
    ++total_injected_;
  }
  ALT_OBS_COUNTER_ADD("resilience/faults/injected", 1);
  obs::MetricsRegistry::Global()
      .counter(std::string("resilience/faults/injected/") + point)
      ->Add(1);
  const std::string message =
      rule.message.empty() ? std::string("injected fault at ") + point
                           : rule.message;
  return Status(rule.code, message);
}

int64_t FaultInjector::call_count(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.calls;
}

int64_t FaultInjector::injected_count(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.injected;
}

int64_t FaultInjector::total_injected() const {
  MutexLock lock(mu_);
  return total_injected_;
}

}  // namespace resilience
}  // namespace alt
