#include "src/resilience/clock.h"

#include <chrono>
#include <thread>

namespace alt {
namespace resilience {

namespace {

class SteadyClock : public Clock {
 public:
  double NowMs() override {
    // Control-flow time for deadlines/backoff, not telemetry.
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now()  // alt_lint: allow(L006): resilience clock primitive, not telemetry
                   .time_since_epoch())
        .count();
  }

  void SleepMs(double ms) override {
    if (ms <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
};

}  // namespace

Clock* RealClock() {
  static SteadyClock* clock = new SteadyClock();
  return clock;
}

}  // namespace resilience
}  // namespace alt
