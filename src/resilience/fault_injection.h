#ifndef ALT_SRC_RESILIENCE_FAULT_INJECTION_H_
#define ALT_SRC_RESILIENCE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace resilience {

/// Deterministic fault injection ---------------------------------------------
///
/// Production code marks failure-prone operations with named injection
/// points (`ALT_FAULT_POINT("serving/predict")`). By default every point is
/// a no-op costing one relaxed atomic load; chaos tests (and operators, via
/// the `ALT_FAULTS` environment variable) arm rules that make points fail
/// with a configurable Status.
///
/// Determinism: firing decisions are a pure function of (seed, point name,
/// per-point call index) — no wall clock, no global RNG stream — so a chaos
/// run replays exactly under the same seed, which makes chaos failures
/// debuggable.
///
/// Point naming follows the metric scheme `layer/component[/operation]`,
/// e.g. `data/io/read_binary`, `serving/predict`, `hpo/tune_service/trial`.
/// Rules are prefix-matched (longest armed prefix wins), so
/// `Arm("serving/", rule)` covers every serving-layer point.
///
/// Compiling with -DALT_FAULTS_DISABLED removes the call sites entirely.

/// What an armed injection point does. Exactly one trigger is used:
/// `every_nth > 0` fires on every nth call (deterministic count-based),
/// otherwise `probability` fires pseudo-randomly per call (seeded hash).
struct FaultRule {
  double probability = 0.0;  // In [0, 1]; per-call firing chance.
  int64_t every_nth = 0;     // > 0: fire when call_index % every_nth == 0.
  StatusCode code = StatusCode::kInternal;
  std::string message;       // Optional; defaults to "injected fault at <point>".
};

/// Process-global registry of fault rules and per-point counters. Individual
/// instances can be constructed for tests, but the `ALT_FAULT_POINT` macros
/// always consult Global().
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The registry the ALT_FAULT_POINT macros consult. On first use it arms
  /// itself from the `ALT_FAULTS` environment variable (see ArmFromSpec) and
  /// seeds from `ALT_FAULTS_SEED` (default 1).
  static FaultInjector& Global();

  /// Arms `rule` for every point whose name starts with `point_prefix`.
  /// Re-arming a prefix replaces its rule.
  void Arm(const std::string& point_prefix, FaultRule rule);

  void Disarm(const std::string& point_prefix);

  /// Disarms everything and clears all per-point counters.
  void Reset();

  /// Seed of the per-call firing hash. Changing the seed replays a
  /// different deterministic fault schedule.
  void SetSeed(uint64_t seed);

  /// Arms rules from a spec string, the `ALT_FAULTS` format:
  ///   spec     := entry ("," entry)*
  ///   entry    := point_prefix "=" trigger
  ///   trigger  := probability in (0,1] with a '.' (e.g. "0.05"), or an
  ///               integer n >= 2 meaning every-nth-call, or "1" (always).
  /// Example: ALT_FAULTS="serving/=0.05,data/io/=0.02,hpo/=20".
  Status ArmFromSpec(const std::string& spec);

  /// True when at least one rule is armed (the macro fast path).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// The injection point primitive: returns OK, or the armed fault when the
  /// matched rule fires for this call. Fires are counted per point and in
  /// the obs registry (`resilience/faults/injected[/<point>]`).
  Status Check(const char* point);

  /// Total calls / injected failures observed at `point` since Reset().
  int64_t call_count(const std::string& point) const;
  int64_t injected_count(const std::string& point) const;

  /// Injected failures across all points since Reset().
  int64_t total_injected() const;

 private:
  struct PointState {
    int64_t calls = 0;
    int64_t injected = 0;
  };

  std::atomic<bool> armed_{false};
  mutable Mutex mu_;
  uint64_t seed_ ALT_GUARDED_BY(mu_) = 1;
  // Keyed by point prefix.
  std::map<std::string, FaultRule> rules_ ALT_GUARDED_BY(mu_);
  // Keyed by full point name.
  std::map<std::string, PointState> points_ ALT_GUARDED_BY(mu_);
  int64_t total_injected_ ALT_GUARDED_BY(mu_) = 0;
};

}  // namespace resilience
}  // namespace alt

/// Injection-point macros. `ALT_FAULT_POINT(name)` evaluates to a Status
/// (OK unless an armed rule fires); `ALT_FAULT_RETURN_IF(name)` propagates
/// the injected fault out of the enclosing function. Compiled out entirely
/// under -DALT_FAULTS_DISABLED.
#if defined(ALT_FAULTS_DISABLED)
#define ALT_FAULT_POINT(point) (::alt::Status::OK())
#define ALT_FAULT_RETURN_IF(point) \
  do {                             \
  } while (false)
#else
#define ALT_FAULT_POINT(point) \
  (::alt::resilience::FaultInjector::Global().Check(point))
#define ALT_FAULT_RETURN_IF(point) ALT_RETURN_IF_ERROR(ALT_FAULT_POINT(point))
#endif  // ALT_FAULTS_DISABLED

#endif  // ALT_SRC_RESILIENCE_FAULT_INJECTION_H_
