#include "src/resilience/retry.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"

namespace alt {
namespace resilience {

RetryPolicy::RetryPolicy(RetryOptions options, Clock* clock)
    : options_(std::move(options)),
      clock_(clock != nullptr ? clock : RealClock()),
      jitter_rng_(options_.seed) {}

Status RetryPolicy::Run(const std::string& op,
                        const std::function<Status()>& fn) {
  Result<char> result = RunResult<char>(op, [&fn]() -> Result<char> {
    Status status = fn();
    if (!status.ok()) return status;
    return '\0';
  });
  return result.status();
}

bool RetryPolicy::IsRetryable(StatusCode code) const {
  return std::find(options_.retryable_codes.begin(),
                   options_.retryable_codes.end(),
                   code) != options_.retryable_codes.end();
}

double RetryPolicy::NextBackoffMs(int64_t attempt) {
  double backoff = options_.initial_backoff_ms *
                   std::pow(options_.backoff_multiplier,
                            static_cast<double>(attempt - 1));
  backoff = std::min(backoff, options_.max_backoff_ms);
  if (options_.jitter_fraction > 0.0) {
    MutexLock lock(jitter_mu_);
    const double u = jitter_rng_.Uniform(-1.0, 1.0);
    backoff *= 1.0 + options_.jitter_fraction * u;
  }
  return std::max(backoff, 0.0);
}

void RetryPolicy::CountAttempt() {
  ALT_OBS_COUNTER_ADD("resilience/retry/attempts_total", 1);
}

void RetryPolicy::CountRetry() {
  ALT_OBS_COUNTER_ADD("resilience/retry/retries_total", 1);
}

void RetryPolicy::CountExhausted() {
  ALT_OBS_COUNTER_ADD("resilience/retry/exhausted_total", 1);
}

}  // namespace resilience
}  // namespace alt
