#ifndef ALT_SRC_RESILIENCE_RETRY_H_
#define ALT_SRC_RESILIENCE_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/resilience/clock.h"
#include "src/util/mutex.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace alt {
namespace resilience {

/// Retry schedule and eligibility. Defaults: 3 attempts, exponential
/// backoff 10ms -> 20ms (x2, capped at 1s) with 20% multiplicative jitter,
/// retrying transient codes (Internal, IOError, DeadlineExceeded,
/// FailedPrecondition stays fatal).
struct RetryOptions {
  int64_t max_attempts = 3;
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  /// Multiplicative jitter: each backoff is scaled by a factor uniform in
  /// [1 - jitter_fraction, 1 + jitter_fraction], drawn from a seeded Rng so
  /// schedules are reproducible. 0 disables.
  double jitter_fraction = 0.2;
  /// Per-attempt deadline; > 0 turns an attempt that took longer into
  /// DeadlineExceeded (even a nominally-successful one — by then the caller
  /// has degraded, matching serving semantics). Checked post hoc via the
  /// injected clock; the attempt itself is not interrupted.
  double attempt_deadline_ms = 0.0;
  /// Whole-call budget; > 0 stops retrying (keeping the last error) when
  /// the next backoff would exceed it.
  double overall_deadline_ms = 0.0;
  /// Status codes worth retrying; everything else fails fast.
  std::vector<StatusCode> retryable_codes = {StatusCode::kInternal,
                                             StatusCode::kIOError,
                                             StatusCode::kDeadlineExceeded};
  /// Jitter stream seed (determinism for tests and replayable chaos runs).
  uint64_t seed = 1;
};

/// Executes fallible operations under RetryOptions. Thread-safe; one policy
/// instance can serve many call sites. Time (backoff sleeps, deadlines)
/// flows through the injected Clock, so tests with a FakeClock run the full
/// schedule instantly and assert the exact sleep sequence.
///
/// Obs wiring (process registry):
///   resilience/retry/attempts_total    every attempt
///   resilience/retry/retries_total     attempts after the first
///   resilience/retry/exhausted_total   calls that gave up
class RetryPolicy {
 public:
  /// `clock == nullptr` selects RealClock().
  explicit RetryPolicy(RetryOptions options, Clock* clock = nullptr);

  /// Runs `fn` until it succeeds, a non-retryable error occurs, or the
  /// attempt/deadline budget is spent. Returns the last error on failure.
  /// `op` names the operation in error messages.
  Status Run(const std::string& op, const std::function<Status()>& fn);

  /// Result-returning variant.
  template <typename T>
  Result<T> RunResult(const std::string& op,
                      const std::function<Result<T>()>& fn) {
    const double start_ms = clock_->NowMs();
    Status last = Status::Internal(op + ": no attempts run");
    for (int64_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
      CountAttempt();
      const double attempt_start_ms = clock_->NowMs();
      Result<T> result = fn();
      const double attempt_ms = clock_->NowMs() - attempt_start_ms;
      Status status = result.status();
      if (status.ok() && options_.attempt_deadline_ms > 0.0 &&
          attempt_ms > options_.attempt_deadline_ms) {
        status = Status::DeadlineExceeded(
            op + ": attempt exceeded deadline (" +
            std::to_string(attempt_ms) + "ms)");
      }
      if (status.ok()) return result;
      last = status;
      if (!IsRetryable(status.code()) || attempt == options_.max_attempts) {
        break;
      }
      const double backoff_ms = NextBackoffMs(attempt);
      if (options_.overall_deadline_ms > 0.0 &&
          (clock_->NowMs() - start_ms) + backoff_ms >
              options_.overall_deadline_ms) {
        break;
      }
      CountRetry();
      clock_->SleepMs(backoff_ms);
    }
    CountExhausted();
    return last;
  }

  bool IsRetryable(StatusCode code) const;

  /// The backoff before retry number `attempt` (1-based: the sleep after
  /// the first failed attempt is NextBackoffMs(1)). Applies jitter, so
  /// consecutive calls advance the jitter stream.
  double NextBackoffMs(int64_t attempt);

  const RetryOptions& options() const { return options_; }

 private:
  void CountAttempt();
  void CountRetry();
  void CountExhausted();

  RetryOptions options_;
  Clock* clock_;
  Mutex jitter_mu_;
  Rng jitter_rng_ ALT_GUARDED_BY(jitter_mu_);
};

}  // namespace resilience
}  // namespace alt

#endif  // ALT_SRC_RESILIENCE_RETRY_H_
