#include "src/resilience/circuit_breaker.h"

namespace alt {
namespace resilience {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kHalfOpen:
      return "half-open";
    case BreakerState::kOpen:
      return "open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(std::string name,
                               CircuitBreakerOptions options, Clock* clock,
                               obs::MetricsRegistry* registry)
    : name_(std::move(name)),
      options_(options),
      clock_(clock != nullptr ? clock : RealClock()) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::Global();
  state_gauge_ = reg.gauge("resilience/circuit_breaker/state/" + name_);
  opens_total_ = reg.counter("resilience/circuit_breaker/opens/" + name_);
  state_gauge_->Set(static_cast<double>(state_));
}

void CircuitBreaker::TransitionLocked(BreakerState next) {
  if (next == BreakerState::kOpen && state_ != BreakerState::kOpen) {
    opens_total_->Add(1);
    opened_at_ms_ = clock_->NowMs();
  }
  state_ = next;
  state_gauge_->Set(static_cast<double>(next));
}

bool CircuitBreaker::AllowRequest() {
  MutexLock lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
    case BreakerState::kHalfOpen:
      return true;
    case BreakerState::kOpen:
      if (clock_->NowMs() - opened_at_ms_ >= options_.open_cooldown_ms) {
        half_open_successes_ = 0;
        TransitionLocked(BreakerState::kHalfOpen);
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  MutexLock lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (++half_open_successes_ >= options_.close_successes) {
        consecutive_failures_ = 0;
        TransitionLocked(BreakerState::kClosed);
      }
      break;
    case BreakerState::kOpen:
      // A late success from a request admitted before the trip; ignored.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  MutexLock lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        TransitionLocked(BreakerState::kOpen);
      }
      break;
    case BreakerState::kHalfOpen:
      // A failing probe re-opens immediately (fresh cooldown).
      TransitionLocked(BreakerState::kOpen);
      break;
    case BreakerState::kOpen:
      break;
  }
}

void CircuitBreaker::Reset() {
  MutexLock lock(mu_);
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  opened_at_ms_ = 0.0;
  TransitionLocked(BreakerState::kClosed);
}

BreakerState CircuitBreaker::state() const {
  MutexLock lock(mu_);
  return state_;
}

}  // namespace resilience
}  // namespace alt
