#ifndef ALT_SRC_FEATURE_FEATURE_FACTORY_H_
#define ALT_SRC_FEATURE_FEATURE_FACTORY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/status.h"

namespace alt {
namespace feature {

/// Feature group, matching the paper's split: relatively stable user
/// profiles vs. frequently updated behavior sequences (Sec. IV-B).
enum class FeatureKind { kProfile, kBehavior };

/// Refresh cadence of a feature. The paper updates stable profile features
/// daily or monthly and behavior sequences hourly or faster.
enum class UpdateFrequency { kHourly = 1, kDaily = 24, kMonthly = 720 };

/// Declaration of a feature column group.
struct FeatureDefinition {
  std::string name;
  FeatureKind kind = FeatureKind::kProfile;
  UpdateFrequency frequency = UpdateFrequency::kDaily;
  /// kProfile: number of float columns; kBehavior: sequence length.
  int64_t dim = 1;
};

/// Recomputes a user's profile feature values (simulates the upstream
/// MaxCompute pipeline of the paper's deployment).
using ProfileProducer =
    std::function<std::vector<float>(const std::string& user_id)>;
/// Recomputes a user's behavior event sequence.
using BehaviorProducer =
    std::function<std::vector<int64_t>(const std::string& user_id)>;

/// Profile matrix + behavior sequences for a user list, ready for the
/// Data Preparation module (the "feature joining" step).
struct JoinedFeatures {
  std::vector<std::string> user_ids;
  Tensor profiles;                 // [num_users, total profile dim]
  std::vector<int64_t> behaviors;  // row-major [num_users, seq_len]
  int64_t seq_len = 0;
};

/// An in-process feature store with per-feature refresh cadences driven by
/// a simulated clock. Registering a feature installs its producer; when the
/// clock advances past a feature's cadence the factory re-invokes the
/// producer for every known user (the "regularly scheduled feature update
/// process" of Sec. IV-B).
class FeatureFactory {
 public:
  Status RegisterProfileFeature(FeatureDefinition definition,
                                ProfileProducer producer);
  Status RegisterBehaviorFeature(FeatureDefinition definition,
                                 BehaviorProducer producer);

  /// Declares a user and computes all features for them at the current
  /// clock.
  Status AddUser(const std::string& user_id);
  bool HasUser(const std::string& user_id) const;
  int64_t NumUsers() const { return static_cast<int64_t>(users_.size()); }

  /// Advances the simulated clock by `hours`, refreshing every feature
  /// whose cadence has elapsed. Returns the number of feature refreshes.
  int64_t AdvanceClock(int64_t hours);
  int64_t clock_hours() const { return clock_hours_; }

  /// Hour at which `feature` was last refreshed.
  Result<int64_t> LastRefreshHour(const std::string& feature) const;

  /// Current stored values.
  Result<std::vector<float>> GetProfileValues(const std::string& user_id,
                                              const std::string& feature) const;
  Result<std::vector<int64_t>> GetBehavior(const std::string& user_id,
                                           const std::string& feature) const;

  std::vector<std::string> ProfileFeatureNames() const;
  std::vector<std::string> BehaviorFeatureNames() const;

  /// Joins all profile features (column-concatenated in registration order)
  /// and the named behavior feature for the given users.
  Result<JoinedFeatures> JoinUsers(const std::vector<std::string>& user_ids,
                                   const std::string& behavior_feature) const;

 private:
  struct FeatureEntry {
    FeatureDefinition definition;
    ProfileProducer profile_producer;
    BehaviorProducer behavior_producer;
    int64_t last_refresh_hour = 0;
    // Per-user stored values.
    std::map<std::string, std::vector<float>> profile_values;
    std::map<std::string, std::vector<int64_t>> behavior_values;
  };

  Status RefreshFeatureForUser(FeatureEntry* entry,
                               const std::string& user_id);

  int64_t clock_hours_ = 0;
  std::vector<std::string> registration_order_;
  std::map<std::string, FeatureEntry> features_;
  std::vector<std::string> users_;
};

}  // namespace feature
}  // namespace alt

#endif  // ALT_SRC_FEATURE_FEATURE_FACTORY_H_
