#ifndef ALT_SRC_FEATURE_DATA_PREPARATION_H_
#define ALT_SRC_FEATURE_DATA_PREPARATION_H_

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"
#include "src/util/status.h"

namespace alt {
namespace feature {

/// Per-column standardization statistics, fit on training data only and
/// reused at serving time so online features get identical processing.
struct NormalizerStats {  // alt_lint: allow(L007): model state (fit parameters), not telemetry
  std::vector<float> mean;
  std::vector<float> stddev;  // Floored at 1e-6 to avoid division by zero.
};

/// Fits mean/stddev per profile column.
NormalizerStats FitNormalizer(const Tensor& profiles);

/// In-place z-normalization with previously fit stats.
Status ApplyNormalizer(const NormalizerStats& stats, Tensor* profiles);

/// Equal-frequency (quantile) discretizer per profile column.
struct Discretizer {
  int64_t num_bins = 0;
  /// boundaries[c] has num_bins - 1 ascending cut points for column c.
  std::vector<std::vector<float>> boundaries;
};

Discretizer FitQuantileDiscretizer(const Tensor& profiles, int64_t num_bins);

/// Replaces each value with its (float-cast) bin index in [0, num_bins).
Status ApplyDiscretizer(const Discretizer& discretizer, Tensor* profiles);

/// The Data Preparation pipeline of Sec. IV-B: feature processing
/// (normalization / discretization), sample shuffling, and sample
/// partitioning. Feature joining happens upstream in FeatureFactory.
struct DataPreparationConfig {
  bool normalize = true;
  bool discretize = false;
  int64_t discretize_bins = 10;
  bool shuffle = true;
  double test_fraction = 0.2;  // The paper holds out 20% as the test set.
  uint64_t seed = 3;
};

/// Output of the pipeline: processed train/test partitions plus the fitted
/// transforms (needed to process serving-time features identically).
struct PreparedData {
  data::ScenarioData train;
  data::ScenarioData test;
  NormalizerStats normalizer;
  Discretizer discretizer;
};

/// Runs the pipeline on one scenario's raw data.
Result<PreparedData> PrepareScenarioData(const data::ScenarioData& raw,
                                         const DataPreparationConfig& config);

}  // namespace feature
}  // namespace alt

#endif  // ALT_SRC_FEATURE_DATA_PREPARATION_H_
