#include "src/feature/data_preparation.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace alt {
namespace feature {

NormalizerStats FitNormalizer(const Tensor& profiles) {
  ALT_CHECK_EQ(profiles.ndim(), 2);
  const int64_t rows = profiles.size(0);
  const int64_t cols = profiles.size(1);
  ALT_CHECK_GT(rows, 0);
  NormalizerStats stats;
  stats.mean.assign(static_cast<size_t>(cols), 0.0f);
  stats.stddev.assign(static_cast<size_t>(cols), 0.0f);
  for (int64_t c = 0; c < cols; ++c) {
    double mean = 0.0;
    for (int64_t r = 0; r < rows; ++r) mean += profiles.at(r, c);
    mean /= static_cast<double>(rows);
    double var = 0.0;
    for (int64_t r = 0; r < rows; ++r) {
      const double d = profiles.at(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(rows);
    stats.mean[static_cast<size_t>(c)] = static_cast<float>(mean);
    stats.stddev[static_cast<size_t>(c)] =
        std::max(1e-6f, static_cast<float>(std::sqrt(var)));
  }
  return stats;
}

Status ApplyNormalizer(const NormalizerStats& stats, Tensor* profiles) {
  if (profiles->ndim() != 2 ||
      profiles->size(1) != static_cast<int64_t>(stats.mean.size())) {
    return Status::InvalidArgument("normalizer dim mismatch");
  }
  const int64_t rows = profiles->size(0);
  const int64_t cols = profiles->size(1);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      profiles->at(r, c) =
          (profiles->at(r, c) - stats.mean[static_cast<size_t>(c)]) /
          stats.stddev[static_cast<size_t>(c)];
    }
  }
  return Status::OK();
}

Discretizer FitQuantileDiscretizer(const Tensor& profiles, int64_t num_bins) {
  ALT_CHECK_EQ(profiles.ndim(), 2);
  ALT_CHECK_GE(num_bins, 2);
  const int64_t rows = profiles.size(0);
  const int64_t cols = profiles.size(1);
  Discretizer discretizer;
  discretizer.num_bins = num_bins;
  discretizer.boundaries.resize(static_cast<size_t>(cols));
  std::vector<float> column(static_cast<size_t>(rows));
  for (int64_t c = 0; c < cols; ++c) {
    for (int64_t r = 0; r < rows; ++r) {
      column[static_cast<size_t>(r)] = profiles.at(r, c);
    }
    std::sort(column.begin(), column.end());
    std::vector<float>& cuts = discretizer.boundaries[static_cast<size_t>(c)];
    for (int64_t b = 1; b < num_bins; ++b) {
      const size_t idx = static_cast<size_t>(
          (static_cast<double>(b) / num_bins) * (rows - 1));
      cuts.push_back(column[idx]);
    }
  }
  return discretizer;
}

Status ApplyDiscretizer(const Discretizer& discretizer, Tensor* profiles) {
  if (profiles->ndim() != 2 ||
      profiles->size(1) !=
          static_cast<int64_t>(discretizer.boundaries.size())) {
    return Status::InvalidArgument("discretizer dim mismatch");
  }
  const int64_t rows = profiles->size(0);
  const int64_t cols = profiles->size(1);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      const std::vector<float>& cuts =
          discretizer.boundaries[static_cast<size_t>(c)];
      const float v = profiles->at(r, c);
      const auto it = std::upper_bound(cuts.begin(), cuts.end(), v);
      profiles->at(r, c) = static_cast<float>(it - cuts.begin());
    }
  }
  return Status::OK();
}

Result<PreparedData> PrepareScenarioData(const data::ScenarioData& raw,
                                         const DataPreparationConfig& config) {
  if (raw.num_samples() < 2) {
    return Status::InvalidArgument("scenario needs at least 2 samples");
  }
  if (config.test_fraction < 0.0 || config.test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in [0, 1)");
  }
  PreparedData prepared;
  Rng rng(config.seed + static_cast<uint64_t>(raw.scenario_id) * 101);

  // Sample shuffling + partitioning. SplitTrainTest shuffles internally;
  // when shuffling is disabled, partition deterministically from the tail.
  if (config.shuffle) {
    auto [train, test] =
        data::SplitTrainTest(raw, config.test_fraction, &rng);
    prepared.train = std::move(train);
    prepared.test = std::move(test);
  } else {
    const int64_t test_count = static_cast<int64_t>(
        config.test_fraction * static_cast<double>(raw.num_samples()));
    std::vector<size_t> train_idx;
    std::vector<size_t> test_idx;
    for (int64_t i = 0; i < raw.num_samples(); ++i) {
      if (i < raw.num_samples() - test_count) {
        train_idx.push_back(static_cast<size_t>(i));
      } else {
        test_idx.push_back(static_cast<size_t>(i));
      }
    }
    prepared.train = raw.Subset(train_idx);
    prepared.test = raw.Subset(test_idx);
  }

  // Feature processing: transforms are fit on train and applied to both.
  if (config.normalize) {
    prepared.normalizer = FitNormalizer(prepared.train.profiles);
    ALT_RETURN_IF_ERROR(
        ApplyNormalizer(prepared.normalizer, &prepared.train.profiles));
    if (prepared.test.num_samples() > 0) {
      ALT_RETURN_IF_ERROR(
          ApplyNormalizer(prepared.normalizer, &prepared.test.profiles));
    }
  }
  if (config.discretize) {
    prepared.discretizer = FitQuantileDiscretizer(prepared.train.profiles,
                                                  config.discretize_bins);
    ALT_RETURN_IF_ERROR(
        ApplyDiscretizer(prepared.discretizer, &prepared.train.profiles));
    if (prepared.test.num_samples() > 0) {
      ALT_RETURN_IF_ERROR(
          ApplyDiscretizer(prepared.discretizer, &prepared.test.profiles));
    }
  }
  return prepared;
}

}  // namespace feature
}  // namespace alt
