#include "src/feature/feature_factory.h"

#include <algorithm>

#include "src/util/logging.h"

namespace alt {
namespace feature {

Status FeatureFactory::RegisterProfileFeature(FeatureDefinition definition,
                                              ProfileProducer producer) {
  if (definition.kind != FeatureKind::kProfile) {
    return Status::InvalidArgument("definition is not a profile feature");
  }
  if (producer == nullptr) {
    return Status::InvalidArgument("producer must not be null");
  }
  if (features_.count(definition.name) > 0) {
    return Status::AlreadyExists("feature " + definition.name);
  }
  FeatureEntry entry;
  entry.definition = definition;
  entry.profile_producer = std::move(producer);
  entry.last_refresh_hour = clock_hours_;
  registration_order_.push_back(definition.name);
  const std::string name = definition.name;
  features_.emplace(name, std::move(entry));
  // Backfill existing users.
  for (const std::string& user : users_) {
    ALT_RETURN_IF_ERROR(RefreshFeatureForUser(&features_.at(name), user));
  }
  return Status::OK();
}

Status FeatureFactory::RegisterBehaviorFeature(FeatureDefinition definition,
                                               BehaviorProducer producer) {
  if (definition.kind != FeatureKind::kBehavior) {
    return Status::InvalidArgument("definition is not a behavior feature");
  }
  if (producer == nullptr) {
    return Status::InvalidArgument("producer must not be null");
  }
  if (features_.count(definition.name) > 0) {
    return Status::AlreadyExists("feature " + definition.name);
  }
  FeatureEntry entry;
  entry.definition = definition;
  entry.behavior_producer = std::move(producer);
  entry.last_refresh_hour = clock_hours_;
  registration_order_.push_back(definition.name);
  const std::string name = definition.name;
  features_.emplace(name, std::move(entry));
  for (const std::string& user : users_) {
    ALT_RETURN_IF_ERROR(RefreshFeatureForUser(&features_.at(name), user));
  }
  return Status::OK();
}

Status FeatureFactory::RefreshFeatureForUser(FeatureEntry* entry,
                                             const std::string& user_id) {
  if (entry->definition.kind == FeatureKind::kProfile) {
    std::vector<float> values = entry->profile_producer(user_id);
    if (static_cast<int64_t>(values.size()) != entry->definition.dim) {
      return Status::Internal("producer for " + entry->definition.name +
                              " returned wrong dim");
    }
    entry->profile_values[user_id] = std::move(values);
  } else {
    std::vector<int64_t> events = entry->behavior_producer(user_id);
    if (static_cast<int64_t>(events.size()) != entry->definition.dim) {
      return Status::Internal("producer for " + entry->definition.name +
                              " returned wrong length");
    }
    entry->behavior_values[user_id] = std::move(events);
  }
  return Status::OK();
}

Status FeatureFactory::AddUser(const std::string& user_id) {
  if (HasUser(user_id)) return Status::AlreadyExists("user " + user_id);
  users_.push_back(user_id);
  for (auto& [name, entry] : features_) {
    ALT_RETURN_IF_ERROR(RefreshFeatureForUser(&entry, user_id));
  }
  return Status::OK();
}

bool FeatureFactory::HasUser(const std::string& user_id) const {
  return std::find(users_.begin(), users_.end(), user_id) != users_.end();
}

int64_t FeatureFactory::AdvanceClock(int64_t hours) {
  ALT_CHECK_GE(hours, 0);
  clock_hours_ += hours;
  int64_t refreshes = 0;
  for (auto& [name, entry] : features_) {
    const int64_t cadence =
        static_cast<int64_t>(entry.definition.frequency);
    if (clock_hours_ - entry.last_refresh_hour >= cadence) {
      for (const std::string& user : users_) {
        const Status status = RefreshFeatureForUser(&entry, user);
        if (!status.ok()) {
          ALT_LOG(Error) << "refresh failed for " << name << "/" << user
                         << ": " << status.ToString();
          continue;
        }
        ++refreshes;
      }
      entry.last_refresh_hour = clock_hours_;
    }
  }
  return refreshes;
}

Result<int64_t> FeatureFactory::LastRefreshHour(
    const std::string& feature) const {
  auto it = features_.find(feature);
  if (it == features_.end()) return Status::NotFound("feature " + feature);
  return it->second.last_refresh_hour;
}

Result<std::vector<float>> FeatureFactory::GetProfileValues(
    const std::string& user_id, const std::string& feature) const {
  auto it = features_.find(feature);
  if (it == features_.end()) return Status::NotFound("feature " + feature);
  if (it->second.definition.kind != FeatureKind::kProfile) {
    return Status::InvalidArgument(feature + " is not a profile feature");
  }
  auto uit = it->second.profile_values.find(user_id);
  if (uit == it->second.profile_values.end()) {
    return Status::NotFound("user " + user_id);
  }
  return uit->second;
}

Result<std::vector<int64_t>> FeatureFactory::GetBehavior(
    const std::string& user_id, const std::string& feature) const {
  auto it = features_.find(feature);
  if (it == features_.end()) return Status::NotFound("feature " + feature);
  if (it->second.definition.kind != FeatureKind::kBehavior) {
    return Status::InvalidArgument(feature + " is not a behavior feature");
  }
  auto uit = it->second.behavior_values.find(user_id);
  if (uit == it->second.behavior_values.end()) {
    return Status::NotFound("user " + user_id);
  }
  return uit->second;
}

std::vector<std::string> FeatureFactory::ProfileFeatureNames() const {
  std::vector<std::string> out;
  for (const std::string& name : registration_order_) {
    if (features_.at(name).definition.kind == FeatureKind::kProfile) {
      out.push_back(name);
    }
  }
  return out;
}

std::vector<std::string> FeatureFactory::BehaviorFeatureNames() const {
  std::vector<std::string> out;
  for (const std::string& name : registration_order_) {
    if (features_.at(name).definition.kind == FeatureKind::kBehavior) {
      out.push_back(name);
    }
  }
  return out;
}

Result<JoinedFeatures> FeatureFactory::JoinUsers(
    const std::vector<std::string>& user_ids,
    const std::string& behavior_feature) const {
  auto bit = features_.find(behavior_feature);
  if (bit == features_.end()) {
    return Status::NotFound("behavior feature " + behavior_feature);
  }
  if (bit->second.definition.kind != FeatureKind::kBehavior) {
    return Status::InvalidArgument(behavior_feature +
                                   " is not a behavior feature");
  }
  const std::vector<std::string> profile_names = ProfileFeatureNames();
  int64_t total_dim = 0;
  for (const std::string& name : profile_names) {
    total_dim += features_.at(name).definition.dim;
  }
  JoinedFeatures joined;
  joined.user_ids = user_ids;
  joined.seq_len = bit->second.definition.dim;
  const int64_t n = static_cast<int64_t>(user_ids.size());
  joined.profiles = Tensor({n, total_dim});
  joined.behaviors.resize(static_cast<size_t>(n * joined.seq_len));
  for (int64_t r = 0; r < n; ++r) {
    const std::string& user = user_ids[static_cast<size_t>(r)];
    int64_t col = 0;
    for (const std::string& name : profile_names) {
      ALT_ASSIGN_OR_RETURN(std::vector<float> values,
                           GetProfileValues(user, name));
      for (float v : values) joined.profiles.at(r, col++) = v;
    }
    ALT_ASSIGN_OR_RETURN(std::vector<int64_t> events,
                         GetBehavior(user, behavior_feature));
    for (int64_t t = 0; t < joined.seq_len; ++t) {
      joined.behaviors[static_cast<size_t>(r * joined.seq_len + t)] =
          events[static_cast<size_t>(t)];
    }
  }
  return joined;
}

}  // namespace feature
}  // namespace alt
