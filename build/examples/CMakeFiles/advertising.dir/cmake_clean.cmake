file(REMOVE_RECURSE
  "CMakeFiles/advertising.dir/advertising.cpp.o"
  "CMakeFiles/advertising.dir/advertising.cpp.o.d"
  "advertising"
  "advertising.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advertising.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
